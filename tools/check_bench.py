#!/usr/bin/env python3
"""Bench-regression gate for CI, stdlib only.

Compares one or more `--json` result files emitted by the bench binaries
against the checked-in baseline (tools/bench_baseline.json). Every metric
named in the baseline is a GATED higher-is-better ratio (speedups, never
absolute seconds — ratios are stable across runner core counts, which is
why the per-shard throughput and stitch-latency numbers stay
informational): the gate FAILS (exit 1) when a current value drops below
(1 - tolerance) x baseline, i.e. regresses by more than 20% by default.
Metrics present in a result file but absent from the baseline are reported
as informational and never fail the gate; a baseline metric missing from
every result file fails it (the bench stopped reporting the number the
gate exists to watch).

A baseline entry may instead be {"floor": X}: a hard lower bound with no
tolerance (the SIMD-vs-scalar kernel speedups use floor 1.0 — vectorized
must never lose to scalar, on any core count). Floor metrics missing from
every result file are SKIPPED, not failed: the bench omits them when the
host lacks the ISA level.

Usage: tools/check_bench.py [--baseline FILE] [--tolerance 0.2] RESULTS...
"""

import argparse
import json
import os
import sys


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load(path, allow_floors=False):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a flat JSON object")
    for name, value in data.items():
        if is_number(value):
            continue
        if (allow_floors and isinstance(value, dict)
                and set(value) == {"floor"} and is_number(value["floor"])):
            continue
        raise ValueError(f"{path}: metric {name!r} is not a number"
                         + (" or {'floor': X}" if allow_floors else ""))
    return data


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+", metavar="RESULTS",
                        help="--json output files from the bench binaries")
    parser.add_argument("--baseline",
                        default=os.path.join(os.path.dirname(__file__),
                                             "bench_baseline.json"))
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional drop below baseline "
                             "(default: 0.2)")
    args = parser.parse_args()

    baseline = load(args.baseline, allow_floors=True)

    # Collect EVERY problem before deciding the exit code: a red CI run
    # should name all regressed metrics and all broken result files at
    # once, not reveal them one re-run at a time.
    failures = 0
    skipped = 0
    current = {}
    for path in args.results:
        try:
            loaded = load(path)
        except (OSError, ValueError) as error:
            print(f"FAIL  cannot load results file: {error}")
            failures += 1
            continue
        for name, value in loaded.items():
            if name in current:
                print(f"FAIL  metric {name!r} appears in more than one "
                      f"results file")
                failures += 1
                continue
            current[name] = value

    for name in sorted(baseline):
        spec = baseline[name]
        if isinstance(spec, dict):
            floor = spec["floor"]
            if name not in current:
                # Loud on purpose: a floor-gated metric that vanished from
                # the JSON must be visible in the log, not quietly green —
                # only the final summary line says whether that is expected
                # (host lacks the ISA level) or a bench stopped reporting.
                print(f"SKIPPED (metric missing)  {name}: floor-gated in "
                      f"the baseline but absent from every results file")
                skipped += 1
            elif current[name] < floor:
                print(f"FAIL  {name}: {current[name]:.3f} < hard floor "
                      f"{floor:.3f}")
                failures += 1
            else:
                margin = current[name] / floor if floor else float("inf")
                print(f"ok    {name}: {current[name]:.3f} "
                      f"(hard floor {floor:.3f}, {margin:.2f}x of floor)")
            continue
        floor = spec * (1.0 - args.tolerance)
        if name not in current:
            print(f"FAIL  {name}: in baseline but missing from results")
            failures += 1
        elif current[name] < floor:
            print(f"FAIL  {name}: {current[name]:.3f} < floor "
                  f"{floor:.3f} (baseline {spec:.3f}, "
                  f"tolerance {args.tolerance:.0%})")
            failures += 1
        else:
            ratio = current[name] / spec if spec else float("inf")
            print(f"ok    {name}: {current[name]:.3f} "
                  f"(baseline {spec:.3f}, floor {floor:.3f}, "
                  f"{ratio:.2f}x of baseline)")
    for name in sorted(set(current) - set(baseline)):
        print(f"info  {name}: {current[name]:.3f} (not gated)")

    if failures:
        print(f"{failures} bench check(s) failed (tolerance "
              f"{args.tolerance:.0%})", file=sys.stderr)
        return 1
    if skipped:
        print(f"all gated bench metrics within tolerance "
              f"({skipped} floor metric(s) SKIPPED: missing from results)")
    else:
        print("all gated bench metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// san_tool — command-line front end for the library.
//
//   san_tool generate --kind model|zhel|gplus --nodes N --seed S -o FILE
//   san_tool measure FILE [--day D]
//   san_tool snapshots FILE [--step D]
//   san_tool crawl FILE --day D [--private P] -o FILE
//   san_tool communities FILE [--attribute-weight W]
//
// Files use the SANv1 text format (san/serialization.hpp).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "apps/community.hpp"
#include "crawl/crawler.hpp"
#include "crawl/gplus_synth.hpp"
#include "graph/clustering.hpp"
#include "graph/metrics.hpp"
#include "model/generator.hpp"
#include "model/zhel.hpp"
#include "san/san_metrics.hpp"
#include "san/serialization.hpp"
#include "san/timeline.hpp"
#include "stats/fit.hpp"

namespace {

using namespace san;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  san_tool generate --kind model|zhel|gplus [--nodes N]"
               " [--seed S] -o FILE\n"
               "  san_tool measure FILE [--day D]\n"
               "  san_tool snapshots FILE [--step D]\n"
               "  san_tool crawl FILE --day D [--private P] -o FILE\n"
               "  san_tool communities FILE [--attribute-weight W]\n");
  return 2;
}

/// Minimal flag parser: returns the value following `flag`, or fallback.
const char* flag_value(int argc, char** argv, const char* flag,
                       const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

int cmd_generate(int argc, char** argv) {
  const std::string kind = flag_value(argc, argv, "--kind", "model");
  const auto nodes =
      static_cast<std::size_t>(std::atol(flag_value(argc, argv, "--nodes",
                                                    "20000")));
  const auto seed =
      static_cast<std::uint64_t>(std::atoll(flag_value(argc, argv, "--seed",
                                                       "42")));
  const char* out = flag_value(argc, argv, "-o", nullptr);
  if (out == nullptr) return usage();

  SocialAttributeNetwork net;
  if (kind == "model") {
    model::GeneratorParams params;
    params.social_node_count = nodes;
    params.seed = seed;
    net = model::generate_san(params);
  } else if (kind == "zhel") {
    model::ZhelParams params;
    params.social_node_count = nodes;
    params.seed = seed;
    net = model::generate_zhel(params);
  } else if (kind == "gplus") {
    crawl::SyntheticGplusParams params;
    params.total_social_nodes = nodes;
    params.seed = seed;
    net = crawl::generate_synthetic_gplus(params);
  } else {
    return usage();
  }
  save_san(net, std::string(out));
  std::printf("wrote %s: %zu social nodes, %llu social links, %zu attributes,"
              " %llu attribute links\n",
              out, net.social_node_count(),
              static_cast<unsigned long long>(net.social_link_count()),
              net.attribute_node_count(),
              static_cast<unsigned long long>(net.attribute_link_count()));
  return 0;
}

int cmd_measure(int argc, char** argv, const char* path) {
  const double day =
      std::atof(flag_value(argc, argv, "--day", "1e300"));
  const auto net = load_san(path);
  const auto snap = day >= 1e300 ? snapshot_full(net) : snapshot_at(net, day);

  std::printf("social nodes:        %zu\n", snap.social_node_count());
  std::printf("attribute nodes:     %zu (populated %zu)\n",
              snap.attribute_node_count(), snap.populated_attribute_count());
  std::printf("social links:        %llu\n",
              static_cast<unsigned long long>(snap.social_link_count()));
  std::printf("attribute links:     %llu\n",
              static_cast<unsigned long long>(snap.attribute_link_count));
  std::printf("reciprocity:         %.4f\n", graph::reciprocity(snap.social));
  std::printf("social density:      %.3f\n", graph::density(snap.social));
  std::printf("attribute density:   %.3f\n", attribute_density(snap));
  std::printf("assortativity:       %+.4f\n",
              graph::assortativity(snap.social));

  graph::ClusteringOptions cc;
  cc.epsilon = 0.01;
  std::printf("social clustering:   %.4f\n",
              graph::approx_average_clustering(snap.social, cc));
  std::printf("attribute clustering:%.4f\n",
              average_attribute_clustering(snap, cc));

  if (snap.social_link_count() > 100) {
    const auto out_sel =
        stats::select_degree_model(graph::out_degree_histogram(snap.social), 1);
    std::printf("outdegree best fit:  %s (lognormal mu=%.2f sigma=%.2f)\n",
                to_string(out_sel.best).c_str(), out_sel.lognormal.mu,
                out_sel.lognormal.sigma);
  }
  return 0;
}

int cmd_snapshots(int argc, char** argv, const char* path) {
  const double step = std::atof(flag_value(argc, argv, "--step", "1"));
  if (step <= 0.0) return usage();
  const auto net = load_san(path);
  const SanTimeline timeline(net);

  // Integer-index grid: repeated `day += step` accumulates rounding error
  // and can emit two nearly-identical final snapshots.
  std::vector<double> days;
  for (std::size_t i = 1;; ++i) {
    const double day = step * static_cast<double>(i);
    if (day >= timeline.max_time()) {
      days.push_back(timeline.max_time());
      break;
    }
    days.push_back(day);
  }
  std::printf("%8s %12s %12s %14s %12s %12s %10s\n", "day", "nodes", "links",
              "attr-nodes", "attr-links", "density", "attr-dens");
  timeline.sweep(days, [](double day, const SanSnapshot& snap) {
    std::printf("%8.2f %12zu %12llu %14zu %12llu %12.4f %10.3f\n", day,
                snap.social_node_count(),
                static_cast<unsigned long long>(snap.social_link_count()),
                snap.attribute_node_count(),
                static_cast<unsigned long long>(snap.attribute_link_count),
                graph::density(snap.social), attribute_density(snap));
  });
  std::printf("(%zu snapshots; indexed %llu social + %llu attribute links"
              " once, O(prefix) per day)\n",
              days.size(),
              static_cast<unsigned long long>(timeline.social_link_total()),
              static_cast<unsigned long long>(timeline.attribute_link_total()));
  return 0;
}

int cmd_crawl(int argc, char** argv, const char* path) {
  const double day = std::atof(flag_value(argc, argv, "--day", "1e300"));
  const double privacy = std::atof(flag_value(argc, argv, "--private", "0.12"));
  const char* out = flag_value(argc, argv, "-o", nullptr);
  if (out == nullptr) return usage();

  const auto truth = load_san(path);
  crawl::CrawlerOptions options;
  options.private_profile_prob = privacy;
  const auto result = crawl::crawl_at(
      truth, day >= 1e300 ? std::numeric_limits<double>::max() : day, options);
  save_san(result.network, std::string(out));
  std::printf("crawled %zu/%zu nodes (%.1f%%), link coverage %.1f%% -> %s\n",
              result.network.social_node_count(), truth.social_node_count(),
              100.0 * result.node_coverage, 100.0 * result.link_coverage, out);
  return 0;
}

int cmd_communities(int argc, char** argv, const char* path) {
  const double w = std::atof(flag_value(argc, argv, "--attribute-weight", "0"));
  const auto net = load_san(path);
  const auto snap = snapshot_full(net);
  apps::CommunityOptions options;
  options.attribute_weight = w;
  const auto result = apps::detect_communities(snap, options);
  std::printf("communities: %zu (after %d iterations), modularity %.4f\n",
              result.community_count, result.iterations,
              apps::modularity(snap, result.label));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (argc >= 3 && command == "measure") return cmd_measure(argc, argv,
                                                              argv[2]);
    if (argc >= 3 && command == "snapshots") {
      return cmd_snapshots(argc, argv, argv[2]);
    }
    if (argc >= 3 && command == "crawl") return cmd_crawl(argc, argv, argv[2]);
    if (argc >= 3 && command == "communities") {
      return cmd_communities(argc, argv, argv[2]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

// san_tool — command-line front end for the library.
//
//   san_tool help [COMMAND]            (also: san_tool COMMAND --help)
//   san_tool generate --kind model|zhel|gplus [--nodes N] [--seed S] -o FILE
//   san_tool measure FILE [--day D]
//   san_tool snapshots FILE [--step D]
//   san_tool crawl FILE --day D [--private P] -o FILE
//   san_tool communities FILE [--attribute-weight W]
//   san_tool live FILE --workload W [--start D] [--cache N] [--batch B]
//            [--publish-every K] [--shards N] [--stats-json FILE]
//            [--trace FILE] [--stats-every N]
//   san_tool serve FILE --workload W [--cache N] [--batch B]
//            [--stats-json FILE] [--trace FILE] [--stats-every N]
//   san_tool listen FILE [--port P] [--start D] [--cache N] [--batch B]
//            [--max-delay-us U] [--publish-every K] [--shards N]
//            [--stats-json FILE] [--trace FILE]
//   san_tool genload [--queries N] [--nodes N] [--seed S] [--zipf Z]
//            [--mix SPEC] [--arrival MODEL] [--horizon D] [--now F]
//            [--ingest F] -o FILE
//
// Files use the SANv1 text format (san/serialization.hpp); workload files
// use the serve/query.hpp line format. Malformed numbers, unknown
// subcommands, and missing positionals all fail loudly with usage + a
// nonzero exit instead of silently falling back to atof/atol defaults.
//
// Exit codes (shared by every subcommand): 0 success / help, 1 runtime
// failure (unreadable or malformed input file, workload parse error),
// 2 usage error (unknown subcommand or flag value, missing positional).
//
// The subcommand table below is the single source of the usage strings;
// the docs CI job (tools/check_docs.py) fails when `san_tool help` drifts
// from the subcommand table documented in README.md.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "apps/community.hpp"
#include "core/parse.hpp"
#include "core/simd/simd.hpp"
#include "crawl/crawler.hpp"
#include "crawl/gplus_synth.hpp"
#include "graph/clustering.hpp"
#include "graph/metrics.hpp"
#include "model/generator.hpp"
#include "model/zhel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "san/live_replay.hpp"
#include "san/live_timeline.hpp"
#include "san/sharded_live_timeline.hpp"
#include "san/san_metrics.hpp"
#include "san/serialization.hpp"
#include "san/timeline.hpp"
#include "serve/genload.hpp"
#include "serve/query_engine.hpp"
#include "serve/server.hpp"
#include "stats/fit.hpp"

namespace {

using namespace san;

/// One row per subcommand: the synopsis is shared between the usage
/// message, `san_tool help`, and each per-subcommand help page, so the
/// three can never disagree.
struct SubcommandDoc {
  const char* name;
  const char* synopsis;
  const char* summary;  // one line, shown by `san_tool help`
  const char* details;  // flags + semantics, shown by `san_tool help NAME`
};

constexpr SubcommandDoc kSubcommands[] = {
    {"generate",
     "san_tool generate --kind model|zhel|gplus [--nodes N] [--seed S]"
     " -o FILE",
     "synthesize a SAN and write it in SANv1 text format",
     "Generates a Social-Attribute Network and saves it to FILE.\n"
     "\n"
     "  --kind model|zhel|gplus   generator family (default: model)\n"
     "        model  the paper's SAN evolution model (attribute-augmented\n"
     "               preferential attachment + triangle closing)\n"
     "        zhel   the Zheleva et al. baseline model\n"
     "        gplus  synthetic Google+ ground truth with daily crawl\n"
     "               timestamps (the bench substrate)\n"
     "  --nodes N                 social node count (default: 20000)\n"
     "  --seed S                  RNG seed (default: 42)\n"
     "  -o FILE                   output path, SANv1 text format (required)\n"},
    {"measure",
     "san_tool measure FILE [--day D]",
     "print structural metrics of a snapshot",
     "Loads the SANv1 file and prints node/link counts, reciprocity,\n"
     "densities, assortativity, clustering coefficients, and the best-fit\n"
     "outdegree model of the snapshot at day D.\n"
     "\n"
     "  --day D   snapshot time (default: the complete network)\n"},
    {"snapshots",
     "san_tool snapshots FILE [--step D]",
     "per-day growth table via the timeline delta sweep",
     "Replays the network's history as daily snapshots (the paper's 79\n"
     "crawls) through san::SanTimeline — index once, then advance each\n"
     "snapshot incrementally — and prints one growth row per day.\n"
     "\n"
     "  --step D   day stride between snapshots, > 0 (default: 1)\n"},
    {"crawl",
     "san_tool crawl FILE --day D [--private P] -o FILE",
     "simulate the paper's BFS crawl of a ground-truth SAN",
     "Crawls the ground-truth network as of day D the way the paper\n"
     "crawled Google+ (BFS from the seed set, private profiles hidden)\n"
     "and writes the crawled SAN to the output file.\n"
     "\n"
     "  --day D       crawl date (default: the complete network)\n"
     "  --private P   probability a profile is private, in [0, 1]\n"
     "                (default: 0.12)\n"
     "  -o FILE       output path (required)\n"},
    {"communities",
     "san_tool communities FILE [--attribute-weight W]",
     "attribute-aware community detection",
     "Runs label-propagation community detection over the complete\n"
     "network, optionally mixing shared-attribute affinity into the edge\n"
     "weights, and prints community count and modularity.\n"
     "\n"
     "  --attribute-weight W   weight of shared attributes relative to\n"
     "                         social links (default: 0)\n"},
    {"live",
     "san_tool live FILE --workload W [--start D] [--cache N] [--batch B]"
     " [--publish-every K] [--shards N] [--stats-json FILE] [--trace FILE]"
     " [--stats-every N]",
     "replay FILE as a live ingest stream while serving queries",
     "Treats the SANv1 file as a future event stream: events up to day D\n"
     "seed a frozen history, the rest ingest at runtime through\n"
     "san::LiveTimeline as the workload's `ingest` lines advance the tip.\n"
     "Each ingested batch delta-appends into the private tip snapshot\n"
     "(PR 4 slack machinery) and every K batches an immutable epoch is\n"
     "published by an atomic snapshot swap — queries never block on\n"
     "ingest. Query lines run through the same engine as `serve`: numeric\n"
     "times at or before D resolve exactly against the frozen history,\n"
     "times past D and the `now` token resolve against the latest\n"
     "published epoch. One result line per query on stdout; QPS, ingest\n"
     "rate, epoch count, and cache stats on stderr.\n"
     "\n"
     "  --workload W        workload file (required): `serve` grammar plus\n"
     "                      `ingest <tip>` lines, tips strictly increasing\n"
     "  --start D           seed horizon day, >= 0 (default: 0)\n"
     "  --cache N           frozen snapshots kept resident (default: 8)\n"
     "  --batch B           queries admitted per batch (default: 1024)\n"
     "  --publish-every K   batches per published epoch, >= 1 (default: 1)\n"
     "  --shards N          ingest shards, >= 1 (default: 1): N > 1 routes\n"
     "                      batches through san::ShardedLiveTimeline, which\n"
     "                      partitions the frontier by source-node-id range\n"
     "                      and stitches per-shard snapshots into each\n"
     "                      published epoch\n"
     "  --stats-json FILE   write a flat JSON telemetry snapshot on exit:\n"
     "                      per-query-type latency percentiles, cache\n"
     "                      counters, ingest phase timings (absorb /\n"
     "                      advance / publish or apply_shard / stitch),\n"
     "                      ingest-to-publish latency, and epoch cadence\n"
     "                      (enables latency capture)\n"
     "  --trace FILE        write a Chrome trace-event JSON of the\n"
     "                      recorded spans on exit; load it in Perfetto\n"
     "                      or chrome://tracing\n"
     "  --stats-every N     print a telemetry line to stderr every N\n"
     "                      ingest batches, N > 0 (enables latency\n"
     "                      capture)\n"
     "\n"
     "Telemetry is observation-only: stdout result lines are\n"
     "byte-identical with and without these flags, at any SAN_THREADS\n"
     "and SAN_SIMD.\n"
     "\n"
     "A link whose endpoint id has not been created yet is held and\n"
     "activates when the endpoint appears (the paper's links that predate\n"
     "a crawl's view of their endpoints); every published epoch is\n"
     "bit-identical to rebuilding a SanTimeline from the ingested log\n"
     "prefix at the same tip.\n"},
    {"serve",
     "san_tool serve FILE --workload W [--cache N] [--batch B]"
     " [--stats-json FILE] [--trace FILE] [--stats-every N]",
     "serve a query workload over cached timeline snapshots",
     "Loads the SAN, indexes it into a SanTimeline, and serves the\n"
     "workload through serve::QueryEngine: admission-ordered batches,\n"
     "snapshots resolved through an LRU serve::SnapshotCache (distinct\n"
     "cold days materialize concurrently), queries executed data-parallel\n"
     "(SAN_THREADS lanes). One result line per query on stdout; QPS and\n"
     "cache hit/miss/eviction stats on stderr.\n"
     "\n"
     "  --workload W   workload file, one query per line (required)\n"
     "  --cache N      snapshots kept resident, >= 1 (default: 8)\n"
     "  --batch B      queries admitted per batch, >= 1 (default: 1024)\n"
     "  --stats-json FILE   write a flat JSON telemetry snapshot on exit:\n"
     "                      per-query-type p50/p90/p99/p999 service\n"
     "                      latency, batch admission-to-completion\n"
     "                      latency, cache hit/miss/coalesce/eviction\n"
     "                      counters, and materialize-duration\n"
     "                      percentiles (enables latency capture)\n"
     "  --trace FILE        write a Chrome trace-event JSON of the\n"
     "                      recorded spans on exit; load it in Perfetto\n"
     "                      or chrome://tracing\n"
     "  --stats-every N     print a telemetry line to stderr every N\n"
     "                      batches, N > 0 (enables latency capture)\n"
     "\n"
     "Telemetry is observation-only: stdout result lines are\n"
     "byte-identical with and without these flags, at any SAN_THREADS\n"
     "and SAN_SIMD.\n"
     "\n"
     "Workload grammar (serve/query.hpp): blank lines and lines starting\n"
     "with '#' are skipped; every other line is one of\n"
     "\n"
     "  linkrec   <time> <user> <k>   top-k friend recommendation\n"
     "  attrs     <time> <user> <k>   top-k attribute inference\n"
     "  ego       <time> <user>       ego degree/reciprocity/2-hop metrics\n"
     "  recip     <time> <src> <dst>  will src -> dst reciprocate?\n"
     "  sybil     <time> <user>       accepted-Sybil bound for user's\n"
     "                                region (cached degree-bounded\n"
     "                                topology)\n"
     "  community <time> <user>       user's label + community size\n"
     "                                (cached label-propagation run)\n"
     "  influence <time> <k> [s...]   frontier-bounded greedy influence\n"
     "                                seeds (optional given seed list)\n"
     "\n"
     "<time> is a day on the snapshot grid (bit-exact cache key; NaN is\n"
     "rejected) or the token `now` (the complete network here; the latest\n"
     "published epoch under `live`), ids are the dense SANv1 node ids, and\n"
     "<k> must be > 0. Malformed lines fail the load with their line\n"
     "number and the offending token (exit 1).\n"},
    {"listen",
     "san_tool listen FILE [--port P] [--start D] [--cache N] [--batch B]"
     " [--max-delay-us U] [--publish-every K] [--shards N]"
     " [--stats-json FILE] [--trace FILE]",
     "serve the query grammar over a loopback TCP socket",
     "Serves the `serve`/`live` workload grammar over a newline-delimited\n"
     "protocol on a 127.0.0.1 TCP listener (serve::Server): one query or\n"
     "`ingest` line in, one result line out, rendered by the same code as\n"
     "file replay — piping a `genload` scenario over the socket yields\n"
     "response lines byte-identical to `serve`/`live` on the same file.\n"
     "Malformed lines come back as `ERR workload line N: <message>` with\n"
     "the same per-connection line numbers and messages file replay\n"
     "prints, instead of an exit. The first stderr line is\n"
     "`listening on 127.0.0.1:<port>` once the socket is ready.\n"
     "\n"
     "Queries from all connections are admission-batched into\n"
     "QueryEngine::run_batch: a batch flushes when it reaches --batch\n"
     "queries or --max-delay-us after its first admission, whichever\n"
     "comes first. Slow consumers get bounded outbound buffers and are\n"
     "disconnected (counted) rather than wedging the loop. SIGTERM or\n"
     "SIGINT drains gracefully: stop accepting, serve every line already\n"
     "received, flush responses, print final stats — no accepted query\n"
     "is dropped.\n"
     "\n"
     "  --port P            listen port; 0 = kernel-assigned ephemeral\n"
     "                      port, printed on stderr (default: 0)\n"
     "  --start D           live binding: seed the frozen history up to\n"
     "                      day D and route `ingest` lines through\n"
     "                      san::LiveTimeline exactly like `live --start\n"
     "                      D`. Without it the complete network serves\n"
     "                      statically and ingest lines are errors.\n"
     "  --cache N           frozen snapshots kept resident (default: 8)\n"
     "  --batch B           admission batch flush size (default: 1024)\n"
     "  --max-delay-us U    admission batch flush deadline in\n"
     "                      microseconds; 0 = flush every loop pass\n"
     "                      (default: 1000)\n"
     "  --publish-every K   live: batches per published epoch (default: 1)\n"
     "  --shards N          live: ingest shards, >= 1 (default: 1)\n"
     "  --max-line-bytes N  protocol line cap; longer lines get an ERR\n"
     "                      and a disconnect (default: 65536)\n"
     "  --max-outbound-bytes N  per-connection outbound buffer cap before\n"
     "                      a slow-consumer disconnect (default: 1048576)\n"
     "  --drain-timeout-ms N  bound on the final drain write-out\n"
     "                      (default: 5000)\n"
     "  --sndbuf BYTES      SO_SNDBUF for accepted sockets, 0 = kernel\n"
     "                      default (tests shrink it to force\n"
     "                      backpressure)\n"
     "  --stats-json FILE   write the flat JSON telemetry snapshot on\n"
     "                      exit — cache/serve keys as in `serve` plus\n"
     "                      the server.* schema: accepted, closed,\n"
     "                      slow_disconnects, oversize_disconnects,\n"
     "                      queries, ingests, parse_errors, batches,\n"
     "                      backpressure, dropped_responses,\n"
     "                      open_connections, and turnaround /\n"
     "                      batch_flush latency percentiles (enables\n"
     "                      latency capture)\n"
     "  --trace FILE        write a Chrome trace-event JSON on exit\n"},
    {"genload",
     "san_tool genload [--queries N] [--nodes N] [--seed S] [--zipf Z]"
     " [--mix SPEC] [--arrival MODEL] [--horizon D] [--now F] [--ingest F]"
     " -o FILE",
     "generate a reproducible scenario workload file",
     "Generates a seeded scenario workload in the `serve`/`live` grammar:\n"
     "Zipf-skewed user popularity over a shuffled id space, arrival times\n"
     "from a diurnal, bursty, or uniform process mapped onto the\n"
     "snapshot-day grid, a configurable query-kind mix over all seven\n"
     "kinds, and an optional read/ingest mix. Equal seed + flags produce\n"
     "a byte-identical file; with --ingest 0 the file is plain `serve`\n"
     "grammar, otherwise it gains strictly-advancing `ingest <tip>` lines\n"
     "for `live`.\n"
     "\n"
     "  --queries N        steps to emit (default: 1000)\n"
     "  --nodes N          user id space [0, N), > 0 (default: 20000)\n"
     "  --seed S           RNG seed (default: 42)\n"
     "  --zipf Z           popularity skew exponent, >= 0; 0 = uniform\n"
     "                     (default: 0.8)\n"
     "  --mix SPEC         query-kind mix `kind:weight,...` over\n"
     "                     linkrec/attrs/ego/recip/sybil/community/\n"
     "                     influence; omitted kinds get weight 0\n"
     "                     (default: 40:15:15:10:5:10:5 in that order)\n"
     "  --arrival MODEL    uniform|diurnal|bursty (default: diurnal)\n"
     "  --horizon D        arrival window [0, D] days, > 0 (default: 98)\n"
     "  --now F            fraction of queries addressing the live tip\n"
     "                     via the `now` token, in [0, 1] (default: 0.1)\n"
     "  --ingest F         fraction of steps emitted as `ingest` lines,\n"
     "                     in [0, 1] (default: 0)\n"
     "  -o FILE            output workload path (required)\n"},
};

void print_synopses(std::FILE* stream) {
  std::fprintf(stream, "usage:\n  san_tool help [COMMAND]\n");
  for (const auto& doc : kSubcommands) {
    std::fprintf(stream, "  %s\n", doc.synopsis);
  }
}

int usage() {
  print_synopses(stderr);
  std::fprintf(stderr,
               "exit codes: 0 success, 1 runtime failure, 2 usage error\n");
  return 2;
}

const SubcommandDoc* find_subcommand(const std::string& name) {
  for (const auto& doc : kSubcommands) {
    if (name == doc.name) return &doc;
  }
  return nullptr;
}

int complain(const char* format, const char* value);

int cmd_help(const std::string& topic) {
  if (topic.empty()) {
    std::printf("san_tool — Social-Attribute Network toolkit"
                " (docs: README.md)\n\n");
    print_synopses(stdout);
    std::printf("\nsubcommands:\n");
    for (const auto& doc : kSubcommands) {
      std::printf("  %-12s %s\n", doc.name, doc.summary);
    }
    std::printf(
        "\nFILE arguments use the SANv1 text format"
        " (src/san/serialization.hpp).\n"
        "SAN_THREADS=<n> sets the parallel lane count; results are\n"
        "byte-identical at any thread count.\n"
        "SAN_SIMD=scalar|sse|avx2 forces the kernel dispatch level\n"
        "(byte-identical at every level; unknown values are a usage\n"
        "error).\n");
    std::printf("kernel dispatch: %s active, %s detected\n",
                core::simd::level_name(core::simd::active_level()),
                core::simd::level_name(core::simd::detected_level()));
    std::printf("exit codes: 0 success, 1 runtime failure, 2 usage error\n");
    return 0;
  }
  const SubcommandDoc* doc = find_subcommand(topic);
  if (doc == nullptr) return complain("unknown command '%s'", topic.c_str());
  std::printf("usage: %s\n\n%s\n%s", doc->synopsis, doc->details,
              "exit codes: 0 success, 1 runtime failure, 2 usage error\n");
  return 0;
}

/// True when --help/-h appears anywhere after the subcommand.
bool wants_help(int argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return true;
    }
  }
  return false;
}

int complain(const char* format, const char* value) {
  std::fprintf(stderr, "error: ");
  std::fprintf(stderr, format, value);
  std::fprintf(stderr, "\n");
  return usage();
}

/// Minimal flag parser: returns the value following `flag`, or fallback.
const char* flag_value(int argc, char** argv, const char* flag,
                       const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

/// Strict numeric parsing (core/parse.hpp): the whole token must convert,
/// no atof/atol-style silent zero on garbage.
bool parse_double(const char* text, double& out) {
  return core::parse_double_strict(text, out);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  return core::parse_u64_strict(text, out);
}

bool parse_size(const char* text, std::size_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value) ||
      value > std::numeric_limits<std::size_t>::max()) {
    return false;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

/// With SIGPIPE ignored a dead stdout (closed pipe, full disk) surfaces
/// as a buffered-stdio error instead of killing the process; flush after
/// every result batch so truncation fails the run instead of looking
/// like success.
bool flush_stdout() {
  return std::fflush(stdout) == 0 && std::ferror(stdout) == 0;
}

int broken_stdout() {
  std::fprintf(stderr,
               "error: short write to stdout (closed pipe or full disk)\n");
  return 1;
}

int cmd_generate(int argc, char** argv) {
  const std::string kind = flag_value(argc, argv, "--kind", "model");
  std::size_t nodes = 0;
  std::uint64_t seed = 0;
  const char* nodes_text = flag_value(argc, argv, "--nodes", "20000");
  const char* seed_text = flag_value(argc, argv, "--seed", "42");
  if (!parse_size(nodes_text, nodes)) {
    return complain("invalid --nodes '%s'", nodes_text);
  }
  if (!parse_u64(seed_text, seed)) {
    return complain("invalid --seed '%s'", seed_text);
  }
  const char* out = flag_value(argc, argv, "-o", nullptr);
  if (out == nullptr) return complain("%s requires -o FILE", "generate");

  SocialAttributeNetwork net;
  if (kind == "model") {
    model::GeneratorParams params;
    params.social_node_count = nodes;
    params.seed = seed;
    net = model::generate_san(params);
  } else if (kind == "zhel") {
    model::ZhelParams params;
    params.social_node_count = nodes;
    params.seed = seed;
    net = model::generate_zhel(params);
  } else if (kind == "gplus") {
    crawl::SyntheticGplusParams params;
    params.total_social_nodes = nodes;
    params.seed = seed;
    net = crawl::generate_synthetic_gplus(params);
  } else {
    return complain("unknown --kind '%s'", kind.c_str());
  }
  save_san(net, std::string(out));
  std::printf("wrote %s: %zu social nodes, %llu social links, %zu attributes,"
              " %llu attribute links\n",
              out, net.social_node_count(),
              static_cast<unsigned long long>(net.social_link_count()),
              net.attribute_node_count(),
              static_cast<unsigned long long>(net.attribute_link_count()));
  return 0;
}

int cmd_measure(int argc, char** argv, const char* path) {
  double day = 0.0;
  const char* day_text = flag_value(argc, argv, "--day", "1e300");
  if (!parse_double(day_text, day)) {
    return complain("invalid --day '%s'", day_text);
  }
  const auto net = load_san(path);
  const auto snap = day >= 1e300 ? snapshot_full(net) : snapshot_at(net, day);

  std::printf("social nodes:        %zu\n", snap.social_node_count());
  std::printf("attribute nodes:     %zu (populated %zu)\n",
              snap.attribute_node_count(), snap.populated_attribute_count());
  std::printf("social links:        %llu\n",
              static_cast<unsigned long long>(snap.social_link_count()));
  std::printf("attribute links:     %llu\n",
              static_cast<unsigned long long>(snap.attribute_link_count));
  std::printf("reciprocity:         %.4f\n", graph::reciprocity(snap.social));
  std::printf("social density:      %.3f\n", graph::density(snap.social));
  std::printf("attribute density:   %.3f\n", attribute_density(snap));
  std::printf("assortativity:       %+.4f\n",
              graph::assortativity(snap.social));

  graph::ClusteringOptions cc;
  cc.epsilon = 0.01;
  std::printf("social clustering:   %.4f\n",
              graph::approx_average_clustering(snap.social, cc));
  std::printf("attribute clustering:%.4f\n",
              average_attribute_clustering(snap, cc));

  if (snap.social_link_count() > 100) {
    const auto out_sel =
        stats::select_degree_model(graph::out_degree_histogram(snap.social), 1);
    std::printf("outdegree best fit:  %s (lognormal mu=%.2f sigma=%.2f)\n",
                to_string(out_sel.best).c_str(), out_sel.lognormal.mu,
                out_sel.lognormal.sigma);
  }
  return 0;
}

int cmd_snapshots(int argc, char** argv, const char* path) {
  double step = 0.0;
  const char* step_text = flag_value(argc, argv, "--step", "1");
  if (!parse_double(step_text, step) || step <= 0.0) {
    return complain("invalid --step '%s' (need a number > 0)", step_text);
  }
  const auto net = load_san(path);
  const SanTimeline timeline(net);

  // Integer-index grid: repeated `day += step` accumulates rounding error
  // and can emit two nearly-identical final snapshots.
  std::vector<double> days;
  for (std::size_t i = 1;; ++i) {
    const double day = step * static_cast<double>(i);
    if (day >= timeline.max_time()) {
      days.push_back(timeline.max_time());
      break;
    }
    days.push_back(day);
  }
  std::printf("%8s %12s %12s %14s %12s %12s %10s\n", "day", "nodes", "links",
              "attr-nodes", "attr-links", "density", "attr-dens");
  timeline.sweep(days, [](double day, const SanSnapshot& snap) {
    std::printf("%8.2f %12zu %12llu %14zu %12llu %12.4f %10.3f\n", day,
                snap.social_node_count(),
                static_cast<unsigned long long>(snap.social_link_count()),
                snap.attribute_node_count(),
                static_cast<unsigned long long>(snap.attribute_link_count),
                graph::density(snap.social), attribute_density(snap));
  });
  std::printf("(%zu snapshots; indexed %llu social + %llu attribute links"
              " once, delta-advanced per day)\n",
              days.size(),
              static_cast<unsigned long long>(timeline.social_link_total()),
              static_cast<unsigned long long>(timeline.attribute_link_total()));
  return 0;
}

int cmd_crawl(int argc, char** argv, const char* path) {
  double day = 0.0, privacy = 0.0;
  const char* day_text = flag_value(argc, argv, "--day", "1e300");
  const char* privacy_text = flag_value(argc, argv, "--private", "0.12");
  if (!parse_double(day_text, day)) {
    return complain("invalid --day '%s'", day_text);
  }
  if (!parse_double(privacy_text, privacy) || privacy < 0.0 ||
      privacy > 1.0) {
    return complain("invalid --private '%s' (need a probability)",
                    privacy_text);
  }
  const char* out = flag_value(argc, argv, "-o", nullptr);
  if (out == nullptr) return complain("%s requires -o FILE", "crawl");

  const auto truth = load_san(path);
  crawl::CrawlerOptions options;
  options.private_profile_prob = privacy;
  const auto result = crawl::crawl_at(
      truth, day >= 1e300 ? std::numeric_limits<double>::max() : day, options);
  save_san(result.network, std::string(out));
  std::printf("crawled %zu/%zu nodes (%.1f%%), link coverage %.1f%% -> %s\n",
              result.network.social_node_count(), truth.social_node_count(),
              100.0 * result.node_coverage, 100.0 * result.link_coverage, out);
  return 0;
}

int cmd_communities(int argc, char** argv, const char* path) {
  double w = 0.0;
  const char* weight_text = flag_value(argc, argv, "--attribute-weight", "0");
  if (!parse_double(weight_text, w)) {
    return complain("invalid --attribute-weight '%s'", weight_text);
  }
  const auto net = load_san(path);
  const auto snap = snapshot_full(net);
  apps::CommunityOptions options;
  options.attribute_weight = w;
  const auto result = apps::detect_communities(snap, options);
  std::printf("communities: %zu (after %d iterations), modularity %.4f\n",
              result.community_count, result.iterations,
              apps::modularity(snap, result.label));
  return 0;
}

/// Telemetry flags shared by `serve` and `live`. Parsing also flips the
/// obs capture switches, so instrumented sites start reading the clock
/// only when a sink asked for the data.
struct TelemetryOptions {
  const char* stats_json = nullptr;
  const char* trace = nullptr;
  std::size_t stats_every = 0;  // 0 = no periodic stderr line
};

/// Parse and validate the telemetry flags. Returns -1 to continue, or an
/// exit code. Output paths are probed writable up front (exit 2) — a long
/// session must not discover a bad sink path at export time.
int parse_telemetry(int argc, char** argv, TelemetryOptions& out) {
  out.stats_json = flag_value(argc, argv, "--stats-json", nullptr);
  out.trace = flag_value(argc, argv, "--trace", nullptr);
  const char* every_text = flag_value(argc, argv, "--stats-every", nullptr);
  if (every_text != nullptr &&
      (!parse_size(every_text, out.stats_every) || out.stats_every == 0)) {
    return complain("invalid --stats-every '%s' (need an integer > 0)",
                    every_text);
  }
  for (const char* sink : {out.stats_json, out.trace}) {
    if (sink == nullptr) continue;
    std::FILE* probe = std::fopen(sink, "w");
    if (probe == nullptr) return complain("unwritable output path '%s'", sink);
    std::fclose(probe);
  }
  if (out.stats_json != nullptr || out.stats_every != 0) {
    obs::set_timing_enabled(true);
  }
  if (out.trace != nullptr) obs::set_tracing_enabled(true);
  return -1;
}

/// One-shot kernel-dispatch info (numeric levels; the names stay on the
/// human-readable stderr line).
void register_simd_metrics(obs::Registry& registry) {
  registry.attach_fn("simd.active_level", [] {
    return static_cast<double>(core::simd::active_level());
  });
  registry.attach_fn("simd.detected_level", [] {
    return static_cast<double>(core::simd::detected_level());
  });
}

/// Write the requested sinks; 1 (runtime failure) when a probed-writable
/// path stopped being writable mid-session.
int export_telemetry(const obs::Registry& registry,
                     const TelemetryOptions& telemetry) {
  int rc = 0;
  if (telemetry.stats_json != nullptr &&
      !registry.write_json(telemetry.stats_json)) {
    rc = 1;
  }
  if (telemetry.trace != nullptr && !obs::write_chrome_trace(telemetry.trace)) {
    rc = 1;
  }
  return rc;
}

double snapshot_value(
    const std::vector<std::pair<std::string, double>>& snapshot,
    const char* name) {
  for (const auto& [key, value] : snapshot) {
    if (key == name) return value;
  }
  return 0.0;
}

int cmd_serve(int argc, char** argv, const char* path) {
  const char* workload_path = flag_value(argc, argv, "--workload", nullptr);
  if (workload_path == nullptr) {
    return complain("%s requires --workload FILE", "serve");
  }
  std::size_t cache_size = 0, batch_size = 0;
  const char* cache_text = flag_value(argc, argv, "--cache", "8");
  const char* batch_text = flag_value(argc, argv, "--batch", "1024");
  if (!parse_size(cache_text, cache_size) || cache_size == 0) {
    return complain("invalid --cache '%s' (need an integer > 0)", cache_text);
  }
  if (!parse_size(batch_text, batch_size) || batch_size == 0) {
    return complain("invalid --batch '%s' (need an integer > 0)", batch_text);
  }
  TelemetryOptions telemetry;
  if (const int rc = parse_telemetry(argc, argv, telemetry); rc >= 0) {
    return rc;
  }

  const auto net = load_san(path);
  const SanTimeline timeline(net);
  serve::SnapshotCache cache(timeline, cache_size);
  serve::QueryEngine engine(cache);
  const auto queries = serve::load_workload(workload_path);

  obs::Registry registry;
  cache.register_metrics(registry, "cache");
  engine.register_metrics(registry, "serve");
  register_simd_metrics(registry);

  const auto start = std::chrono::steady_clock::now();
  std::size_t served = 0, batches = 0;
  while (served < queries.size()) {
    const std::size_t count = std::min(batch_size, queries.size() - served);
    const auto results = engine.run_batch(
        std::span<const serve::Query>(queries.data() + served, count));
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("%s\n", results[i].to_line(queries[served + i]).c_str());
    }
    if (!flush_stdout()) return broken_stdout();
    served += count;
    ++batches;
    if (telemetry.stats_every != 0 && batches % telemetry.stats_every == 0) {
      const auto snap = registry.snapshot();
      std::fprintf(stderr,
                   "telemetry[batch %zu]: served %zu queries; batch p99"
                   " %.1f us; cache %.0f hits, %.0f misses\n",
                   batches, served, snapshot_value(snap, "serve.batch.p99_us"),
                   snapshot_value(snap, "cache.hits"),
                   snapshot_value(snap, "cache.misses"));
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto stats = cache.stats();
  std::fprintf(stderr,
               "served %zu queries in %.3f s (%.0f queries/s); snapshot cache:"
               " %llu hits, %llu misses, %llu evictions; kernels: %s\n",
               served, seconds, seconds > 0.0 ? served / seconds : 0.0,
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses),
               static_cast<unsigned long long>(stats.evictions),
               core::simd::level_name(core::simd::active_level()));
  return export_telemetry(registry, telemetry);
}

// The live serve/ingest loop, shared by the single-writer and sharded
// paths (LiveTimeline and ShardedLiveTimeline expose the same ingest /
// publish / tip_time / stats surface).
int run_live_session(auto& live, LiveReplay& replay, const auto& steps,
                     serve::SnapshotCache& cache, std::size_t batch_size,
                     const TelemetryOptions& telemetry) {
  serve::QueryEngine engine(cache);

  obs::Registry registry;
  cache.register_metrics(registry, "cache");
  live.register_metrics(registry, "live");
  engine.register_metrics(registry, "serve");
  register_simd_metrics(registry);

  std::size_t served = 0, ingested_events = 0, ingest_steps = 0;
  double query_seconds = 0.0, ingest_seconds = 0.0;
  std::vector<serve::Query> queued;
  const auto flush_queries = [&]() -> bool {
    std::size_t done = 0;
    const auto begin = std::chrono::steady_clock::now();
    while (done < queued.size()) {
      const std::size_t count = std::min(batch_size, queued.size() - done);
      const auto results = engine.run_batch(
          std::span<const serve::Query>(queued.data() + done, count));
      for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("%s\n", results[i].to_line(queued[done + i]).c_str());
      }
      done += count;
    }
    query_seconds += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - begin)
                         .count();
    served += queued.size();
    queued.clear();
    return flush_stdout();
  };

  for (const auto& step : steps) {
    if (!step.ingest) {
      queued.push_back(step.query);
      continue;
    }
    if (!flush_queries()) return broken_stdout();
    IngestBatch batch = replay.batch_until(step.tip);
    ingested_events += batch.social_nodes.size() +
                       batch.social_links.size() +
                       batch.attribute_links.size();
    const auto begin = std::chrono::steady_clock::now();
    live.ingest(batch);
    ingest_seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - begin)
                          .count();
    ++ingest_steps;
    if (telemetry.stats_every != 0 &&
        ingest_steps % telemetry.stats_every == 0) {
      const auto snap = registry.snapshot();
      std::fprintf(stderr,
                   "telemetry[batch %zu]: tip %.2f, %.0f epochs;"
                   " ingest_to_publish p99 %.1f us; cache %.0f hits,"
                   " %.0f misses\n",
                   ingest_steps, live.tip_time(),
                   snapshot_value(snap, "live.epochs"),
                   snapshot_value(snap, "live.ingest_to_publish.p99_us"),
                   snapshot_value(snap, "cache.hits"),
                   snapshot_value(snap, "cache.misses"));
    }
  }
  if (!flush_queries()) return broken_stdout();
  live.publish();

  const auto live_stats = live.stats();
  const auto cache_stats = cache.stats();
  std::fprintf(
      stderr,
      "served %zu queries in %.3f s (%.0f queries/s); ingested %zu events"
      " over %zu batches in %.3f s (%.0f events/s)\n",
      served, query_seconds,
      query_seconds > 0.0 ? served / query_seconds : 0.0, ingested_events,
      ingest_steps, ingest_seconds,
      ingest_seconds > 0.0 ? ingested_events / ingest_seconds : 0.0);
  std::fprintf(
      stderr,
      "live tip %.2f after %llu epochs (%llu activated, %llu pending,"
      " %llu late batches); cache: %llu hits, %llu misses, %llu live hits;"
      " kernels: %s\n",
      live.tip_time(), static_cast<unsigned long long>(live_stats.epochs),
      static_cast<unsigned long long>(live_stats.activated_links),
      static_cast<unsigned long long>(live_stats.pending_links),
      static_cast<unsigned long long>(live_stats.late_batches),
      static_cast<unsigned long long>(cache_stats.hits),
      static_cast<unsigned long long>(cache_stats.misses),
      static_cast<unsigned long long>(cache_stats.live_hits),
      core::simd::level_name(core::simd::active_level()));
  return export_telemetry(registry, telemetry);
}

int cmd_live(int argc, char** argv, const char* path) {
  const char* workload_path = flag_value(argc, argv, "--workload", nullptr);
  if (workload_path == nullptr) {
    return complain("%s requires --workload FILE", "live");
  }
  std::size_t cache_size = 0, batch_size = 0, publish_every = 0, shards = 0;
  double start = 0.0;
  const char* cache_text = flag_value(argc, argv, "--cache", "8");
  const char* batch_text = flag_value(argc, argv, "--batch", "1024");
  const char* publish_text = flag_value(argc, argv, "--publish-every", "1");
  const char* start_text = flag_value(argc, argv, "--start", "0");
  const char* shards_text = flag_value(argc, argv, "--shards", "1");
  if (!parse_size(cache_text, cache_size) || cache_size == 0) {
    return complain("invalid --cache '%s' (need an integer > 0)", cache_text);
  }
  if (!parse_size(batch_text, batch_size) || batch_size == 0) {
    return complain("invalid --batch '%s' (need an integer > 0)", batch_text);
  }
  if (!parse_size(publish_text, publish_every) || publish_every == 0) {
    return complain("invalid --publish-every '%s' (need an integer > 0)",
                    publish_text);
  }
  if (!parse_double(start_text, start) || start < 0.0) {
    return complain("invalid --start '%s' (need a day >= 0)", start_text);
  }
  if (!parse_size(shards_text, shards) || shards == 0) {
    return complain("invalid --shards '%s' (need an integer > 0)",
                    shards_text);
  }
  TelemetryOptions telemetry;
  if (const int rc = parse_telemetry(argc, argv, telemetry); rc >= 0) {
    return rc;
  }

  const auto net = load_san(path);
  const auto steps = serve::load_live_workload(workload_path);

  // The seed/future split and per-tip batching live in san::LiveReplay —
  // the exact driver the live oracle test and bench_live_ingest gate.
  LiveReplay replay(net, start);
  const SanTimeline frozen(replay.seed);
  serve::SnapshotCache cache(frozen, cache_size);
  if (shards > 1) {
    san::ShardedLiveTimelineOptions live_options;
    live_options.shards = shards;
    live_options.batches_per_epoch = publish_every;
    live_options.initial_tip = start;  // attr catalog times may lie ahead
    san::ShardedLiveTimeline live(replay.seed, live_options);
    cache.bind_live(live, start);
    return run_live_session(live, replay, steps, cache, batch_size, telemetry);
  }
  LiveTimelineOptions live_options;
  live_options.batches_per_epoch = publish_every;
  live_options.initial_tip = start;  // attr catalog times may lie ahead
  LiveTimeline live(replay.seed, live_options);
  cache.bind_live(live, start);
  return run_live_session(live, replay, steps, cache, batch_size, telemetry);
}

/// The running server, for the SIGTERM/SIGINT handler. request_drain()
/// is async-signal-safe (one eventfd write), so the handler body is too.
serve::Server* g_server = nullptr;

/// Shared tail of `listen`: install the drain signal handlers, announce
/// the bound port (the first stderr line, so harnesses can scrape it),
/// run the event loop until a drain completes, print final stats.
int run_server(serve::Server& server, obs::Registry& registry,
               const TelemetryOptions& telemetry) {
  g_server = &server;
  struct sigaction action {};
  action.sa_handler = [](int) {
    if (g_server != nullptr) g_server->request_drain();
  };
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::fprintf(stderr, "listening on 127.0.0.1:%u\n",
               static_cast<unsigned>(server.port()));
  std::fflush(stderr);
  server.run();
  g_server = nullptr;

  const auto stats = server.stats();
  std::fprintf(
      stderr,
      "drained: %llu connections (%llu slow, %llu oversize), %llu queries"
      " in %llu batches, %llu ingests, %llu parse errors,"
      " %llu backpressure stalls, %llu dropped responses; kernels: %s\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.slow_disconnects),
      static_cast<unsigned long long>(stats.oversize_disconnects),
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.ingests),
      static_cast<unsigned long long>(stats.parse_errors),
      static_cast<unsigned long long>(stats.backpressure),
      static_cast<unsigned long long>(stats.dropped_responses),
      core::simd::level_name(core::simd::active_level()));
  return export_telemetry(registry, telemetry);
}

// The live-bound server session, shared by the single-writer and sharded
// ingest paths the same way run_live_session is.
int run_listen_live(auto& live, LiveReplay& replay,
                    serve::SnapshotCache& cache,
                    const serve::ServerOptions& options,
                    const TelemetryOptions& telemetry) {
  serve::QueryEngine engine(cache);
  obs::Registry registry;
  cache.register_metrics(registry, "cache");
  live.register_metrics(registry, "live");
  engine.register_metrics(registry, "serve");
  register_simd_metrics(registry);

  serve::Server server(engine, options);
  server.register_metrics(registry, "server");
  server.set_ingest_handler([&](double tip, std::string& error) {
    // Same order as file replay: the server flushed pending queries
    // before calling us, so this batch lands between the same neighbors.
    try {
      IngestBatch batch = replay.batch_until(tip);
      live.ingest(batch);
      return true;
    } catch (const std::exception& e) {
      // A bad tip (e.g. not strictly advancing) rejects the line, and
      // only the line: validate-before-mutate keeps the timeline usable.
      error = e.what();
      return false;
    }
  });
  return run_server(server, registry, telemetry);
}

int cmd_listen(int argc, char** argv, const char* path) {
  std::size_t cache_size = 0, batch_size = 0, publish_every = 0, shards = 0;
  std::size_t max_line = 0, max_outbound = 0;
  std::uint64_t port = 0, max_delay_us = 0, drain_timeout_ms = 0, sndbuf = 0;
  const char* port_text = flag_value(argc, argv, "--port", "0");
  const char* cache_text = flag_value(argc, argv, "--cache", "8");
  const char* batch_text = flag_value(argc, argv, "--batch", "1024");
  const char* delay_text = flag_value(argc, argv, "--max-delay-us", "1000");
  const char* publish_text = flag_value(argc, argv, "--publish-every", "1");
  const char* shards_text = flag_value(argc, argv, "--shards", "1");
  const char* start_text = flag_value(argc, argv, "--start", nullptr);
  const char* line_text = flag_value(argc, argv, "--max-line-bytes", "65536");
  const char* outbound_text =
      flag_value(argc, argv, "--max-outbound-bytes", "1048576");
  const char* drain_text =
      flag_value(argc, argv, "--drain-timeout-ms", "5000");
  const char* sndbuf_text = flag_value(argc, argv, "--sndbuf", "0");
  if (!parse_u64(port_text, port) || port > 65535) {
    return complain("invalid --port '%s' (need 0..65535)", port_text);
  }
  if (!parse_size(cache_text, cache_size) || cache_size == 0) {
    return complain("invalid --cache '%s' (need an integer > 0)", cache_text);
  }
  if (!parse_size(batch_text, batch_size) || batch_size == 0) {
    return complain("invalid --batch '%s' (need an integer > 0)", batch_text);
  }
  if (!parse_u64(delay_text, max_delay_us)) {
    return complain("invalid --max-delay-us '%s'", delay_text);
  }
  if (!parse_size(publish_text, publish_every) || publish_every == 0) {
    return complain("invalid --publish-every '%s' (need an integer > 0)",
                    publish_text);
  }
  if (!parse_size(shards_text, shards) || shards == 0) {
    return complain("invalid --shards '%s' (need an integer > 0)",
                    shards_text);
  }
  if (!parse_size(line_text, max_line) || max_line == 0) {
    return complain("invalid --max-line-bytes '%s' (need an integer > 0)",
                    line_text);
  }
  if (!parse_size(outbound_text, max_outbound) || max_outbound == 0) {
    return complain("invalid --max-outbound-bytes '%s' (need an integer"
                    " > 0)",
                    outbound_text);
  }
  if (!parse_u64(drain_text, drain_timeout_ms)) {
    return complain("invalid --drain-timeout-ms '%s'", drain_text);
  }
  if (!parse_u64(sndbuf_text, sndbuf) || sndbuf > 0x7fffffffULL) {
    return complain("invalid --sndbuf '%s'", sndbuf_text);
  }
  double start = 0.0;
  if (start_text != nullptr && (!parse_double(start_text, start) ||
                                start < 0.0)) {
    return complain("invalid --start '%s' (need a day >= 0)", start_text);
  }
  TelemetryOptions telemetry;
  if (const int rc = parse_telemetry(argc, argv, telemetry); rc >= 0) {
    return rc;
  }

  serve::ServerOptions options;
  options.port = static_cast<std::uint16_t>(port);
  options.batch_size = batch_size;
  options.max_delay_us = max_delay_us;
  options.max_line_bytes = max_line;
  options.max_outbound_bytes = max_outbound;
  options.drain_timeout_ms = drain_timeout_ms;
  options.sndbuf_bytes = static_cast<int>(sndbuf);

  const auto net = load_san(path);
  if (start_text == nullptr) {
    // Static binding: the complete network, exactly `serve`'s engine
    // setup — the socket response stream is byte-identical to it.
    const SanTimeline timeline(net);
    serve::SnapshotCache cache(timeline, cache_size);
    serve::QueryEngine engine(cache);
    obs::Registry registry;
    cache.register_metrics(registry, "cache");
    engine.register_metrics(registry, "serve");
    register_simd_metrics(registry);
    serve::Server server(engine, options);
    server.register_metrics(registry, "server");
    server.set_ingest_handler([](double, std::string& error) {
      error = "ingest lines need a live binding (listen --start D)";
      return false;
    });
    return run_server(server, registry, telemetry);
  }

  LiveReplay replay(net, start);
  const SanTimeline frozen(replay.seed);
  serve::SnapshotCache cache(frozen, cache_size);
  if (shards > 1) {
    san::ShardedLiveTimelineOptions live_options;
    live_options.shards = shards;
    live_options.batches_per_epoch = publish_every;
    live_options.initial_tip = start;  // attr catalog times may lie ahead
    san::ShardedLiveTimeline live(replay.seed, live_options);
    cache.bind_live(live, start);
    return run_listen_live(live, replay, cache, options, telemetry);
  }
  LiveTimelineOptions live_options;
  live_options.batches_per_epoch = publish_every;
  live_options.initial_tip = start;  // attr catalog times may lie ahead
  LiveTimeline live(replay.seed, live_options);
  cache.bind_live(live, start);
  return run_listen_live(live, replay, cache, options, telemetry);
}

int cmd_genload(int argc, char** argv) {
  serve::GenloadOptions options;
  const char* queries_text = flag_value(argc, argv, "--queries", "1000");
  const char* nodes_text = flag_value(argc, argv, "--nodes", "20000");
  const char* seed_text = flag_value(argc, argv, "--seed", "42");
  const char* zipf_text = flag_value(argc, argv, "--zipf", "0.8");
  const char* horizon_text = flag_value(argc, argv, "--horizon", "98");
  const char* now_text = flag_value(argc, argv, "--now", "0.1");
  const char* ingest_text = flag_value(argc, argv, "--ingest", "0");
  const char* mix_text = flag_value(argc, argv, "--mix", nullptr);
  const char* arrival_text = flag_value(argc, argv, "--arrival", "diurnal");
  if (!parse_size(queries_text, options.queries)) {
    return complain("invalid --queries '%s'", queries_text);
  }
  if (!parse_size(nodes_text, options.nodes) || options.nodes == 0) {
    return complain("invalid --nodes '%s' (need an integer > 0)", nodes_text);
  }
  if (!parse_u64(seed_text, options.seed)) {
    return complain("invalid --seed '%s'", seed_text);
  }
  if (!parse_double(zipf_text, options.zipf) || !(options.zipf >= 0.0)) {
    return complain("invalid --zipf '%s' (need a number >= 0)", zipf_text);
  }
  if (!parse_double(horizon_text, options.horizon) ||
      !(options.horizon > 0.0)) {
    return complain("invalid --horizon '%s' (need a number > 0)",
                    horizon_text);
  }
  if (!parse_double(now_text, options.now_fraction) ||
      !(options.now_fraction >= 0.0 && options.now_fraction <= 1.0)) {
    return complain("invalid --now '%s' (need a fraction in [0, 1])",
                    now_text);
  }
  if (!parse_double(ingest_text, options.ingest_fraction) ||
      !(options.ingest_fraction >= 0.0 && options.ingest_fraction <= 1.0)) {
    return complain("invalid --ingest '%s' (need a fraction in [0, 1])",
                    ingest_text);
  }
  if (mix_text != nullptr && !serve::parse_mix(mix_text, options.mix)) {
    return complain("invalid --mix '%s' (need kind:weight,... over known"
                    " kinds, weights >= 0, not all zero)",
                    mix_text);
  }
  if (!serve::parse_arrival(arrival_text, options.arrival)) {
    return complain("invalid --arrival '%s' (need uniform|diurnal|bursty)",
                    arrival_text);
  }
  const char* out = flag_value(argc, argv, "-o", nullptr);
  if (out == nullptr) return complain("%s requires -o FILE", "genload");

  const std::string text = serve::generate_workload(options);
  std::FILE* file = std::fopen(out, "w");
  if (file == nullptr) return complain("unwritable output path '%s'", out);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != text.size() || !flushed) {
    std::fprintf(stderr, "error: short write to %s\n", out);
    return 1;
  }
  std::size_t ingest_lines = 0, query_lines = 0;
  for (const auto& step : serve::parse_live_workload(text)) {
    if (step.ingest) ++ingest_lines;
    else ++query_lines;
  }
  std::printf("wrote %s: %zu queries, %zu ingest lines (seed %llu, %s"
              " arrivals, zipf %.3g)\n",
              out, query_lines, ingest_lines,
              static_cast<unsigned long long>(options.seed), arrival_text,
              options.zipf);
  return 0;
}

int missing_file(const char* command) {
  return complain("%s requires a positional FILE argument", command);
}

}  // namespace

int main(int argc, char** argv) {
  // SIGPIPE off: a peer (or a closed stdout pipe) must surface as a
  // write error at the call site — send()/fflush() failure — not kill
  // the process silently mid-replay or mid-serve.
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return cmd_help(argc >= 3 ? argv[2] : "");
  }
  if (wants_help(argc, argv)) {
    if (find_subcommand(command) != nullptr) return cmd_help(command);
    return complain("unknown command '%s'", command.c_str());
  }
  // An unparseable SAN_SIMD is the same guard family as a bad flag value:
  // refuse up front instead of silently running on the detected level.
  if (const char* bad = core::simd::env_error()) {
    return complain("invalid SAN_SIMD '%s' (need scalar|sse|avx2)", bad);
  }
  const bool has_file = argc >= 3 && argv[2][0] != '-';
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "measure") {
      return has_file ? cmd_measure(argc, argv, argv[2])
                      : missing_file("measure");
    }
    if (command == "snapshots") {
      return has_file ? cmd_snapshots(argc, argv, argv[2])
                      : missing_file("snapshots");
    }
    if (command == "crawl") {
      return has_file ? cmd_crawl(argc, argv, argv[2]) : missing_file("crawl");
    }
    if (command == "communities") {
      return has_file ? cmd_communities(argc, argv, argv[2])
                      : missing_file("communities");
    }
    if (command == "serve") {
      return has_file ? cmd_serve(argc, argv, argv[2]) : missing_file("serve");
    }
    if (command == "live") {
      return has_file ? cmd_live(argc, argv, argv[2]) : missing_file("live");
    }
    if (command == "listen") {
      return has_file ? cmd_listen(argc, argv, argv[2])
                      : missing_file("listen");
    }
    if (command == "genload") return cmd_genload(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return complain("unknown command '%s'", command.c_str());
}

// san_tool — command-line front end for the library.
//
//   san_tool generate --kind model|zhel|gplus --nodes N --seed S -o FILE
//   san_tool measure FILE [--day D]
//   san_tool snapshots FILE [--step D]
//   san_tool crawl FILE --day D [--private P] -o FILE
//   san_tool communities FILE [--attribute-weight W]
//   san_tool serve FILE --workload W [--cache N] [--batch B]
//
// Files use the SANv1 text format (san/serialization.hpp); workload files
// use the serve/query.hpp line format. Malformed numbers, unknown
// subcommands, and missing positionals all fail loudly with usage + a
// nonzero exit instead of silently falling back to atof/atol defaults.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "apps/community.hpp"
#include "core/parse.hpp"
#include "crawl/crawler.hpp"
#include "crawl/gplus_synth.hpp"
#include "graph/clustering.hpp"
#include "graph/metrics.hpp"
#include "model/generator.hpp"
#include "model/zhel.hpp"
#include "san/san_metrics.hpp"
#include "san/serialization.hpp"
#include "san/timeline.hpp"
#include "serve/query_engine.hpp"
#include "stats/fit.hpp"

namespace {

using namespace san;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  san_tool generate --kind model|zhel|gplus [--nodes N]"
               " [--seed S] -o FILE\n"
               "  san_tool measure FILE [--day D]\n"
               "  san_tool snapshots FILE [--step D]\n"
               "  san_tool crawl FILE --day D [--private P] -o FILE\n"
               "  san_tool communities FILE [--attribute-weight W]\n"
               "  san_tool serve FILE --workload W [--cache N] [--batch B]\n");
  return 2;
}

int complain(const char* format, const char* value) {
  std::fprintf(stderr, "error: ");
  std::fprintf(stderr, format, value);
  std::fprintf(stderr, "\n");
  return usage();
}

/// Minimal flag parser: returns the value following `flag`, or fallback.
const char* flag_value(int argc, char** argv, const char* flag,
                       const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

/// Strict numeric parsing (core/parse.hpp): the whole token must convert,
/// no atof/atol-style silent zero on garbage.
bool parse_double(const char* text, double& out) {
  return core::parse_double_strict(text, out);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  return core::parse_u64_strict(text, out);
}

bool parse_size(const char* text, std::size_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value) ||
      value > std::numeric_limits<std::size_t>::max()) {
    return false;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

int cmd_generate(int argc, char** argv) {
  const std::string kind = flag_value(argc, argv, "--kind", "model");
  std::size_t nodes = 0;
  std::uint64_t seed = 0;
  const char* nodes_text = flag_value(argc, argv, "--nodes", "20000");
  const char* seed_text = flag_value(argc, argv, "--seed", "42");
  if (!parse_size(nodes_text, nodes)) {
    return complain("invalid --nodes '%s'", nodes_text);
  }
  if (!parse_u64(seed_text, seed)) {
    return complain("invalid --seed '%s'", seed_text);
  }
  const char* out = flag_value(argc, argv, "-o", nullptr);
  if (out == nullptr) return complain("%s requires -o FILE", "generate");

  SocialAttributeNetwork net;
  if (kind == "model") {
    model::GeneratorParams params;
    params.social_node_count = nodes;
    params.seed = seed;
    net = model::generate_san(params);
  } else if (kind == "zhel") {
    model::ZhelParams params;
    params.social_node_count = nodes;
    params.seed = seed;
    net = model::generate_zhel(params);
  } else if (kind == "gplus") {
    crawl::SyntheticGplusParams params;
    params.total_social_nodes = nodes;
    params.seed = seed;
    net = crawl::generate_synthetic_gplus(params);
  } else {
    return complain("unknown --kind '%s'", kind.c_str());
  }
  save_san(net, std::string(out));
  std::printf("wrote %s: %zu social nodes, %llu social links, %zu attributes,"
              " %llu attribute links\n",
              out, net.social_node_count(),
              static_cast<unsigned long long>(net.social_link_count()),
              net.attribute_node_count(),
              static_cast<unsigned long long>(net.attribute_link_count()));
  return 0;
}

int cmd_measure(int argc, char** argv, const char* path) {
  double day = 0.0;
  const char* day_text = flag_value(argc, argv, "--day", "1e300");
  if (!parse_double(day_text, day)) {
    return complain("invalid --day '%s'", day_text);
  }
  const auto net = load_san(path);
  const auto snap = day >= 1e300 ? snapshot_full(net) : snapshot_at(net, day);

  std::printf("social nodes:        %zu\n", snap.social_node_count());
  std::printf("attribute nodes:     %zu (populated %zu)\n",
              snap.attribute_node_count(), snap.populated_attribute_count());
  std::printf("social links:        %llu\n",
              static_cast<unsigned long long>(snap.social_link_count()));
  std::printf("attribute links:     %llu\n",
              static_cast<unsigned long long>(snap.attribute_link_count));
  std::printf("reciprocity:         %.4f\n", graph::reciprocity(snap.social));
  std::printf("social density:      %.3f\n", graph::density(snap.social));
  std::printf("attribute density:   %.3f\n", attribute_density(snap));
  std::printf("assortativity:       %+.4f\n",
              graph::assortativity(snap.social));

  graph::ClusteringOptions cc;
  cc.epsilon = 0.01;
  std::printf("social clustering:   %.4f\n",
              graph::approx_average_clustering(snap.social, cc));
  std::printf("attribute clustering:%.4f\n",
              average_attribute_clustering(snap, cc));

  if (snap.social_link_count() > 100) {
    const auto out_sel =
        stats::select_degree_model(graph::out_degree_histogram(snap.social), 1);
    std::printf("outdegree best fit:  %s (lognormal mu=%.2f sigma=%.2f)\n",
                to_string(out_sel.best).c_str(), out_sel.lognormal.mu,
                out_sel.lognormal.sigma);
  }
  return 0;
}

int cmd_snapshots(int argc, char** argv, const char* path) {
  double step = 0.0;
  const char* step_text = flag_value(argc, argv, "--step", "1");
  if (!parse_double(step_text, step) || step <= 0.0) {
    return complain("invalid --step '%s' (need a number > 0)", step_text);
  }
  const auto net = load_san(path);
  const SanTimeline timeline(net);

  // Integer-index grid: repeated `day += step` accumulates rounding error
  // and can emit two nearly-identical final snapshots.
  std::vector<double> days;
  for (std::size_t i = 1;; ++i) {
    const double day = step * static_cast<double>(i);
    if (day >= timeline.max_time()) {
      days.push_back(timeline.max_time());
      break;
    }
    days.push_back(day);
  }
  std::printf("%8s %12s %12s %14s %12s %12s %10s\n", "day", "nodes", "links",
              "attr-nodes", "attr-links", "density", "attr-dens");
  timeline.sweep(days, [](double day, const SanSnapshot& snap) {
    std::printf("%8.2f %12zu %12llu %14zu %12llu %12.4f %10.3f\n", day,
                snap.social_node_count(),
                static_cast<unsigned long long>(snap.social_link_count()),
                snap.attribute_node_count(),
                static_cast<unsigned long long>(snap.attribute_link_count),
                graph::density(snap.social), attribute_density(snap));
  });
  std::printf("(%zu snapshots; indexed %llu social + %llu attribute links"
              " once, O(prefix) per day)\n",
              days.size(),
              static_cast<unsigned long long>(timeline.social_link_total()),
              static_cast<unsigned long long>(timeline.attribute_link_total()));
  return 0;
}

int cmd_crawl(int argc, char** argv, const char* path) {
  double day = 0.0, privacy = 0.0;
  const char* day_text = flag_value(argc, argv, "--day", "1e300");
  const char* privacy_text = flag_value(argc, argv, "--private", "0.12");
  if (!parse_double(day_text, day)) {
    return complain("invalid --day '%s'", day_text);
  }
  if (!parse_double(privacy_text, privacy) || privacy < 0.0 ||
      privacy > 1.0) {
    return complain("invalid --private '%s' (need a probability)",
                    privacy_text);
  }
  const char* out = flag_value(argc, argv, "-o", nullptr);
  if (out == nullptr) return complain("%s requires -o FILE", "crawl");

  const auto truth = load_san(path);
  crawl::CrawlerOptions options;
  options.private_profile_prob = privacy;
  const auto result = crawl::crawl_at(
      truth, day >= 1e300 ? std::numeric_limits<double>::max() : day, options);
  save_san(result.network, std::string(out));
  std::printf("crawled %zu/%zu nodes (%.1f%%), link coverage %.1f%% -> %s\n",
              result.network.social_node_count(), truth.social_node_count(),
              100.0 * result.node_coverage, 100.0 * result.link_coverage, out);
  return 0;
}

int cmd_communities(int argc, char** argv, const char* path) {
  double w = 0.0;
  const char* weight_text = flag_value(argc, argv, "--attribute-weight", "0");
  if (!parse_double(weight_text, w)) {
    return complain("invalid --attribute-weight '%s'", weight_text);
  }
  const auto net = load_san(path);
  const auto snap = snapshot_full(net);
  apps::CommunityOptions options;
  options.attribute_weight = w;
  const auto result = apps::detect_communities(snap, options);
  std::printf("communities: %zu (after %d iterations), modularity %.4f\n",
              result.community_count, result.iterations,
              apps::modularity(snap, result.label));
  return 0;
}

int cmd_serve(int argc, char** argv, const char* path) {
  const char* workload_path = flag_value(argc, argv, "--workload", nullptr);
  if (workload_path == nullptr) {
    return complain("%s requires --workload FILE", "serve");
  }
  std::size_t cache_size = 0, batch_size = 0;
  const char* cache_text = flag_value(argc, argv, "--cache", "8");
  const char* batch_text = flag_value(argc, argv, "--batch", "1024");
  if (!parse_size(cache_text, cache_size) || cache_size == 0) {
    return complain("invalid --cache '%s' (need an integer > 0)", cache_text);
  }
  if (!parse_size(batch_text, batch_size) || batch_size == 0) {
    return complain("invalid --batch '%s' (need an integer > 0)", batch_text);
  }

  const auto net = load_san(path);
  const SanTimeline timeline(net);
  serve::SnapshotCache cache(timeline, cache_size);
  serve::QueryEngine engine(cache);
  const auto queries = serve::load_workload(workload_path);

  const auto start = std::chrono::steady_clock::now();
  std::size_t served = 0;
  while (served < queries.size()) {
    const std::size_t count = std::min(batch_size, queries.size() - served);
    const auto results = engine.run_batch(
        std::span<const serve::Query>(queries.data() + served, count));
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("%s\n", results[i].to_line(queries[served + i]).c_str());
    }
    served += count;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto stats = cache.stats();
  std::fprintf(stderr,
               "served %zu queries in %.3f s (%.0f queries/s); snapshot cache:"
               " %llu hits, %llu misses, %llu evictions\n",
               served, seconds, seconds > 0.0 ? served / seconds : 0.0,
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses),
               static_cast<unsigned long long>(stats.evictions));
  return 0;
}

int missing_file(const char* command) {
  return complain("%s requires a positional FILE argument", command);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const bool has_file = argc >= 3 && argv[2][0] != '-';
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "measure") {
      return has_file ? cmd_measure(argc, argv, argv[2])
                      : missing_file("measure");
    }
    if (command == "snapshots") {
      return has_file ? cmd_snapshots(argc, argv, argv[2])
                      : missing_file("snapshots");
    }
    if (command == "crawl") {
      return has_file ? cmd_crawl(argc, argv, argv[2]) : missing_file("crawl");
    }
    if (command == "communities") {
      return has_file ? cmd_communities(argc, argv, argv[2])
                      : missing_file("communities");
    }
    if (command == "serve") {
      return has_file ? cmd_serve(argc, argv, argv[2]) : missing_file("serve");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return complain("unknown command '%s'", command.c_str());
}

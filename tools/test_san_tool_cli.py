#!/usr/bin/env python3
"""CLI contract tests for san_tool, registered with CTest (san_tool_cli).

Asserts the exit-code contract (0 success / help, 1 runtime failure,
2 usage error), the usage text on bad invocations, and the help output of
every subcommand — the behaviors that until now were only exercised by
hand. Stdlib only; runs a real end-to-end generate -> snapshots -> serve
-> live pipeline on a tiny network in a temp directory.

Usage: tools/test_san_tool_cli.py /path/to/san_tool
"""

import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

FAILURES = []
SAN_TOOL = None

SUBCOMMANDS = [
    "generate", "measure", "snapshots", "crawl", "communities", "live",
    "serve", "listen", "genload",
]


def run(*args, timeout=300):
    return subprocess.run([SAN_TOOL, *args], capture_output=True, text=True,
                          timeout=timeout)


def check(name, condition, detail=""):
    if condition:
        print(f"ok       {name}")
    else:
        FAILURES.append(name)
        print(f"FAIL     {name}  {detail}")


def expect(name, result, code, streams=()):
    """Exit code matches and every needle appears on stdout+stderr."""
    blob = result.stdout + result.stderr
    detail = (f"exit={result.returncode} (want {code}) "
              f"stderr={result.stderr[:200]!r}")
    ok = result.returncode == code
    for needle in streams:
        if needle not in blob:
            ok = False
            detail += f" missing {needle!r}"
    check(name, ok, detail)


@contextlib.contextmanager
def listen_server(*args, env=None):
    """Spawn `san_tool listen`, scrape the bound port from the first
    stderr line, and guarantee a SIGTERM + wait on the way out. Yields
    (proc, port); port is None when the server failed to start."""
    proc = subprocess.Popen([SAN_TOOL, "listen", *args],
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE, env=env)
    banner = proc.stderr.readline().decode(errors="replace")
    port = None
    if banner.startswith("listening on 127.0.0.1:"):
        port = int(banner.rsplit(":", 1)[1])
    try:
        yield proc, port
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
        proc.stderr.close()


def sock_exchange(port, payload, chunks=None, pause=0.0):
    """One protocol round trip: send, half-close, read to EOF."""
    with socket.create_connection(("127.0.0.1", port), timeout=120) as s:
        s.settimeout(120)
        for piece in (chunks if chunks is not None else [payload]):
            s.sendall(piece)
            if pause:
                time.sleep(pause)
        s.shutdown(socket.SHUT_WR)
        data = b""
        while True:
            got = s.recv(65536)
            if not got:
                return data
            data += got


def test_help_pages():
    expect("no args -> usage, exit 2", run(), 2, ["usage:", "exit codes"])
    top = run("help")
    expect("help -> exit 0", top, 0, ["subcommands:"])
    for name in SUBCOMMANDS:
        check(f"help lists {name}", f"\n  {name}" in top.stdout)
        expect(f"help {name}", run("help", name), 0, [name, "usage:"])
        expect(f"{name} --help", run(name, "--help"), 0, [name, "usage:"])
    expect("help for unknown topic -> exit 2", run("help", "warp"), 2,
           ["unknown command"])
    expect("unknown subcommand -> exit 2", run("warp"), 2,
           ["unknown command", "usage:"])


def test_usage_errors():
    for name in ["measure", "snapshots", "crawl", "communities", "serve",
                 "live"]:
        expect(f"{name} without FILE -> exit 2", run(name), 2,
               ["positional FILE"])
    expect("generate without -o -> exit 2", run("generate"), 2,
           ["requires -o"])
    expect("generate bad --kind -> exit 2",
           run("generate", "--kind", "warp", "-o", "x.san"), 2,
           ["unknown --kind"])
    expect("generate bad --nodes -> exit 2",
           run("generate", "--nodes", "12x", "-o", "x.san"), 2,
           ["invalid --nodes"])
    expect("snapshots bad --step -> exit 2",
           run("snapshots", "f.san", "--step", "0"), 2, ["invalid --step"])
    expect("serve without --workload -> exit 2", run("serve", "f.san"), 2,
           ["requires --workload"])
    expect("serve bad --cache -> exit 2",
           run("serve", "f.san", "--workload", "w", "--cache", "0"), 2,
           ["invalid --cache"])
    expect("live without --workload -> exit 2", run("live", "f.san"), 2,
           ["requires --workload"])
    expect("live bad --publish-every -> exit 2",
           run("live", "f.san", "--workload", "w", "--publish-every", "0"),
           2, ["invalid --publish-every"])
    expect("live bad --start -> exit 2",
           run("live", "f.san", "--workload", "w", "--start", "-1"), 2,
           ["invalid --start"])
    expect("live bad --shards -> exit 2",
           run("live", "f.san", "--workload", "w", "--shards", "0"), 2,
           ["invalid --shards"])
    expect("live garbage --shards -> exit 2",
           run("live", "f.san", "--workload", "w", "--shards", "4x"), 2,
           ["invalid --shards"])
    for name in ["serve", "live"]:
        expect(f"{name} zero --stats-every -> exit 2",
               run(name, "f.san", "--workload", "w", "--stats-every", "0"),
               2, ["invalid --stats-every"])
        expect(f"{name} garbage --stats-every -> exit 2",
               run(name, "f.san", "--workload", "w", "--stats-every", "2x"),
               2, ["invalid --stats-every"])
        expect(f"{name} unwritable --stats-json -> exit 2",
               run(name, "f.san", "--workload", "w", "--stats-json",
                   "/nonexistent-dir/stats.json"), 2, ["unwritable"])
        expect(f"{name} unwritable --trace -> exit 2",
               run(name, "f.san", "--workload", "w", "--trace",
                   "/nonexistent-dir/trace.json"), 2, ["unwritable"])


def test_runtime_failures(tmp):
    expect("measure missing file -> exit 1", run("measure", "/nonexistent"),
           1, ["error:"])
    bad = os.path.join(tmp, "bad.san")
    with open(bad, "w", encoding="utf-8") as f:
        f.write("this is not a SANv1 file\n")
    expect("measure malformed file -> exit 1", run("measure", bad), 1,
           ["error:"])


def test_end_to_end(tmp):
    san = os.path.join(tmp, "tiny.san")
    expect("generate gplus -> exit 0",
           run("generate", "--kind", "gplus", "--nodes", "1500", "--seed",
               "9", "-o", san), 0, ["wrote"])
    check("generate wrote the file", os.path.exists(san))

    expect("measure -> exit 0", run("measure", san, "--day", "50"), 0,
           ["social nodes:"])
    snap = run("snapshots", san, "--step", "20")
    expect("snapshots -> exit 0", snap, 0, ["day", "delta-advanced"])

    workload = os.path.join(tmp, "w.txt")
    with open(workload, "w", encoding="utf-8") as f:
        f.write("# queries\nego 50 3\nlinkrec now 3 5\nrecip 98 3 7\n")
    serve = run("serve", san, "--workload", workload)
    expect("serve -> exit 0", serve, 0, ["queries/s"])
    lines = serve.stdout.strip().splitlines()
    check("serve printed one line per query", len(lines) == 3,
          f"got {len(lines)}")
    check("serve renders the now token",
          any(line.startswith("linkrec t=now") for line in lines))

    live_workload = os.path.join(tmp, "wl.txt")
    with open(live_workload, "w", encoding="utf-8") as f:
        f.write("ego 10 3\ningest 55\nego now 3\ningest 99\nego now 3\n")
    live = run("live", san, "--workload", live_workload, "--start", "10")
    expect("live -> exit 0", live, 0, ["live tip", "events/s"])
    live_lines = live.stdout.strip().splitlines()
    check("live printed one line per query", len(live_lines) == 3,
          f"got {len(live_lines)}")
    check("live tip queries render as now",
          live_lines[1].startswith("ego t=now") and
          live_lines[2].startswith("ego t=now"))
    check("live tip advanced between epochs",
          live_lines[1] != live_lines[2], live_lines[1])

    # The sharded ingest path serves the same workload: identical stdout
    # (per-query result lines are deterministic across shard counts).
    sharded = run("live", san, "--workload", live_workload, "--start", "10",
                  "--shards", "4")
    expect("live --shards 4 -> exit 0", sharded, 0,
           ["live tip", "events/s"])
    check("sharded live matches single-shard results",
          sharded.stdout == live.stdout,
          f"sharded={sharded.stdout!r} single={live.stdout!r}")

    # The same serve workload with an ingest line must fail the load.
    with open(workload, "a", encoding="utf-8") as f:
        f.write("ingest 99\n")
    expect("serve rejects ingest lines -> exit 1",
           run("serve", san, "--workload", workload), 1, ["ingest lines"])
    # Non-advancing ingest tips are a runtime failure, not a crash.
    with open(live_workload, "w", encoding="utf-8") as f:
        f.write("ingest 50\ningest 50\n")
    expect("live rejects non-advancing tips -> exit 1",
           run("live", san, "--workload", live_workload, "--start", "10"),
           1, ["strictly"])


def test_genload_usage_errors():
    expect("genload without -o -> exit 2", run("genload"), 2,
           ["requires -o"])
    expect("genload garbage --zipf -> exit 2",
           run("genload", "--zipf", "hot", "-o", "w.txt"), 2,
           ["invalid --zipf"])
    expect("genload negative --zipf -> exit 2",
           run("genload", "--zipf", "-1", "-o", "w.txt"), 2,
           ["invalid --zipf"])
    expect("genload unknown kind in --mix -> exit 2",
           run("genload", "--mix", "warp:1", "-o", "w.txt"), 2,
           ["invalid --mix"])
    expect("genload malformed --mix -> exit 2",
           run("genload", "--mix", "linkrec", "-o", "w.txt"), 2,
           ["invalid --mix"])
    expect("genload bad --arrival -> exit 2",
           run("genload", "--arrival", "poisson", "-o", "w.txt"), 2,
           ["invalid --arrival"])
    expect("genload garbage --queries -> exit 2",
           run("genload", "--queries", "12x", "-o", "w.txt"), 2,
           ["invalid --queries"])
    expect("genload out-of-range --ingest -> exit 2",
           run("genload", "--ingest", "1.5", "-o", "w.txt"), 2,
           ["invalid --ingest"])
    expect("genload unwritable output -> exit 2",
           run("genload", "-o", "/nonexistent-dir/w.txt"), 2,
           ["unwritable"])


def test_genload_pipeline(tmp):
    """genload is seed-reproducible and its output drives serve and live
    through the unchanged workload grammar."""
    san = os.path.join(tmp, "scen.san")
    expect("genload: generate net -> exit 0",
           run("generate", "--kind", "gplus", "--nodes", "1500", "--seed",
               "9", "-o", san), 0, ["wrote"])

    w1 = os.path.join(tmp, "scen_a.txt")
    w2 = os.path.join(tmp, "scen_b.txt")
    args = ["--queries", "120", "--nodes", "1500", "--seed", "7",
            "--zipf", "1.0", "--arrival", "bursty"]
    expect("genload -> exit 0", run("genload", *args, "-o", w1), 0,
           ["wrote", "queries"])
    expect("genload again -> exit 0", run("genload", *args, "-o", w2), 0)
    with open(w1, "rb") as f:
        bytes1 = f.read()
    with open(w2, "rb") as f:
        bytes2 = f.read()
    check("genload same seed -> byte-identical files", bytes1 == bytes2)
    other = run("genload", "--queries", "120", "--nodes", "1500", "--seed",
                "8", "-o", w2)
    expect("genload other seed -> exit 0", other, 0)
    with open(w2, "rb") as f:
        check("genload different seed -> different file",
              f.read() != bytes1)

    serve = run("serve", san, "--workload", w1)
    expect("genload -> serve consumes unchanged", serve, 0, ["queries/s"])
    check("serve answered every generated query",
          len(serve.stdout.strip().splitlines()) == 120,
          f"got {len(serve.stdout.strip().splitlines())}")

    wl = os.path.join(tmp, "scen_live.txt")
    expect("genload --ingest -> exit 0",
           run("genload", "--queries", "120", "--nodes", "1500", "--seed",
               "7", "--ingest", "0.3", "-o", wl), 0, ["ingest lines"])
    live = run("live", san, "--workload", wl)
    expect("genload --ingest -> live consumes unchanged", live, 0,
           ["live tip", "events/s"])


def test_new_query_kinds(tmp):
    """sybil / community / influence serve end-to-end with their
    documented result tokens, and malformed lines fail naming the token."""
    san = os.path.join(tmp, "kinds.san")
    expect("new kinds: generate -> exit 0",
           run("generate", "--kind", "gplus", "--nodes", "1200", "--seed",
               "3", "-o", san), 0, ["wrote"])
    workload = os.path.join(tmp, "kinds_wl.txt")
    with open(workload, "w", encoding="utf-8") as f:
        f.write("sybil 98 3\ncommunity now 3\ninfluence 98 2\n"
                "influence now 2 3 9\n")
    serve = run("serve", san, "--workload", workload)
    expect("new kinds serve -> exit 0", serve, 0, ["queries/s"])
    lines = serve.stdout.strip().splitlines()
    check("new kinds: one line per query", len(lines) == 4,
          f"got {len(lines)}")
    if len(lines) == 4:
        check("sybil line renders region/attack/sybils",
              lines[0].startswith("sybil t=98 u=3 region=")
              and " attack=" in lines[0] and " sybils=" in lines[0],
              lines[0])
        check("community line renders label/size/of",
              lines[1].startswith("community t=now u=3 label=")
              and " size=" in lines[1] and " of=" in lines[1], lines[1])
        check("influence line renders picks and coverage",
              lines[2].startswith("influence t=98 k=2 s=-")
              and " covered=" in lines[2], lines[2])
        check("influence seeds echo in the query header",
              lines[3].startswith("influence t=now k=2 s=3,9"), lines[3])

    # Malformed K / seed lists fail the workload load (the established
    # runtime-failure contract) and the diagnostic names the token.
    with open(workload, "w", encoding="utf-8") as f:
        f.write("influence 98 2 5x\n")
    expect("malformed seed -> exit 1 naming token",
           run("serve", san, "--workload", workload), 1, ["'5x'", "line 1"])
    with open(workload, "w", encoding="utf-8") as f:
        f.write("sybil 98 3 9\n")
    expect("trailing token -> exit 1 naming token",
           run("serve", san, "--workload", workload), 1, ["'9'"])


def test_listen_usage_errors():
    expect("listen without FILE -> exit 2", run("listen"), 2,
           ["positional FILE"])
    expect("listen bad --port -> exit 2",
           run("listen", "f.san", "--port", "70000"), 2, ["invalid --port"])
    expect("listen garbage --max-delay-us -> exit 2",
           run("listen", "f.san", "--max-delay-us", "2x"), 2,
           ["invalid --max-delay-us"])
    expect("listen zero --batch -> exit 2",
           run("listen", "f.san", "--batch", "0"), 2, ["invalid --batch"])
    expect("listen bad --start -> exit 2",
           run("listen", "f.san", "--start", "-1"), 2, ["invalid --start"])
    expect("listen unwritable --stats-json -> exit 2",
           run("listen", "f.san", "--stats-json",
               "/nonexistent-dir/stats.json"), 2, ["unwritable"])


def test_listen_byte_identity(tmp):
    """The acceptance gate: a genload scenario replayed over the socket
    produces byte-identical result lines to `serve`/`live` file replay, at
    SAN_THREADS=1/4 and at two --max-delay-us settings."""
    san = os.path.join(tmp, "lsn.san")
    expect("listen: generate net -> exit 0",
           run("generate", "--kind", "gplus", "--nodes", "1500", "--seed",
               "9", "-o", san), 0, ["wrote"])
    static_wl = os.path.join(tmp, "lsn_static.txt")
    live_wl = os.path.join(tmp, "lsn_live.txt")
    expect("listen: genload static -> exit 0",
           run("genload", "--queries", "120", "--nodes", "1500", "--seed",
               "7", "-o", static_wl), 0)
    expect("listen: genload live -> exit 0",
           run("genload", "--queries", "120", "--nodes", "1500", "--seed",
               "11", "--ingest", "0.2", "-o", live_wl), 0)
    with open(static_wl, "rb") as f:
        static_bytes = f.read()
    with open(live_wl, "rb") as f:
        live_bytes = f.read()

    offline_static = run("serve", san, "--workload", static_wl)
    expect("listen: offline serve reference -> exit 0", offline_static, 0)
    offline_live = run("live", san, "--workload", live_wl, "--start", "0")
    expect("listen: offline live reference -> exit 0", offline_live, 0)

    for threads in ("1", "4"):
        env = dict(os.environ, SAN_THREADS=threads)
        for delay in ("0", "2000"):
            with listen_server(san, "--max-delay-us", delay,
                               env=env) as (proc, port):
                check(f"listen starts (threads={threads} delay={delay})",
                      port is not None)
                if port is None:
                    continue
                got = sock_exchange(port, static_bytes)
            check(f"socket == serve (threads={threads} delay={delay})",
                  got.decode() == offline_static.stdout,
                  f"got {len(got)}B want {len(offline_static.stdout)}B")
            check(f"listen drains clean (threads={threads} delay={delay})",
                  proc.returncode == 0, f"exit={proc.returncode}")

        with listen_server(san, "--start", "0", "--max-delay-us", "500",
                           env=env) as (proc, port):
            check(f"listen --start 0 starts (threads={threads})",
                  port is not None)
            if port is None:
                continue
            got = sock_exchange(port, live_bytes)
        check(f"socket == live (threads={threads})",
              got.decode() == offline_live.stdout,
              f"got {len(got)}B want {len(offline_live.stdout)}B")

    # Sharded live binding over the socket matches the single shard too.
    with listen_server(san, "--start", "0", "--shards", "4") as (proc,
                                                                 port):
        check("listen --shards 4 starts", port is not None)
        if port is not None:
            got = sock_exchange(port, live_bytes)
            check("sharded socket == live",
                  got.decode() == offline_live.stdout)


def test_listen_protocol_edges(tmp):
    """Edge rules over the wire: malformed tokens echo the file-replay
    line-numbered diagnostics, NUL bytes, partial sends, oversize."""
    san = os.path.join(tmp, "edge.san")
    expect("edges: generate net -> exit 0",
           run("generate", "--kind", "gplus", "--nodes", "1200", "--seed",
               "3", "-o", san), 0, ["wrote"])

    # File replay's diagnostic for the same stream, for comparison.
    bad_wl = os.path.join(tmp, "edge_bad.txt")
    with open(bad_wl, "w", encoding="utf-8") as f:
        f.write("ego 5x 3\n")
    offline = run("serve", san, "--workload", bad_wl)
    expect("edges: file replay rejects line 1 -> exit 1", offline, 1,
           ["workload line 1", "'5x'"])

    with listen_server(san) as (proc, port):
        check("edges: listen starts", port is not None)
        if port is None:
            return
        # Malformed time on line 1; comment + blank lines keep counting;
        # line 4 is valid and still served — an ERR poisons only its line.
        got = sock_exchange(
            port, b"ego 5x 3\n# comment\n\nego 50 3\n").decode()
        lines = got.splitlines()
        check("edges: two response lines", len(lines) == 2, repr(got))
        if len(lines) == 2:
            check("edges: ERR echoes file replay's line-numbered message",
                  lines[0].startswith("ERR workload line 1:")
                  and "'5x'" in lines[0]
                  and lines[0][len("ERR "):] in offline.stderr,
                  f"{lines[0]!r} vs {offline.stderr!r}")
            check("edges: valid line after ERR still served",
                  lines[1].startswith("ego t=50"), lines[1])

        # A NUL inside the kind token: same path as file replay (the
        # C-string diagnostic truncates at the NUL on both sides).
        got = sock_exchange(port, b"ego\x00x 50 3\n").decode()
        check("edges: NUL byte -> ERR unknown kind",
              got.startswith("ERR workload line 1: unknown query kind"),
              repr(got))

        # One query split across four sends reassembles into one line.
        got = sock_exchange(port, None,
                            chunks=[b"eg", b"o 5", b"0 ", b"3\n"],
                            pause=0.02).decode()
        check("edges: partial sends reassemble",
              got.startswith("ego t=50") and got.count("\n") == 1,
              repr(got))

        # ingest without a live binding rejects the line, not the server.
        got = sock_exchange(port, b"ingest 50\nego 50 3\n").decode()
        check("edges: ingest without live binding -> ERR",
              got.startswith("ERR workload line 1:")
              and "live binding" in got, repr(got))

    with listen_server(san, "--max-line-bytes", "256") as (proc, port):
        check("edges: small-line listen starts", port is not None)
        if port is not None:
            got = sock_exchange(port, b"x" * 1000).decode()
            check("edges: oversized line -> ERR + disconnect",
                  got == "ERR workload line 1: line exceeds 256 bytes\n",
                  repr(got))


def test_listen_drain(tmp):
    """SIGTERM while queries sit in the pending batch: every accepted
    query is served before the connection closes, exit 0."""
    san = os.path.join(tmp, "drain.san")
    expect("drain: generate net -> exit 0",
           run("generate", "--kind", "gplus", "--nodes", "1200", "--seed",
               "3", "-o", san), 0, ["wrote"])
    wl = os.path.join(tmp, "drain_wl.txt")
    with open(wl, "w", encoding="utf-8") as f:
        f.write("ego 50 3\nlinkrec now 3 5\nrecip 98 3 7\n")
    offline = run("serve", san, "--workload", wl)
    expect("drain: offline reference -> exit 0", offline, 0)

    # A 60 s flush deadline and a huge batch: nothing flushes until the
    # drain itself, so the responses prove the drain served the backlog.
    with listen_server(san, "--max-delay-us", "60000000", "--batch",
                       "1048576") as (proc, port):
        check("drain: listen starts", port is not None)
        if port is None:
            return
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=120) as s:
            s.settimeout(120)
            with open(wl, "rb") as f:
                s.sendall(f.read())
            time.sleep(0.3)  # let the server admit the queries
            proc.send_signal(signal.SIGTERM)
            data = b""
            while True:
                got = s.recv(65536)
                if not got:
                    break
                data += got
        check("drain: all pending queries answered",
              data.decode() == offline.stdout,
              f"got {data!r} want {offline.stdout!r}")
        stderr = proc.stderr.read().decode()
    check("drain: exit 0 after SIGTERM", proc.returncode == 0,
          f"exit={proc.returncode}")
    check("drain: final stats line printed", "drained:" in stderr, stderr)


def test_export_write_failures(tmp):
    """Satellite checks: full-disk exports and a closed stdout pipe are
    exit-1 failures that name the sink, never silent truncation."""
    san = os.path.join(tmp, "wf.san")
    expect("writefail: generate net -> exit 0",
           run("generate", "--kind", "gplus", "--nodes", "900", "--seed",
               "4", "-o", san), 0, ["wrote"])
    wl = os.path.join(tmp, "wf_wl.txt")
    with open(wl, "w", encoding="utf-8") as f:
        f.write("ego 10 3\nlinkrec 50 4 5\n")

    if os.path.exists("/dev/full"):
        expect("writefail: --stats-json /dev/full -> exit 1 naming path",
               run("serve", san, "--workload", wl, "--stats-json",
                   "/dev/full"), 1,
               ["short write to stats JSON file '/dev/full'"])
        expect("writefail: --trace /dev/full -> exit 1 naming path",
               run("serve", san, "--workload", wl, "--trace", "/dev/full"),
               1, ["short write to trace file '/dev/full'"])
        expect("writefail: generate -o /dev/full -> exit 1 naming path",
               run("generate", "--kind", "gplus", "--nodes", "900", "-o",
                   "/dev/full"), 1, ["short write to /dev/full"])
    else:
        print("skip     /dev/full checks (no /dev/full on this host)")

    # stdout wired to a pipe whose read end is already gone: EPIPE must
    # surface as exit 1 with a diagnostic, not a silent half-result
    # (san_tool ignores SIGPIPE so the write error is reportable).
    for name, extra in (("serve", []), ("live", ["--start", "50"])):
        read_fd, write_fd = os.pipe()
        os.close(read_fd)
        try:
            result = subprocess.run(
                [SAN_TOOL, name, san, "--workload", wl, *extra],
                stdout=write_fd, stderr=subprocess.PIPE, text=True,
                timeout=300)
        finally:
            os.close(write_fd)
        check(f"writefail: {name} broken stdout -> exit 1 + diagnostic",
              result.returncode == 1
              and "short write to stdout" in result.stderr,
              f"exit={result.returncode} stderr={result.stderr[:200]!r}")


def test_telemetry(tmp):
    """--stats-json/--trace/--stats-every: valid artifacts, identical
    stdout, the documented key schema."""
    san = os.path.join(tmp, "telem.san")
    expect("telemetry: generate -> exit 0",
           run("generate", "--kind", "gplus", "--nodes", "900", "--seed",
               "4", "-o", san), 0, ["wrote"])
    workload = os.path.join(tmp, "telem_wl.txt")
    with open(workload, "w", encoding="utf-8") as f:
        f.write("ego 10 3\nlinkrec 10 4 5\nattrs 10 5 3\nrecip 10 3 7\n"
                "ingest 55\nego now 3\nlinkrec now 4 5\n"
                "ingest 99\nattrs now 5 3\nrecip now 3 7\n")

    plain = run("live", san, "--workload", workload, "--start", "10",
                "--shards", "2")
    expect("telemetry: untelemetered live -> exit 0", plain, 0)

    stats_path = os.path.join(tmp, "stats.json")
    trace_path = os.path.join(tmp, "trace.json")
    telem = run("live", san, "--workload", workload, "--start", "10",
                "--shards", "2", "--stats-json", stats_path, "--trace",
                trace_path, "--stats-every", "1")
    expect("telemetry: instrumented live -> exit 0", telem, 0,
           ["telemetry[batch "])
    check("telemetry is observation-only (stdout identical)",
          telem.stdout == plain.stdout,
          f"telem={telem.stdout!r} plain={plain.stdout!r}")

    with open(stats_path, encoding="utf-8") as f:
        stats = json.load(f)
    required = (["cache.hits", "cache.misses", "cache.coalesced",
                 "live.ingest_to_publish.p50_us", "live.epochs",
                 "serve.batch.p99_us", "simd.active_level"]
                + [f"serve.query.{kind}.{pct}"
                   for kind in ("linkrec", "attrs", "ego", "recip")
                   for pct in ("count", "p50_us", "p99_us", "p999_us")])
    missing = [key for key in required if key not in stats]
    check("stats JSON has the documented keys", not missing,
          f"missing {missing}")
    check("stats JSON values are numbers",
          all(isinstance(v, (int, float)) for v in stats.values()))
    if not missing:
        check("every query kind recorded a latency",
              all(stats[f"serve.query.{k}.count"] >= 1
                  for k in ("linkrec", "attrs", "ego", "recip")),
              str({k: stats[f"serve.query.{k}.count"]
                   for k in ("linkrec", "attrs", "ego", "recip")}))
        check("epochs advanced past the seed epoch",
              stats["live.epochs"] >= 2, str(stats["live.epochs"]))

    with open(trace_path, encoding="utf-8") as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    check("trace JSON has a traceEvents list",
          isinstance(events, list) and len(events) > 0)
    if isinstance(events, list) and events:
        check("trace events carry name/ph/ts/dur",
              all(e.get("ph") == "X" and "name" in e and "ts" in e
                  and "dur" in e for e in events))
        names = {e["name"] for e in events}
        check("trace includes serve and ingest spans",
              "serve.run_batch" in names and "live.stitch" in names,
              str(sorted(names)))

    # serve takes the same flags; --stats-every alone must not change
    # stdout either.
    serve_wl = os.path.join(tmp, "telem_serve_wl.txt")
    with open(serve_wl, "w", encoding="utf-8") as f:
        f.write("ego 10 3\nlinkrec 50 4 5\nattrs 99 5 3\n")
    serve_plain = run("serve", san, "--workload", serve_wl)
    serve_stats = os.path.join(tmp, "serve_stats.json")
    serve_telem = run("serve", san, "--workload", serve_wl, "--stats-json",
                      serve_stats, "--stats-every", "1")
    expect("telemetry: instrumented serve -> exit 0", serve_telem, 0,
           ["telemetry[batch "])
    check("serve telemetry is observation-only",
          serve_telem.stdout == serve_plain.stdout)
    with open(serve_stats, encoding="utf-8") as f:
        check("serve stats JSON parses with query percentiles",
              "serve.query.ego.p50_us" in json.load(f))


def main():
    global SAN_TOOL
    if len(sys.argv) != 2:
        print("usage: test_san_tool_cli.py /path/to/san_tool",
              file=sys.stderr)
        return 2
    SAN_TOOL = sys.argv[1]
    test_help_pages()
    test_usage_errors()
    test_genload_usage_errors()
    test_listen_usage_errors()
    with tempfile.TemporaryDirectory() as tmp:
        test_runtime_failures(tmp)
        test_end_to_end(tmp)
        test_genload_pipeline(tmp)
        test_new_query_kinds(tmp)
        test_telemetry(tmp)
        test_listen_byte_identity(tmp)
        test_listen_protocol_edges(tmp)
        test_listen_drain(tmp)
        test_export_write_failures(tmp)
    if FAILURES:
        print(f"{len(FAILURES)} CLI contract checks failed", file=sys.stderr)
        return 1
    print("all CLI contract checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

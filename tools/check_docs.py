#!/usr/bin/env python3
"""Docs gate (CI `docs` job): keep the markdown truthful.

Checks, stdlib only:
  1. every intra-repo markdown link ([text](path)) in tracked *.md files
     resolves to an existing file or directory;
  2. the subcommand table in README.md matches `san_tool help` exactly
     (same names, no drift in either direction), and every subcommand's
     `san_tool help NAME` page exists (exit 0).

Usage: tools/check_docs.py [--san-tool PATH] [--root DIR]
The drift check is skipped (with a warning) when --san-tool is omitted,
so the link check can run without a build.
"""

import argparse
import os
import re
import subprocess
import sys

# [text](target) — excluding images is unnecessary; they resolve the same.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# README subcommand table rows: | `name` | `synopsis` | purpose |
TABLE_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9-]*)`\s*\|")
# `san_tool help` subcommand listing rows: two-space indent, name, summary.
HELP_ROW_RE = re.compile(r"^  ([a-z][a-z0-9-]*)\s{2,}\S")


def markdown_files(root):
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root, capture_output=True, text=True, check=True)
    return sorted(set(out.stdout.split()))


def strip_code(text):
    """Drop fenced blocks and inline code so literal [x](y) examples in
    them are not treated as links."""
    text = re.sub(r"^```.*?^```", "", text, flags=re.S | re.M)
    return re.sub(r"`[^`\n]*`", "", text)


def check_links(root, files):
    errors = []
    for rel in files:
        text = strip_code(
            open(os.path.join(root, rel), encoding="utf-8").read())
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            resolved = os.path.normpath(
                os.path.join(root, os.path.dirname(rel), path))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def readme_subcommands(root):
    names = []
    for line in open(os.path.join(root, "README.md"), encoding="utf-8"):
        m = TABLE_ROW_RE.match(line)
        if m and m.group(1) != "help":
            names.append(m.group(1))
    return names


def san_tool_subcommands(san_tool):
    out = subprocess.run([san_tool, "help"], capture_output=True, text=True)
    if out.returncode != 0:
        return None, [f"`{san_tool} help` exited {out.returncode}"]
    names, in_listing = [], False
    for line in out.stdout.splitlines():
        if line.startswith("subcommands:"):
            in_listing = True
            continue
        if in_listing:
            m = HELP_ROW_RE.match(line)
            if m:
                names.append(m.group(1))
            elif line.strip() == "":
                in_listing = False
    return names, []


def check_drift(root, san_tool):
    documented = readme_subcommands(root)
    actual, errors = san_tool_subcommands(san_tool)
    if errors:
        return errors
    if not documented:
        return ["README.md: no subcommand table rows found (| `name` | ...)"]
    if documented != actual:
        return [
            "README.md subcommand table drifted from `san_tool help`:\n"
            f"  documented: {documented}\n  san_tool:   {actual}"
        ]
    for name in actual:
        page = subprocess.run([san_tool, "help", name],
                              capture_output=True, text=True)
        if page.returncode != 0 or name not in page.stdout:
            errors.append(f"`san_tool help {name}` missing or broken")
    return errors


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--san-tool", help="path to a built san_tool binary")
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    args = parser.parse_args()

    files = markdown_files(args.root)
    errors = check_links(args.root, files)
    if args.san_tool:
        errors += check_drift(args.root, args.san_tool)
    else:
        print("warning: --san-tool not given, skipping help-drift check")

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    print(f"checked {len(files)} markdown files"
          + (", subcommand help in sync" if args.san_tool and not errors
             else ""))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

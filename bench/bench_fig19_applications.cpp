// Figure 19: application fidelity.
//   19a — SybilLimit: accepted Sybil identities (w x attack edges, w = 10,
//         degree cap 100) as a function of the number of compromised nodes,
//         on the Google+ network vs synthetic networks from our model
//         (fc = 0.1 and fc = 0) and from Zhel. The paper: our model's error
//         ~3.1%, Zhel ~4x worse.
//   19b — anonymous communication: end-to-end timing-analysis probability
//         of random-walk circuits vs the number of compromised nodes.
#include "bench_util.hpp"

#include <cmath>
#include <memory>

#include "apps/anon.hpp"
#include "apps/sybil.hpp"
#include "model/calibrate.hpp"
#include "model/generator.hpp"
#include "model/zhel.hpp"
#include "san/snapshot.hpp"
#include "stats/rng.hpp"

int main() {
  using namespace san;
  const auto gplus = bench::make_gplus_dataset();
  const auto target = snapshot_full(gplus);
  const std::size_t n = target.social_node_count();

  auto calibration = model::calibrate_generator(target);
  calibration.params.social_node_count = n;
  auto with_fc = calibration.params;
  with_fc.fc = 0.1;
  auto without_fc = calibration.params;
  without_fc.fc = 0.0;
  const auto ours_fc = snapshot_full(model::generate_san(with_fc));
  const auto ours_nofc = snapshot_full(model::generate_san(without_fc));

  model::ZhelParams zhel_params;
  zhel_params.social_node_count = n;
  zhel_params.mean_out_links = static_cast<double>(target.social_link_count()) /
                               static_cast<double>(n);
  const auto zhel = snapshot_full(model::generate_zhel(zhel_params));

  const std::pair<const char*, const SanSnapshot*> rows[] = {
      {"gplus", &target},
      {"ours-fc0.1", &ours_fc},
      {"ours-fc0", &ours_nofc},
      {"zhel", &zhel}};

  // Compromised-node sweep: 0.1% .. 2% of the network (the paper sweeps
  // 20k..200k of ~10M).
  std::vector<std::size_t> compromised;
  for (const double f : {0.001, 0.0025, 0.005, 0.0075, 0.01, 0.015, 0.02}) {
    compromised.push_back(static_cast<std::size_t>(f * static_cast<double>(n)));
  }

  bench::header("Fig 19a: SybilLimit accepted Sybil identities (w=10, cap "
                "100)");
  std::printf("%12s", "compromised");
  for (const auto& [name, snap] : rows) std::printf(" %14s", name);
  std::printf("\n");
  std::vector<double> gplus_sybils;
  std::vector<std::vector<double>> model_sybils(4);
  {
    std::vector<const apps::SybilLimit*> limiters;
    std::vector<std::unique_ptr<apps::SybilLimit>> storage;
    for (const auto& [name, snap] : rows) {
      storage.push_back(std::make_unique<apps::SybilLimit>(
          snap->social, apps::SybilLimitOptions{}));
      limiters.push_back(storage.back().get());
    }
    for (const std::size_t count : compromised) {
      std::printf("%12zu", count);
      for (std::size_t i = 0; i < 4; ++i) {
        stats::Rng rng(9000 + count);
        const auto result = limiters[i]->evaluate_uniform(count, rng);
        model_sybils[i].push_back(result.sybil_identities);
        std::printf(" %14.0f", result.sybil_identities);
      }
      std::printf("\n");
    }
  }
  std::printf("\nmean |relative error| vs gplus:\n");
  for (std::size_t i = 1; i < 4; ++i) {
    double err = 0.0;
    for (std::size_t j = 0; j < compromised.size(); ++j) {
      err += std::abs(model_sybils[i][j] - model_sybils[0][j]) /
             std::max(model_sybils[0][j], 1.0);
    }
    std::printf("  %-12s %.1f%%\n", rows[i].first,
                100.0 * err / static_cast<double>(compromised.size()));
  }
  std::printf("(paper: ours-fc0.1 ~3%%, zhel ~4x worse)\n");

  bench::header("Fig 19b: end-to-end timing-analysis probability");
  std::printf("%12s", "compromised");
  for (const auto& [name, snap] : rows) std::printf(" %14s", name);
  std::printf("\n");
  apps::AnonOptions anon_options;
  anon_options.num_walks = 150'000;
  std::vector<std::unique_ptr<apps::AnonymousCommunication>> anons;
  for (const auto& [name, snap] : rows) {
    anons.push_back(
        std::make_unique<apps::AnonymousCommunication>(snap->social,
                                                       anon_options));
  }
  for (const std::size_t count : compromised) {
    std::printf("%12zu", count);
    for (std::size_t i = 0; i < 4; ++i) {
      stats::Rng rng(7000 + count);
      std::printf(" %14.6f",
                  anons[i]->timing_attack_probability_uniform(count, rng));
    }
    std::printf("\n");
  }
  std::printf("(paper: probability grows ~quadratically; our model tracks"
              " gplus closely)\n");
  return 0;
}

// Figure 14: social outdegree of users conditioned on Employer (14a) and
// Major (14b) values — median with 25th/75th percentile whiskers. The
// paper's artifact: early adopters were Google employees and CS people, so
// Employer=Google and Major=Computer Science members have higher degrees.
#include "bench_util.hpp"

#include "san/influence.hpp"
#include "san/snapshot.hpp"

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const auto snap = snapshot_full(net);

  for (const auto& [type, label] :
       {std::pair{AttributeType::kEmployer, "Fig 14a: outdegree by Employer"},
        std::pair{AttributeType::kMajor, "Fig 14b: outdegree by Major"}}) {
    bench::header(label);
    std::printf("%-26s %10s %10s %10s %10s\n", "value", "p25", "median", "p75",
                "members");
    for (const auto& row : top_attributes_by_degree(net, snap, type, 4)) {
      std::printf("%-26s %10.1f %10.1f %10.1f %10llu\n",
                  row.attribute_name.c_str(), row.p25, row.median, row.p75,
                  static_cast<unsigned long long>(row.member_count));
    }
  }
  std::printf("\n(paper: Google tops employers, Computer Science tops "
              "majors)\n");
  return 0;
}

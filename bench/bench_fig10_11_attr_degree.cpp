// Figure 10: the two attribute-induced degree distributions — the attribute
// degree of social nodes is best fit by a LOGNORMAL (10a) while the social
// degree of attribute nodes is best fit by a POWER LAW (10b).
// Figure 11: evolution of those fitted parameters.
#include "bench_util.hpp"

#include "san/san_metrics.hpp"
#include "san/timeline.hpp"

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const SanTimeline timeline(net);
  const auto final_snap = timeline.snapshot_full();

  bench::header("Fig 10a: attribute degree of social nodes");
  const auto attr_deg = attribute_degree_histogram(final_snap);
  bench::print_pdf("attrdeg", attr_deg);
  const auto attr_sel = stats::select_degree_model(attr_deg, 1);
  bench::print_selection("attribute degree", attr_sel);
  bench::print_lognormal_fit("attribute degree", attr_sel.lognormal);

  bench::header("Fig 10b: social degree of attribute nodes");
  const auto social_deg = attribute_social_degree_histogram(final_snap);
  bench::print_pdf("socdeg", social_deg);
  // The Yule-process head (brand-new attributes at degree 1-2) is not part
  // of the asymptotic power law; fit from kmin = 3 as the paper's tool does
  // with its xmin selection.
  const auto pl = stats::fit_power_law(social_deg, 3);
  bench::print_power_law_fit("attr social degree (tail)", pl);
  const auto ln_alt = stats::fit_discrete_lognormal(social_deg, 3);
  std::printf("%-28s lognormal alternative on the same tail: ks=%.4f"
              " (power law wins: %s)\n",
              "attr social degree (tail)", ln_alt.ks,
              pl.ks < ln_alt.ks ? "yes" : "no");

  bench::header("Fig 11: evolution of fitted parameters");
  std::printf("%5s %10s %10s %14s\n", "day", "attr-mu", "attr-sigma",
              "social-alpha");
  const auto days = bench::snapshot_days();
  timeline.sweep(days, [](double day, const SanSnapshot& snap) {
    const auto ln =
        stats::fit_discrete_lognormal(attribute_degree_histogram(snap), 1);
    const auto pl =
        stats::fit_power_law(attribute_social_degree_histogram(snap), 1);
    std::printf("%5.0f %10.3f %10.3f %14.3f\n", day, ln.mu, ln.sigma, pl.alpha);
  });
  std::printf("(paper: alpha ~2.0-2.1; attr-degree mu declines in phases I and"
              " III, sigma creeps up)\n");
  return 0;
}

// Figure 17: joint degree distribution of attribute nodes (17a/17c) and the
// clustering coefficient vs degree curves (17b/17d) for synthetic SANs from
// our model vs the Zhel baseline, against the Google+ target. Our model
// should track the target's flat attribute knn and its social/attribute
// clustering curves; Zhel's curves sit far off.
#include "bench_util.hpp"

#include <cmath>

#include "graph/clustering.hpp"
#include "model/calibrate.hpp"
#include "model/generator.hpp"
#include "model/zhel.hpp"
#include "san/san_metrics.hpp"
#include "san/snapshot.hpp"

namespace {

double mean_log_knn(const std::vector<std::pair<std::uint64_t, double>>& knn) {
  if (knn.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& [k, value] : knn) acc += std::log10(std::max(value, 1e-9));
  return acc / static_cast<double>(knn.size());
}

}  // namespace

int main() {
  using namespace san;
  const auto gplus = bench::make_gplus_dataset();
  const auto target = snapshot_full(gplus);

  model::CalibrationOptions cal_options;
  cal_options.refine = true;  // probe (beta, fc) so clustering is matched too
  auto calibration = model::calibrate_generator(target, cal_options);
  calibration.params.social_node_count = target.social_node_count();
  const auto ours = snapshot_full(model::generate_san(calibration.params));

  model::ZhelParams zhel_params;
  zhel_params.social_node_count = target.social_node_count();
  const auto zhel = snapshot_full(model::generate_zhel(zhel_params));

  const std::pair<const char*, const SanSnapshot*> rows[] = {
      {"gplus", &target}, {"ours", &ours}, {"zhel", &zhel}};

  bench::header("Fig 17a/17c: attribute knn (social degree -> mean attr "
                "degree)");
  std::printf("# (network, degree, knn)\n");
  for (const auto& [name, snap] : rows) {
    std::uint64_t next = 1;
    for (const auto& [k, value] : attribute_knn(*snap)) {
      if (k < next) continue;
      std::printf("%-6s %10llu %12.3f\n", name,
                  static_cast<unsigned long long>(k), value);
      next = k + std::max<std::uint64_t>(1, k / 2);
    }
    std::printf("%-6s mean log10(knn) = %.3f\n", name,
                mean_log_knn(attribute_knn(*snap)));
  }

  bench::header("Fig 17b/17d: clustering coefficient vs degree");
  std::printf("# (network, curve, degree, avg clustering)\n");
  for (const auto& [name, snap] : rows) {
    for (const auto& [degree, cc] : graph::clustering_by_degree(snap->social)) {
      std::printf("%-6s %-10s %12.1f %12.5f\n", name, "social", degree, cc);
    }
    for (const auto& [degree, cc] : attribute_clustering_by_degree(*snap)) {
      std::printf("%-6s %-10s %12.1f %12.5f\n", name, "attribute", degree, cc);
    }
  }

  bench::header("Average clustering summary");
  graph::ClusteringOptions options;
  options.epsilon = 0.01;
  for (const auto& [name, snap] : rows) {
    std::printf("%-6s social cc=%.5f attribute cc=%.5f\n", name,
                graph::approx_average_clustering(snap->social, options),
                average_attribute_clustering(*snap, options));
  }
  std::printf("(reproduction target: 'ours' within ~2x of gplus on both,"
              " 'zhel' far off.)\n");
  return 0;
}

// Figure 16: degree distributions of synthetic SANs — our model (16a-16d)
// vs the extended Zheleva baseline (16e-16h) — against the Google+ target.
// The reproduction target: our model yields lognormal social out/indegree
// and lognormal attribute degrees with a power-law attribute social degree
// (matching Google+); Zhel yields power-law-shaped social degrees and a
// non-lognormal attribute degree.
#include "bench_util.hpp"

#include "graph/metrics.hpp"
#include "model/calibrate.hpp"
#include "model/generator.hpp"
#include "model/zhel.hpp"
#include "san/san_metrics.hpp"
#include "san/snapshot.hpp"
#include "stats/ks.hpp"

int main() {
  using namespace san;
  const auto gplus = bench::make_gplus_dataset();
  const auto target = snapshot_full(gplus);

  // Calibrate our model against the target (the paper's guided search).
  auto calibration = model::calibrate_generator(target);
  calibration.params.social_node_count = target.social_node_count();
  const auto ours = snapshot_full(model::generate_san(calibration.params));

  model::ZhelParams zhel_params;
  zhel_params.social_node_count = target.social_node_count();
  zhel_params.mean_out_links =
      static_cast<double>(target.social_link_count()) /
      static_cast<double>(target.social_node_count());
  const auto zhel = snapshot_full(model::generate_zhel(zhel_params));

  std::printf("calibrated params: mu_l=%.2f sigma_l=%.2f ms=%.2f mu_a=%.2f "
              "sigma_a=%.2f p=%.3f declare=%.2f beta=%.0f fc=%.2f\n",
              calibration.params.mu_l, calibration.params.sigma_l,
              calibration.params.ms, calibration.params.mu_a,
              calibration.params.sigma_a, calibration.params.p_new_attribute,
              calibration.params.attribute_declare_prob,
              calibration.params.beta, calibration.params.fc);

  struct Row {
    const char* name;
    const SanSnapshot* snap;
  };
  const Row rows[] = {{"gplus", &target}, {"ours", &ours}, {"zhel", &zhel}};

  const auto compare = [&](const char* title,
                           auto histogram_of) {
    bench::header(title);
    const auto target_hist = histogram_of(target);
    for (const auto& row : rows) {
      const auto hist = histogram_of(*row.snap);
      const auto sel = stats::select_degree_model(hist, 1);
      std::printf("%-6s best=%-22s ln(mu=%6.2f sigma=%5.2f ks=%.4f) "
                  "pl(alpha=%5.2f ks=%.4f) ks-vs-gplus=%.4f\n",
                  row.name, to_string(sel.best).c_str(), sel.lognormal.mu,
                  sel.lognormal.sigma, sel.lognormal.ks, sel.power_law.alpha,
                  sel.power_law.ks, stats::ks_two_sample(hist, target_hist));
    }
  };

  compare("Fig 16a/16e: social outdegree", [](const SanSnapshot& s) {
    return graph::out_degree_histogram(s.social);
  });
  compare("Fig 16b/16f: social indegree", [](const SanSnapshot& s) {
    return graph::in_degree_histogram(s.social);
  });
  compare("Fig 16c/16g: attribute degree of social nodes",
          [](const SanSnapshot& s) { return attribute_degree_histogram(s); });
  compare("Fig 16d/16h: social degree of attribute nodes",
          [](const SanSnapshot& s) {
            return attribute_social_degree_histogram(s);
          });

  std::printf("\n(reproduction target: 'ours' matches gplus on every row —"
              " smaller ks-vs-gplus than 'zhel' — and the best-fit family"
              " agrees with gplus.)\n");
  return 0;
}

// The paper's "implications" results (§4.2, §4.4, §7), quantified end to
// end on the synthetic Google+ crawl:
//   - reciprocity prediction should incorporate attributes (§4.2),
//   - link prediction and attribute inference benefit from the SAN view,
//   - attribute-aware community detection exploits the attribute structure.
#include "bench_util.hpp"

#include <string>
#include <vector>

#include "apps/attr_inference.hpp"
#include "apps/community.hpp"
#include "apps/linkpred.hpp"
#include "apps/reciprocity_pred.hpp"
#include "san/snapshot.hpp"
#include "stats/rng.hpp"

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const auto halfway = snapshot_at(net, 49.0);
  const auto final_snap = snapshot_full(net);

  bench::header("Reciprocity prediction (§4.2 implication)");
  {
    stats::Rng rng(11);
    const auto result = apps::evaluate_reciprocity_prediction(
        halfway, final_snap, {}, 50'000, rng);
    std::printf("one-directional links at halfway: %llu matured, %llu did "
                "not\n",
                static_cast<unsigned long long>(result.positives),
                static_cast<unsigned long long>(result.negatives));
    std::printf("AUC common-neighbors only:   %.3f\n", result.auc_structural);
    std::printf("AUC + shared attributes:     %.3f\n", result.auc_san);
    std::printf("(paper: any reciprocity predictor should incorporate"
                " attributes)\n");
  }

  bench::header("Link prediction (§7: attribute-aware recommendation)");
  {
    stats::Rng rng(13);
    const auto result = apps::evaluate_link_prediction(final_snap,
                                                       20'000, {}, rng);
    std::printf("AUC common-neighbors only:   %.3f\n", result.auc_social_only);
    std::printf("AUC + type-weighted attrs:   %.3f\n", result.auc_san);
  }

  bench::header("Attribute inference ([17]'s task on our SAN)");
  {
    stats::Rng rng(17);
    apps::AttributeInferenceOptions options;
    const auto result =
        apps::evaluate_attribute_inference(final_snap, 20'000, options, rng);
    std::printf("holdout recall@%zu over %llu evaluable links: %.3f\n",
                options.top_k,
                static_cast<unsigned long long>(result.evaluated),
                result.recall_at_k);
    std::printf("(chance level ~ top_k / %zu attributes = %.4f)\n",
                final_snap.populated_attribute_count(),
                static_cast<double>(options.top_k) /
                    static_cast<double>(
                        final_snap.populated_attribute_count()));
  }

  bench::header("Community detection (§3.4 motivation, [62])");
  {
    // Planted-partition benchmark: G attribute communities with strong
    // intra-community linking plus cross-community noise. The SAN-aware
    // detector (attribute votes) recovers the planted structure at noise
    // levels where social-only label propagation fragments.
    constexpr std::size_t kGroups = 20;
    constexpr std::size_t kPerGroup = 150;
    stats::Rng rng(23);
    std::printf("%12s %22s %22s\n", "noise", "NMI social-only",
                "NMI attribute-aware");
    for (const double noise : {0.2, 0.4, 0.6}) {
      SocialAttributeNetwork planted;
      std::vector<std::uint32_t> truth_label;
      for (std::size_t g = 0; g < kGroups; ++g) {
        for (std::size_t i = 0; i < kPerGroup; ++i) {
          planted.add_social_node(0.0);
          truth_label.push_back(static_cast<std::uint32_t>(g));
        }
      }
      for (std::size_t g = 0; g < kGroups; ++g) {
        const auto a = planted.add_attribute_node(AttributeType::kEmployer,
                                                  "group-" + std::to_string(g));
        for (std::size_t i = 0; i < kPerGroup; ++i) {
          planted.add_attribute_link(static_cast<NodeId>(g * kPerGroup + i), a);
        }
      }
      const std::size_t n = planted.social_node_count();
      for (NodeId u = 0; u < n; ++u) {
        for (int k = 0; k < 6; ++k) {
          NodeId v;
          if (rng.uniform() < noise) {
            v = static_cast<NodeId>(rng.uniform_index(n));
          } else {
            const std::size_t g = u / kPerGroup;
            v = static_cast<NodeId>(g * kPerGroup +
                                    rng.uniform_index(kPerGroup));
          }
          if (v != u) planted.add_social_link(u, v, 0.0);
        }
      }
      const auto snap = snapshot_full(planted);
      apps::CommunityOptions social_only;
      apps::CommunityOptions san_aware;
      san_aware.attribute_weight = 6.0;
      const auto plain = apps::detect_communities(snap, social_only);
      const auto aware = apps::detect_communities(snap, san_aware);
      std::printf("%12.1f %22.3f %22.3f\n", noise,
                  apps::normalized_mutual_information(plain.label, truth_label),
                  apps::normalized_mutual_information(aware.label,
                                                      truth_label));
    }
  }
  return 0;
}

// Validation of the paper's theorems on generated networks:
//   Theorem 1 — social outdegree is lognormal with
// mu = (mu_l + sigma_l g(gamma)) / ms, sigma^2 = sigma_l^2 (1-delta)/ms^2.
//   Theorem 2 — attribute-node social degree is power law with exponent
//       (2 - p) / (1 - p).
//   Theorem 3 — Algorithm 2's clustering estimate is within eps of the
//       exact value with probability >= 1 - 1/nu.
#include "bench_util.hpp"

#include <cmath>

#include "graph/clustering.hpp"
#include "graph/metrics.hpp"
#include "model/generator.hpp"
#include "model/theory.hpp"
#include "san/san_metrics.hpp"
#include "san/snapshot.hpp"
#include "stats/rng.hpp"

int main() {
  using namespace san;

  bench::header("Theorem 1: outdegree lognormal parameters (fit vs predicted)");
  std::printf("%8s %8s %6s | %10s %10s | %10s %10s\n", "mu_l", "sigma_l", "ms",
              "pred-mu", "fit-mu", "pred-sigma", "fit-sigma");
  for (const auto& [mu_l, sigma_l, ms] :
       {std::tuple{1.5, 0.8, 1.0}, std::tuple{1.8, 1.0, 1.0},
        std::tuple{2.4, 1.2, 1.0}, std::tuple{2.4, 0.8, 2.0},
        std::tuple{1.0, 1.5, 0.8}}) {
    model::GeneratorParams params;
    params.social_node_count = 30'000;
    params.mu_l = mu_l;
    params.sigma_l = sigma_l;
    params.ms = ms;
    params.seed = 7070;
    const auto snap = snapshot_full(model::generate_san(params));
    const auto fit = stats::fit_discrete_lognormal(
        graph::out_degree_histogram(snap.social), 1);
    const auto pred = model::predicted_outdegree_lognormal(mu_l, sigma_l, ms);
    std::printf("%8.2f %8.2f %6.2f | %10.3f %10.3f | %10.3f %10.3f\n", mu_l,
                sigma_l, ms, pred.mu, fit.mu, pred.sigma, fit.sigma);
  }

  bench::header("Theorem 2: attribute power-law exponent (fit vs (2-p)/(1-p))");
  std::printf("%8s %14s %12s\n", "p", "predicted", "fitted");
  for (const double p : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    model::GeneratorParams params;
    params.social_node_count = 30'000;
    params.p_new_attribute = p;
    params.attribute_declare_prob = 1.0;
    params.seed = 8080;
    const auto snap = snapshot_full(model::generate_san(params));
    const auto fit =
        stats::fit_power_law_scan(attribute_social_degree_histogram(snap));
    std::printf("%8.2f %14.3f %12.3f\n", p,
                model::predicted_attribute_powerlaw_exponent(p), fit.alpha);
  }

  bench::header("Theorem 3: clustering estimator error vs (eps, nu) bound");
  model::GeneratorParams params;
  params.social_node_count = 5'000;
  params.seed = 9090;
  const auto snap = snapshot_full(model::generate_san(params));
  const double exact = graph::exact_average_clustering(snap.social);
  std::printf("exact average clustering: %.5f\n", exact);
  std::printf("%8s %8s %10s %14s %14s\n", "eps", "nu", "samples",
              "max|err|/eps",
              "violations");
  for (const auto& [eps, nu] :
       {std::pair{0.02, 20.0}, std::pair{0.01, 50.0}, std::pair{0.005,
                                                                100.0}}) {
    graph::ClusteringOptions options;
    options.epsilon = eps;
    options.nu = nu;
    int violations = 0;
    double worst = 0.0;
    constexpr int kRuns = 20;
    for (int run = 0; run < kRuns; ++run) {
      options.seed = 100 + static_cast<std::uint64_t>(run);
      const double approx = graph::approx_average_clustering(snap.social,
                                                             options);
      const double err = std::abs(approx - exact);
      worst = std::max(worst, err);
      if (err > eps) ++violations;
    }
    std::printf("%8.3f %8.0f %10llu %14.2f %11d/%d\n", eps, nu,
                static_cast<unsigned long long>(
                    graph::clustering_sample_count(options)),
                worst / eps, violations, kRuns);
  }
  std::printf("(bound: violations <= runs/nu in expectation)\n");
  return 0;
}

// Figure 8: evolution of the attribute density (8a: rapid rise in phase I,
// flat in II, slight decline after the public release) and the average
// attribute clustering coefficient (8b: stable through phase II).
#include "bench_util.hpp"

#include "san/san_metrics.hpp"
#include "san/timeline.hpp"

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const SanTimeline timeline(net);

  bench::header("Fig 8: attribute density and attribute clustering evolution");
  std::printf("%5s %18s %24s\n", "day", "attribute-density",
              "avg-attribute-clustering");
  graph::ClusteringOptions options;
  options.epsilon = 0.01;
  const auto days = bench::snapshot_days();
  timeline.sweep(days, [&](double day, const SanSnapshot& snap) {
    options.seed = static_cast<std::uint64_t>(day) * 31;
    std::printf("%5.0f %18.3f %24.5f\n", day, attribute_density(snap),
                average_attribute_clustering(snap, options));
  });

  const auto d20 = attribute_density(timeline.snapshot_at(20));
  const auto d75 = attribute_density(timeline.snapshot_at(75));
  const auto d98 = attribute_density(timeline.snapshot_at(98));
  std::printf("\nphase deltas: II %+0.3f, III %+0.3f"
              " (paper: flat in II, slight decline in III)\n",
              d75 - d20, d98 - d75);
  return 0;
}

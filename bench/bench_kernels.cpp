// bench_kernels — microbench + identity gate for the SIMD kernel layer
// (src/core/simd): sorted-u32 intersection count/into at every dispatch
// level this host supports.
//
//   1. HARD identity gate: randomized corpora (balanced, skewed past the
//      gallop ratio, width-straddling tails, unaligned offsets, edge
//      shapes) — every level's count and into outputs must be
//      byte-identical to scalar's; any deviation exits 1.
//   2. Roofline-style report: per kernel x level, elements/cycle and
//      GB/s over a balanced corpus, plus the scalar-relative speedup.
//      `--json OUT` writes kernel_*_speedup_* metrics; CI gates them
//      against the {"floor": ...} entries in tools/bench_baseline.json
//      (hard >= floor; skipped when the host lacks the level, which the
//      bench signals by omitting the metric).
//
// The corpus is seeded — identical runs, identical bytes — and the
// speedups are single-thread scalar-relative ratios, insensitive to
// runner core counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/simd/simd.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace {

namespace simd = san::core::simd;

std::uint64_t cycles_now() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return 0;  // elements/cycle reads 0: informational only off x86
#endif
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Pair {
  std::vector<std::uint32_t> a, b;
};

/// `size` distinct sorted u32 drawn from [lo, lo + universe) via random
/// gaps — sorted by construction, strictly ascending (the CSR invariant).
std::vector<std::uint32_t> sorted_set(std::mt19937_64& rng, std::size_t size,
                                      std::uint32_t lo,
                                      std::uint32_t universe) {
  std::vector<std::uint32_t> out;
  out.reserve(size);
  if (size == 0) return out;
  const double mean_gap =
      std::max(1.0, static_cast<double>(universe) / (size + 1));
  std::uniform_int_distribution<std::uint32_t> gap(
      1, static_cast<std::uint32_t>(2.0 * mean_gap));
  std::uint32_t value = lo;
  for (std::size_t i = 0; i < size; ++i) {
    value += gap(rng);
    out.push_back(value);
  }
  return out;
}

/// The identity corpus: directed edge shapes plus randomized sizes that
/// straddle the vector widths, the gallop ratio, and unaligned offsets.
std::vector<Pair> identity_corpus() {
  std::mt19937_64 rng(0xC0FFEE);
  std::vector<Pair> corpus;
  // Edge shapes: empty, single, equal, disjoint.
  corpus.push_back({{}, {}});
  corpus.push_back({{}, sorted_set(rng, 5, 0, 100)});
  corpus.push_back({{7}, {7}});
  corpus.push_back({{7}, sorted_set(rng, 1000, 0, 10'000)});
  {
    auto equal = sorted_set(rng, 300, 0, 3000);
    corpus.push_back({equal, equal});
    corpus.push_back({sorted_set(rng, 200, 0, 1000),
                      sorted_set(rng, 200, 100'000, 1000)});
  }
  // Width straddling: every size pair in [0, 40) x {0..9, 31..40}.
  for (std::size_t na = 0; na < 40; ++na) {
    for (std::size_t nb : {0, 1, 3, 7, 8, 9, 31, 32, 33, 39}) {
      corpus.push_back({sorted_set(rng, na, 0, 64),
                        sorted_set(rng, nb, 0, 64)});
    }
  }
  // Randomized balanced and skewed shapes; 1:1000 crosses the gallop
  // ratio, 1:32 sits exactly on it.
  std::uniform_int_distribution<std::size_t> size_dist(0, 3000);
  for (int i = 0; i < 400; ++i) {
    const std::size_t na = size_dist(rng);
    corpus.push_back({sorted_set(rng, na, 0, 6000),
                      sorted_set(rng, size_dist(rng), 0, 6000)});
    corpus.push_back({sorted_set(rng, na / 100 + 1, 0, 6000),
                      sorted_set(rng, na + 1000, 0, 6000)});
  }
  corpus.push_back({sorted_set(rng, 32, 0, 2'000'000),
                    sorted_set(rng, 32 * 1000, 0, 2'000'000)});
  corpus.push_back({sorted_set(rng, 64, 0, 100'000),
                    sorted_set(rng, 64 * 32, 0, 100'000)});
  return corpus;
}

/// Unaligned view: drop `offset` leading elements so SIMD loads start off
/// a 16/32-byte boundary.
std::span<const std::uint32_t> offset_span(const std::vector<std::uint32_t>& v,
                                           std::size_t offset) {
  offset = std::min(offset, v.size());
  return {v.data() + offset, v.size() - offset};
}

bool identity_gate(const std::vector<Pair>& corpus,
                   const std::vector<simd::Level>& levels) {
  std::vector<std::uint32_t> expect, got;
  for (std::size_t idx = 0; idx < corpus.size(); ++idx) {
    const auto& pair = corpus[idx];
    for (const std::size_t offset : {0, 1, 3, 7}) {
      const auto a = offset_span(pair.a, offset);
      const auto b = offset_span(pair.b, offset);
      const std::size_t cap = std::min(a.size(), b.size()) + simd::kIntoPad;
      expect.assign(cap, 0);
      got.assign(cap, 0);
      simd::set_level(simd::Level::kScalar);
      const std::size_t want_n = simd::intersect_count(a, b);
      const std::size_t want_into = simd::intersect_into(a, b, expect.data());
      if (want_into != want_n) {
        std::fprintf(stderr,
                     "FAIL: scalar count %zu != into %zu (case %zu+%zu)\n",
                     want_n, want_into, idx, offset);
        return false;
      }
      for (const simd::Level level : levels) {
        simd::set_level(level);
        const std::size_t n = simd::intersect_count(a, b);
        const std::size_t m = simd::intersect_into(a, b, got.data());
        if (n != want_n || m != want_n ||
            std::memcmp(got.data(), expect.data(),
                        want_n * sizeof(std::uint32_t)) != 0) {
          std::fprintf(stderr,
                       "FAIL: %s deviates from scalar on case %zu (offset "
                       "%zu): count %zu/%zu into %zu\n",
                       simd::level_name(level), idx, offset, n, want_n, m);
          return false;
        }
      }
    }
  }
  return true;
}

/// Balanced timing corpus: the shape the serving hot loops see (mutual
/// counts, FoF intersections) — same-universe adjacency lists with
/// substantial overlap, too close in size for the gallop path.
std::vector<Pair> timing_corpus() {
  std::mt19937_64 rng(0xBEEF);
  std::vector<Pair> corpus;
  for (int i = 0; i < 64; ++i) {
    corpus.push_back({sorted_set(rng, 4096, 0, 16'384),
                      sorted_set(rng, 4096, 0, 16'384)});
  }
  return corpus;
}

struct Timing {
  double seconds = 0.0;     // best-of-trials wall time for one sweep
  double cycles = 0.0;      // matching rdtsc delta
  std::uint64_t checksum = 0;
};

template <typename Sweep>
Timing time_sweep(Sweep&& sweep) {
  Timing best;
  best.seconds = std::numeric_limits<double>::infinity();
  (void)sweep();  // warm-up: page in the corpus, settle the table
  for (int trial = 0; trial < 3; ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = cycles_now();
    const std::uint64_t checksum = sweep();
    const std::uint64_t c1 = cycles_now();
    const double s = seconds_since(t0);
    if (s < best.seconds) {
      best.seconds = s;
      best.cycles = static_cast<double>(c1 - c0);
      best.checksum = checksum;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  san::bench::JsonReport report;

  std::vector<simd::Level> levels{simd::Level::kScalar};
  for (const simd::Level level : {simd::Level::kSse, simd::Level::kAvx2}) {
    if (simd::set_level(level)) levels.push_back(level);
  }
  std::printf("detected level: %s; testing:",
              simd::level_name(simd::detected_level()));
  for (const simd::Level level : levels) {
    std::printf(" %s", simd::level_name(level));
  }
  std::printf("\n");

  san::bench::header("byte-identity gate: every level vs scalar");
  const auto corpus = identity_corpus();
  std::printf("corpus: %zu randomized pairs x 4 offsets\n", corpus.size());
  if (!identity_gate(corpus, levels)) return 1;
  std::printf("identical: count and into at every level\n");

  san::bench::header("roofline: balanced 4096x4096 intersections");
  const auto pairs = timing_corpus();
  std::size_t elements = 0;
  for (const auto& pair : pairs) elements += pair.a.size() + pair.b.size();
  constexpr int kReps = 100;
  const double total_elements = static_cast<double>(elements) * kReps;
  const double total_bytes = total_elements * sizeof(std::uint32_t);
  std::printf("%zu pairs, %zu elements/sweep, %d sweeps per timing\n",
              pairs.size(), elements, kReps);

  std::printf("%-8s %-6s %14s %14s %10s %9s\n", "kernel", "level",
              "elems/s", "GB/s", "elems/cyc", "speedup");
  double scalar_count_s = 0.0, scalar_into_s = 0.0;
  std::uint64_t want_count_sum = 0, want_into_sum = 0;
  std::vector<std::uint32_t> out(4096 + simd::kIntoPad);
  for (const simd::Level level : levels) {
    simd::set_level(level);
    const Timing count_t = time_sweep([&] {
      std::uint64_t sum = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        for (const auto& pair : pairs) {
          sum += simd::intersect_count(pair.a, pair.b);
        }
      }
      return sum;
    });
    const Timing into_t = time_sweep([&] {
      std::uint64_t sum = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        for (const auto& pair : pairs) {
          const std::size_t n =
              simd::intersect_into(pair.a, pair.b, out.data());
          sum += n + out[n / 2];
        }
      }
      return sum;
    });
    if (level == simd::Level::kScalar) {
      scalar_count_s = count_t.seconds;
      scalar_into_s = into_t.seconds;
      want_count_sum = count_t.checksum;
      want_into_sum = into_t.checksum;
    } else if (count_t.checksum != want_count_sum ||
               into_t.checksum != want_into_sum) {
      std::fprintf(stderr, "FAIL: %s timing checksum deviates from scalar\n",
                   simd::level_name(level));
      return 1;
    }
    const char* name = simd::level_name(level);
    const double count_speedup = scalar_count_s / count_t.seconds;
    const double into_speedup = scalar_into_s / into_t.seconds;
    std::printf("%-8s %-6s %14.3e %14.2f %10.2f %8.2fx\n", "count", name,
                total_elements / count_t.seconds,
                total_bytes / count_t.seconds / 1e9,
                count_t.cycles > 0 ? total_elements / count_t.cycles : 0.0,
                count_speedup);
    std::printf("%-8s %-6s %14.3e %14.2f %10.2f %8.2fx\n", "into", name,
                total_elements / into_t.seconds,
                total_bytes / into_t.seconds / 1e9,
                into_t.cycles > 0 ? total_elements / into_t.cycles : 0.0,
                into_speedup);
    if (level != simd::Level::kScalar) {
      report.add(std::string("kernel_count_speedup_") + name, count_speedup);
      report.add(std::string("kernel_into_speedup_") + name, into_speedup);
    }
  }

  if (!report.write_if_requested(argc, argv)) return 1;
  std::printf("OK\n");
  return 0;
}

// Figure 13a: fine-grained reciprocity r_{s,a} — among links that were
// one-directional at the halfway crawl, the fraction reciprocated by the
// final crawl, split by common social neighbors (s, bucketed) and common
// attributes (a in {0, 1, >=2}). The paper finds ~2x higher reciprocity
// with shared attributes, diminishing returns beyond ~10 common neighbors.
// Figure 13b: average attribute clustering coefficient per attribute type —
// Employer communities are far denser than City communities.
#include "bench_util.hpp"

#include "san/influence.hpp"
#include "san/timeline.hpp"

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const SanTimeline timeline(net);

  bench::header("Fig 13a: fine-grained reciprocity r_{s,a}");
  const auto halfway = timeline.snapshot_at(49.0);
  const auto final_snap = timeline.snapshot_full();
  const auto cells = fine_grained_reciprocity(halfway, final_snap, 5, 50);

  std::printf("%18s %14s %14s %14s\n", "common-neighbors", "a=0", "a=1",
              "a>=2");
  for (std::size_t b = 0; b < cells.size() / 3; ++b) {
    const auto& c0 = cells[b * 3 + 0];
    const auto& c1 = cells[b * 3 + 1];
    const auto& c2 = cells[b * 3 + 2];
    if (c0.links + c1.links + c2.links < 10) continue;
    std::printf("        [%2zu, %2zu) ", c0.common_social_lo,
                c0.common_social_hi);
    for (const auto* cell : {&c0, &c1, &c2}) {
      if (cell->links >= 5) {
        std::printf(" %6.3f (n=%4llu)", cell->rate(),
                    static_cast<unsigned long long>(cell->links));
      } else {
        std::printf(" %6s (n=%4llu)", "-",
                    static_cast<unsigned long long>(cell->links));
      }
    }
    std::printf("\n");
  }

  // Aggregate ratio: shared-attribute links vs no-shared-attribute links.
  std::uint64_t l0 = 0, r0 = 0, l1 = 0, r1 = 0;
  for (const auto& cell : cells) {
    if (cell.common_attr == 0) {
      l0 += cell.links;
      r0 += cell.reciprocated;
    } else {
      l1 += cell.links;
      r1 += cell.reciprocated;
    }
  }
  const double rate0 = l0 ? static_cast<double>(r0) / l0 : 0.0;
  const double rate1 = l1 ? static_cast<double>(r1) / l1 : 0.0;
  std::printf("\naggregate: no-shared-attr %.3f vs shared-attr %.3f -> ratio"
              " %.2fx (paper: ~2x)\n",
              rate0, rate1, rate1 / std::max(rate0, 1e-9));

  bench::header("Fig 13b: average attribute clustering coefficient by type");
  graph::ClusteringOptions options;
  options.epsilon = 0.01;
  const auto by_type = clustering_by_attribute_type(final_snap, options);
  for (const auto type : {AttributeType::kCity, AttributeType::kSchool,
                          AttributeType::kMajor, AttributeType::kEmployer}) {
    std::printf("%-10s %10.5f\n", to_string(type).c_str(),
                by_type[static_cast<std::size_t>(type)]);
  }
  std::printf("(paper: Employer >> School/Major > City)\n");
  return 0;
}

// Figure 5: social out/indegree distributions with best-fit curves — the
// paper's headline measurement is that both are best modeled by a DISCRETE
// LOGNORMAL, not the power law of most earlier social networks.
// Figure 6: evolution of the fitted lognormal (mu, sigma) over time.
#include "bench_util.hpp"

#include "graph/metrics.hpp"
#include "san/timeline.hpp"
#include "stats/distributions.hpp"
#include "stats/vuong.hpp"

namespace {

/// Vuong closeness test between the fitted lognormal and power law — the
/// decision rule of Clauset et al. [10] that the paper's "best modeled by a
/// lognormal" statements rest on.
void print_vuong(const char* label, const san::stats::Histogram& hist,
                 const san::stats::ModelSelection& sel) {
  const san::stats::DiscreteLognormal ln(sel.lognormal.mu, sel.lognormal.sigma,
                                         1);
  const san::stats::DiscretePowerLaw pl(sel.power_law.alpha, 1);
  const auto vuong = san::stats::vuong_test(
      hist, [&](std::uint64_t k) { return ln.log_pmf(k); },
      [&](std::uint64_t k) { return pl.log_pmf(k); }, 1);
  std::printf("%-28s Vuong lognormal-vs-power-law: statistic %+.1f p=%.2g"
              " -> %s\n",
              label, vuong.statistic, vuong.p_value,
              vuong.favors_a() ? "lognormal (significant)"
              : vuong.favors_b() ? "power law (significant)"
                                 : "inconclusive");
}

}  // namespace

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const SanTimeline timeline(net);
  const auto final_snap = timeline.snapshot_full();

  bench::header("Fig 5a: social outdegree distribution");
  const auto out_hist = graph::out_degree_histogram(final_snap.social);
  bench::print_pdf("outdeg", out_hist);
  const auto out_sel = stats::select_degree_model(out_hist, 1);
  bench::print_selection("social outdegree", out_sel);
  bench::print_lognormal_fit("social outdegree", out_sel.lognormal);
  print_vuong("social outdegree", out_hist, out_sel);

  bench::header("Fig 5b: social indegree distribution");
  const auto in_hist = graph::in_degree_histogram(final_snap.social);
  bench::print_pdf("indeg", in_hist);
  const auto in_sel = stats::select_degree_model(in_hist, 1);
  bench::print_selection("social indegree", in_sel);
  bench::print_lognormal_fit("social indegree", in_sel.lognormal);
  print_vuong("social indegree", in_hist, in_sel);

  bench::header("Fig 6: evolution of lognormal (mu, sigma)");
  std::printf("%5s %10s %10s %10s %10s\n", "day", "out-mu", "out-sigma",
              "in-mu", "in-sigma");
  const auto days = bench::snapshot_days();
  timeline.sweep(days, [](double day, const san::SanSnapshot& snap) {
    const auto fit_out = stats::fit_discrete_lognormal(
        graph::out_degree_histogram(snap.social), 1);
    const auto fit_in = stats::fit_discrete_lognormal(
        graph::in_degree_histogram(snap.social), 1);
    std::printf("%5.0f %10.3f %10.3f %10.3f %10.3f\n", day, fit_out.mu,
                fit_out.sigma, fit_in.mu, fit_in.sigma);
  });
  return 0;
}

// Figure 7: social joint degree distribution — knn (7a) and the evolution
// of the assortativity coefficient (7b). The paper's finding: Google+ is
// close to NEUTRAL (r ~ 0, slightly positive early, slightly negative after
// public release), unlike the positive assortativity of Flickr/LiveJournal.
// Figure 12: the attribute JDD — attribute knn (12a) is flat/neutral and
// attribute assortativity (12b) is slightly negative and stable.
#include "bench_util.hpp"

#include "graph/metrics.hpp"
#include "san/san_metrics.hpp"
#include "san/timeline.hpp"

namespace {

/// Thin a knn curve to log-spaced degrees for readable output.
void print_knn(const char* label,
               const std::vector<std::pair<std::uint64_t, double>>& knn) {
  std::printf("# %s: (degree, knn)\n", label);
  std::uint64_t next = 1;
  for (const auto& [k, value] : knn) {
    if (k < next) continue;
    std::printf("%-10s %10llu %12.3f\n", label,
                static_cast<unsigned long long>(k), value);
    next = k + std::max<std::uint64_t>(1, k / 3);
  }
}

}  // namespace

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const SanTimeline timeline(net);
  const auto final_snap = timeline.snapshot_full();

  bench::header("Fig 7a: social knn (outdegree -> mean indegree of targets)");
  print_knn("social", graph::knn_out_in(final_snap.social));

  bench::header("Fig 12a: attribute knn (social degree -> mean attr degree)");
  print_knn("attribute", attribute_knn(final_snap));

  bench::header("Fig 7b + 12b: assortativity evolution");
  std::printf("%5s %20s %22s\n", "day", "social-assortativity",
              "attribute-assortativity");
  const auto days = bench::snapshot_days();
  timeline.sweep(days, [](double day, const san::SanSnapshot& snap) {
    std::printf("%5.0f %20.4f %22.4f\n", day, graph::assortativity(snap.social),
                attribute_assortativity(snap));
  });
  std::printf("(paper: social r declines through ~0 and goes slightly negative;"
              " attribute r stays ~-0.03..-0.05)\n");
  return 0;
}

// Live-ingestion gate: replays the synthetic Google+ stream (seeded at day
// 20, one ingest batch per day through day 98) through san::LiveTimeline
// and
//
//   1. FAILS (exit 1) unless every published epoch is bit-identical
//      (snapshot fingerprint over every observable span) to a from-scratch
//      SanTimeline rebuild of the same ingested log prefix at the same
//      tip — the rebuild IS the baseline being timed, so the oracle is
//      free;
//   2. re-runs the replay at SAN_THREADS=1/2/4/8 and FAILS on any epoch
//      fingerprint deviating from the first run;
//   3. reports ingest-while-serving throughput: a reader thread hammers
//      `now` + historical queries through a live-bound SnapshotCache for
//      the whole replay (readers resolve the tip with one atomic load and
//      never block on ingest) and FAILS if any query errors;
//   4. writer scaling: replays the same stream through
//      san::ShardedLiveTimeline at shard counts 1/2/4/8 x SAN_THREADS
//      1/2/4/8 and FAILS unless every stitched epoch fingerprint matches
//      the leg-1 reference (itself gated per epoch against the
//      single-shard rebuild of the merged log) — plus one full final
//      merged-log rebuild gate per shard count; reports ingest events/s
//      and epoch-stitch latency per shard count;
//   5. FAILS unless the live ingest path beats the rebuild-per-epoch
//      baseline by >= 1.5x end to end.
//
// Scale with SAN_BENCH_NODES (default 60k) and SAN_LIVE_STEP (days per
// ingest batch, default 1). `--json OUT` writes the headline metrics for
// the CI bench-regression gate.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/thread_pool.hpp"
#include "san/live_replay.hpp"
#include "san/live_timeline.hpp"
#include "san/sharded_live_timeline.hpp"
#include "san/timeline.hpp"
#include "san_testlib.hpp"
#include "serve/query_engine.hpp"

namespace {

using namespace san;

constexpr double kSeedDay = 20.0;

double live_step() {
  if (const char* env = std::getenv("SAN_LIVE_STEP")) {
    const double value = std::atof(env);
    if (value > 0.0) return value;
  }
  return 1.0;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<double> tip_grid(double max_time) {
  std::vector<double> tips;
  const double step = live_step();
  for (double tip = kSeedDay + step; tip < max_time; tip += step) {
    tips.push_back(tip);
  }
  tips.push_back(max_time + 1.0);  // final epoch covers the whole stream
  return tips;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report;
  std::printf("generating synthetic Google+ ground truth (%zu nodes)...\n",
              bench::scale());
  const auto net = bench::make_gplus_ground_truth();
  std::printf("  %zu social nodes, %llu social links, %llu attribute links\n",
              net.social_node_count(),
              static_cast<unsigned long long>(net.social_link_count()),
              static_cast<unsigned long long>(net.attribute_link_count()));

  const SanTimeline full(net);
  const auto tips = tip_grid(full.max_time());
  std::printf("replay: seed <= day %.0f, %zu ingest batches\n", kSeedDay,
              tips.size());

  // ---- Leg 1: live ingest vs rebuild-per-epoch, interleaved so both see
  // exactly the same log prefix at every epoch. ----
  bench::header("live delta ingest vs rebuild-per-epoch baseline");
  std::vector<std::uint64_t> reference;
  reference.reserve(tips.size());
  double live_s = 0.0, baseline_s = 0.0;
  {
    LiveReplay replay(net, kSeedDay);
    LiveTimelineOptions options;
    options.initial_tip = kSeedDay;
    LiveTimeline live(replay.seed, options);
    for (const double tip : tips) {
      auto batch = replay.batch_until(tip);
      const auto live_start = std::chrono::steady_clock::now();
      live.ingest(batch);
      live_s += seconds_since(live_start);
      const auto epoch = live.tip();
      reference.push_back(testlib::snapshot_fingerprint(*epoch));

      // Baseline: what publishing this epoch costs WITHOUT the frontier —
      // index the accumulated log from scratch and materialize the tip.
      const auto base_start = std::chrono::steady_clock::now();
      const SanTimeline rebuilt(live.log());
      const auto snap = rebuilt.snapshot_at(tip);
      baseline_s += seconds_since(base_start);
      if (testlib::snapshot_fingerprint(snap) != reference.back()) {
        std::fprintf(stderr,
                     "FAIL: epoch at tip %.2f deviates from the"
                     " from-scratch rebuild\n",
                     tip);
        return 1;
      }
    }
    const auto stats = live.stats();
    std::printf("  live:     %7.3f s (%llu epochs, %llu late batches,"
                " %llu activated links)\n",
                live_s, static_cast<unsigned long long>(stats.epochs),
                static_cast<unsigned long long>(stats.late_batches),
                static_cast<unsigned long long>(stats.activated_links));
    std::printf("  baseline: %7.3f s (SanTimeline rebuild + snapshot per"
                " epoch)\n",
                baseline_s);
    std::printf("  speedup:  %.2fx (acceptance >= 1.50x)\n",
                baseline_s / live_s);
  }
  std::printf("  every epoch bit-identical to its from-scratch rebuild\n");
  report.add("live_vs_rebuild_speedup", baseline_s / live_s);

  // ---- Leg 2: thread-count determinism. ----
  bench::header("epoch byte-identity at SAN_THREADS=1/2/4/8");
  const std::size_t restore_threads = core::thread_count();
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::set_thread_count(threads);
    LiveReplay replay(net, kSeedDay);
    LiveTimelineOptions options;
    options.initial_tip = kSeedDay;
    LiveTimeline live(replay.seed, options);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < tips.size(); ++i) {
      live.ingest(replay.batch_until(tips[i]));
      if (testlib::snapshot_fingerprint(*live.tip()) != reference[i]) {
        std::fprintf(stderr,
                     "FAIL: epoch %zu deviates at %zu threads\n", i,
                     threads);
        return 1;
      }
    }
    std::printf("  %zu threads: identical, %7.3f s\n", threads,
                seconds_since(start));
  }
  core::set_thread_count(restore_threads);

  // ---- Leg 3: serving while ingesting. Readers resolve the tip with one
  // atomic load; the whole replay runs under continuous query fire. ----
  bench::header("ingest-while-serving (reader thread on the live tip)");
  {
    LiveReplay replay(net, kSeedDay);
    LiveTimelineOptions options;
    options.initial_tip = kSeedDay;
    LiveTimeline live(replay.seed, options);
    const SanTimeline frozen(replay.seed);
    serve::SnapshotCache cache(frozen, 8);
    cache.bind_live(live, kSeedDay);
    serve::QueryEngine engine(cache);

    const std::vector<double> days{5.0, 12.0, 18.0,
                                   std::numeric_limits<double>::infinity()};
    auto queries = testlib::mixed_queries(512, net.social_node_count(), days,
                                          0x11fe);
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> failed{0};
    std::thread reader([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const auto results = engine.run_batch(queries);
          served.fetch_add(results.size(), std::memory_order_relaxed);
        } catch (const std::exception& e) {
          failed.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "reader error: %s\n", e.what());
        }
      }
    });

    const auto start = std::chrono::steady_clock::now();
    std::size_t events = 0;
    for (const double tip : tips) {
      auto batch = replay.batch_until(tip);
      events += batch.social_nodes.size() + batch.social_links.size() +
                batch.attribute_links.size();
      live.ingest(batch);
    }
    const double ingest_s = seconds_since(start);
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    std::printf("  ingested %zu events in %7.3f s (%.0f events/s) under"
                " query fire\n",
                events, ingest_s, events / ingest_s);
    std::printf("  reader served %llu queries meanwhile (%.0f queries/s,"
                " %llu live hits)\n",
                static_cast<unsigned long long>(served.load()),
                served.load() / ingest_s,
                static_cast<unsigned long long>(cache.stats().live_hits));
    if (failed.load() != 0) {
      std::fprintf(stderr, "FAIL: %llu reader batches errored\n",
                   static_cast<unsigned long long>(failed.load()));
      return 1;
    }
    if (served.load() == 0) {
      std::fprintf(stderr, "FAIL: reader served no queries\n");
      return 1;
    }
  }

  // ---- Leg 4: sharded multi-writer scaling. Gate pass first: every
  // stitched epoch at every shards x threads combination must reproduce
  // the leg-1 reference fingerprint (which leg 1 gated per epoch against
  // a from-scratch rebuild, so transitively every stitch equals the
  // merged-log oracle). ----
  bench::header("sharded writer scaling (stitched-epoch byte-identity)");
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      core::set_thread_count(threads);
      LiveReplay replay(net, kSeedDay);
      ShardedLiveTimelineOptions options;
      options.shards = shards;
      options.initial_tip = kSeedDay;
      ShardedLiveTimeline live(replay.seed, options);
      for (std::size_t i = 0; i < tips.size(); ++i) {
        live.ingest(replay.batch_until(tips[i]));
        if (testlib::snapshot_fingerprint(*live.tip()) != reference[i]) {
          std::fprintf(stderr,
                       "FAIL: stitched epoch %zu deviates at %zu shards,"
                       " %zu threads\n",
                       i, shards, threads);
          return 1;
        }
      }
    }
    std::printf("  %zu shards: identical at 1/2/4/8 threads\n", shards);
  }
  core::set_thread_count(restore_threads);
  std::printf("  every stitched epoch bit-identical to the single-shard"
              " reference\n");

  // Timing pass: one replay per shard count at ambient threads, publish
  // cadence suppressed so each explicit publish() times one full epoch
  // stitch. One final merged-log rebuild gate per shard count.
  bench::header("sharded ingest throughput + epoch-stitch latency");
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    LiveReplay replay(net, kSeedDay);
    ShardedLiveTimelineOptions options;
    options.shards = shards;
    options.batches_per_epoch = tips.size() + 2;  // publish only explicitly
    options.initial_tip = kSeedDay;
    ShardedLiveTimeline live(replay.seed, options);
    std::size_t events = 0;
    double ingest_s = 0.0, stitch_sum_ms = 0.0, stitch_max_ms = 0.0;
    for (const double tip : tips) {
      auto batch = replay.batch_until(tip);
      events += batch.social_nodes.size() + batch.social_links.size() +
                batch.attribute_links.size();
      const auto ingest_start = std::chrono::steady_clock::now();
      live.ingest(batch);
      ingest_s += seconds_since(ingest_start);
      const auto stitch_start = std::chrono::steady_clock::now();
      live.publish();
      const double stitch_ms = seconds_since(stitch_start) * 1e3;
      stitch_sum_ms += stitch_ms;
      if (stitch_ms > stitch_max_ms) stitch_max_ms = stitch_ms;
    }
    const auto tip = live.tip();
    const SanTimeline merged(live.merged_log());
    if (testlib::snapshot_fingerprint(merged.snapshot_at(tip->time)) !=
        testlib::snapshot_fingerprint(*tip)) {
      std::fprintf(stderr,
                   "FAIL: final epoch at %zu shards deviates from the"
                   " merged-log rebuild\n",
                   shards);
      return 1;
    }
    const double events_per_s = events / ingest_s;
    const double stitch_mean_ms = stitch_sum_ms / tips.size();
    std::printf("  %zu shards: %9.0f events/s ingest, stitch %7.2f ms"
                " mean / %7.2f ms max\n",
                shards, events_per_s, stitch_mean_ms, stitch_max_ms);
    char name[48];
    std::snprintf(name, sizeof(name), "shard%zu_events_per_s", shards);
    report.add(name, events_per_s);
    std::snprintf(name, sizeof(name), "shard%zu_stitch_mean_ms", shards);
    report.add(name, stitch_mean_ms);
    std::snprintf(name, sizeof(name), "shard%zu_stitch_max_ms", shards);
    report.add(name, stitch_max_ms);
  }
  std::printf("  final epochs bit-identical to their merged-log rebuilds\n");

  if (live_s * 1.5 > baseline_s) {
    std::fprintf(stderr,
                 "FAIL: live ingest (%.3f s) not >= 1.5x faster than the"
                 " rebuild-per-epoch baseline (%.3f s)\n",
                 live_s, baseline_s);
    return 1;
  }
  if (!report.write_if_requested(argc, argv)) return 1;
  std::printf("OK\n");
  return 0;
}

// Snapshot-sweep gate: replays the paper's 79 daily crawls over a generated
// SAN four ways — the SEED algorithm (unsorted edge list canonicalized per
// day + vector<vector> attribute layer, reproduced below), the current
// naive san::snapshot_at (full log re-scan per day, shared fast builders),
// a SanTimeline full-rebuild sweep (O(prefix) per day), and the delta sweep
// (advance day to day, O(new links) per day) — and FAILS (exit 1) if any
// per-day metric of either timeline path deviates from the naive path, if
// the seed-path counts disagree, or if the delta-sweep metrics change at
// 1/2/4/8 threads. The acceptance speedups compare the delta sweep against
// the seed path (>= 3x) and against the full-rebuild sweep (>= 1.5x).
// Scale with SAN_BENCH_NODES (default 60k social nodes, ~1M links), days
// with SAN_TIMELINE_DAYS. `--json OUT` writes the headline metrics for the
// CI bench-regression gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/thread_pool.hpp"
#include "graph/metrics.hpp"
#include "san/san_metrics.hpp"
#include "san/timeline.hpp"

namespace {

using namespace san;

/// The snapshot algorithm this repo seeded with (PR <= 1): per day, filter
/// the unsorted edge list and canonicalize it from scratch (comparison
/// sort), then materialize the attribute layer as one heap-allocated vector
/// per social and per attribute node. Kept verbatim as the timing baseline
/// the acceptance criterion is defined against.
struct SeedSnapshot {
  graph::CsrGraph social;
  std::vector<std::vector<AttrId>> attributes;
  std::vector<std::vector<NodeId>> members;
  std::uint64_t attribute_link_count = 0;
};

SeedSnapshot seed_snapshot_at(const SocialAttributeNetwork& network,
                              double time) {
  SeedSnapshot snap;
  const auto social_times = network.social_node_times();
  const auto first_after =
      std::upper_bound(social_times.begin(), social_times.end(), time);
  const auto n_social =
      static_cast<std::size_t>(first_after - social_times.begin());

  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& e : network.social_log()) {
    if (e.time <= time) edges.emplace_back(e.src, e.dst);
  }
  snap.social = graph::CsrGraph::from_edges(n_social, edges);

  const std::size_t n_attr = network.attribute_node_count();
  snap.attributes.resize(n_social);
  snap.members.resize(n_attr);
  for (const auto& link : network.attribute_log()) {
    if (link.time > time) continue;
    if (link.user >= n_social) continue;
    snap.attributes[link.user].push_back(link.attr);
    snap.members[link.attr].push_back(link.user);
    ++snap.attribute_link_count;
  }
  for (auto& attrs : snap.attributes) std::sort(attrs.begin(), attrs.end());
  return snap;
}

/// Per-day fingerprint: exact counts, order-sensitive float metrics, and an
/// FNV-1a hash over every adjacency array — byte-identity, not closeness.
struct DayMetrics {
  std::uint64_t nodes = 0, edges = 0, attr_links = 0, dropped = 0;
  std::uint64_t populated = 0, created = 0;
  double density = 0.0, attr_density = 0.0, reciprocity = 0.0;
  double attr_assortativity = 0.0;
  std::uint64_t structure_hash = 0;

  bool operator==(const DayMetrics&) const = default;
};

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  return hash * 0x100000001b3ULL;
}

DayMetrics measure(const SanSnapshot& snap) {
  DayMetrics m;
  m.nodes = snap.social_node_count();
  m.edges = snap.social_link_count();
  m.attr_links = snap.attribute_link_count;
  m.dropped = snap.dropped_link_count;
  m.populated = snap.populated_attribute_count();
  m.created = snap.attribute_node_count();
  m.density = graph::density(snap.social);
  m.attr_density = attribute_density(snap);
  m.reciprocity = graph::reciprocity(snap.social);
  m.attr_assortativity = attribute_assortativity(snap);

  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (NodeId u = 0; u < snap.social_node_count(); ++u) {
    for (const NodeId v : snap.social.out(u)) h = fnv1a(h, v);
    for (const NodeId v : snap.social.in(u)) h = fnv1a(h, v ^ 0x1111);
    for (const NodeId v : snap.social.neighbors(u)) h = fnv1a(h, v ^ 0x2222);
    for (const AttrId x : snap.attributes_of(u)) h = fnv1a(h, x ^ 0x3333);
  }
  for (AttrId x = 0; x < snap.attribute_id_count(); ++x) {
    for (const NodeId v : snap.members_of(x)) h = fnv1a(h, v ^ 0x4444);
  }
  m.structure_hash = h;
  return m;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

int fail(const char* what, double day) {
  std::fprintf(stderr, "FAIL: %s deviates at day %.2f\n", what, day);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report;
  const std::size_t n_days = [] {
    if (const char* env = std::getenv("SAN_TIMELINE_DAYS")) {
      const long value = std::atol(env);
      if (value > 0) return static_cast<std::size_t>(value);
    }
    return static_cast<std::size_t>(79);
  }();

  std::printf("generating synthetic Google+ ground truth (%zu nodes)...\n",
              bench::scale());
  const auto net = bench::make_gplus_ground_truth();
  std::printf("  %zu social nodes, %llu social links, %llu attribute links\n",
              net.social_node_count(),
              static_cast<unsigned long long>(net.social_link_count()),
              static_cast<unsigned long long>(net.attribute_link_count()));

  std::vector<double> days(n_days);
  const double max_time = 98.0;
  for (std::size_t i = 0; i < n_days; ++i) {
    days[i] =
        max_time * static_cast<double>(i + 1) / static_cast<double>(n_days);
  }

  // Per-day metric evaluation is identical work on every path, so it is
  // timed separately and excluded from the speedup: the gate compares
  // snapshot MATERIALIZATION (full re-scan + sort per day vs the timeline's
  // O(prefix) rebuild).
  bench::header("seed sweep: canonicalize-from-scratch + vector<vector>");
  std::vector<std::uint64_t> seed_edges(n_days), seed_attr_links(n_days);
  double seed_s = 0.0;
  for (std::size_t i = 0; i < n_days; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto snap = seed_snapshot_at(net, days[i]);
    seed_s += seconds_since(start);
    seed_edges[i] = snap.social.edge_count();
    seed_attr_links[i] = snap.attribute_link_count;
  }
  std::printf("seed:     %7.3f s materialization (%zu snapshots)\n", seed_s,
              n_days);

  bench::header("naive sweep: snapshot_at re-scans the full logs per day");
  std::vector<DayMetrics> naive(n_days);
  double naive_s = 0.0;
  for (std::size_t i = 0; i < n_days; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto snap = snapshot_at(net, days[i]);
    naive_s += seconds_since(start);
    naive[i] = measure(snap);
  }
  std::printf("naive:    %7.3f s materialization (%zu snapshots)\n", naive_s,
              n_days);

  bench::header("timeline full-rebuild sweep: index once, O(prefix) per day");
  const auto index_start = std::chrono::steady_clock::now();
  const SanTimeline timeline(net);
  const double index_s = seconds_since(index_start);
  std::vector<DayMetrics> indexed(n_days);
  double metric_s = 0.0;
  const auto rebuild_start = std::chrono::steady_clock::now();
  {
    std::size_t i = 0;
    timeline.sweep_full_rebuild(days, [&](double, const SanSnapshot& snap) {
      const auto start = std::chrono::steady_clock::now();
      indexed[i++] = measure(snap);
      metric_s += seconds_since(start);
    });
  }
  const double rebuild_s = seconds_since(rebuild_start) - metric_s;
  std::printf("timeline: %7.3f s index + %7.3f s materialization\n", index_s,
              rebuild_s);

  bench::header("delta sweep: advance day to day, O(new links) per day");
  std::vector<DayMetrics> delta(n_days);
  metric_s = 0.0;
  const auto delta_start = std::chrono::steady_clock::now();
  {
    std::size_t i = 0;
    timeline.sweep(days, [&](double, const SanSnapshot& snap) {
      const auto start = std::chrono::steady_clock::now();
      delta[i++] = measure(snap);
      metric_s += seconds_since(start);
    });
  }
  const double delta_s = seconds_since(delta_start) - metric_s;
  std::printf("delta:    %7.3f s materialization\n", delta_s);
  std::printf("speedup vs seed path:    %0.2fx (acceptance target >= 3x)\n",
              seed_s / (index_s + delta_s));
  std::printf("speedup vs new naive:    %0.2fx\n",
              naive_s / (index_s + delta_s));
  std::printf("delta vs full rebuild:   %0.2fx (acceptance target >= 1.5x)\n",
              rebuild_s / delta_s);
  std::printf("rebuild vs seed path:    %0.2fx\n",
              seed_s / (index_s + rebuild_s));
  report.add("speedup_vs_seed", seed_s / (index_s + delta_s));
  report.add("delta_vs_full_speedup", rebuild_s / delta_s);
  // The full-rebuild leg's own ratio — the metric that caught the
  // counting-scatter engine regressing the single-core rebuild path.
  report.add("rebuild_vs_seed", seed_s / (index_s + rebuild_s));

  for (std::size_t i = 0; i < n_days; ++i) {
    if (!(naive[i] == indexed[i])) return fail("timeline vs naive", days[i]);
    if (!(naive[i] == delta[i])) return fail("delta sweep vs naive", days[i]);
    // Seed counts must agree wherever nothing was dropped (the seed path
    // silently kept links to not-yet-created attributes, which the current
    // paths drop and count instead).
    if (seed_edges[i] != indexed[i].edges) {
      return fail("seed vs timeline edge count", days[i]);
    }
    if (indexed[i].dropped == 0 &&
        seed_attr_links[i] != indexed[i].attr_links) {
      return fail("seed vs timeline attribute link count", days[i]);
    }
  }
  std::printf(
      "metric check: delta == full rebuild == naive at all %zu days\n",
      n_days);

  bench::header(
      "determinism: delta sweep byte-identical at 1/2/4/8 threads");
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::set_thread_count(threads);
    std::size_t i = 0;
    bool ok = true;
    double bad_day = 0.0;
    timeline.sweep(days, [&](double day, const SanSnapshot& snap) {
      if (ok && !(measure(snap) == indexed[i])) {
        ok = false;
        bad_day = day;
      }
      ++i;
    });
    std::printf("  %zu threads: %s\n", threads, ok ? "identical" : "DEVIATES");
    if (!ok) return fail("thread-count sweep", bad_day);
  }
  if (!report.write_if_requested(argc, argv)) return 1;
  std::printf("OK\n");
  return 0;
}

// Figure 15: percent relative log-likelihood improvement of PAPA (15a) and
// LAPA (15b) kernels over plain preferential attachment (alpha=1, beta=0),
// on the observed first-outgoing-link events. The paper's findings:
//   - alpha = 1 is the best exponent for every beta (linear degree effect),
//   - LAPA beats PAPA (linear attribute effect),
//   - PA is ~7.9% better than uniform; LAPA(1, 200) adds ~6.1% over PA.
#include "bench_util.hpp"

#include "model/attachment.hpp"

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const model::AttachmentLikelihood evaluator(net, /*event_stride=*/2);

  const double alphas[] = {0.0, 0.5, 1.0, 1.5, 2.0};
  const double papa_betas[] = {0.0, 2.0, 4.0, 6.0, 8.0};
  const double lapa_betas[] = {0.0, 10.0, 100.0, 200.0, 500.0};

  const double l_pa =
      evaluator.evaluate(model::AttachmentKind::kLapa, {1.0, 0.0}).loglik;
  const double l_uniform =
      evaluator.evaluate(model::AttachmentKind::kLapa, {0.0, 0.0}).loglik;
  std::printf("PA improvement over uniform: %.1f%% (paper: 7.9%%)\n",
              model::relative_improvement_percent(l_uniform, l_pa));

  const auto print_grid = [&](const char* title, model::AttachmentKind kind,
                              const double* betas, std::size_t n_betas) {
    bench::header(title);
    std::printf("%8s", "alpha");
    for (std::size_t b = 0; b < n_betas; ++b) std::printf("  beta=%-7.0f",
                                                          betas[b]);
    std::printf("\n");
    for (const double alpha : alphas) {
      std::printf("%8.2f", alpha);
      for (std::size_t b = 0; b < n_betas; ++b) {
        const double l = evaluator.evaluate(kind, {alpha, betas[b]}).loglik;
        std::printf("  %+11.2f", model::relative_improvement_percent(l_pa, l));
      }
      std::printf("\n");
    }
  };

  print_grid("Fig 15a: PAPA relative improvement over PA (%)",
             model::AttachmentKind::kPapa, papa_betas, 5);
  print_grid("Fig 15b: LAPA relative improvement over PA (%)",
             model::AttachmentKind::kLapa, lapa_betas, 5);

  const double l_best =
      evaluator.evaluate(model::AttachmentKind::kLapa, {1.0, 200.0}).loglik;
  std::printf("\nLAPA(alpha=1, beta=200) over PA: %.1f%% (paper: 6.1%%)\n",
              model::relative_improvement_percent(l_pa, l_best));
  return 0;
}

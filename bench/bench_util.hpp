// Shared helpers for the figure/table reproduction binaries. Each binary is
// a deterministic plain executable that prints the same rows/series the
// paper reports; absolute numbers differ (the substrate is a synthetic
// network, not the authors' 30M-user crawl) but the shapes should hold.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "crawl/crawler.hpp"
#include "crawl/gplus_synth.hpp"
#include "san/san.hpp"
#include "stats/fit.hpp"
#include "stats/summary.hpp"

namespace san::bench {

/// Machine-readable bench results (the CI bench-regression gate): the
/// self-gating benches accumulate named scalar metrics and, when invoked
/// with `--json OUT`, write them as one flat JSON object. CI uploads the
/// files as artifacts and tools/check_bench.py compares the ratio-style
/// metrics against the checked-in tools/bench_baseline.json.
class JsonReport {
 public:
  /// Register one metric. Non-finite values are recorded as 0 so the
  /// output stays valid JSON (and check_bench flags the collapse).
  void add(std::string name, double value) {
    metrics_.emplace_back(std::move(name),
                          std::isfinite(value) ? value : 0.0);
  }

  /// Write `{"name": value, ...}` to `path`; false (with a message on
  /// stderr) when the file cannot be written.
  bool write(const char* path) const {
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "FAIL: cannot write --json file '%s'\n", path);
      return false;
    }
    // Checked writes: a truncated metrics file on a full disk must fail
    // the bench run, not gate CI on half a JSON object.
    bool ok = std::fputs("{\n", out) >= 0;
    for (std::size_t i = 0; ok && i < metrics_.size(); ++i) {
      ok = std::fprintf(out, "  \"%s\": %.17g%s\n", metrics_[i].first.c_str(),
                        metrics_[i].second,
                        i + 1 < metrics_.size() ? "," : "") >= 0;
    }
    ok = ok && std::fputs("}\n", out) >= 0;
    ok = std::fclose(out) == 0 && ok;
    if (!ok) {
      std::fprintf(stderr, "FAIL: short write to --json file '%s'\n", path);
      return false;
    }
    std::printf("wrote %zu metrics to %s\n", metrics_.size(), path);
    return true;
  }

  /// write() to the path following `--json` in argv, if any. Returns
  /// false only on a write failure (no flag = nothing to do = success).
  bool write_if_requested(int argc, char** argv) const {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string_view(argv[i]) == "--json") return write(argv[i + 1]);
    }
    return true;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Bench scale: number of social nodes in the synthetic Google+ dataset.
/// Override with SAN_BENCH_NODES for larger runs.
inline std::size_t scale() {
  if (const char* env = std::getenv("SAN_BENCH_NODES")) {
    const long value = std::atol(env);
    if (value > 1000) return static_cast<std::size_t>(value);
  }
  return 60'000;
}

/// The synthetic Google+ ground truth (includes unreachable lurkers).
inline SocialAttributeNetwork make_gplus_ground_truth() {
  crawl::SyntheticGplusParams params;
  params.total_social_nodes = scale();
  return crawl::generate_synthetic_gplus(params);
}

/// The dataset every measurement bench analyzes: the CRAWLED network, just
/// as the paper measured its BFS crawl rather than the (unknowable) full
/// Google+ graph. Retrospective snapshots of the final crawl stand in for
/// the paper's 79 daily crawls.
inline SocialAttributeNetwork make_gplus_dataset() {
  const auto truth = make_gplus_ground_truth();
  return crawl::crawl_at(truth, 98.0).network;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_pdf(const char* label, const stats::Histogram& hist) {
  std::printf("# %s: log-binned empirical pdf (degree, probability-density)\n",
              label);
  for (const auto& point : stats::log_binned_pdf(hist)) {
    std::printf("%-10s %12.2f %14.6e\n", label, point.center, point.density);
  }
}

inline void print_lognormal_fit(const char* label,
                                const stats::LognormalFit& fit) {
  std::printf("%-28s lognormal fit: mu=%.3f sigma=%.3f ks=%.4f (n=%llu)\n",
              label, fit.mu, fit.sigma, fit.ks,
              static_cast<unsigned long long>(fit.n_tail));
}

inline void print_power_law_fit(const char* label,
                                const stats::PowerLawFit& fit) {
  std::printf("%-28s power-law fit: alpha=%.3f kmin=%u ks=%.4f (n=%llu)\n",
              label, fit.alpha, fit.kmin, fit.ks,
              static_cast<unsigned long long>(fit.n_tail));
}

inline void print_selection(const char* label,
                            const stats::ModelSelection& sel) {
  std::printf(
      "%-28s best=%s  (AIC: power-law=%.0f lognormal=%.0f "
      "cutoff=%.0f)\n", label,
      to_string(sel.best).c_str(), sel.aic_power_law, sel.aic_lognormal,
      sel.aic_cutoff);
}

/// Snapshot days mirroring the paper's phases (I: 1-20, II: 21-75, III: 76-98).
inline std::vector<double> snapshot_days() {
  return {7, 14, 20, 28, 35, 42, 49, 56, 63, 70, 75, 80, 85, 91, 98};
}

}  // namespace san::bench

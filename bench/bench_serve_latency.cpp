// Socket serving latency gate: starts serve::Server on a loopback
// ephemeral port, fires a genload scenario at it from an OPEN-LOOP client
// (the writer paces query lines at the configured rate regardless of how
// fast responses come back — the arrival process the p999 numbers are
// meaningless without), and reports client-observed p50/p99/p999
// turnaround per (rate x --max-delay-us) configuration through
// obs::Histogram, alongside the server-side turnaround/batch-flush
// histograms.
//
// Self-gating (exit 1 on violation), per configuration:
//   1. the concatenated response stream is byte-identical to offline
//      file replay (the cmd_serve batched path) over the same scenario;
//   2. the graceful drain loses zero accepted queries (stats().queries
//      equals the scenario's query count, dropped_responses == 0).
// The latency numbers themselves are informational — an open-loop run on
// a 1-core CI container measures scheduler noise, so they are reported
// (and uploaded) but never baseline-gated.
//
// Scale with SAN_BENCH_NODES (default 60k) and SAN_LATENCY_QUERIES
// (default 4k). `--json OUT` writes the metrics.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "san/timeline.hpp"
#include "san_testlib.hpp"
#include "serve/genload.hpp"
#include "serve/query.hpp"
#include "serve/query_engine.hpp"
#include "serve/server.hpp"
#include "serve/snapshot_cache.hpp"

namespace {

using namespace san;
using Clock = std::chrono::steady_clock;

std::size_t query_count() {
  if (const char* env = std::getenv("SAN_LATENCY_QUERIES")) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  return 4'000;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t w = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

struct RunResult {
  std::string response;       // full response stream, byte-for-byte
  double p50_us = 0.0;        // client-observed turnaround percentiles
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t served = 0;   // server stats after the drain
  std::uint64_t dropped = 0;
  std::uint64_t batches = 0;
};

/// One open-loop run: the writer thread paces one query line per
/// 1/rate_qps seconds on the wire; the reader records, for the i-th
/// response line, now - scheduled_send(i) — queueing delay when the
/// server falls behind counts, exactly as an external client would see.
RunResult open_loop_run(serve::QueryEngine& engine,
                        const std::vector<std::string>& lines,
                        std::uint64_t max_delay_us, double rate_qps) {
  serve::ServerOptions options;
  options.max_delay_us = max_delay_us;
  serve::Server server(engine, options);
  std::thread loop([&] { server.run(); });

  const int fd = connect_loopback(server.port());
  if (fd < 0) {
    std::fprintf(stderr, "FAIL: cannot connect to 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.port()));
    std::exit(1);
  }

  const auto start = Clock::now();
  std::vector<Clock::time_point> scheduled(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    scheduled[i] =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(i / rate_qps));
  }
  std::thread writer([&] {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::this_thread::sleep_until(scheduled[i]);
      if (!send_all(fd, lines[i].data(), lines[i].size())) return;
    }
    ::shutdown(fd, SHUT_WR);
  });

  obs::Histogram turnaround;
  RunResult out;
  std::size_t answered = 0;
  char buf[16384];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    const auto now = Clock::now();
    const std::size_t before = out.response.size();
    out.response.append(buf, static_cast<std::size_t>(r));
    // Every newline in this chunk completes one response; responses come
    // back in admission order, one per query line.
    for (std::size_t i = before; i < out.response.size(); ++i) {
      if (out.response[i] != '\n' || answered >= scheduled.size()) continue;
      const auto waited = now - scheduled[answered];
      turnaround.record(static_cast<std::uint64_t>(
          std::max<std::int64_t>(
              0, std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                     .count())));
      ++answered;
    }
  }
  writer.join();
  ::close(fd);
  server.request_drain();
  loop.join();

  out.p50_us = turnaround.percentile(0.50) / 1e3;
  out.p99_us = turnaround.percentile(0.99) / 1e3;
  out.p999_us = turnaround.percentile(0.999) / 1e3;
  const auto stats = server.stats();
  out.served = stats.queries;
  out.dropped = stats.dropped_responses;
  out.batches = stats.batches;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  bench::JsonReport report;

  std::printf("generating synthetic Google+ ground truth (%zu nodes)...\n",
              bench::scale());
  const auto net = testlib::synthetic_gplus(bench::scale(), 7);
  const SanTimeline timeline(net);
  serve::SnapshotCache cache(timeline, 8);
  serve::QueryEngine engine(cache);

  serve::GenloadOptions scenario;
  scenario.queries = query_count();
  scenario.nodes = net.social_node_count();
  scenario.seed = 1234;
  scenario.now_fraction = 0.1;
  const std::string text = serve::generate_workload(scenario);

  // The protocol unit is the line: ship the scenario one line at a time
  // so the writer's pacing is per query. Comment/blank lines (the genload
  // header) are dropped — they draw no response, and the reader matches
  // the i-th response to the i-th line sent.
  std::vector<std::string> lines;
  std::vector<serve::Query> queries;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::size_t end = nl == std::string::npos ? text.size() : nl + 1;
    const std::size_t mark = text.find_first_not_of(" \t\r\n", pos);
    if (mark != std::string::npos && mark < end && text[mark] != '#') {
      lines.push_back(text.substr(pos, end - pos));
    }
    pos = end;
  }
  for (const auto& step : serve::parse_live_workload(text)) {
    queries.push_back(step.query);
  }

  std::string expected;
  {
    const auto results = engine.run_batch(
        std::span<const serve::Query>(queries.data(), queries.size()));
    for (std::size_t i = 0; i < results.size(); ++i) {
      expected += results[i].to_line(queries[i]);
      expected += '\n';
    }
  }
  std::printf("scenario: %zu queries, offline reference rendered\n",
              queries.size());

  bool failed = false;
  for (const double rate : {2'000.0, 10'000.0}) {
    for (const std::uint64_t max_delay_us : {0ull, 2'000ull}) {
      const auto run = open_loop_run(engine, lines, max_delay_us, rate);
      const std::string tag = "serve_latency.rate" +
                              std::to_string(static_cast<int>(rate)) +
                              ".delay" + std::to_string(max_delay_us);
      std::printf(
          "rate %6.0f qps, max-delay %4llu us: p50 %8.1f us, p99 %8.1f us,"
          " p999 %8.1f us (%llu batches)\n",
          rate, static_cast<unsigned long long>(max_delay_us), run.p50_us,
          run.p99_us, run.p999_us,
          static_cast<unsigned long long>(run.batches));
      // Informational: latency on a shared CI core is not gate material.
      report.add(tag + ".p50_us", run.p50_us);
      report.add(tag + ".p99_us", run.p99_us);
      report.add(tag + ".p999_us", run.p999_us);

      if (run.response != expected) {
        std::fprintf(stderr,
                     "FAIL: socket response stream is not byte-identical to"
                     " offline serve (rate %.0f, max-delay %llu us)\n",
                     rate, static_cast<unsigned long long>(max_delay_us));
        failed = true;
      }
      if (run.served != queries.size() || run.dropped != 0) {
        std::fprintf(
            stderr,
            "FAIL: drain lost queries: served %llu of %zu, dropped %llu\n",
            static_cast<unsigned long long>(run.served), queries.size(),
            static_cast<unsigned long long>(run.dropped));
        failed = true;
      }
    }
  }

  if (failed) return 1;
  std::printf("byte-identity and zero-loss drain held across all"
              " configurations\n");
  if (!report.write_if_requested(argc, argv)) return 1;
  return 0;
}

// Figures 2 and 3: growth of social/attribute nodes and links over the
// 98-day window, with the three phases (I: viral launch, II: invite-only,
// III: public release) visible as slope changes. Also reports the §2.2
// crawler-coverage numbers.
#include <vector>

#include "bench_util.hpp"
#include "crawl/crawler.hpp"
#include "san/timeline.hpp"

int main() {
  using namespace san;
  // Growth and coverage are reported against the ground truth ("known
  // users"), mirroring the paper's TechCrunch/Google reference points.
  const auto net = bench::make_gplus_ground_truth();
  const SanTimeline timeline(net);

  bench::header("Fig 2 + Fig 3: SAN growth over time");
  std::printf("%5s %14s %16s %14s %16s\n", "day", "social-nodes",
              "attribute-nodes", "social-links", "attribute-links");
  std::vector<double> days;
  for (int day = 7; day <= 98; day += 7) days.push_back(day);
  timeline.sweep(days, [](double day, const SanSnapshot& snap) {
    std::printf("%5.0f %14zu %16zu %14llu %16llu\n", day,
                snap.social_node_count(), snap.populated_attribute_count(),
                static_cast<unsigned long long>(snap.social_link_count()),
                static_cast<unsigned long long>(snap.attribute_link_count));
  });

  bench::header("Phase growth factors (paper: sharp I, steady II, sharp III)");
  const auto n20 = timeline.snapshot_at(20).social_node_count();
  const auto n75 = timeline.snapshot_at(75).social_node_count();
  const auto n98 = timeline.snapshot_at(98).social_node_count();
  std::printf("phase I  (day  1-20): %8zu nodes  (%5.1f%% of final,"
              " %4.1f/day-avg)\n",
              n20, 100.0 * n20 / n98, n20 / 20.0);
  std::printf("phase II (day 21-75): %8zu nodes  (+%zu, %4.1f/day-avg)\n", n75,
              n75 - n20, (n75 - n20) / 55.0);
  std::printf("phase III(day 76-98): %8zu nodes  (+%zu, %4.1f/day-avg)\n", n98,
              n98 - n75, (n98 - n75) / 23.0);

  bench::header("Crawler coverage (paper: >= 70% of users, both link lists)");
  for (const double day : {40.0, 75.0, 98.0}) {
    const auto crawl = crawl::crawl_at(net, day);
    std::printf("day %5.0f: node coverage %.1f%%  link coverage %.1f%%\n", day,
                100.0 * crawl.node_coverage, 100.0 * crawl.link_coverage);
  }
  return 0;
}

// Thread-scaling bench for the parallel CSR kernels: builds a ~1M-edge
// synthetic directed graph, runs each kernel at 1/2/4/8 threads, reports
// wall-clock speedups, and verifies that every metric is byte-identical to
// the single-threaded run (the substrate's determinism contract).
//
// Scale with SAN_SCALING_EDGES; thread sweep is fixed at 1/2/4/8 capped by
// SAN_SCALING_MAX_THREADS if set. `--json OUT` writes the single-thread
// kernel timings (informational — absolute seconds, not gated by
// tools/check_bench.py).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/thread_pool.hpp"
#include "graph/clustering.hpp"
#include "graph/csr.hpp"
#include "graph/hyperanf.hpp"
#include "graph/metrics.hpp"
#include "graph/wcc.hpp"
#include "stats/rng.hpp"

namespace {

using san::graph::CsrGraph;
using san::graph::NodeId;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  return fallback;
}

/// Skewed synthetic digraph: preferential-style targets create hubs and
/// triangles, like the Google+ snapshots the kernels are built for.
CsrGraph build_graph(std::size_t nodes, std::size_t edges) {
  san::stats::Rng rng(0x5ca11ab1e);
  std::vector<std::pair<NodeId, NodeId>> list;
  list.reserve(edges);
  for (std::size_t i = 0; i < edges; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_index(nodes));
    // Mix of local (triangle-forming) and global (hub-forming) targets.
    NodeId v;
    if (rng.bernoulli(0.5)) {
      v = static_cast<NodeId>((u + 1 + rng.uniform_index(64)) % nodes);
    } else {
      v = static_cast<NodeId>(rng.uniform_index(1 + rng.uniform_index(nodes)));
    }
    if (u != v) list.emplace_back(u, v);
  }
  return CsrGraph::from_edges(nodes, list);
}

struct KernelResults {
  double approx_cc = 0.0;
  double assortativity = 0.0;
  double reciprocity = 0.0;
  std::size_t wcc_count = 0;
  std::uint64_t wcc_largest_size = 0;
  std::vector<double> anf;
};

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool identical(const KernelResults& a, const KernelResults& b) {
  if (!bitwise_equal(a.approx_cc, b.approx_cc)) return false;
  if (!bitwise_equal(a.assortativity, b.assortativity)) return false;
  if (!bitwise_equal(a.reciprocity, b.reciprocity)) return false;
  if (a.wcc_count != b.wcc_count) return false;
  if (a.wcc_largest_size != b.wcc_largest_size) return false;
  if (a.anf.size() != b.anf.size()) return false;
  for (std::size_t i = 0; i < a.anf.size(); ++i) {
    if (!bitwise_equal(a.anf[i], b.anf[i])) return false;
  }
  return true;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct TimedRun {
  KernelResults results;
  double clustering_s = 0.0;
  double wcc_s = 0.0;
  double metrics_s = 0.0;
  double anf_s = 0.0;
};

TimedRun run_kernels(const CsrGraph& g) {
  TimedRun run;

  auto t0 = std::chrono::steady_clock::now();
  san::graph::ClusteringOptions cc_opts;
  cc_opts.epsilon = 0.002;
  run.results.approx_cc = san::graph::approx_average_clustering(g, cc_opts);
  run.clustering_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  const auto wcc = san::graph::weakly_connected_components(g);
  run.results.wcc_count = wcc.component_count();
  run.results.wcc_largest_size = wcc.sizes[wcc.largest()];
  run.wcc_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  run.results.assortativity = san::graph::assortativity(g);
  run.results.reciprocity = san::graph::reciprocity(g);
  run.metrics_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  san::graph::HyperAnfOptions anf_opts;
  anf_opts.max_iterations = 8;
  run.results.anf = san::graph::hyper_anf(g, anf_opts).neighborhood;
  run.anf_s = seconds_since(t0);

  return run;
}

}  // namespace

int main(int argc, char** argv) {
  san::bench::JsonReport report;
  const std::size_t edges = env_size("SAN_SCALING_EDGES", 1'000'000);
  const std::size_t nodes = edges / 4;
  const std::size_t max_threads = env_size("SAN_SCALING_MAX_THREADS", 8);

  std::printf("# bench_parallel_scaling: %zu nodes, target %zu edges\n", nodes,
              edges);
  const CsrGraph g = build_graph(nodes, edges);
  std::printf("# built graph: %zu nodes, %llu edges\n", g.node_count(),
              static_cast<unsigned long long>(g.edge_count()));

  std::printf("%-8s %-12s %-12s %-12s %-12s %-10s\n", "threads", "clustering",
              "wcc", "metrics", "hyperanf", "identical");

  TimedRun base;
  bool all_identical = true;
  for (const std::size_t t : {1UL, 2UL, 4UL, 8UL}) {
    if (t > max_threads) break;
    san::core::set_thread_count(t);
    const TimedRun run = run_kernels(g);
    const bool same = t == 1 || identical(run.results, base.results);
    all_identical = all_identical && same;
    if (t == 1) {
      base = run;
      std::printf("%-8zu %-12.3f %-12.3f %-12.3f %-12.3f %-10s\n", t,
                  run.clustering_s, run.wcc_s, run.metrics_s, run.anf_s, "-");
    } else {
      std::printf(
          "%-8zu %-12.3f %-12.3f %-12.3f %-12.3f %-10s  (speedup "
          "cc=%.2fx wcc=%.2fx metrics=%.2fx anf=%.2fx)\n",
          t, run.clustering_s, run.wcc_s, run.metrics_s, run.anf_s,
          same ? "yes" : "NO", base.clustering_s / run.clustering_s,
          base.wcc_s / run.wcc_s, base.metrics_s / run.metrics_s,
          base.anf_s / run.anf_s);
    }
  }
  san::core::set_thread_count(1);

  std::printf("# approx_cc=%.6f assortativity=%.6f reciprocity=%.6f wcc=%zu "
              "largest=%llu\n",
              base.results.approx_cc, base.results.assortativity,
              base.results.reciprocity, base.results.wcc_count,
              static_cast<unsigned long long>(base.results.wcc_largest_size));
  if (!all_identical) {
    std::printf("FAIL: multi-threaded results differ from single-threaded\n");
    return 1;
  }
  report.add("clustering_1t_s", base.clustering_s);
  report.add("wcc_1t_s", base.wcc_s);
  report.add("metrics_1t_s", base.metrics_s);
  report.add("hyperanf_1t_s", base.anf_s);
  if (!report.write_if_requested(argc, argv)) return 1;
  std::printf("OK: all thread counts produced byte-identical metrics\n");
  return 0;
}

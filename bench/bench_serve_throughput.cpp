// Serving-engine gate: generates a synthetic Google+ SAN (~840k links at
// the default 60k-node scale), builds a mixed query workload (link-rec +
// attribute-inference + ego-metrics + reciprocity) over a grid of snapshot
// days, and
//
//   1. renders every query through the single-query reference path
//      (QueryEngine::run_single);
//   2. re-runs the workload through admission-ordered batches at
//      SAN_THREADS=1/2/4/8 and FAILS (exit 1) unless every rendered result
//      line is byte-identical to the reference;
//   3. reports queries/sec with a cold SnapshotCache (every day
//      materializes) vs a warm one (every day hits) and FAILS unless warm
//      beats cold.
//
// Scale with SAN_BENCH_NODES (default 60k) and SAN_SERVE_QUERIES (default
// 20k). `--json OUT` writes the headline metrics for the CI
// bench-regression gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "san/timeline.hpp"
#include "san_testlib.hpp"
#include "serve/genload.hpp"
#include "serve/query_engine.hpp"

namespace {

using namespace san;

std::size_t query_count() {
  if (const char* env = std::getenv("SAN_SERVE_QUERIES")) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  return 20'000;
}

std::vector<std::string> run_batched(serve::QueryEngine& engine,
                                     const std::vector<serve::Query>& queries,
                                     std::size_t batch_size) {
  std::vector<std::string> lines;
  lines.reserve(queries.size());
  std::size_t served = 0;
  while (served < queries.size()) {
    const std::size_t count =
        std::min(batch_size, queries.size() - served);
    const auto results = engine.run_batch(
        std::span<const serve::Query>(queries.data() + served, count));
    for (std::size_t i = 0; i < results.size(); ++i) {
      lines.push_back(results[i].to_line(queries[served + i]));
    }
    served += count;
  }
  return lines;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report;
  constexpr std::size_t kBatch = 2048;

  std::printf("generating synthetic Google+ ground truth (%zu nodes)...\n",
              bench::scale());
  const auto net = bench::make_gplus_ground_truth();
  std::printf("  %zu social nodes, %llu social links, %llu attribute links\n",
              net.social_node_count(),
              static_cast<unsigned long long>(net.social_link_count()),
              static_cast<unsigned long long>(net.attribute_link_count()));
  const SanTimeline timeline(net);

  const auto days = bench::snapshot_days();
  // The 40/25/25/10 linkrec/attrs/ego/recip mix shared with the test
  // suites (tests/san_testlib.hpp).
  const auto queries = testlib::mixed_queries(
      query_count(), net.social_node_count(), days, 0x5e12e);
  std::printf("workload: %zu queries over %zu snapshot days\n", queries.size(),
              days.size());

  bench::header("reference: single-query path, cold cache");
  serve::SnapshotCache reference_cache(timeline, days.size());
  serve::QueryEngine reference_engine(reference_cache);
  std::vector<std::string> reference;
  reference.reserve(queries.size());
  const auto reference_start = std::chrono::steady_clock::now();
  for (const auto& q : queries) {
    reference.push_back(reference_engine.run_single(q).to_line(q));
  }
  const double reference_s = seconds_since(reference_start);
  std::printf("single-query: %7.3f s (%.0f queries/s)\n", reference_s,
              queries.size() / reference_s);

  bench::header("batch equality: byte-identical at 1/2/4/8 threads");
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::set_thread_count(threads);
    serve::SnapshotCache cache(timeline, days.size());
    serve::QueryEngine engine(cache);
    const auto start = std::chrono::steady_clock::now();
    const auto lines = run_batched(engine, queries, kBatch);
    const double batch_s = seconds_since(start);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (lines[i] != reference[i]) {
        std::fprintf(stderr,
                     "FAIL: batch result deviates from reference at query %zu"
                     " (%zu threads)\n  batch:     %s\n  reference: %s\n",
                     i, threads, lines[i].c_str(), reference[i].c_str());
        return 1;
      }
    }
    std::printf("  %zu threads: identical, %7.3f s (%.0f queries/s)\n",
                threads, batch_s, queries.size() / batch_s);
  }

  bench::header("snapshot cache: cold vs warm throughput");
  serve::SnapshotCache cache(timeline, days.size());
  serve::QueryEngine engine(cache);
  const auto cold_start = std::chrono::steady_clock::now();
  (void)run_batched(engine, queries, kBatch);
  const double cold_s = seconds_since(cold_start);
  const auto cold_stats = cache.stats();
  // Best of two warm passes: the warm margin at CI smoke scale is only the
  // skipped materializations, so a single scheduler hiccup could flip a
  // raw one-shot comparison.
  double warm_s = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < 2; ++pass) {
    const auto warm_start = std::chrono::steady_clock::now();
    (void)run_batched(engine, queries, kBatch);
    warm_s = std::min(warm_s, seconds_since(warm_start));
  }
  const auto warm_stats = cache.stats();
  std::printf("  cold: %7.3f s (%.0f queries/s), %llu misses\n", cold_s,
              queries.size() / cold_s,
              static_cast<unsigned long long>(cold_stats.misses));
  std::printf("  warm: %7.3f s (%.0f queries/s, best of 2), %llu hits since"
              " cold\n",
              warm_s, queries.size() / warm_s,
              static_cast<unsigned long long>(warm_stats.hits -
                                              cold_stats.hits));
  std::printf("  warm/cold speedup: %.2fx\n", cold_s / warm_s);
  report.add("warm_cold_speedup", cold_s / warm_s);
  if (warm_s >= cold_s) {
    std::fprintf(stderr, "FAIL: warm cache no faster than cold\n");
    return 1;
  }
  if (warm_stats.misses != cold_stats.misses) {
    std::fprintf(stderr, "FAIL: warm pass missed the cache\n");
    return 1;
  }

  bench::header("telemetry overhead: warm serve, sink attached vs detached");
  // The `warm_s` passes above ran with telemetry OFF (the process default):
  // every instrumented site paid one relaxed atomic-bool load and nothing
  // else. Now attach a registry, enable latency capture AND tracing, rerun
  // the same warm workload, and gate the ratio — the telemetry layer's
  // whole-pipeline cost must stay within the bench-regression floor
  // (tools/bench_baseline.json: telemetry_attached_vs_detached).
  {
    obs::Registry registry;
    cache.register_metrics(registry, "cache");
    engine.register_metrics(registry, "serve");
    obs::set_timing_enabled(true);
    obs::set_tracing_enabled(true);
    double attached_s = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < 2; ++pass) {
      const auto attached_start = std::chrono::steady_clock::now();
      (void)run_batched(engine, queries, kBatch);
      attached_s = std::min(attached_s, seconds_since(attached_start));
    }
    obs::set_timing_enabled(false);
    obs::set_tracing_enabled(false);
    std::printf("  attached: %7.3f s (%.0f queries/s) vs detached %7.3f s"
                " — %.3fx\n",
                attached_s, queries.size() / attached_s, warm_s,
                warm_s / attached_s);
    report.add("telemetry_attached_vs_detached", warm_s / attached_s);
    // Sanity: the attached passes actually recorded latencies and spans.
    std::uint64_t recorded = 0;
    for (const auto& [name, value] : registry.snapshot()) {
      if (name.ends_with(".count")) {
        recorded += static_cast<std::uint64_t>(value);
      }
    }
    if (recorded < 2 * queries.size() || obs::span_count() == 0) {
      std::fprintf(stderr,
                   "FAIL: telemetry pass recorded %llu latencies, %llu spans"
                   " (expected >= %zu latencies and > 0 spans)\n",
                   static_cast<unsigned long long>(recorded),
                   static_cast<unsigned long long>(obs::span_count()),
                   2 * queries.size());
      return 1;
    }
  }

  bench::header("per-query-type throughput (warm cache)");
  // The mixed-rate numbers above hide per-kind cost differences (a 2-hop
  // ego walk vs a binary-search reciprocity probe); serve each kind's
  // slice of the same workload through the warm engine separately.
  for (const serve::QueryKind kind :
       {serve::QueryKind::kLinkRec, serve::QueryKind::kAttrInfer,
        serve::QueryKind::kEgoMetrics, serve::QueryKind::kReciprocity}) {
    std::vector<serve::Query> slice;
    for (const auto& q : queries) {
      if (q.kind == kind) slice.push_back(q);
    }
    const auto start = std::chrono::steady_clock::now();
    (void)run_batched(engine, slice, kBatch);
    const double slice_s = seconds_since(start);
    const double qps = slice_s > 0.0 ? slice.size() / slice_s : 0.0;
    std::printf("  %-8s %6zu queries, %7.3f s (%8.0f queries/s)\n",
                serve::to_string(kind), slice.size(), slice_s, qps);
    // Absolute rates: informational in the CI gate (runner-dependent).
    report.add(std::string("serve_qps_") + serve::to_string(kind), qps);
  }

  bench::header("scenario: genload seven-kind trace (informational)");
  // A seeded scenario workload (san_tool genload): Zipf-skewed users,
  // diurnal arrivals over a four-week window, all seven query kinds —
  // the realistic mix that exercises the derived-state side-cache
  // (sybil topology / label propagation / first-pick builds, one per
  // resolved day). Rates are runner-dependent: reported for trending,
  // never gated against the baseline.
  {
    serve::GenloadOptions scenario;
    scenario.queries = std::max<std::size_t>(query_count() / 4, 1);
    scenario.nodes = net.social_node_count();
    scenario.seed = 0x5ce2a;
    scenario.horizon = 28.0;   // bounds distinct days (and derived builds)
    scenario.now_fraction = 0.05;
    const auto scenario_queries =
        serve::parse_workload(serve::generate_workload(scenario));
    serve::SnapshotCache scenario_cache(timeline, 32);
    serve::QueryEngine scenario_engine(scenario_cache);

    const auto cold_scenario_start = std::chrono::steady_clock::now();
    (void)run_batched(scenario_engine, scenario_queries, kBatch);
    const double cold_scenario_s = seconds_since(cold_scenario_start);
    const auto warm_scenario_start = std::chrono::steady_clock::now();
    (void)run_batched(scenario_engine, scenario_queries, kBatch);
    const double warm_scenario_s = seconds_since(warm_scenario_start);

    const auto stats = scenario_cache.stats();
    const double cold_qps =
        cold_scenario_s > 0.0 ? scenario_queries.size() / cold_scenario_s
                              : 0.0;
    const double warm_qps =
        warm_scenario_s > 0.0 ? scenario_queries.size() / warm_scenario_s
                              : 0.0;
    std::printf("  %zu queries over %llu days: cold %7.3f s (%8.0f"
                " queries/s), warm %7.3f s (%8.0f queries/s)\n",
                scenario_queries.size(),
                static_cast<unsigned long long>(stats.misses),
                cold_scenario_s, cold_qps, warm_scenario_s, warm_qps);
    std::printf("  derived side-cache: %llu builds, %llu hits\n",
                static_cast<unsigned long long>(stats.derived_misses),
                static_cast<unsigned long long>(stats.derived_hits));
    report.add("scenario_qps_cold", cold_qps);
    report.add("scenario_qps_warm", warm_qps);
    if (stats.derived_misses == 0) {
      std::fprintf(stderr,
                   "FAIL: scenario trace never built derived state\n");
      return 1;
    }
  }

  bench::header("concurrent cold misses: distinct days from parallel callers");
  // Serial baseline: one thread materializes every day through a cold
  // cache. Concurrent: kThreads external callers split the same days —
  // since misses build OUTSIDE the cache lock, distinct days overlap (the
  // deterministic overlap gate lives in test_serve; this reports numbers).
  {
    serve::SnapshotCache serial_cache(timeline, days.size());
    const auto serial_start = std::chrono::steady_clock::now();
    for (const double day : days) (void)serial_cache.at(day);
    const double serial_s = seconds_since(serial_start);

    constexpr std::size_t kThreads = 4;
    serve::SnapshotCache concurrent_cache(timeline, days.size());
    std::vector<std::shared_ptr<const SanSnapshot>> snaps(days.size());
    const auto concurrent_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (std::size_t i = t; i < days.size(); i += kThreads) {
            snaps[i] = concurrent_cache.at(days[i]);
          }
        });
      }
      for (auto& thread : threads) thread.join();
    }
    const double concurrent_s = seconds_since(concurrent_start);

    const auto stats = concurrent_cache.stats();
    std::printf("  serial:     %7.3f s for %zu cold days\n", serial_s,
                days.size());
    std::printf("  concurrent: %7.3f s (%zu callers), peak %llu misses in"
                " flight\n",
                concurrent_s, kThreads,
                static_cast<unsigned long long>(stats.peak_inflight));
    if (stats.misses != days.size() || stats.coalesced != 0) {
      std::fprintf(stderr,
                   "FAIL: expected %zu distinct misses (saw %llu, %llu"
                   " coalesced)\n",
                   days.size(),
                   static_cast<unsigned long long>(stats.misses),
                   static_cast<unsigned long long>(stats.coalesced));
      return 1;
    }
    for (std::size_t i = 0; i < days.size(); ++i) {
      if (!snaps[i] || snaps[i]->time != days[i]) {
        std::fprintf(stderr, "FAIL: concurrent miss returned wrong snapshot"
                             " for day %.2f\n", days[i]);
        return 1;
      }
    }
  }
  if (!report.write_if_requested(argc, argv)) return 1;
  std::printf("OK\n");
  return 0;
}

// Figure 9a: social vs attribute clustering coefficient as a function of
// node degree — both fall off with degree, the attribute curve sitting
// lower and falling faster (shared cities/majors don't imply friendship).
// Figure 9b: the §4.3 validation — drop every attribute link with
// probability 0.5 and verify the attribute clustering curve is unchanged,
// i.e. the declared 22% of attributes are a representative sample.
#include "bench_util.hpp"

#include <cmath>

#include "graph/clustering.hpp"
#include "san/san_metrics.hpp"
#include "san/snapshot.hpp"
#include "san/subsample.hpp"

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const auto snap = snapshot_full(net);

  bench::header("Fig 9a: clustering coefficient vs degree");
  std::printf("# (curve, degree, avg clustering)\n");
  for (const auto& [degree, cc] : graph::clustering_by_degree(snap.social)) {
    std::printf("%-10s %12.1f %12.5f\n", "social", degree, cc);
  }
  for (const auto& [degree, cc] : attribute_clustering_by_degree(snap)) {
    std::printf("%-10s %12.1f %12.5f\n", "attribute", degree, cc);
  }

  bench::header("Fig 9b: attribute clustering under 50% attribute subsampling");
  const auto sub_net = subsample_attributes(net, 0.5, 4242);
  const auto sub_snap = snapshot_full(sub_net);
  std::printf("# (curve, degree, avg clustering)\n");
  for (const auto& [degree, cc] : attribute_clustering_by_degree(snap)) {
    std::printf("%-10s %12.1f %12.5f\n", "original", degree, cc);
  }
  for (const auto& [degree, cc] : attribute_clustering_by_degree(sub_snap)) {
    std::printf("%-10s %12.1f %12.5f\n", "sampled", degree, cc);
  }

  // Fig 9b's comparison is per degree bucket (composition-free): at equal
  // attribute social degree the two curves should coincide.
  const auto original_curve = attribute_clustering_by_degree(snap);
  const auto sampled_curve = attribute_clustering_by_degree(sub_snap);
  double diff_sum = 0.0;
  std::size_t matched = 0;
  for (const auto& [od, oc] : original_curve) {
    for (const auto& [sd, sc] : sampled_curve) {
      if (std::abs(sd - od) < 0.2 * od && oc > 1e-4 && sc > 1e-4) {
        diff_sum += std::abs(std::log10(oc) - std::log10(sc));
        ++matched;
        break;
      }
    }
  }
  std::printf("\nbucket-matched curves: %zu shared degree buckets, mean"
              " |log10 cc difference| = %.3f (paper: curves nearly"
              " identical)\n",
              matched, matched ? diff_sum / static_cast<double>(matched) : 0.0);
  return 0;
}

// §5.2 in-text results: of the observed (non-first) friend requests, the
// paper reports 84% are triadic (common friend), 18% focal (common
// attribute), and 15% both; the RR closure mechanism scores ~14% better
// than the 2-hop Baseline and RR-SAN ~36% better than RR.
#include "bench_util.hpp"

#include "model/attachment.hpp"
#include "model/closure.hpp"

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();

  model::ClosureOptions options;
  options.fc = 5.0;  // matches the dataset's focal-closure weight
  options.event_stride = 4;
  const auto stats = model::evaluate_closures(net, options);

  bench::header("Triangle-closing event classification (§5.2)");
  std::printf("events scored:        %llu\n",
              static_cast<unsigned long long>(stats.events));
  std::printf("triadic (common friend):    %5.1f%%   (paper: 84%%)\n",
              100.0 * stats.triadic_fraction());
  std::printf("focal (common attribute):   %5.1f%%   (paper: 18%%)\n",
              100.0 * stats.focal_fraction());
  std::printf("both:                       %5.1f%%   (paper: 15%%)\n",
              100.0 * stats.both_fraction());

  bench::header("Closure mechanism likelihoods (smoothed, higher is better)");
  std::printf("baseline (uniform 2-hop):  %14.1f\n", stats.loglik_baseline);
  std::printf("RR (random-random):        %14.1f\n", stats.loglik_rr);
  std::printf("RR-SAN:                    %14.1f\n", stats.loglik_rrsan);
  std::printf("\nRR over Baseline:     %+6.1f%%   (paper: +14%%)\n",
              model::relative_improvement_percent(stats.loglik_baseline,
                                                  stats.loglik_rr));
  std::printf("RR-SAN over RR:       %+6.1f%%   (paper: +36%%)\n",
              model::relative_improvement_percent(stats.loglik_rr,
                                                  stats.loglik_rrsan));
  return 0;
}

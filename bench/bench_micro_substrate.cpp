// google-benchmark micro-suite for the substrate hot paths: CSR
// construction, BFS, HyperANF, sampled clustering, the LAPA token sampler
// (exact vs the §7 heuristic cost), and SAN primitives.
#include <benchmark/benchmark.h>

#include "graph/bfs.hpp"
#include "graph/clustering.hpp"
#include "graph/csr.hpp"
#include "graph/hyperanf.hpp"
#include "graph/metrics.hpp"
#include "model/generator.hpp"
#include "model/lapa_sampler.hpp"
#include "san/snapshot.hpp"
#include "stats/rng.hpp"

namespace {

using san::graph::CsrGraph;
using san::graph::NodeId;

const san::SocialAttributeNetwork& test_network() {
  static const auto net = [] {
    san::model::GeneratorParams params;
    params.social_node_count = 30'000;
    params.seed = 777;
    return san::model::generate_san(params);
  }();
  return net;
}

const san::SanSnapshot& test_snapshot() {
  static const auto snap = san::snapshot_full(test_network());
  return snap;
}

void BM_CsrBuild(benchmark::State& state) {
  const auto& net = test_network();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph::from_digraph(net.social()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.social_link_count()));
}
BENCHMARK(BM_CsrBuild);

void BM_Bfs(benchmark::State& state) {
  const auto& snap = test_snapshot();
  san::stats::Rng rng(1);
  for (auto _ : state) {
    const auto src =
        static_cast<NodeId>(rng.uniform_index(snap.social.node_count()));
    benchmark::DoNotOptimize(san::graph::bfs_distances(snap.social, src));
  }
}
BENCHMARK(BM_Bfs);

void BM_HyperAnf(benchmark::State& state) {
  const auto& snap = test_snapshot();
  san::graph::HyperAnfOptions options;
  options.log2m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(san::graph::hyper_anf(snap.social, options));
  }
}
BENCHMARK(BM_HyperAnf)->Arg(5)->Arg(7);

void BM_ApproxClustering(benchmark::State& state) {
  const auto& snap = test_snapshot();
  san::graph::ClusteringOptions options;
  options.epsilon = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        san::graph::approx_average_clustering(snap.social, options));
  }
}
BENCHMARK(BM_ApproxClustering)->Arg(50)->Arg(100)->Arg(200);

void BM_Reciprocity(benchmark::State& state) {
  const auto& snap = test_snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(san::graph::reciprocity(snap.social));
  }
}
BENCHMARK(BM_Reciprocity);

void BM_Assortativity(benchmark::State& state) {
  const auto& snap = test_snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(san::graph::assortativity(snap.social));
  }
}
BENCHMARK(BM_Assortativity);

void BM_LapaSamplerDraw(benchmark::State& state) {
  // Cost of one exact LAPA draw on a realistic network (the paper's §7
  // worries about a naive O(n) implementation; the token structure is
  // O(attributes of u)).
  const auto& net = test_network();
  san::stats::Rng rng(3);
  san::model::LapaSampler sampler(net, rng);
  for (std::size_t a = 0; a < net.attribute_node_count(); ++a) {
    sampler.on_attribute_node_added();
  }
  for (const auto& link : net.attribute_log()) {
    sampler.on_attribute_link_added(link.user, link.attr);
  }
  for (const auto& e : net.social_log()) {
    sampler.on_social_link_added(e.src, e.dst);
  }
  const double beta = static_cast<double>(state.range(0));
  NodeId u = 0;
  for (auto _ : state) {
    u = (u + 1) % static_cast<NodeId>(net.social_node_count());
    benchmark::DoNotOptimize(sampler.sample_target(u, beta));
  }
}
BENCHMARK(BM_LapaSamplerDraw)->Arg(0)->Arg(200);

void BM_CommonAttributes(benchmark::State& state) {
  const auto& net = test_network();
  san::stats::Rng rng(4);
  const auto n = net.social_node_count();
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.uniform_index(n));
    const auto v = static_cast<NodeId>(rng.uniform_index(n));
    benchmark::DoNotOptimize(net.common_attributes(u, v));
  }
}
BENCHMARK(BM_CommonAttributes);

void BM_SnapshotExtraction(benchmark::State& state) {
  const auto& net = test_network();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        san::snapshot_at(net,
                         static_cast<double>(net.social_node_count()) / 2));
  }
}
BENCHMARK(BM_SnapshotExtraction);

void BM_GenerateSan(benchmark::State& state) {
  san::model::GeneratorParams params;
  params.social_node_count = static_cast<std::size_t>(state.range(0));
  params.seed = 555;
  for (auto _ : state) {
    benchmark::DoNotOptimize(san::model::generate_san(params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GenerateSan)->Arg(5'000)->Arg(20'000);

}  // namespace

BENCHMARK_MAIN();

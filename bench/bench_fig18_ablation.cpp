// Figure 18: ablation of the two attribute-augmented building blocks.
//   18a — replace LAPA with plain PA (RR-SAN still on): the social indegree
//         distribution degrades from lognormal towards a power law.
//   18b — replace RR-SAN with plain RR (LAPA still on): the attribute
//         clustering coefficient collapses.
// Plus an extra ablation DESIGN.md calls out: exponential lifetimes (as in
// prior models [29, 61]) instead of truncated-normal — the outdegree leaves
// the lognormal regime.
#include "bench_util.hpp"

#include <algorithm>

#include "graph/clustering.hpp"
#include "graph/metrics.hpp"
#include "model/generator.hpp"
#include "san/san_metrics.hpp"
#include "san/snapshot.hpp"

int main() {
  using namespace san;

  model::GeneratorParams base;
  base.social_node_count = bench::scale();
  base.seed = 1234;

  auto lapa_off = base;
  lapa_off.attachment = model::AttachmentRule::kPa;
  auto rrsan_off = base;
  rrsan_off.closure = model::ClosureRule::kRr;
  auto exp_lifetime = base;
  exp_lifetime.lifetime = model::LifetimeRule::kExponential;

  const auto full = snapshot_full(model::generate_san(base));
  const auto no_lapa = snapshot_full(model::generate_san(lapa_off));
  const auto no_rrsan = snapshot_full(model::generate_san(rrsan_off));
  const auto exp_life = snapshot_full(model::generate_san(exp_lifetime));

  bench::header("Fig 18a: indegree with vs without LAPA");
  for (const auto& [name, snap] :
       {std::pair{"full-model", &full}, std::pair{"without-LAPA", &no_lapa}}) {
    const auto hist = graph::in_degree_histogram(snap->social);
    const auto ln = stats::fit_discrete_lognormal(hist, 1);
    const auto tail = stats::fit_power_law_scan(hist);
    std::size_t max_in = 0;
    for (NodeId u = 0; u < snap->social.node_count(); ++u) {
      max_in = std::max(max_in, snap->social.in_degree(u));
    }
    std::printf("%-14s lognormal-ks=%.4f tail power law alpha=%.2f"
                " (kmin=%u ks=%.4f) max-indegree=%zu\n",
                name, ln.ks, tail.alpha, tail.kmin, tail.ks, max_in);
  }
  std::printf("(paper: without LAPA the indegree drifts towards a power law —"
              " here visible as a smaller tail exponent and a cleaner"
              " power-law tail fit. The contrast is weaker than the paper's"
              " because closure links dominate indegree volume at this"
              " scale.)\n");

  bench::header("Fig 18b: attribute clustering with vs without RR-SAN");
  graph::ClusteringOptions options;
  options.epsilon = 0.01;
  const double cc_full = average_attribute_clustering(full, options);
  const double cc_no = average_attribute_clustering(no_rrsan, options);
  std::printf("full model (RR-SAN):   attribute cc = %.5f\n", cc_full);
  std::printf("without RR-SAN (RR):   attribute cc = %.5f\n", cc_no);
  std::printf("ratio %.1fx (paper: RR-SAN has a large impact on attribute "
              "cc)\n",
              cc_full / std::max(cc_no, 1e-9));
  std::printf("# attribute clustering vs degree\n");
  for (const auto& [degree, cc] : attribute_clustering_by_degree(full)) {
    std::printf("%-14s %12.1f %12.5f\n", "full-model", degree, cc);
  }
  for (const auto& [degree, cc] : attribute_clustering_by_degree(no_rrsan)) {
    std::printf("%-14s %12.1f %12.5f\n", "without-RRSAN", degree, cc);
  }

  bench::header("Extra ablation: truncated-normal vs exponential lifetime");
  for (const auto& [name, snap] :
       {std::pair{"truncated-normal", &full}, std::pair{"exponential",
                                                        &exp_life}}) {
    const auto hist = graph::out_degree_histogram(snap->social);
    const auto sel = stats::select_degree_model(hist, 1);
    std::printf("%-18s best=%-22s lognormal-ks=%.4f cutoff-ks=%.4f\n", name,
                to_string(sel.best).c_str(), sel.lognormal.ks, sel.cutoff.ks);
  }
  std::printf("(Theorem 1 needs the truncated-normal lifetime: with the"
              " exponential lifetime of prior models the lognormal fit"
              " degrades — larger lognormal-ks, heavier tail — and the"
              " cutoff family catches up)\n");
  return 0;
}

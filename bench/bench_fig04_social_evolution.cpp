// Figure 4: evolution of reciprocity (4a), social density (4b), social and
// attribute effective diameter (4c), and average social clustering
// coefficient (4d). The paper's qualitative shapes: reciprocity fluctuates
// in phase I then declines (faster after public release); density
// dips/rises, then drops at the public release; diameters move with the
// user-join vs link-creation race; clustering drops in I, creeps up in II,
// drops again in III.
#include "bench_util.hpp"

#include "graph/clustering.hpp"
#include "graph/hyperanf.hpp"
#include "graph/metrics.hpp"
#include "san/san_metrics.hpp"
#include "san/timeline.hpp"
#include "stats/rng.hpp"

int main() {
  using namespace san;
  const auto net = bench::make_gplus_dataset();
  const SanTimeline timeline(net);

  bench::header("Fig 4: reciprocity / density / diameters / clustering");
  std::printf("%5s %12s %10s %12s %12s %12s\n", "day", "reciprocity", "density",
              "social-diam", "attr-diam", "social-cc");
  graph::ClusteringOptions cc_options;
  cc_options.epsilon = 0.01;

  const auto days = bench::snapshot_days();
  timeline.sweep(days, [&](double day, const SanSnapshot& snap) {
    const double recip = graph::reciprocity(snap.social);
    const double dens = graph::density(snap.social);

    graph::HyperAnfOptions anf;
    anf.log2m = 7;
    const double social_diam = graph::hyper_anf(snap.social, anf)
                                   .effective_diameter(0.9);
    stats::Rng rng(2025);
    const double attr_diam = attribute_effective_diameter(snap, 12, rng);
    cc_options.seed = static_cast<std::uint64_t>(day) * 977;
    const double cc = graph::approx_average_clustering(snap.social, cc_options);

    std::printf("%5.0f %12.4f %10.3f %12.2f %12.2f %12.4f\n", day, recip, dens,
                social_diam, attr_diam, cc);
  });

  bench::header("Phase deltas (sign pattern is the reproduction target)");
  const auto at = [&](double day) { return timeline.snapshot_at(day); };
  const double r20 = graph::reciprocity(at(20).social);
  const double r75 = graph::reciprocity(at(75).social);
  const double r98 = graph::reciprocity(at(98).social);
  std::printf("reciprocity: phase II slope %+0.5f/day, phase III slope"
              " %+0.5f/day (paper: both negative, III steeper)\n",
              (r75 - r20) / 55.0, (r98 - r75) / 23.0);
  const double d20 = graph::density(at(20).social);
  const double d75 = graph::density(at(75).social);
  const double d98 = graph::density(at(98).social);
  std::printf("density: phase II delta %+0.2f, phase III delta %+0.2f"
              " (paper: rise, then drop at public release)\n",
              d75 - d20, d98 - d75);
  return 0;
}

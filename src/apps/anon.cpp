#include "apps/anon.hpp"

#include <stdexcept>
#include <vector>

#include "apps/projection.hpp"

namespace san::apps {

AnonymousCommunication::AnonymousCommunication(const graph::CsrGraph& social,
                                               const AnonOptions& options)
    : topology_(degree_bounded_undirected(social, options.degree_bound)),
      options_(options) {
  if (options.walk_length < 2) {
    throw std::invalid_argument("AnonymousCommunication: walk_length >= 2");
  }
  if (options.num_walks == 0) {
    throw std::invalid_argument("AnonymousCommunication: num_walks > 0");
  }
}

double AnonymousCommunication::timing_attack_probability(
    std::span<const std::uint8_t> compromised_flags, stats::Rng& rng) const {
  if (compromised_flags.size() != topology_.node_count()) {
    throw std::invalid_argument("timing_attack_probability: flag size "
                                "mismatch");
  }
  const std::size_t n = topology_.node_count();
  if (n == 0) return 0.0;

  std::uint64_t successes = 0;
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < options_.num_walks; ++i) {
    // Initiator: a random honest user.
    graph::NodeId current =
        static_cast<graph::NodeId>(rng.uniform_index(n));
    if (compromised_flags[current]) continue;
    graph::NodeId first_relay = current;
    bool truncated = false;
    for (std::size_t step = 0; step < options_.walk_length; ++step) {
      const auto nbrs = topology_.out(current);
      if (nbrs.empty()) {
        truncated = true;
        break;
      }
      current = nbrs[rng.uniform_index(nbrs.size())];
      if (step == 0) first_relay = current;
    }
    if (truncated) continue;
    ++completed;
    if (compromised_flags[first_relay] && compromised_flags[current]) {
      ++successes;
    }
  }
  if (completed == 0) return 0.0;
  return static_cast<double>(successes) / static_cast<double>(completed);
}

double AnonymousCommunication::timing_attack_probability_uniform(
    std::size_t count, stats::Rng& rng) const {
  const std::size_t n = topology_.node_count();
  if (count > n) {
    throw std::invalid_argument("timing_attack_probability_uniform: count > n");
  }
  std::vector<std::uint8_t> flags(n, 0);
  std::size_t chosen = 0;
  while (chosen < count) {
    const auto u = static_cast<std::size_t>(rng.uniform_index(n));
    if (!flags[u]) {
      flags[u] = 1;
      ++chosen;
    }
  }
  return timing_attack_probability(flags, rng);
}

}  // namespace san::apps

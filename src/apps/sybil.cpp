#include "apps/sybil.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "apps/projection.hpp"

namespace san::apps {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SybilLimit::SybilLimit(const graph::CsrGraph& social,
                       const SybilLimitOptions& options)
    : topology_(degree_bounded_undirected(social, options.degree_bound)),
      options_(options) {
  if (options.route_length == 0) {
    throw std::invalid_argument("SybilLimit: route_length must be > 0");
  }
}

SybilLimitResult SybilLimit::evaluate(
    std::span<const std::uint8_t> compromised_flags) const {
  if (compromised_flags.size() != topology_.node_count()) {
    throw std::invalid_argument("SybilLimit::evaluate: flag size mismatch");
  }
  SybilLimitResult result;
  for (graph::NodeId u = 0; u < topology_.node_count(); ++u) {
    if (compromised_flags[u]) ++result.compromised;
  }
  // Attack edges: undirected links with exactly one compromised endpoint.
  // The topology stores each link in both directions, so count ordered
  // (compromised -> honest) links, which equals the undirected count.
  for (graph::NodeId u = 0; u < topology_.node_count(); ++u) {
    if (!compromised_flags[u]) continue;
    for (const graph::NodeId v : topology_.out(u)) {
      if (!compromised_flags[v]) ++result.attack_edges;
    }
  }
  result.sybil_identities = static_cast<double>(options_.route_length) *
                            static_cast<double>(result.attack_edges);
  return result;
}

SybilLimitResult SybilLimit::evaluate_uniform(std::size_t count,
                                              stats::Rng& rng) const {
  const std::size_t n = topology_.node_count();
  if (count > n) {
    throw std::invalid_argument("SybilLimit: more compromised nodes than "
                                "nodes");
  }
  std::vector<std::uint8_t> flags(n, 0);
  std::size_t chosen = 0;
  while (chosen < count) {
    const auto u = static_cast<std::size_t>(rng.uniform_index(n));
    if (!flags[u]) {
      flags[u] = 1;
      ++chosen;
    }
  }
  return evaluate(flags);
}

SybilLimitResult SybilLimit::evaluate_region(
    graph::NodeId user, std::vector<std::uint8_t>& flags,
    std::vector<graph::NodeId>& touched) const {
  const std::size_t n = topology_.node_count();
  if (user >= n) {
    throw std::invalid_argument("SybilLimit::evaluate_region: unknown user");
  }
  if (flags.size() < n) flags.resize(n, 0);
  touched.clear();
  const auto mark = [&](graph::NodeId u) {
    if (!flags[u]) {
      flags[u] = 1;
      touched.push_back(u);
    }
  };
  mark(user);
  for (const graph::NodeId v : topology_.out(user)) mark(v);

  SybilLimitResult result;
  result.compromised = touched.size();
  // Attack edges: ordered (compromised -> honest) links, walking only the
  // region's adjacency — identical to evaluate()'s whole-network count
  // because links from honest nodes never contribute there either.
  for (const graph::NodeId u : touched) {
    for (const graph::NodeId v : topology_.out(u)) {
      if (!flags[v]) ++result.attack_edges;
    }
  }
  result.sybil_identities = static_cast<double>(options_.route_length) *
                            static_cast<double>(result.attack_edges);
  for (const graph::NodeId u : touched) flags[u] = 0;
  touched.clear();
  return result;
}

std::vector<graph::NodeId> SybilLimit::random_route(
    graph::NodeId start, std::uint64_t instance) const {
  std::vector<graph::NodeId> route;
  route.push_back(start);
  graph::NodeId current = start;
  // Entry index kUnset means "route originated here".
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::size_t entry = kUnset;
  for (std::size_t step = 0; step < options_.route_length; ++step) {
    const auto nbrs = topology_.out(current);
    if (nbrs.empty()) break;
    const std::size_t d = nbrs.size();
    // Pseudorandom permutation pi of [0, d): a Feistel-free degree-keyed
    // affine map (a * i + b mod d) with a coprime to d — enough structure
    // for permutation routing and cheap to evaluate.
    const std::uint64_t key =
        mix(instance ^ (static_cast<std::uint64_t>(current) << 20));
    std::uint64_t a = 1 + 2 * (key % d);  // odd -> coprime when d is a power
    while (std::gcd(a, static_cast<std::uint64_t>(d)) != 1) ++a;
    const std::uint64_t b = mix(key) % d;
    const std::size_t in_idx = entry == kUnset ? mix(key ^ 0x5a5a) % d : entry;
    const std::size_t out_idx = static_cast<std::size_t>((a * in_idx + b) % d);
    const graph::NodeId next = nbrs[out_idx];
    // Record the reverse-edge index at the next node to keep routes
    // convergent (the SybilLimit back-traceability property).
    const auto next_nbrs = topology_.out(next);
    const auto it = std::lower_bound(next_nbrs.begin(), next_nbrs.end(),
                                     current);
    entry = static_cast<std::size_t>(it - next_nbrs.begin());
    current = next;
    route.push_back(current);
  }
  return route;
}

}  // namespace san::apps

// Community detection on SANs — the application the paper motivates in
// §3.4 ("the community structure among users' friends is highly dynamic,
// which inspires us to do dynamic community detection") and via [62]
// (structural/attribute clustering).
//
// Implementation: synchronous-free label propagation over the undirected
// social view, with an attribute-aware variant that also propagates labels
// through shared attributes (each attribute community votes with a weight
// that shrinks with its size, so "city" mega-attributes don't glue the
// graph together).
#pragma once

#include <cstdint>
#include <vector>

#include "san/snapshot.hpp"
#include "stats/rng.hpp"

namespace san::apps {

struct CommunityOptions {
  int max_iterations = 32;
  /// Weight multiplier for votes arriving through a shared attribute of m
  /// members: attribute_weight / m per co-member. 0 disables the SAN part
  /// (plain label propagation).
  double attribute_weight = 0.0;
  std::uint64_t seed = 1;
};

struct CommunityResult {
  std::vector<std::uint32_t> label;  // community id per social node (dense)
  std::size_t community_count = 0;
  int iterations = 0;
};

/// Label propagation (social links only when options.attribute_weight == 0,
/// otherwise SAN-aware).
CommunityResult detect_communities(const SanSnapshot& snap,
                                   const CommunityOptions& options = {});

/// Newman modularity of a labeling on the undirected social view (each
/// directed link counted once per direction).
double modularity(const SanSnapshot& snap,
                  const std::vector<std::uint32_t>& label);

/// Normalized mutual information between two labelings (for recovering
/// planted attribute communities in tests/benches).
double normalized_mutual_information(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b);

}  // namespace san::apps

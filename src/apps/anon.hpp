// Social-network anonymous communication (Fig 19b of the paper).
//
// Drac-style systems [11] pick relays by random walks on the social graph.
// A low-latency circuit is compromised by end-to-end timing analysis when
// both its first and last relays are adversary-controlled. We estimate that
// probability by Monte-Carlo: walks of the given length on the
// degree-bounded undirected social graph, compromised nodes sampled
// uniformly.
#pragma once

#include <cstdint>
#include <span>

#include "graph/csr.hpp"
#include "stats/rng.hpp"

namespace san::apps {

struct AnonOptions {
  std::size_t degree_bound = 100;
  std::size_t walk_length = 5;    // circuit length in relays
  std::size_t num_walks = 200'000;
};

class AnonymousCommunication {
 public:
  AnonymousCommunication(const graph::CsrGraph& social,
                         const AnonOptions& options);

  const graph::CsrGraph& topology() const { return topology_; }

  /// Probability that the first and last relays of a random-walk circuit
  /// are both compromised.
  double timing_attack_probability(
      std::span<const std::uint8_t> compromised_flags, stats::Rng& rng) const;

  /// Compromise `count` nodes uniformly at random, then estimate.
  double timing_attack_probability_uniform(std::size_t count,
                                           stats::Rng& rng) const;

 private:
  graph::CsrGraph topology_;
  AnonOptions options_;
};

}  // namespace san::apps

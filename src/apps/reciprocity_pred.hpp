// Reciprocity prediction (§4.2's implication: "any reciprocity predictor
// should incorporate node attributes instead of pure social structure
// metrics", in the spirit of [9, 21]).
//
// A one-directional link u -> v at the halfway snapshot is scored for its
// chance of becoming reciprocal by the final snapshot. The structural
// scorer uses the number of common social neighbors; the SAN-aware scorer
// adds type-weighted common attributes. Evaluation is AUC over the actual
// maturation outcomes.
#pragma once

#include <array>
#include <cstdint>

#include "san/snapshot.hpp"
#include "stats/rng.hpp"

namespace san::apps {

struct ReciprocityWeights {
  /// Saturating common-neighbor feature weight: w * c / (c + c_half).
  double common_neighbor = 1.0;
  double common_neighbor_half = 6.0;
  /// Per-type weight of a shared attribute.
  std::array<double, kAttributeTypeCount> attribute{0.8, 0.5, 1.5, 0.2, 0.5};
};

struct ReciprocityScore {
  double structural = 0.0;  // saturating common-neighbor feature
  double san = 0.0;         // structural + type-weighted common attributes

  bool operator==(const ReciprocityScore&) const = default;
};

/// Per-query entry point: score the directed link u -> v for its chance of
/// reciprocating, from the snapshot's neighbor and attribute spans alone.
/// Deterministic and allocation-free; the whole-network evaluator below and
/// the serving engine both call this.
ReciprocityScore score_reciprocity(const SanSnapshot& snap, NodeId u, NodeId v,
                                   const ReciprocityWeights& weights);

struct ReciprocityPredictionResult {
  double auc_structural = 0.0;  // common neighbors only
  double auc_san = 0.0;         // + attributes
  std::uint64_t positives = 0;  // links that became reciprocal
  std::uint64_t negatives = 0;
};

/// Score every one-directional link of `halfway` and evaluate both scorers
/// against the reciprocation outcomes observed in `final_snap`. AUC is
/// estimated from `pair_samples` random positive/negative pairs.
ReciprocityPredictionResult evaluate_reciprocity_prediction(
    const SanSnapshot& halfway, const SanSnapshot& final_snap,
    const ReciprocityWeights& weights, std::size_t pair_samples,
    stats::Rng& rng);

}  // namespace san::apps

#include "apps/reciprocity_pred.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/simd/simd.hpp"

namespace san::apps {
namespace {

// Shared attributes weighted by type; see apps/linkpred.cpp for the
// bit-equality argument (ascending intersect order == merge-walk order).
double attribute_feature(const SanSnapshot& snap, NodeId u, NodeId v,
                         const ReciprocityWeights& weights) {
  const auto au = snap.attributes_of(u);
  const auto av = snap.attributes_of(v);
  thread_local std::vector<AttrId> matched;
  matched.resize(std::min(au.size(), av.size()) + core::simd::kIntoPad);
  const std::size_t n = core::simd::intersect_into(au, av, matched.data());
  double score = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    score += weights.attribute[static_cast<std::size_t>(
        snap.attribute_types[matched[i]])];
  }
  return score;
}

}  // namespace

ReciprocityScore score_reciprocity(const SanSnapshot& snap, NodeId u, NodeId v,
                                   const ReciprocityWeights& weights) {
  if (u >= snap.social_node_count() || v >= snap.social_node_count()) {
    throw std::out_of_range("score_reciprocity: unknown node");
  }
  const auto c = static_cast<double>(core::simd::intersect_count(
      snap.social.neighbors(u), snap.social.neighbors(v)));
  ReciprocityScore score;
  score.structural =
      weights.common_neighbor * c / (c + weights.common_neighbor_half);
  score.san = score.structural + attribute_feature(snap, u, v, weights);
  return score;
}

ReciprocityPredictionResult evaluate_reciprocity_prediction(
    const SanSnapshot& halfway, const SanSnapshot& final_snap,
    const ReciprocityWeights& weights, std::size_t pair_samples,
    stats::Rng& rng) {
  if (final_snap.social_node_count() < halfway.social_node_count()) {
    throw std::invalid_argument(
        "evaluate_reciprocity_prediction: final snapshot precedes halfway");
  }
  ReciprocityPredictionResult result;

  // Collect one-directional links at halfway with both scores and the
  // maturation outcome.
  struct Scored {
    double structural;
    double san;
  };
  std::vector<Scored> positives, negatives;
  const auto& g = halfway.social;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const NodeId v : g.out(u)) {
      if (g.has_edge(v, u)) continue;  // already mutual
      const auto score = score_reciprocity(halfway, u, v, weights);
      if (final_snap.social.has_edge(v, u)) {
        positives.push_back({score.structural, score.san});
      } else {
        negatives.push_back({score.structural, score.san});
      }
    }
  }
  result.positives = positives.size();
  result.negatives = negatives.size();
  if (positives.empty() || negatives.empty()) return result;

  double wins_structural = 0.0, wins_san = 0.0;
  for (std::size_t i = 0; i < pair_samples; ++i) {
    const auto& p = positives[rng.uniform_index(positives.size())];
    const auto& n = negatives[rng.uniform_index(negatives.size())];
    wins_structural +=
        p.structural > n.structural   ? 1.0
        : p.structural == n.structural ? 0.5
                                       : 0.0;
    wins_san += p.san > n.san ? 1.0 : p.san == n.san ? 0.5 : 0.0;
  }
  result.auc_structural = wins_structural / static_cast<double>(pair_samples);
  result.auc_san = wins_san / static_cast<double>(pair_samples);
  return result;
}

}  // namespace san::apps

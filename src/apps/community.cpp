#include "apps/community.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace san::apps {

CommunityResult detect_communities(const SanSnapshot& snap,
                                   const CommunityOptions& options) {
  const std::size_t n = snap.social_node_count();
  CommunityResult result;
  result.label.resize(n);
  std::iota(result.label.begin(), result.label.end(), 0u);
  if (n == 0) return result;

  stats::Rng rng(options.seed);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});

  std::unordered_map<std::uint32_t, double> votes;
  bool changed = true;
  for (int iter = 0; iter < options.max_iterations && changed; ++iter) {
    result.iterations = iter + 1;
    changed = false;
    // Random asynchronous update order each round.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    for (const NodeId u : order) {
      votes.clear();
      for (const NodeId v : snap.social.neighbors(u)) {
        votes[result.label[v]] += 1.0;
      }
      if (options.attribute_weight > 0.0) {
        for (const AttrId x : snap.attributes_of(u)) {
          const auto members = snap.members_of(x);
          if (members.size() < 2) continue;
          const double w =
              options.attribute_weight / static_cast<double>(members.size());
          for (const NodeId v : members) {
            if (v != u) votes[result.label[v]] += w;
          }
        }
      }
      if (votes.empty()) continue;
      // Highest vote; break ties by smallest label for determinism.
      std::uint32_t best = result.label[u];
      double best_votes = -1.0;
      for (const auto& [label, weight] : votes) {
        if (weight > best_votes ||
            (weight == best_votes && label < best)) {
          best = label;
          best_votes = weight;
        }
      }
      if (best != result.label[u]) {
        result.label[u] = best;
        changed = true;
      }
    }
  }

  // Compact labels to dense ids.
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (auto& label : result.label) {
    const auto [it, inserted] =
        remap.emplace(label, static_cast<std::uint32_t>(remap.size()));
    label = it->second;
  }
  result.community_count = remap.size();
  return result;
}

double modularity(const SanSnapshot& snap,
                  const std::vector<std::uint32_t>& label) {
  const std::size_t n = snap.social_node_count();
  if (label.size() != n) {
    throw std::invalid_argument("modularity: label size mismatch");
  }
  // Undirected view: degree = |neighbors|, total stubs = sum of degrees.
  double m2 = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    m2 += static_cast<double>(snap.social.degree(u));
  }
  if (m2 == 0.0) return 0.0;

  std::unordered_map<std::uint32_t, double> community_degree;
  double internal = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    community_degree[label[u]] += static_cast<double>(snap.social.degree(u));
    for (const NodeId v : snap.social.neighbors(u)) {
      if (label[u] == label[v]) internal += 1.0;
    }
  }
  double q = internal / m2;
  for (const auto& [community, degree] : community_degree) {
    q -= (degree / m2) * (degree / m2);
  }
  return q;
}

double normalized_mutual_information(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("nmi: size mismatch or empty");
  }
  const auto n = static_cast<double>(a.size());
  std::unordered_map<std::uint32_t, double> pa, pb;
  std::unordered_map<std::uint64_t, double> joint;
  for (std::size_t i = 0; i < a.size(); ++i) {
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
    joint[(static_cast<std::uint64_t>(a[i]) << 32) | b[i]] += 1.0;
  }
  double ha = 0.0, hb = 0.0, mi = 0.0;
  for (const auto& [label, count] : pa) {
    const double p = count / n;
    ha -= p * std::log(p);
  }
  for (const auto& [label, count] : pb) {
    const double p = count / n;
    hb -= p * std::log(p);
  }
  for (const auto& [key, count] : joint) {
    const double pxy = count / n;
    const double px = pa[static_cast<std::uint32_t>(key >> 32)] / n;
    const double py = pb[static_cast<std::uint32_t>(key & 0xffffffffu)] / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  if (ha <= 0.0 && hb <= 0.0) return 1.0;  // both single-community
  const double denom = 0.5 * (ha + hb);
  return denom <= 0.0 ? 0.0 : mi / denom;
}

}  // namespace san::apps

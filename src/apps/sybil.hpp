// SybilLimit [59] evaluation (Fig 19a of the paper).
//
// SybilLimit bounds the number of Sybil identities an adversary can get
// accepted to O(w) per attack edge, where w is the random-route length and
// an attack edge connects a compromised (adversary-controlled) user to an
// honest one. The paper's Fig 19a therefore plots
//     accepted Sybil identities  =  w × (number of attack edges)
// on the degree-bounded (cap 100) social graph, with compromised nodes
// sampled uniformly at random and w = 10.
//
// A random-route simulator (per-node pseudorandom permutation routing, the
// actual SybilLimit mechanism) is included for verification on small graphs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "stats/rng.hpp"

namespace san::apps {

struct SybilLimitOptions {
  std::size_t degree_bound = 100;
  std::size_t route_length = 10;  // w
};

struct SybilLimitResult {
  std::uint64_t attack_edges = 0;
  double sybil_identities = 0.0;  // w * attack_edges
  std::size_t compromised = 0;

  bool operator==(const SybilLimitResult&) const = default;
};

class SybilLimit {
 public:
  /// Builds the degree-bounded undirected topology once.
  SybilLimit(const graph::CsrGraph& social, const SybilLimitOptions& options);

  const graph::CsrGraph& topology() const { return topology_; }

  /// Accepted-Sybil bound for an explicit compromised set (node flags).
  SybilLimitResult evaluate(
      std::span<const std::uint8_t> compromised_flags) const;

  /// Compromise `count` distinct nodes uniformly at random, then evaluate.
  SybilLimitResult evaluate_uniform(std::size_t count, stats::Rng& rng) const;

  /// Per-query entry point (the serving layer's `sybil T USER`): the
  /// adversary region is USER's closed neighborhood {USER} ∪ Γ(USER) in
  /// the degree-bounded topology, and the result is EXACTLY
  /// evaluate(flags) for flags marking that region — only computed by
  /// walking the region's adjacency instead of scanning every node.
  /// `flags`/`touched` are dense scratch (resized here, all-zero on entry,
  /// restored to all-zero on return) so a serving lane reuses capacity
  /// across queries. `user` must be < topology().node_count().
  SybilLimitResult evaluate_region(graph::NodeId user,
                                   std::vector<std::uint8_t>& flags,
                                   std::vector<graph::NodeId>& touched) const;

  /// One random route of length w from `start`, using per-node pseudorandom
  /// permutation routing keyed by `instance`; returns the visited nodes
  /// (route[0] == start). Routes are back-traceable as SybilLimit requires:
  /// the same instance yields converging routes.
  std::vector<graph::NodeId> random_route(graph::NodeId start,
                                          std::uint64_t instance) const;

 private:
  graph::CsrGraph topology_;
  SybilLimitOptions options_;
};

}  // namespace san::apps

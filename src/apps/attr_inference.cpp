#include "apps/attr_inference.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace san::apps {
namespace {

std::vector<AttributePrediction> rank_candidates(
    const SanSnapshot& snap, NodeId u, AttrId held_out,
    const AttributeInferenceOptions& options) {
  std::unordered_map<AttrId, double> votes;
  for (const NodeId v : snap.social.neighbors(u)) {
    const bool mutual = snap.social.has_edge(u, v) && snap.social.has_edge(v,
                                                                           u);
    const double w = mutual ? options.mutual_neighbor_weight
                            : options.one_way_neighbor_weight;
    for (const AttrId x : snap.attributes_of(v)) votes[x] += w;
  }
  // Remove attributes u still declares (the held-out one stays a candidate).
  for (const AttrId x : snap.attributes_of(u)) {
    if (x != held_out) votes.erase(x);
  }

  std::vector<AttributePrediction> ranked;
  ranked.reserve(votes.size());
  for (const auto& [attribute, score] : votes) ranked.push_back({attribute,
                                                                 score});
  std::sort(ranked.begin(), ranked.end(),
            [](const AttributePrediction& a, const AttributePrediction& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.attribute < b.attribute;
            });
  if (ranked.size() > options.top_k) ranked.resize(options.top_k);
  return ranked;
}

}  // namespace

std::vector<AttributePrediction> infer_attributes(
    const SanSnapshot& snap, NodeId u,
    const AttributeInferenceOptions& options) {
  if (u >= snap.social_node_count()) {
    throw std::out_of_range("infer_attributes: unknown node");
  }
  // No held-out attribute: exclude everything u declares.
  constexpr AttrId kNone = static_cast<AttrId>(-1);
  return rank_candidates(snap, u, kNone, options);
}

AttributeInferenceResult evaluate_attribute_inference(
    const SanSnapshot& snap, std::size_t samples,
    const AttributeInferenceOptions& options, stats::Rng& rng) {
  AttributeInferenceResult result;
  // Collect all (user, attribute) links once.
  std::vector<std::pair<NodeId, AttrId>> links;
  for (NodeId u = 0; u < snap.social_node_count(); ++u) {
    for (const AttrId x : snap.attributes_of(u)) links.emplace_back(u, x);
  }
  if (links.empty()) return result;

  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto& [u, held_out] = links[rng.uniform_index(links.size())];
    const auto predictions = rank_candidates(snap, u, held_out, options);
    if (predictions.empty()) continue;
    ++result.evaluated;
    for (const auto& p : predictions) {
      if (p.attribute == held_out) {
        ++hits;
        break;
      }
    }
  }
  if (result.evaluated > 0) {
    result.recall_at_k =
        static_cast<double>(hits) / static_cast<double>(result.evaluated);
  }
  return result;
}

}  // namespace san::apps

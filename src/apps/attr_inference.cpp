#include "apps/attr_inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/simd/simd.hpp"

namespace san::apps {

void rank_attribute_candidates(const SanSnapshot& snap, NodeId u,
                               AttrId held_out,
                               const AttributeInferenceOptions& options,
                               InferenceScratch& scratch,
                               std::vector<AttributePrediction>& out) {
  out.clear();
  if (u >= snap.social_node_count()) {
    throw std::out_of_range("infer_attributes: unknown node");
  }
  const std::size_t n_attr = snap.attribute_id_count();
  if (scratch.vote.size() < n_attr) {
    scratch.vote.resize(n_attr, 0.0);
    scratch.seen.resize(n_attr, 0);
    scratch.excluded.resize(n_attr, 0);
  }
  scratch.touched.clear();

  // v is reciprocally linked iff v ∈ out(u) ∩ in(u); computing that set
  // once replaces two binary searches per neighbor, and neighbors(u) is
  // the sorted union of both sides, so one merge walk recovers the same
  // per-neighbor truth values in the same order.
  const auto out_u = snap.social.out(u);
  const auto in_u = snap.social.in(u);
  scratch.mutual.resize(std::min(out_u.size(), in_u.size()) +
                        core::simd::kIntoPad);
  const std::size_t n_mutual =
      core::simd::intersect_into(out_u, in_u, scratch.mutual.data());
  std::size_t mi = 0;

  // Votes accumulate in traversal order (bit-equal to the historical
  // unordered_map formulation).
  for (const NodeId v : snap.social.neighbors(u)) {
    while (mi < n_mutual && scratch.mutual[mi] < v) ++mi;
    const bool mutual = mi < n_mutual && scratch.mutual[mi] == v;
    const double w = mutual ? options.mutual_neighbor_weight
                            : options.one_way_neighbor_weight;
    for (const AttrId x : snap.attributes_of(v)) {
      if (!scratch.seen[x]) {
        scratch.seen[x] = 1;
        scratch.touched.push_back(x);
      }
      scratch.vote[x] += w;
    }
  }
  // Remove attributes u still declares (the held-out one stays a candidate).
  const auto declared = snap.attributes_of(u);
  for (const AttrId x : declared) {
    if (x != held_out) scratch.excluded[x] = 1;
  }

  out.reserve(scratch.touched.size());
  for (const AttrId x : scratch.touched) {
    if (!scratch.excluded[x]) out.push_back({x, scratch.vote[x]});
  }

  // Restore the all-zero invariant.
  for (const AttrId x : scratch.touched) {
    scratch.seen[x] = 0;
    scratch.vote[x] = 0.0;
  }
  for (const AttrId x : declared) scratch.excluded[x] = 0;

  std::sort(out.begin(), out.end(),
            [](const AttributePrediction& a, const AttributePrediction& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.attribute < b.attribute;
            });
  if (out.size() > options.top_k) out.resize(options.top_k);
}

std::vector<AttributePrediction> infer_attributes(
    const SanSnapshot& snap, NodeId u,
    const AttributeInferenceOptions& options) {
  InferenceScratch scratch;
  std::vector<AttributePrediction> ranked;
  rank_attribute_candidates(snap, u, kNoHeldOutAttribute, options, scratch,
                            ranked);
  return ranked;
}

AttributeInferenceResult evaluate_attribute_inference(
    const SanSnapshot& snap, std::size_t samples,
    const AttributeInferenceOptions& options, stats::Rng& rng) {
  AttributeInferenceResult result;
  // Collect all (user, attribute) links once.
  std::vector<std::pair<NodeId, AttrId>> links;
  for (NodeId u = 0; u < snap.social_node_count(); ++u) {
    for (const AttrId x : snap.attributes_of(u)) links.emplace_back(u, x);
  }
  if (links.empty()) return result;

  std::uint64_t hits = 0;
  InferenceScratch scratch;
  std::vector<AttributePrediction> predictions;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto& [u, held_out] = links[rng.uniform_index(links.size())];
    rank_attribute_candidates(snap, u, held_out, options, scratch,
                              predictions);
    if (predictions.empty()) continue;
    ++result.evaluated;
    for (const auto& p : predictions) {
      if (p.attribute == held_out) {
        ++hits;
        break;
      }
    }
  }
  if (result.evaluated > 0) {
    result.recall_at_k =
        static_cast<double>(hits) / static_cast<double>(result.evaluated);
  }
  return result;
}

}  // namespace san::apps

// Attribute inference (the SAN application of [17, 58] the paper cites
// throughout): predict a user's undeclared attributes from the attributes
// of its social neighborhood, optionally weighting neighbors that are
// reciprocally linked more (the §4.2 finding that mutual links correlate
// with shared attributes).
#pragma once

#include <cstdint>
#include <vector>

#include "san/snapshot.hpp"
#include "stats/rng.hpp"

namespace san::apps {

struct AttributeInferenceOptions {
  std::size_t top_k = 3;            // predictions per user
  double mutual_neighbor_weight = 2.0;  // weight of reciprocal neighbors
  double one_way_neighbor_weight = 1.0;
};

struct AttributePrediction {
  AttrId attribute = 0;
  double score = 0.0;

  bool operator==(const AttributePrediction&) const = default;
};

/// Reusable per-query state for infer_attributes_into: dense vote/flag
/// arrays over the snapshot's attribute id space plus the touched list, so
/// a serving loop issues zero steady-state allocations per query. Restored
/// to all-zero after every call; only ever grows.
struct InferenceScratch {
  std::vector<double> vote;
  std::vector<std::uint8_t> seen;
  std::vector<std::uint8_t> excluded;
  std::vector<AttrId> touched;
  /// out(u) ∩ in(u), computed once per query (core/simd intersect) and
  /// merge-walked against neighbors(u) for the per-neighbor mutual test.
  std::vector<NodeId> mutual;
};

/// Sentinel for "no held-out attribute" in rank_attribute_candidates.
inline constexpr AttrId kNoHeldOutAttribute = static_cast<AttrId>(-1);

/// Per-query entry point: rank candidate attributes for user u by
/// neighborhood vote, excluding attributes u declares — except `held_out`,
/// which stays a candidate (the holdout evaluator's recovery target). Votes
/// accumulate in traversal order; ties break on attribute id.
void rank_attribute_candidates(const SanSnapshot& snap, NodeId u,
                               AttrId held_out,
                               const AttributeInferenceOptions& options,
                               InferenceScratch& scratch,
                               std::vector<AttributePrediction>& out);

/// Rank candidate attributes for user u by neighborhood vote. Attributes u
/// already declares are excluded. Convenience wrapper over
/// rank_attribute_candidates with throwaway scratch.
std::vector<AttributePrediction> infer_attributes(
    const SanSnapshot& snap, NodeId u,
    const AttributeInferenceOptions& options = {});

struct AttributeInferenceResult {
  /// Fraction of held-out attribute links recovered within the top-k
  /// predictions of their user.
  double recall_at_k = 0.0;
  std::uint64_t evaluated = 0;
};

/// Holdout evaluation: for `samples` random (user, attribute) links, remove
/// the link, predict, and check whether the removed attribute ranks within
/// top_k. Users need >= 1 remaining attribute-bearing neighbor to be
/// evaluable.
AttributeInferenceResult evaluate_attribute_inference(
    const SanSnapshot& snap, std::size_t samples,
    const AttributeInferenceOptions& options, stats::Rng& rng);

}  // namespace san::apps

// Attribute inference (the SAN application of [17, 58] the paper cites
// throughout): predict a user's undeclared attributes from the attributes
// of its social neighborhood, optionally weighting neighbors that are
// reciprocally linked more (the §4.2 finding that mutual links correlate
// with shared attributes).
#pragma once

#include <cstdint>
#include <vector>

#include "san/snapshot.hpp"
#include "stats/rng.hpp"

namespace san::apps {

struct AttributeInferenceOptions {
  std::size_t top_k = 3;            // predictions per user
  double mutual_neighbor_weight = 2.0;  // weight of reciprocal neighbors
  double one_way_neighbor_weight = 1.0;
};

struct AttributePrediction {
  AttrId attribute = 0;
  double score = 0.0;
};

/// Rank candidate attributes for user u by neighborhood vote. Attributes u
/// already declares are excluded.
std::vector<AttributePrediction> infer_attributes(
    const SanSnapshot& snap, NodeId u,
    const AttributeInferenceOptions& options = {});

struct AttributeInferenceResult {
  /// Fraction of held-out attribute links recovered within the top-k
  /// predictions of their user.
  double recall_at_k = 0.0;
  std::uint64_t evaluated = 0;
};

/// Holdout evaluation: for `samples` random (user, attribute) links, remove
/// the link, predict, and check whether the removed attribute ranks within
/// top_k. Users need >= 1 remaining attribute-bearing neighbor to be
/// evaluable.
AttributeInferenceResult evaluate_attribute_inference(
    const SanSnapshot& snap, std::size_t samples,
    const AttributeInferenceOptions& options, stats::Rng& rng);

}  // namespace san::apps

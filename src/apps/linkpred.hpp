// Attribute-aware link prediction / friend recommendation (§7 of the paper:
// "users sharing common employer attributes are more likely to be linked
// ... can help design a better friend recommendation system").
//
// Candidates are a user's 2-hop neighborhood plus members of its attribute
// communities; scores combine common social neighbors with type-weighted
// common attributes. A holdout evaluation compares the social-only scorer
// against the SAN-aware scorer.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "san/snapshot.hpp"
#include "stats/rng.hpp"

namespace san::apps {

struct LinkPredictionWeights {
  double common_neighbor = 1.0;
  /// Per-attribute-type weight for shared attributes (Employer should weigh
  /// more than City per Fig 13b).
  std::array<double, kAttributeTypeCount> attribute{0.6, 0.4, 1.0, 0.15, 0.3};
};

struct Recommendation {
  NodeId candidate = 0;
  double score = 0.0;
};

/// Top-k recommended link targets for `u` (excluding existing out-links).
std::vector<Recommendation> recommend_friends(
    const SanSnapshot& snap, NodeId u, std::size_t k,
    const LinkPredictionWeights& weights);

struct HoldoutResult {
  double auc_social_only = 0.0;
  double auc_san = 0.0;
  std::size_t pairs = 0;
};

/// AUC-style holdout: sample `pairs` (positive edge, random non-edge) pairs
/// and report how often each scorer ranks the positive higher (ties count
/// half). The positive edge is scored with itself removed from the graph's
/// evidence (its reverse edge and common structure remain).
HoldoutResult evaluate_link_prediction(const SanSnapshot& snap,
                                       std::size_t pairs,
                                       const LinkPredictionWeights& weights,
                                       stats::Rng& rng);

}  // namespace san::apps

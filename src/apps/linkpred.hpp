// Attribute-aware link prediction / friend recommendation (§7 of the paper:
// "users sharing common employer attributes are more likely to be linked
// ... can help design a better friend recommendation system").
//
// Candidates are a user's 2-hop neighborhood plus members of its attribute
// communities; scores combine common social neighbors with type-weighted
// common attributes. A holdout evaluation compares the social-only scorer
// against the SAN-aware scorer.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "san/snapshot.hpp"
#include "stats/rng.hpp"

namespace san::apps {

struct LinkPredictionWeights {
  double common_neighbor = 1.0;
  /// Per-attribute-type weight for shared attributes (Employer should weigh
  /// more than City per Fig 13b).
  std::array<double, kAttributeTypeCount> attribute{0.6, 0.4, 1.0, 0.15, 0.3};
};

struct Recommendation {
  NodeId candidate = 0;
  double score = 0.0;

  bool operator==(const Recommendation&) const = default;
};

/// Reusable per-query state for recommend_friends_into: dense score/flag
/// arrays over the snapshot's node ids plus the touched-candidate list, so
/// a serving loop issues zero steady-state allocations per query. The
/// arrays are restored to all-zero after every call; one scratch serves
/// snapshots of any size (it only ever grows).
struct RecommendScratch {
  std::vector<double> score;
  std::vector<std::uint8_t> seen;
  std::vector<std::uint8_t> excluded;
  std::vector<NodeId> touched;
};

/// Top-k recommended link targets for `u` (excluding existing out-links).
/// Candidates come from the friends-of-friends frontier (CsrGraph neighbor
/// spans) and from attribute co-membership (BipartiteCsr::members_of), so
/// no full-node scan ever happens. Results are deterministic: scores
/// accumulate in traversal order and ties break on candidate id.
void recommend_friends_into(const SanSnapshot& snap, NodeId u, std::size_t k,
                            const LinkPredictionWeights& weights,
                            RecommendScratch& scratch,
                            std::vector<Recommendation>& out);

/// Convenience wrapper over recommend_friends_into with throwaway scratch.
std::vector<Recommendation> recommend_friends(
    const SanSnapshot& snap, NodeId u, std::size_t k,
    const LinkPredictionWeights& weights);

struct HoldoutResult {
  double auc_social_only = 0.0;
  double auc_san = 0.0;
  std::size_t pairs = 0;
};

/// AUC-style holdout: sample `pairs` (positive edge, random non-edge) pairs
/// and report how often each scorer ranks the positive higher (ties count
/// half). The positive edge is scored with itself removed from the graph's
/// evidence (its reverse edge and common structure remain).
HoldoutResult evaluate_link_prediction(const SanSnapshot& snap,
                                       std::size_t pairs,
                                       const LinkPredictionWeights& weights,
                                       stats::Rng& rng);

}  // namespace san::apps

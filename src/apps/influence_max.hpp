// Frontier-bounded greedy influence maximization — the serving-layer
// formulation of the paper's influence study (§5/Fig 13 motivates which
// users move their neighborhoods; here we select WHO to seed so that a
// one-hop broadcast reaches the most users).
//
// Spread model: a seed set S reaches exactly its closed neighborhood
// ⋃_{s∈S} ({s} ∪ Γs(s)) over the undirected social view (the paper's
// Γs(u)). Selection is the standard greedy: k rounds, each adding the
// candidate with the largest marginal coverage gain. The candidate pool is
// FRONTIER-BOUNDED — only nodes at distance <= 1 from the already-covered
// set are considered, so a query never scans the whole network (the PR 3
// serving rule) and selection never jumps to a disconnected component; it
// stops early when no frontier candidate adds coverage. With an empty
// seed set the first pick has no frontier, so it is the globally
// best-covering node (max degree, smallest id on ties) — callers on a hot
// path precompute it once per snapshot with best_first_pick and pass it
// as the hint.
//
// Everything here is a pure deterministic function of (graph, seeds, k):
// no RNG, ties broken toward the smallest node id, so results are
// byte-identical at any SAN_THREADS / SAN_SIMD setting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace san::apps {

struct InfluencePick {
  graph::NodeId node = 0;
  std::uint64_t gain = 0;  // newly covered users when this seed was added

  bool operator==(const InfluencePick&) const = default;
};

struct InfluenceResult {
  std::vector<InfluencePick> picks;  // greedy additions, in selection order
  std::uint64_t covered = 0;         // |closed neighborhood| of seeds+picks

  bool operator==(const InfluenceResult&) const = default;
};

/// Dense per-query scratch: every call restores the all-zero invariant, so
/// a serving lane reuses capacity across queries (same contract as
/// RecommendScratch).
struct InfluenceScratch {
  std::vector<std::uint8_t> covered;   // node -> reached by current seeds
  std::vector<std::uint8_t> is_seed;   // node -> already selected / given
  std::vector<std::uint8_t> seen;      // per-round candidate dedup
  std::vector<graph::NodeId> covered_list;
  std::vector<graph::NodeId> seed_list;
  std::vector<graph::NodeId> candidates;  // per-round
};

/// The hint value meaning "no precomputed first pick; scan here".
inline constexpr graph::NodeId kNoFirstPick =
    static_cast<graph::NodeId>(0xffffffffu);

/// The globally best first seed of `g`: the node maximizing
/// |{v} ∪ Γs(v)| = 1 + degree(v), smallest id on ties. Returns
/// kNoFirstPick for an empty graph. O(nodes) — precompute once per
/// snapshot when serving.
graph::NodeId best_first_pick(const graph::CsrGraph& g);

/// Greedily extend `seeds` (deduplicated; each must be < g.node_count())
/// by up to `k` picks. `first_pick` must be best_first_pick(g) or
/// kNoFirstPick (the hint only changes WHERE the first-round scan runs,
/// never the result).
InfluenceResult influence_maximize(const graph::CsrGraph& g,
                                   std::span<const graph::NodeId> seeds,
                                   std::size_t k, InfluenceScratch& scratch,
                                   graph::NodeId first_pick = kNoFirstPick);

}  // namespace san::apps

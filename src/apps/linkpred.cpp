#include "apps/linkpred.hpp"

#include <algorithm>
#include <unordered_map>

namespace san::apps {
namespace {

std::size_t common_sorted(std::span<const NodeId> a,
                          std::span<const NodeId> b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count, ++ia, ++ib;
    }
  }
  return count;
}

double attribute_score(const SanSnapshot& snap, NodeId u, NodeId v,
                       const LinkPredictionWeights& weights) {
  const auto au = snap.attributes_of(u);
  const auto av = snap.attributes_of(v);
  double score = 0.0;
  auto iu = au.begin();
  auto iv = av.begin();
  while (iu != au.end() && iv != av.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      score += weights.attribute[static_cast<std::size_t>(
          snap.attribute_types[*iu])];
      ++iu, ++iv;
    }
  }
  return score;
}

double pair_score(const SanSnapshot& snap, NodeId u, NodeId v,
                  const LinkPredictionWeights& weights, bool use_attributes) {
  double score =
      weights.common_neighbor *
      static_cast<double>(common_sorted(snap.social.neighbors(u),
                                        snap.social.neighbors(v)));
  if (use_attributes) score += attribute_score(snap, u, v, weights);
  return score;
}

}  // namespace

std::vector<Recommendation> recommend_friends(
    const SanSnapshot& snap, NodeId u, std::size_t k,
    const LinkPredictionWeights& weights) {
  if (u >= snap.social_node_count()) {
    throw std::out_of_range("recommend_friends: unknown node");
  }
  std::unordered_map<NodeId, double> scores;

  // 2-hop candidates with common-neighbor evidence accumulated on the fly.
  for (const NodeId w : snap.social.neighbors(u)) {
    for (const NodeId c : snap.social.neighbors(w)) {
      if (c == u) continue;
      scores[c] += weights.common_neighbor;
    }
  }
  // Attribute-community candidates.
  for (const AttrId x : snap.attributes_of(u)) {
    const double wx =
        weights.attribute[static_cast<std::size_t>(snap.attribute_types[x])];
    if (wx <= 0.0) continue;
    for (const NodeId c : snap.members_of(x)) {
      if (c == u) continue;
      scores[c] += wx;
    }
  }

  // Drop existing out-links.
  for (const NodeId v : snap.social.out(u)) scores.erase(v);
  scores.erase(u);

  std::vector<Recommendation> recs;
  recs.reserve(scores.size());
  for (const auto& [candidate, score] : scores) recs.push_back({candidate,
                                                                score});
  const std::size_t keep = std::min(k, recs.size());
  std::partial_sort(recs.begin(),
                    recs.begin() + static_cast<std::ptrdiff_t>(keep),
                    recs.end(), [](const Recommendation& a,
                                   const Recommendation& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.candidate < b.candidate;
                    });
  recs.resize(keep);
  return recs;
}

HoldoutResult evaluate_link_prediction(const SanSnapshot& snap,
                                       std::size_t pairs,
                                       const LinkPredictionWeights& weights,
                                       stats::Rng& rng) {
  HoldoutResult result;
  const std::size_t n = snap.social_node_count();
  if (n < 3 || snap.social_link_count() == 0) return result;

  // Collect the directed edge list once for positive sampling.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(snap.social_link_count());
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : snap.social.out(u)) edges.emplace_back(u, v);
  }

  double wins_social = 0.0, wins_san = 0.0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto& [pu, pv] = edges[rng.uniform_index(edges.size())];
    NodeId nu = 0, nv = 0;
    do {
      nu = static_cast<NodeId>(rng.uniform_index(n));
      nv = static_cast<NodeId>(rng.uniform_index(n));
    } while (nu == nv || snap.social.has_edge(nu, nv));

    const double pos_social = pair_score(snap, pu, pv, weights, false);
    const double neg_social = pair_score(snap, nu, nv, weights, false);
    const double pos_san = pair_score(snap, pu, pv, weights, true);
    const double neg_san = pair_score(snap, nu, nv, weights, true);
    wins_social +=
        pos_social > neg_social ? 1.0 : pos_social == neg_social ? 0.5 : 0.0;
    wins_san += pos_san > neg_san ? 1.0 : pos_san == neg_san ? 0.5 : 0.0;
    ++result.pairs;
  }
  if (result.pairs > 0) {
    result.auc_social_only = wins_social / static_cast<double>(result.pairs);
    result.auc_san = wins_san / static_cast<double>(result.pairs);
  }
  return result;
}

}  // namespace san::apps

#include "apps/linkpred.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/simd/simd.hpp"

namespace san::apps {
namespace {

// Shared attributes weighted by type. The matched attrs come back
// ascending from intersect_into — the same order the historical merge
// walk visited them — so the float accumulation is bit-equal at every
// dispatch level.
double attribute_score(const SanSnapshot& snap, NodeId u, NodeId v,
                       const LinkPredictionWeights& weights) {
  const auto au = snap.attributes_of(u);
  const auto av = snap.attributes_of(v);
  thread_local std::vector<AttrId> matched;
  matched.resize(std::min(au.size(), av.size()) + core::simd::kIntoPad);
  const std::size_t n = core::simd::intersect_into(au, av, matched.data());
  double score = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    score += weights.attribute[static_cast<std::size_t>(
        snap.attribute_types[matched[i]])];
  }
  return score;
}

double pair_score(const SanSnapshot& snap, NodeId u, NodeId v,
                  const LinkPredictionWeights& weights, bool use_attributes) {
  double score = weights.common_neighbor *
                 static_cast<double>(core::simd::intersect_count(
                     snap.social.neighbors(u), snap.social.neighbors(v)));
  if (use_attributes) score += attribute_score(snap, u, v, weights);
  return score;
}

}  // namespace

void recommend_friends_into(const SanSnapshot& snap, NodeId u, std::size_t k,
                            const LinkPredictionWeights& weights,
                            RecommendScratch& scratch,
                            std::vector<Recommendation>& out) {
  out.clear();
  if (u >= snap.social_node_count()) {
    throw std::out_of_range("recommend_friends: unknown node");
  }
  const std::size_t n = snap.social_node_count();
  if (scratch.score.size() < n) {
    scratch.score.resize(n, 0.0);
    scratch.seen.resize(n, 0);
    scratch.excluded.resize(n, 0);
  }
  scratch.touched.clear();

  // 2-hop candidates with common-neighbor evidence accumulated on the fly.
  // Per-candidate accumulation order is the traversal order, identical to
  // the historical unordered_map formulation, so scores are bit-equal.
  for (const NodeId w : snap.social.neighbors(u)) {
    for (const NodeId c : snap.social.neighbors(w)) {
      if (c == u) continue;
      if (!scratch.seen[c]) {
        scratch.seen[c] = 1;
        scratch.touched.push_back(c);
      }
      scratch.score[c] += weights.common_neighbor;
    }
  }
  // Attribute-community candidates.
  for (const AttrId x : snap.attributes_of(u)) {
    const double wx =
        weights.attribute[static_cast<std::size_t>(snap.attribute_types[x])];
    if (wx <= 0.0) continue;
    for (const NodeId c : snap.members_of(x)) {
      if (c == u) continue;
      if (!scratch.seen[c]) {
        scratch.seen[c] = 1;
        scratch.touched.push_back(c);
      }
      scratch.score[c] += wx;
    }
  }

  // Drop existing out-links (and u itself, already skipped above).
  const auto out_links = snap.social.out(u);
  for (const NodeId v : out_links) scratch.excluded[v] = 1;

  out.reserve(scratch.touched.size());
  for (const NodeId c : scratch.touched) {
    if (!scratch.excluded[c]) out.push_back({c, scratch.score[c]});
  }

  // Restore the all-zero invariant before sorting (sorting cannot throw
  // past it — the comparator is noexcept — but keep the window small).
  for (const NodeId c : scratch.touched) {
    scratch.seen[c] = 0;
    scratch.score[c] = 0.0;
  }
  for (const NodeId v : out_links) scratch.excluded[v] = 0;

  const std::size_t keep = std::min(k, out.size());
  std::partial_sort(out.begin(),
                    out.begin() + static_cast<std::ptrdiff_t>(keep),
                    out.end(), [](const Recommendation& a,
                                  const Recommendation& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.candidate < b.candidate;
                    });
  out.resize(keep);
}

std::vector<Recommendation> recommend_friends(
    const SanSnapshot& snap, NodeId u, std::size_t k,
    const LinkPredictionWeights& weights) {
  RecommendScratch scratch;
  std::vector<Recommendation> recs;
  recommend_friends_into(snap, u, k, weights, scratch, recs);
  return recs;
}

HoldoutResult evaluate_link_prediction(const SanSnapshot& snap,
                                       std::size_t pairs,
                                       const LinkPredictionWeights& weights,
                                       stats::Rng& rng) {
  HoldoutResult result;
  const std::size_t n = snap.social_node_count();
  if (n < 3 || snap.social_link_count() == 0) return result;

  // Collect the directed edge list once for positive sampling.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(snap.social_link_count());
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : snap.social.out(u)) edges.emplace_back(u, v);
  }

  double wins_social = 0.0, wins_san = 0.0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto& [pu, pv] = edges[rng.uniform_index(edges.size())];
    NodeId nu = 0, nv = 0;
    do {
      nu = static_cast<NodeId>(rng.uniform_index(n));
      nv = static_cast<NodeId>(rng.uniform_index(n));
    } while (nu == nv || snap.social.has_edge(nu, nv));

    const double pos_social = pair_score(snap, pu, pv, weights, false);
    const double neg_social = pair_score(snap, nu, nv, weights, false);
    const double pos_san = pair_score(snap, pu, pv, weights, true);
    const double neg_san = pair_score(snap, nu, nv, weights, true);
    wins_social +=
        pos_social > neg_social ? 1.0 : pos_social == neg_social ? 0.5 : 0.0;
    wins_san += pos_san > neg_san ? 1.0 : pos_san == neg_san ? 0.5 : 0.0;
    ++result.pairs;
  }
  if (result.pairs > 0) {
    result.auc_social_only = wins_social / static_cast<double>(result.pairs);
    result.auc_san = wins_san / static_cast<double>(result.pairs);
  }
  return result;
}

}  // namespace san::apps

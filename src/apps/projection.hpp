// Degree-bounded undirected projection of a directed social graph.
//
// Both application benchmarks of §6.2 (SybilLimit and the anonymity walk)
// run on the social structure with "an upper bound of 100 on the node
// degree", following the SybilLimit guidelines. This helper builds that
// symmetric, capped graph once so both apps share it.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace san::apps {

/// Symmetric graph containing each undirected link {u, v} (in both
/// directions) for which neither endpoint has exhausted `degree_bound`.
/// Links are admitted in ascending (u, v) order, mirroring a deterministic
/// truncation of oversized adjacency lists.
graph::CsrGraph degree_bounded_undirected(const graph::CsrGraph& social,
                                          std::size_t degree_bound);

}  // namespace san::apps

#include "apps/influence_max.hpp"

#include <stdexcept>

namespace san::apps {
namespace {

void ensure_capacity(InfluenceScratch& scratch, std::size_t n) {
  if (scratch.covered.size() < n) {
    scratch.covered.resize(n, 0);
    scratch.is_seed.resize(n, 0);
    scratch.seen.resize(n, 0);
  }
}

/// Marginal coverage of candidate v: |({v} ∪ Γs(v)) \ covered|.
std::uint64_t gain_of(const graph::CsrGraph& g,
                      const std::vector<std::uint8_t>& covered,
                      graph::NodeId v) {
  std::uint64_t gain = covered[v] ? 0 : 1;
  for (const graph::NodeId w : g.neighbors(v)) {
    if (!covered[w]) ++gain;
  }
  return gain;
}

}  // namespace

graph::NodeId best_first_pick(const graph::CsrGraph& g) {
  const std::size_t n = g.node_count();
  if (n == 0) return kNoFirstPick;
  graph::NodeId best = 0;
  std::size_t best_degree = g.degree(0);
  for (graph::NodeId v = 1; v < n; ++v) {
    const std::size_t d = g.degree(v);
    if (d > best_degree) {
      best = v;
      best_degree = d;
    }
  }
  return best;
}

InfluenceResult influence_maximize(const graph::CsrGraph& g,
                                   std::span<const graph::NodeId> seeds,
                                   std::size_t k, InfluenceScratch& scratch,
                                   graph::NodeId first_pick) {
  const std::size_t n = g.node_count();
  ensure_capacity(scratch, n);
  scratch.covered_list.clear();
  scratch.seed_list.clear();

  InfluenceResult result;
  const auto cover = [&](graph::NodeId v) {
    if (!scratch.covered[v]) {
      scratch.covered[v] = 1;
      scratch.covered_list.push_back(v);
      ++result.covered;
    }
  };
  for (const graph::NodeId s : seeds) {
    if (s >= n) {
      throw std::invalid_argument("influence_maximize: unknown seed");
    }
    if (scratch.is_seed[s]) continue;  // duplicates collapse deterministically
    scratch.is_seed[s] = 1;
    scratch.seed_list.push_back(s);
    cover(s);
    for (const graph::NodeId w : g.neighbors(s)) cover(w);
  }

  for (std::size_t round = 0; round < k; ++round) {
    graph::NodeId best = kNoFirstPick;
    std::uint64_t best_gain = 0;
    if (scratch.covered_list.empty()) {
      // No frontier yet (no initial seeds): the globally best-covering
      // node, precomputed per snapshot on the serving path.
      best = first_pick != kNoFirstPick ? first_pick : best_first_pick(g);
      if (best != kNoFirstPick) best_gain = gain_of(g, scratch.covered, best);
    } else {
      // Frontier candidates: every covered node and its neighbors, i.e.
      // distance <= 1 from the covered set, deduplicated with a per-round
      // `seen` pass. Enumeration order is unspecified, so the tie-break is
      // explicit: strictly greater gain wins, equal gain keeps the
      // smaller id.
      scratch.candidates.clear();
      const auto consider = [&](graph::NodeId v) {
        if (scratch.seen[v] || scratch.is_seed[v]) return;
        scratch.seen[v] = 1;
        scratch.candidates.push_back(v);
        const std::uint64_t gain = gain_of(g, scratch.covered, v);
        if (gain > best_gain || (gain == best_gain && gain > 0 && v < best)) {
          best = v;
          best_gain = gain;
        }
      };
      for (const graph::NodeId c : scratch.covered_list) {
        consider(c);
        for (const graph::NodeId w : g.neighbors(c)) consider(w);
      }
      for (const graph::NodeId v : scratch.candidates) scratch.seen[v] = 0;
    }
    if (best == kNoFirstPick || best_gain == 0) break;  // coverage saturated
    scratch.is_seed[best] = 1;
    scratch.seed_list.push_back(best);
    cover(best);
    for (const graph::NodeId w : g.neighbors(best)) cover(w);
    result.picks.push_back({best, best_gain});
  }

  for (const graph::NodeId v : scratch.covered_list) scratch.covered[v] = 0;
  for (const graph::NodeId v : scratch.seed_list) scratch.is_seed[v] = 0;
  scratch.covered_list.clear();
  scratch.seed_list.clear();
  return result;
}

}  // namespace san::apps

#include "apps/projection.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace san::apps {

graph::CsrGraph degree_bounded_undirected(const graph::CsrGraph& social,
                                          std::size_t degree_bound) {
  if (degree_bound == 0) {
    throw std::invalid_argument("degree_bounded_undirected: bound must be > 0");
  }
  using graph::NodeId;
  const std::size_t n = social.node_count();

  // Collect canonical undirected links (u < v), deduplicating reciprocal
  // directed pairs.
  std::vector<std::pair<NodeId, NodeId>> undirected;
  undirected.reserve(social.edge_count());
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : social.out(u)) {
      if (u < v) {
        undirected.emplace_back(u, v);
      } else if (!social.has_edge(v, u)) {
        undirected.emplace_back(v, u);  // only from this direction
      }
    }
  }
  std::sort(undirected.begin(), undirected.end());
  undirected.erase(std::unique(undirected.begin(), undirected.end()),
                   undirected.end());

  std::vector<std::size_t> degree(n, 0);
  std::vector<std::pair<NodeId, NodeId>> kept;
  kept.reserve(2 * undirected.size());
  for (const auto& [u, v] : undirected) {
    if (degree[u] >= degree_bound || degree[v] >= degree_bound) continue;
    ++degree[u];
    ++degree[v];
    kept.emplace_back(u, v);
    kept.emplace_back(v, u);
  }
  return graph::CsrGraph::from_edges(n, kept);
}

}  // namespace san::apps

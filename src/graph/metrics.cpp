#include "graph/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "core/accumulators.hpp"
#include "core/parallel.hpp"

namespace san::graph {

double reciprocity(const CsrGraph& g) {
  if (g.edge_count() == 0) return 0.0;
  const std::uint64_t mutual = core::parallel_reduce(
      g.node_count(), std::uint64_t{0},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::uint64_t partial = 0;
        for (std::size_t u = begin; u < end; ++u) {
          for (const NodeId v : g.out(static_cast<NodeId>(u))) {
            if (g.has_edge(v, static_cast<NodeId>(u))) ++partial;
          }
        }
        return partial;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  return static_cast<double>(mutual) / static_cast<double>(g.edge_count());
}

double density(const CsrGraph& g) {
  if (g.node_count() == 0) return 0.0;
  return static_cast<double>(g.edge_count()) /
         static_cast<double>(g.node_count());
}

namespace {

stats::Histogram histogram_of(const CsrGraph& g,
                              std::size_t (CsrGraph::*deg)(NodeId) const) {
  std::vector<std::uint64_t> values(g.node_count());
  core::parallel_for(g.node_count(), [&](std::size_t u) {
    values[u] = (g.*deg)(static_cast<NodeId>(u));
  });
  return stats::make_histogram(values);
}

}  // namespace

stats::Histogram out_degree_histogram(const CsrGraph& g) {
  return histogram_of(g, &CsrGraph::out_degree);
}

stats::Histogram in_degree_histogram(const CsrGraph& g) {
  return histogram_of(g, &CsrGraph::in_degree);
}

stats::Histogram degree_histogram(const CsrGraph& g) {
  return histogram_of(g, &CsrGraph::degree);
}

std::vector<std::pair<std::uint64_t, double>> knn_out_in(const CsrGraph& g) {
  // knn(k) = average indegree of targets of edges whose source has
  // outdegree k. Per-chunk binned accumulators merged in chunk order keep
  // the floating-point result thread-count-invariant.
  const core::BinnedMean acc = core::parallel_reduce(
      g.node_count(), core::BinnedMean{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        core::BinnedMean p;
        for (std::size_t i = begin; i < end; ++i) {
          const auto u = static_cast<NodeId>(i);
          const std::size_t k = g.out_degree(u);
          if (k == 0) continue;
          for (const NodeId v : g.out(u)) {
            p.add(k, static_cast<double>(g.in_degree(v)));
          }
        }
        return p;
      },
      [](core::BinnedMean a, core::BinnedMean b) {
        a += b;
        return a;
      });
  return acc.means_from(1);
}

double assortativity(const CsrGraph& g) {
  std::vector<double> src(g.node_count()), dst(g.node_count());
  core::parallel_for(g.node_count(), [&](std::size_t u) {
    src[u] = static_cast<double>(g.out_degree(static_cast<NodeId>(u)));
    dst[u] = static_cast<double>(g.in_degree(static_cast<NodeId>(u)));
  });
  return edge_score_correlation(g, src, dst);
}

double edge_score_correlation(const CsrGraph& g,
                              const std::vector<double>& source_score,
                              const std::vector<double>& target_score) {
  if (source_score.size() != g.node_count() ||
      target_score.size() != g.node_count()) {
    throw std::invalid_argument("edge_score_correlation: score size mismatch");
  }
  if (g.edge_count() < 2) return 0.0;

  // Pearson over the edge list: per-chunk moments, combined in chunk order
  // for a deterministic floating-point result.
  const core::PearsonMoments m = core::parallel_reduce(
      g.node_count(), core::PearsonMoments{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        core::PearsonMoments p;
        for (std::size_t i = begin; i < end; ++i) {
          const auto u = static_cast<NodeId>(i);
          const double x = source_score[u];
          for (const NodeId v : g.out(u)) p.add(x, target_score[v]);
        }
        return p;
      },
      [](core::PearsonMoments a, core::PearsonMoments b) {
        a += b;
        return a;
      });
  return m.correlation();
}

}  // namespace san::graph

#include "graph/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace san::graph {

double reciprocity(const CsrGraph& g) {
  if (g.edge_count() == 0) return 0.0;
  std::uint64_t mutual = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const NodeId v : g.out(u)) {
      if (g.has_edge(v, u)) ++mutual;
    }
  }
  return static_cast<double>(mutual) / static_cast<double>(g.edge_count());
}

double density(const CsrGraph& g) {
  if (g.node_count() == 0) return 0.0;
  return static_cast<double>(g.edge_count()) / static_cast<double>(g.node_count());
}

namespace {

stats::Histogram histogram_of(const CsrGraph& g, std::size_t (CsrGraph::*deg)(NodeId) const) {
  std::vector<std::uint64_t> values;
  values.reserve(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    values.push_back((g.*deg)(u));
  }
  return stats::make_histogram(values);
}

}  // namespace

stats::Histogram out_degree_histogram(const CsrGraph& g) {
  return histogram_of(g, &CsrGraph::out_degree);
}

stats::Histogram in_degree_histogram(const CsrGraph& g) {
  return histogram_of(g, &CsrGraph::in_degree);
}

stats::Histogram degree_histogram(const CsrGraph& g) {
  return histogram_of(g, &CsrGraph::degree);
}

std::vector<std::pair<std::uint64_t, double>> knn_out_in(const CsrGraph& g) {
  // knn(k) = average indegree of targets of edges whose source has
  // outdegree k.
  std::vector<double> indegree_sum;
  std::vector<std::uint64_t> edge_cnt;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const std::size_t k = g.out_degree(u);
    if (k == 0) continue;
    if (k >= indegree_sum.size()) {
      indegree_sum.resize(k + 1, 0.0);
      edge_cnt.resize(k + 1, 0);
    }
    for (const NodeId v : g.out(u)) {
      indegree_sum[k] += static_cast<double>(g.in_degree(v));
      ++edge_cnt[k];
    }
  }
  std::vector<std::pair<std::uint64_t, double>> knn;
  for (std::size_t k = 1; k < indegree_sum.size(); ++k) {
    if (edge_cnt[k] == 0) continue;
    knn.emplace_back(k, indegree_sum[k] / static_cast<double>(edge_cnt[k]));
  }
  return knn;
}

double assortativity(const CsrGraph& g) {
  std::vector<double> src(g.node_count()), dst(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    src[u] = static_cast<double>(g.out_degree(u));
    dst[u] = static_cast<double>(g.in_degree(u));
  }
  return edge_score_correlation(g, src, dst);
}

double edge_score_correlation(const CsrGraph& g,
                              const std::vector<double>& source_score,
                              const std::vector<double>& target_score) {
  if (source_score.size() != g.node_count() ||
      target_score.size() != g.node_count()) {
    throw std::invalid_argument("edge_score_correlation: score size mismatch");
  }
  if (g.edge_count() < 2) return 0.0;

  // Single pass Pearson over the edge list.
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const double x = source_score[u];
    for (const NodeId v : g.out(u)) {
      const double y = target_score[v];
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
    }
  }
  const auto m = static_cast<double>(g.edge_count());
  const double cov = sxy - sx * sy / m;
  const double vx = sxx - sx * sx / m;
  const double vy = syy - sy * sy / m;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace san::graph

// Amortized-doubling slack policy shared by the append-in-place CSR
// layouts (graph/csr.hpp, graph/bipartite_csr.hpp).
//
// A slack build reserves `slack_capacity(len)` slots per node instead of
// exactly `len`: the list can absorb up to max(len, kMinNodeSlack) appended
// entries before the structure reports exhaustion and the owner falls back
// to a full rebuild (which re-reserves against the new lengths). Doubling
// the headroom on every rebuild makes the total append work over a
// monotone growth sweep amortized O(final size); the minimum term keeps
// brand-new (empty) nodes appendable without an immediate rebuild.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>

namespace san::graph {

inline constexpr std::size_t kMinNodeSlack = 4;

inline std::size_t slack_capacity(std::size_t len) {
  return len + std::max(len, kMinNodeSlack);
}

/// Backward in-place merge of the sorted batch `add` into the sorted list
/// base[0, len), which must have room for len + add_len entries (the
/// node's slack). Merging from the back never overwrites unread input, so
/// no temporary is needed. Inputs are disjoint by the append contract
/// (debug-checked).
template <typename T>
void merge_sorted_tail(T* base, std::size_t len, const T* add,
                       std::size_t add_len) {
  std::size_t i = len, j = add_len, w = len + add_len;
  while (j > 0) {
    if (i > 0 && base[i - 1] > add[j - 1]) {
      base[--w] = base[--i];
    } else {
#ifndef NDEBUG
      if (i > 0 && base[i - 1] == add[j - 1]) {
        throw std::invalid_argument("merge_sorted_tail: entry already present");
      }
#endif
      base[--w] = add[--j];
    }
  }
}

}  // namespace san::graph

#include "graph/clustering.hpp"

#include <algorithm>
#include <cmath>

#include "core/parallel.hpp"

namespace san::graph {
namespace {

/// Directed links among `members`, each direction counted separately.
std::uint64_t directed_links_among(const CsrGraph& g,
                                   std::span<const NodeId> members) {
  // members is sorted for neighbor spans; for arbitrary groups we sort a copy.
  std::uint64_t links = 0;
  for (const NodeId v : members) {
    const auto outs = g.out(v);
    // Count |out(v) ∩ members| by merge (both sorted).
    auto it = members.begin();
    for (const NodeId w : outs) {
      while (it != members.end() && *it < w) ++it;
      if (it == members.end()) break;
      if (*it == w) ++links;
    }
  }
  return links;
}

double group_clustering_sorted(const CsrGraph& g,
                               std::span<const NodeId> members) {
  const auto m = members.size();
  if (m < 2) return 0.0;
  const auto links = directed_links_among(g, members);
  return static_cast<double>(links) /
         (static_cast<double>(m) * static_cast<double>(m - 1));
}

/// Sampled estimate of one group's clustering coefficient: mean of F/2 over
/// `pair_samples` random neighbor pairs.
double sampled_group_clustering(const CsrGraph& g,
                                std::span<const NodeId> members,
                                std::size_t pair_samples, stats::Rng& rng) {
  const std::size_t m = members.size();
  if (m < 2) return 0.0;
  // Exact when the group is small enough that sampling would not pay off.
  if (m * m <= 2 * pair_samples) {
    std::vector<NodeId> sorted(members.begin(), members.end());
    std::sort(sorted.begin(), sorted.end());
    return group_clustering_sorted(g, sorted);
  }
  std::uint64_t f_sum = 0;
  for (std::size_t i = 0; i < pair_samples; ++i) {
    const auto a = static_cast<std::size_t>(rng.uniform_index(m));
    auto b = static_cast<std::size_t>(rng.uniform_index(m - 1));
    if (b >= a) ++b;
    f_sum += static_cast<std::uint64_t>(g.link_count(members[a], members[b]));
  }
  return static_cast<double>(f_sum) / (2.0 * static_cast<double>(pair_samples));
}

}  // namespace

double exact_clustering(const CsrGraph& g, NodeId u) {
  return group_clustering_sorted(g, g.neighbors(u));
}

double exact_average_clustering(const CsrGraph& g) {
  if (g.node_count() == 0) return 0.0;
  // Chunked reduction with ordered combine: byte-identical at any thread
  // count. The small grain load-balances hub-heavy chunks.
  const double sum = core::parallel_reduce(
      g.node_count(), 0.0,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        double partial = 0.0;
        for (std::size_t u = begin; u < end; ++u) {
          partial += exact_clustering(g, static_cast<NodeId>(u));
        }
        return partial;
      },
      [](double a, double b) { return a + b; }, /*grain=*/256);
  return sum / static_cast<double>(g.node_count());
}

double exact_group_clustering(const CsrGraph& g,
                              std::span<const NodeId> members) {
  std::vector<NodeId> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  return group_clustering_sorted(g, sorted);
}

std::uint64_t clustering_sample_count(const ClusteringOptions& options) {
  return static_cast<std::uint64_t>(
      std::ceil(std::log(2.0 * options.nu) /
                (2.0 * options.epsilon * options.epsilon)));
}

double approx_average_clustering(const CsrGraph& g,
                                 const ClusteringOptions& options) {
  return approx_average_group_clustering(
      g, [&](std::size_t i) { return g.neighbors(static_cast<NodeId>(i)); },
      g.node_count(), options);
}

double approx_average_group_clustering(
    const CsrGraph& g,
    const std::function<std::span<const NodeId>(std::size_t)>& group,
    std::size_t group_count, const ClusteringOptions& options) {
  if (group_count == 0) return 0.0;
  const std::uint64_t samples = clustering_sample_count(options);
  // Samples are independent, so chunks draw from per-chunk streams keyed by
  // (seed, chunk): integer f_sum is exact, hence thread-count-invariant.
  constexpr std::size_t kGrain = 4096;
  const std::uint64_t f_sum = core::parallel_reduce(
      static_cast<std::size_t>(samples), std::uint64_t{0},
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        stats::Rng rng = core::chunk_rng(options.seed, chunk);
        std::uint64_t partial = 0;
        for (std::size_t k = begin; k < end; ++k) {
          // Algorithm 2: node uniform from Omega, then a random neighbor pair.
          const auto i =
              static_cast<std::size_t>(rng.uniform_index(group_count));
          const auto members = group(i);
          const std::size_t m = members.size();
          if (m < 2) continue;  // c(u) = 0 contributes nothing to the sum
          const auto a = static_cast<std::size_t>(rng.uniform_index(m));
          auto b = static_cast<std::size_t>(rng.uniform_index(m - 1));
          if (b >= a) ++b;
          partial += static_cast<std::uint64_t>(g.link_count(members[a],
                                                             members[b]));
        }
        return partial;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, kGrain);
  // C~ = L / (2^I K) with I = 1 (directed), Algorithm 2 line 10.
  return static_cast<double>(f_sum) / (2.0 * static_cast<double>(samples));
}

std::vector<std::pair<double, double>> clustering_by_degree(
    const CsrGraph& g, std::size_t samples_per_node, std::uint64_t seed) {
  return group_clustering_by_degree(
      g, [&](std::size_t i) { return g.neighbors(static_cast<NodeId>(i)); },
      g.node_count(), samples_per_node, seed);
}

std::vector<std::pair<double, double>> group_clustering_by_degree(
    const CsrGraph& g,
    const std::function<std::span<const NodeId>(std::size_t)>& group,
    std::size_t group_count, std::size_t samples_per_node, std::uint64_t seed) {
  // Log-spaced degree buckets: bucket = floor(log2-ish index).
  struct Bucket {
    double degree_sum = 0.0;
    double cc_sum = 0.0;
    std::uint64_t count = 0;
  };
  const auto bucket_of = [](std::size_t degree) {
    // ~4 buckets per octave for a smooth log-log curve.
    const double idx = 4.0 * std::log2(static_cast<double>(degree));
    return static_cast<std::size_t>(std::max(0.0, idx));
  };

  // Each group samples from its own (seed, i)-keyed stream, so the per-group
  // estimate — and the ordered bucket merge below — is invariant to the
  // thread count.
  const std::vector<Bucket> buckets = core::parallel_reduce(
      group_count, std::vector<Bucket>{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<Bucket> partial;
        for (std::size_t i = begin; i < end; ++i) {
          const auto members = group(i);
          if (members.size() < 2) continue;
          const std::size_t b = bucket_of(members.size());
          if (b >= partial.size()) partial.resize(b + 1);
          stats::Rng rng = core::chunk_rng(seed, i);
          const double cc =
              sampled_group_clustering(g, members, samples_per_node, rng);
          partial[b].degree_sum += static_cast<double>(members.size());
          partial[b].cc_sum += cc;
          ++partial[b].count;
        }
        return partial;
      },
      [](std::vector<Bucket> acc, std::vector<Bucket> partial) {
        if (partial.size() > acc.size()) acc.resize(partial.size());
        for (std::size_t b = 0; b < partial.size(); ++b) {
          acc[b].degree_sum += partial[b].degree_sum;
          acc[b].cc_sum += partial[b].cc_sum;
          acc[b].count += partial[b].count;
        }
        return acc;
      },
      /*grain=*/512);

  std::vector<std::pair<double, double>> points;
  for (const auto& bucket : buckets) {
    if (bucket.count == 0) continue;
    points.emplace_back(bucket.degree_sum / static_cast<double>(bucket.count),
                        bucket.cc_sum / static_cast<double>(bucket.count));
  }
  return points;
}

}  // namespace san::graph

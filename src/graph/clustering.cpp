#include "graph/clustering.hpp"

#include <algorithm>
#include <cmath>

namespace san::graph {
namespace {

/// Directed links among `members`, each direction counted separately.
std::uint64_t directed_links_among(const CsrGraph& g,
                                   std::span<const NodeId> members) {
  // members is sorted for neighbor spans; for arbitrary groups we sort a copy.
  std::uint64_t links = 0;
  for (const NodeId v : members) {
    const auto outs = g.out(v);
    // Count |out(v) ∩ members| by merge (both sorted).
    auto it = members.begin();
    for (const NodeId w : outs) {
      while (it != members.end() && *it < w) ++it;
      if (it == members.end()) break;
      if (*it == w) ++links;
    }
  }
  return links;
}

double group_clustering_sorted(const CsrGraph& g,
                               std::span<const NodeId> members) {
  const auto m = members.size();
  if (m < 2) return 0.0;
  const auto links = directed_links_among(g, members);
  return static_cast<double>(links) /
         (static_cast<double>(m) * static_cast<double>(m - 1));
}

/// Sampled estimate of one group's clustering coefficient: mean of F/2 over
/// `pair_samples` random neighbor pairs.
double sampled_group_clustering(const CsrGraph& g,
                                std::span<const NodeId> members,
                                std::size_t pair_samples, stats::Rng& rng) {
  const std::size_t m = members.size();
  if (m < 2) return 0.0;
  // Exact when the group is small enough that sampling would not pay off.
  if (m * m <= 2 * pair_samples) {
    std::vector<NodeId> sorted(members.begin(), members.end());
    std::sort(sorted.begin(), sorted.end());
    return group_clustering_sorted(g, sorted);
  }
  std::uint64_t f_sum = 0;
  for (std::size_t i = 0; i < pair_samples; ++i) {
    const auto a = static_cast<std::size_t>(rng.uniform_index(m));
    auto b = static_cast<std::size_t>(rng.uniform_index(m - 1));
    if (b >= a) ++b;
    f_sum += static_cast<std::uint64_t>(g.link_count(members[a], members[b]));
  }
  return static_cast<double>(f_sum) / (2.0 * static_cast<double>(pair_samples));
}

}  // namespace

double exact_clustering(const CsrGraph& g, NodeId u) {
  return group_clustering_sorted(g, g.neighbors(u));
}

double exact_average_clustering(const CsrGraph& g) {
  if (g.node_count() == 0) return 0.0;
  double sum = 0.0;
  for (NodeId u = 0; u < g.node_count(); ++u) sum += exact_clustering(g, u);
  return sum / static_cast<double>(g.node_count());
}

double exact_group_clustering(const CsrGraph& g, std::span<const NodeId> members) {
  std::vector<NodeId> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  return group_clustering_sorted(g, sorted);
}

std::uint64_t clustering_sample_count(const ClusteringOptions& options) {
  return static_cast<std::uint64_t>(
      std::ceil(std::log(2.0 * options.nu) / (2.0 * options.epsilon * options.epsilon)));
}

double approx_average_clustering(const CsrGraph& g,
                                 const ClusteringOptions& options) {
  return approx_average_group_clustering(
      g, [&](std::size_t i) { return g.neighbors(static_cast<NodeId>(i)); },
      g.node_count(), options);
}

double approx_average_group_clustering(
    const CsrGraph& g,
    const std::function<std::span<const NodeId>(std::size_t)>& group,
    std::size_t group_count, const ClusteringOptions& options) {
  if (group_count == 0) return 0.0;
  stats::Rng rng(options.seed);
  const std::uint64_t samples = clustering_sample_count(options);
  std::uint64_t f_sum = 0;
  for (std::uint64_t k = 0; k < samples; ++k) {
    // Algorithm 2: node uniform from Omega, then a random neighbor pair.
    const auto i = static_cast<std::size_t>(rng.uniform_index(group_count));
    const auto members = group(i);
    const std::size_t m = members.size();
    if (m < 2) continue;  // c(u) = 0 contributes nothing to the sum
    const auto a = static_cast<std::size_t>(rng.uniform_index(m));
    auto b = static_cast<std::size_t>(rng.uniform_index(m - 1));
    if (b >= a) ++b;
    f_sum += static_cast<std::uint64_t>(g.link_count(members[a], members[b]));
  }
  // C~ = L / (2^I K) with I = 1 (directed), Algorithm 2 line 10.
  return static_cast<double>(f_sum) / (2.0 * static_cast<double>(samples));
}

std::vector<std::pair<double, double>> clustering_by_degree(
    const CsrGraph& g, std::size_t samples_per_node, std::uint64_t seed) {
  return group_clustering_by_degree(
      g, [&](std::size_t i) { return g.neighbors(static_cast<NodeId>(i)); },
      g.node_count(), samples_per_node, seed);
}

std::vector<std::pair<double, double>> group_clustering_by_degree(
    const CsrGraph& g,
    const std::function<std::span<const NodeId>(std::size_t)>& group,
    std::size_t group_count, std::size_t samples_per_node, std::uint64_t seed) {
  stats::Rng rng(seed);
  // Log-spaced degree buckets: bucket = floor(log2-ish index).
  struct Bucket {
    double degree_sum = 0.0;
    double cc_sum = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> buckets;
  const auto bucket_of = [](std::size_t degree) {
    // ~4 buckets per octave for a smooth log-log curve.
    const double idx = 4.0 * std::log2(static_cast<double>(degree));
    return static_cast<std::size_t>(std::max(0.0, idx));
  };

  for (std::size_t i = 0; i < group_count; ++i) {
    const auto members = group(i);
    if (members.size() < 2) continue;
    const std::size_t b = bucket_of(members.size());
    if (b >= buckets.size()) buckets.resize(b + 1);
    const double cc = sampled_group_clustering(g, members, samples_per_node, rng);
    buckets[b].degree_sum += static_cast<double>(members.size());
    buckets[b].cc_sum += cc;
    ++buckets[b].count;
  }

  std::vector<std::pair<double, double>> points;
  for (const auto& bucket : buckets) {
    if (bucket.count == 0) continue;
    points.emplace_back(bucket.degree_sum / static_cast<double>(bucket.count),
                        bucket.cc_sum / static_cast<double>(bucket.count));
  }
  return points;
}

}  // namespace san::graph

// Growable directed graph used while a network evolves (crawler, generative
// models). Analysis code should snapshot into a CsrGraph (csr.hpp) instead
// of traversing this structure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace san::graph {

using NodeId = std::uint32_t;

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count) { add_nodes(node_count); }

  /// Append one node; returns its id.
  NodeId add_node();
  /// Append `count` nodes; returns the id of the first one.
  NodeId add_nodes(std::size_t count);

  /// Insert the directed edge u -> v. Returns false (and leaves the graph
  /// unchanged) when the edge already exists or u == v. Throws
  /// std::out_of_range for unknown node ids.
  bool add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  std::size_t node_count() const { return out_.size(); }
  std::uint64_t edge_count() const { return edge_count_; }

  std::size_t out_degree(NodeId u) const { return out_.at(u).size(); }
  std::size_t in_degree(NodeId u) const { return in_.at(u).size(); }

  std::span<const NodeId> out_neighbors(NodeId u) const { return out_.at(u); }
  std::span<const NodeId> in_neighbors(NodeId u) const { return in_.at(u); }

 private:
  void check_node(NodeId u) const;

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::uint64_t edge_count_ = 0;
};

}  // namespace san::graph

#include "graph/hyperanf.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"

namespace san::graph {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double hll_alpha(std::size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int log2m) : log2m_(log2m) {
  if (log2m < 4 || log2m > 16) {
    throw std::invalid_argument("HyperLogLog: log2m must be in [4, 16]");
  }
  registers_.assign(std::size_t{1} << log2m, 0);
}

void HyperLogLog::add_hash(std::uint64_t hash) {
  const std::size_t idx = hash >> (64 - log2m_);
  const std::uint64_t rest = hash << log2m_;
  const int rank = rest == 0 ? (64 - log2m_ + 1)
                             : std::countl_zero(rest) + 1;
  if (static_cast<std::uint8_t>(rank) > registers_[idx]) {
    registers_[idx] = static_cast<std::uint8_t>(rank);
  }
}

bool HyperLogLog::merge(const HyperLogLog& other) {
  if (other.log2m_ != log2m_) {
    throw std::invalid_argument("HyperLogLog::merge: size mismatch");
  }
  bool changed = false;
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
      changed = true;
    }
  }
  return changed;
}

double HyperLogLog::estimate() const {
  const auto m = static_cast<double>(registers_.size());
  double sum = 0.0;
  std::size_t zeros = 0;
  for (const auto r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = hll_alpha(registers_.size()) * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Small-range (linear counting) correction.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

double HyperAnfResult::effective_diameter(double q) const {
  if (q <= 0.0 || q > 1.0) {
    throw std::invalid_argument("effective_diameter: q must be in (0, 1]");
  }
  if (neighborhood.empty()) return 0.0;
  const double target = q * neighborhood.back();
  for (std::size_t d = 0; d < neighborhood.size(); ++d) {
    if (neighborhood[d] >= target) {
      if (d == 0) return 0.0;
      const double prev = neighborhood[d - 1];
      const double step = neighborhood[d] - prev;
      if (step <= 0.0) return static_cast<double>(d);
      return static_cast<double>(d - 1) + (target - prev) / step;
    }
  }
  return static_cast<double>(neighborhood.size() - 1);
}

HyperAnfResult hyper_anf(const CsrGraph& g, const HyperAnfOptions& options,
                         std::span<const NodeId> sources) {
  const std::size_t n = g.node_count();
  HyperAnfResult result;
  if (n == 0) return result;

  std::vector<HyperLogLog> current(n, HyperLogLog(options.log2m));
  core::parallel_for(n, [&](std::size_t u) {
    current[u].add_hash(splitmix64(options.seed ^ static_cast<NodeId>(u)));
  });

  // Per-chunk estimate sums combined in chunk order: deterministic across
  // thread counts.
  const auto accumulate = [&]() {
    const auto sum_range = [&](auto&& at, std::size_t count) {
      return core::parallel_reduce(
          count, 0.0,
          [&](std::size_t begin, std::size_t end, std::size_t) {
            double partial = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
              partial += at(i).estimate();
            }
            return partial;
          },
          [](double a, double b) { return a + b; });
    };
    if (sources.empty()) {
      return sum_range(
          [&](std::size_t i) -> const HyperLogLog& { return current[i]; }, n);
    }
    return sum_range(
        [&](std::size_t i) -> const HyperLogLog& {
          return current[sources[i]];
        },
        sources.size());
  };

  result.neighborhood.push_back(accumulate());
  std::vector<HyperLogLog> next = current;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Each round is a gather: next[u] merges only registers of current[*],
    // so node-parallel execution is race-free, and register maxima are
    // order-insensitive — the round result is exact regardless of schedule.
    std::atomic<bool> changed{false};
    core::parallel_for(n, [&](std::size_t u) {
      next[u] = current[u];
      bool local_changed = false;
      for (const NodeId v : g.out(static_cast<NodeId>(u))) {
        local_changed |= next[u].merge(current[v]);
      }
      if (local_changed) changed.store(true, std::memory_order_relaxed);
    });
    current.swap(next);
    result.neighborhood.push_back(accumulate());
    if (!changed.load(std::memory_order_relaxed)) break;
  }
  return result;
}

}  // namespace san::graph

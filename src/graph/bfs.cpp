#include "graph/bfs.hpp"

#include <queue>
#include <stdexcept>

namespace san::graph {
namespace {

std::vector<std::uint32_t> bfs_impl(const CsrGraph& g,
                                    std::span<const NodeId> sources,
                                    Direction direction) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::vector<NodeId> frontier;
  for (const NodeId s : sources) {
    if (s >= g.node_count()) throw std::out_of_range("bfs: unknown source");
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId u : frontier) {
      const auto nbrs = direction == Direction::kOut ? g.out(u) : g.in(u);
      for (const NodeId v : nbrs) {
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source,
                                         Direction direction) {
  const NodeId sources[] = {source};
  return bfs_impl(g, sources, direction);
}

std::vector<std::uint32_t> bfs_distances_multi(const CsrGraph& g,
                                               std::span<const NodeId> sources,
                                               Direction direction) {
  return bfs_impl(g, sources, direction);
}

std::vector<std::uint64_t> sampled_distance_histogram(const CsrGraph& g,
                                                      std::size_t sample_sources,
                                                      stats::Rng& rng) {
  std::vector<std::uint64_t> histogram;
  if (g.node_count() == 0) return histogram;
  for (std::size_t i = 0; i < sample_sources; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform_index(g.node_count()));
    const auto dist = bfs_distances(g, src, Direction::kOut);
    for (const auto d : dist) {
      if (d == kUnreachable || d == 0) continue;
      if (d >= histogram.size()) histogram.resize(d + 1, 0);
      ++histogram[d];
    }
  }
  return histogram;
}

double interpolated_quantile(std::span<const std::uint64_t> histogram, double q) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("interpolated_quantile: q must be in [0,1]");
  }
  std::uint64_t total = 0;
  for (const auto c : histogram) total += c;
  if (total == 0) return 0.0;

  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t d = 0; d < histogram.size(); ++d) {
    const double next = cumulative + static_cast<double>(histogram[d]);
    if (next >= target) {
      if (histogram[d] == 0) return static_cast<double>(d);
      // Linear interpolation within the step from cumulative to next.
      const double frac = (target - cumulative) / static_cast<double>(histogram[d]);
      return static_cast<double>(d) - 1.0 + frac;
    }
    cumulative = next;
  }
  return static_cast<double>(histogram.size() - 1);
}

}  // namespace san::graph

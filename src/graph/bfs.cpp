#include "graph/bfs.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "core/parallel.hpp"

namespace san::graph {
namespace {

/// Frontier width below which a level is expanded serially; parallel
/// dispatch only pays for itself on wide frontiers.
constexpr std::size_t kParallelFrontier = 2048;
constexpr std::size_t kFrontierGrain = 512;

std::vector<std::uint32_t> bfs_impl(const CsrGraph& g,
                                    std::span<const NodeId> sources,
                                    Direction direction) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::vector<NodeId> frontier;
  for (const NodeId s : sources) {
    if (s >= g.node_count()) throw std::out_of_range("bfs: unknown source");
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    if (frontier.size() < kParallelFrontier) {
      for (const NodeId u : frontier) {
        const auto nbrs = direction == Direction::kOut ? g.out(u) : g.in(u);
        for (const NodeId v : nbrs) {
          if (dist[v] == kUnreachable) {
            dist[v] = level;
            next.push_back(v);
          }
        }
      }
    } else {
      // Wide frontier: claim nodes with a CAS on dist. Every claimant writes
      // the same level, so dist is deterministic even though which chunk
      // wins a contended node (and hence the frontier order) is not.
      std::vector<std::vector<NodeId>> chunk_next(
          core::chunk_count_for(frontier.size(), kFrontierGrain));
      core::parallel_for_chunks(
          frontier.size(), kFrontierGrain,
          [&](std::size_t begin, std::size_t end, std::size_t c) {
            auto& local = chunk_next[c];
            for (std::size_t i = begin; i < end; ++i) {
              const NodeId u = frontier[i];
              const auto nbrs =
                  direction == Direction::kOut ? g.out(u) : g.in(u);
              for (const NodeId v : nbrs) {
                std::uint32_t expected = kUnreachable;
                if (std::atomic_ref(dist[v]).compare_exchange_strong(
                        expected, level, std::memory_order_relaxed)) {
                  local.push_back(v);
                }
              }
            }
          });
      for (const auto& local : chunk_next) {
        next.insert(next.end(), local.begin(), local.end());
      }
    }
    frontier.swap(next);
  }
  return dist;
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source,
                                         Direction direction) {
  const NodeId sources[] = {source};
  return bfs_impl(g, sources, direction);
}

std::vector<std::uint32_t> bfs_distances_multi(const CsrGraph& g,
                                               std::span<const NodeId> sources,
                                               Direction direction) {
  return bfs_impl(g, sources, direction);
}

std::vector<std::uint64_t> sampled_distance_histogram(
    const CsrGraph& g, std::size_t sample_sources, stats::Rng& rng) {
  std::vector<std::uint64_t> histogram;
  if (g.node_count() == 0) return histogram;
  // Draw all roots up front from the caller's stream (same consumption as
  // the serial version), then run the BFSes in parallel and merge the
  // per-root histograms in root order.
  std::vector<NodeId> roots(sample_sources);
  for (auto& r : roots) {
    r = static_cast<NodeId>(rng.uniform_index(g.node_count()));
  }
  std::vector<std::vector<std::uint64_t>> per_root(sample_sources);
  core::parallel_for(
      sample_sources,
      [&](std::size_t i) {
        const auto dist = bfs_distances(g, roots[i], Direction::kOut);
        auto& local = per_root[i];
        for (const auto d : dist) {
          if (d == kUnreachable || d == 0) continue;
          if (d >= local.size()) local.resize(d + 1, 0);
          ++local[d];
        }
      },
      /*grain=*/1);
  for (const auto& local : per_root) {
    if (local.size() > histogram.size()) histogram.resize(local.size(), 0);
    for (std::size_t d = 0; d < local.size(); ++d) histogram[d] += local[d];
  }
  return histogram;
}

double interpolated_quantile(std::span<const std::uint64_t> histogram,
                             double q) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("interpolated_quantile: q must be in [0,1]");
  }
  std::uint64_t total = 0;
  for (const auto c : histogram) total += c;
  if (total == 0) return 0.0;

  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t d = 0; d < histogram.size(); ++d) {
    const double next = cumulative + static_cast<double>(histogram[d]);
    if (next >= target) {
      if (histogram[d] == 0) return static_cast<double>(d);
      // Linear interpolation within the step from cumulative to next.
      const double frac =
          (target - cumulative) / static_cast<double>(histogram[d]);
      return static_cast<double>(d) - 1.0 + frac;
    }
    cumulative = next;
  }
  return static_cast<double>(histogram.size() - 1);
}

}  // namespace san::graph

// Immutable CSR form of a bipartite user<->attribute link set, the storage
// behind SanSnapshot's attribute layer. Both sides are offset/target arrays:
//
//   left  (social node u):  attrs_of(u)   — attribute ids, sorted ascending,
//                                           so set intersections are merges;
//   right (attribute a):    members_of(a) — social nodes in input (time)
//                                           order, matching the append order
//                                           of the source attribute log.
//
// Build cost is O(links + left_count + right_count) with counting sorts —
// no comparison sort. Both scatter passes run chunked on the src/core/
// substrate with two-level per-chunk cursors (each chunk owns a cursor row,
// offset by every earlier chunk's counts), so they parallelize while
// writing byte-identical arrays at any SAN_THREADS. `rebuild_from_links`
// reuses the arrays' capacity, so a snapshot sweep that materializes one
// snapshot per day touches the allocator only while the arrays are still
// growing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace san::graph {

using AttrId = std::uint32_t;

class BipartiteCsr {
 public:
  BipartiteCsr() = default;

  /// Build from (user, attr) pairs given as parallel arrays in input order.
  /// Pairs must reference users < left_count and attrs < right_count and be
  /// unique; order is arbitrary but determines members_of ordering.
  static BipartiteCsr from_links(std::size_t left_count,
                                 std::size_t right_count,
                                 std::span<const NodeId> users,
                                 std::span<const AttrId> attrs);

  /// Same as from_links but rebuilds in place, reusing this object's array
  /// capacity (the sweep fast path).
  void rebuild_from_links(std::size_t left_count, std::size_t right_count,
                          std::span<const NodeId> users,
                          std::span<const AttrId> attrs);

  std::size_t left_count() const { return left_count_; }
  std::size_t right_count() const { return right_count_; }
  std::uint64_t link_count() const { return link_count_; }

  /// Γa(u): attribute ids of social node u, sorted ascending.
  std::span<const AttrId> attrs_of(NodeId u) const;
  /// Γs(a): social nodes declaring attribute a, in input order.
  std::span<const NodeId> members_of(AttrId a) const;

  std::size_t attr_degree(NodeId u) const { return attrs_of(u).size(); }
  std::size_t member_count(AttrId a) const { return members_of(a).size(); }

  /// Right nodes with at least one member.
  std::size_t populated_right_count() const;

  /// a(u, v): the number of attributes u and v share (merge of two sorted
  /// spans).
  std::size_t common_attrs(NodeId u, NodeId v) const;

 private:
  std::size_t left_count_ = 0;
  std::size_t right_count_ = 0;
  std::uint64_t link_count_ = 0;
  std::vector<std::uint64_t> left_offsets_;
  std::vector<AttrId> left_targets_;
  std::vector<std::uint64_t> right_offsets_;
  std::vector<NodeId> right_targets_;
  // Per-chunk cursor rows for the parallel scatters; kept as a member so
  // rebuild_from_links stays allocation-free in the sweep steady state.
  std::vector<std::uint64_t> cursors_;
};

}  // namespace san::graph

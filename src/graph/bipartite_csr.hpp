// CSR form of a bipartite user<->attribute link set, the storage behind
// SanSnapshot's attribute layer. Both sides are offset/length/target
// arrays:
//
//   left  (social node u):  attrs_of(u)   — attribute ids, sorted ascending,
//                                           so set intersections are merges;
//   right (attribute a):    members_of(a) — social nodes in input (time)
//                                           order, matching the append order
//                                           of the source attribute log.
//
// Build cost is O(links + left_count + right_count) with counting sorts —
// no comparison sort. The scatter passes run on the shared chunk-parallel
// stable counting-sort engine (core/counting_scatter.hpp), so they
// parallelize while writing byte-identical arrays at any SAN_THREADS.
//
// A `with_slack` build reserves amortized-doubling headroom per node
// (graph/slack.hpp) so `append_links` can absorb whole days of new links
// in place — the delta-sweep fast path. A node that outgrows its region is
// RELOCATED to the array tail with doubled capacity (the old region
// becomes tracked waste); only when accumulated waste would exceed the
// live links does append refuse and the caller compacts with a full
// rebuild. `rebuild_from_links` reuses the arrays' capacity, so a snapshot
// sweep touches the allocator only while the arrays are still growing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/counting_scatter.hpp"
#include "graph/digraph.hpp"

namespace san::graph {

using AttrId = std::uint32_t;

class BipartiteCsr {
 public:
  BipartiteCsr() = default;

  /// Build from (user, attr) pairs given as parallel arrays in input order.
  /// Pairs must reference users < left_count and attrs < right_count and be
  /// unique; order is arbitrary but determines members_of ordering.
  static BipartiteCsr from_links(std::size_t left_count,
                                 std::size_t right_count,
                                 std::span<const NodeId> users,
                                 std::span<const AttrId> attrs);

  /// Same as from_links but rebuilds in place, reusing this object's array
  /// capacity (the sweep fast path). `with_slack` builds the
  /// append-friendly layout (graph/slack.hpp).
  void rebuild_from_links(std::size_t left_count, std::size_t right_count,
                          std::span<const NodeId> users,
                          std::span<const AttrId> attrs,
                          bool with_slack = false);

  /// Append a batch of new links in place — the delta-sweep fast path. The
  /// batch is given in input (time) order and must sort AFTER every link
  /// already present (members_of stays in global time order only if later
  /// batches hold later links); pairs must be unique against the existing
  /// links. Users may reference the joining range
  /// [left_count(), new_left_count), attrs the joining range
  /// [right_count(), new_right_count) — live ingestion grows the attribute
  /// id space, and a joining right node gets a fresh slack region just
  /// like a joining left node. Nodes whose region overflows are relocated
  /// with amortized-doubling capacity; append returns false — leaving the
  /// structure UNCHANGED — only when the relocation waste would exceed the
  /// live links, and the caller then compacts with a full rebuild.
  /// Counting is chunk-parallel and per-node merges write disjoint ranges,
  /// so results are byte-identical at any SAN_THREADS count.
  bool append_links(std::size_t new_left_count, std::size_t new_right_count,
                    std::span<const NodeId> users,
                    std::span<const AttrId> attrs);

  /// Fixed right id space variant (the SanTimeline delta sweep, where the
  /// id space always spans the whole source network).
  bool append_links(std::size_t new_left_count, std::span<const NodeId> users,
                    std::span<const AttrId> attrs) {
    return append_links(new_left_count, right_count_, users, attrs);
  }

  std::size_t left_count() const { return left_count_; }
  std::size_t right_count() const { return right_count_; }
  std::uint64_t link_count() const { return link_count_; }

  /// Γa(u): attribute ids of social node u, sorted ascending.
  std::span<const AttrId> attrs_of(NodeId u) const;
  /// Γs(a): social nodes declaring attribute a, in input order.
  std::span<const NodeId> members_of(AttrId a) const;

  std::size_t attr_degree(NodeId u) const { return attrs_of(u).size(); }
  std::size_t member_count(AttrId a) const { return members_of(a).size(); }

  /// Right nodes with at least one member.
  std::size_t populated_right_count() const;

  /// a(u, v): the number of attributes u and v share (merge of two sorted
  /// spans).
  std::size_t common_attrs(NodeId u, NodeId v) const;

 private:
  std::size_t left_count_ = 0;
  std::size_t right_count_ = 0;
  std::uint64_t link_count_ = 0;
  // Per-node regions: start slot, reserved capacity, live length. Starts
  // are monotone after a build but relocation moves individual regions to
  // the tail, so only (start, cap, len) is authoritative.
  std::vector<std::uint64_t> left_start_, right_start_;
  std::vector<std::uint32_t> left_cap_, right_cap_;
  std::vector<std::uint32_t> left_len_, right_len_;
  std::vector<AttrId> left_targets_;
  std::vector<NodeId> right_targets_;
  // Dead slots stranded by relocations; a full rebuild resets them.
  std::uint64_t left_waste_ = 0, right_waste_ = 0;
  // Scatter engines and bases, kept as members so rebuilds and steady-state
  // appends stay allocation-free once the arrays reach their high-water
  // capacity.
  core::StableCountingScatter by_attr_, by_user_;
  std::vector<std::uint64_t> counts_, base_, dense_right_;
  std::vector<std::uint64_t> add_left_, delta_left_base_;
  std::vector<AttrId> delta_left_attrs_;
  std::vector<NodeId> touched_left_;
  std::vector<std::uint64_t> reloc_left_;
  std::vector<AttrId> reloc_right_;
  std::vector<std::uint64_t> reloc_right_old_;
};

}  // namespace san::graph

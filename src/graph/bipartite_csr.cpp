#include "graph/bipartite_csr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/parallel.hpp"
#include "graph/slack.hpp"

namespace san::graph {

BipartiteCsr BipartiteCsr::from_links(std::size_t left_count,
                                      std::size_t right_count,
                                      std::span<const NodeId> users,
                                      std::span<const AttrId> attrs) {
  BipartiteCsr b;
  b.rebuild_from_links(left_count, right_count, users, attrs);
  return b;
}

void BipartiteCsr::rebuild_from_links(std::size_t left_count,
                                      std::size_t right_count,
                                      std::span<const NodeId> users,
                                      std::span<const AttrId> attrs,
                                      bool with_slack) {
  if (users.size() != attrs.size()) {
    throw std::invalid_argument("BipartiteCsr: users/attrs size mismatch");
  }
  const std::size_t m = users.size();

  // Both sides are stable counting sorts on the shared chunk-parallel
  // engine (core/counting_scatter.hpp): chunks scatter concurrently into
  // disjoint slots while the result stays byte-identical to the serial
  // stable sort (earlier input positions land first). The pipeline is
  // fused to three passes: endpoint validation rides inside the attribute
  // count (an invalid link doesn't emit, and a short total rejects the
  // input before any public state mutates), and the right-side scatter
  // feeds the left-side histograms through its hook, so the left count
  // pass disappears — see san/timeline.cpp build_social for the scheme.

  // Right side: sort links by attribute, stable in input order, so
  // members_of(a) preserves the (time) order of the input links.
  by_attr_.count(
      m, right_count,
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) {
          if (users[i] < left_count && attrs[i] < right_count) {
            emit(attrs[i]);
          }
        }
      },
      counts_);
  std::uint64_t valid = 0;
  for (std::size_t a = 0; a < right_count; ++a) valid += counts_[a];
  if (valid < m) {
    throw std::out_of_range("BipartiteCsr: link endpoint out of range");
  }
  left_count_ = left_count;
  right_count_ = right_count;
  link_count_ = m;
  left_waste_ = 0;
  right_waste_ = 0;
  right_start_.resize(right_count);
  right_cap_.resize(right_count);
  right_len_.resize(right_count);
  dense_right_.assign(right_count + 1, 0);
  {
    std::uint64_t tail = 0;
    for (std::size_t a = 0; a < right_count; ++a) {
      right_start_[a] = tail;
      right_len_[a] = static_cast<std::uint32_t>(counts_[a]);
      right_cap_[a] = static_cast<std::uint32_t>(
          with_slack ? slack_capacity(counts_[a]) : counts_[a]);
      tail += right_cap_[a];
      dense_right_[a + 1] = dense_right_[a] + counts_[a];
    }
    right_targets_.resize(tail);
  }
  // The hook counts each landed user into the left sort's histograms,
  // keyed by the storage slot the link landed in.
  by_user_.begin_fused_count(right_targets_.size(), left_count);
  by_attr_.scatter_fused(
      right_start_,
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) emit(attrs[i], users[i]);
      },
      right_targets_.data(),
      [&](std::uint64_t pos, NodeId u) { by_user_.fused_add(pos, u); });

  // Left side from the right side: walking the attr-major storage slots
  // in ascending order (== ascending attribute order; dead slack skipped
  // region-by-region) and scattering by user yields per-user attribute
  // lists already sorted ascending — a second counting sort instead of a
  // per-user sort.
  by_user_.finish_fused_count(counts_);
  left_start_.resize(left_count);
  left_cap_.resize(left_count);
  left_len_.resize(left_count);
  {
    std::uint64_t tail = 0;
    for (std::size_t u = 0; u < left_count; ++u) {
      left_start_[u] = tail;
      left_len_[u] = static_cast<std::uint32_t>(counts_[u]);
      left_cap_[u] = static_cast<std::uint32_t>(
          with_slack ? slack_capacity(counts_[u]) : counts_[u]);
      tail += left_cap_[u];
    }
    left_targets_.resize(tail);
  }
  by_user_.scatter(
      left_start_,
      [&](std::size_t begin, std::size_t end, auto emit) {
        core::walk_slack_slots(
            right_start_, right_len_, begin, end,
            [&](std::uint64_t pos, std::size_t a) {
              emit(right_targets_[pos], static_cast<AttrId>(a));
            });
      },
      left_targets_.data());
}

bool BipartiteCsr::append_links(std::size_t new_left_count,
                                std::size_t new_right_count,
                                std::span<const NodeId> users,
                                std::span<const AttrId> attrs) {
  if (users.size() != attrs.size()) {
    throw std::invalid_argument("BipartiteCsr: users/attrs size mismatch");
  }
  if (new_left_count < left_count_ || new_right_count < right_count_) {
    throw std::invalid_argument(
        "BipartiteCsr::append_links: node counts may not shrink");
  }
  const std::size_t m = users.size();
  const std::size_t old_left = left_count_;
  const std::size_t old_right = right_count_;
  const std::size_t bad = core::parallel_reduce(
      m, std::size_t{0},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::size_t count = 0;
        for (std::size_t i = begin; i < end; ++i) {
          if (users[i] >= new_left_count || attrs[i] >= new_right_count) {
            ++count;
          }
        }
        return count;
      },
      [](std::size_t a, std::size_t b) { return a + b; },
      core::kScatterGrain);
  if (bad > 0) {
    throw std::out_of_range(
        "BipartiteCsr::append_links: link endpoint out of range");
  }

  // Chunk-parallel counts of the new links per endpoint.
  by_attr_.count(
      m, new_right_count,
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) emit(attrs[i]);
      },
      counts_);
  by_user_.count(
      m, new_left_count,
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) emit(users[i]);
      },
      add_left_);

  // Waste policy check BEFORE any mutation: relocating every overflowing
  // region must not strand more dead slots than there are live links —
  // past that point a compacting rebuild is cheaper, so refuse and leave
  // the structure untouched for the caller.
  std::uint64_t left_hole = 0, right_hole = 0;
  for (std::size_t a = 0; a < old_right; ++a) {
    if (counts_[a] > 0 && right_len_[a] + counts_[a] > right_cap_[a]) {
      right_hole += right_cap_[a];
    }
  }
  touched_left_.clear();
  for (std::size_t u = 0; u < new_left_count; ++u) {
    if (add_left_[u] == 0) continue;
    touched_left_.push_back(static_cast<NodeId>(u));
    if (u < old_left && left_len_[u] + add_left_[u] > left_cap_[u]) {
      left_hole += left_cap_[u];
    }
  }
  const std::uint64_t live = link_count_ + m;
  if (left_waste_ + left_hole > live || right_waste_ + right_hole > live) {
    return false;
  }

  // Right side: plan relocations serially (ascending id, deterministic
  // tail), copy relocated member lists, then stable-scatter the batch by
  // attribute so each list's new members land AFTER its live entries —
  // input (time) order is preserved under the append contract.
  reloc_right_.clear();
  reloc_right_old_.clear();
  base_.assign(new_right_count, 0);
  dense_right_.assign(new_right_count + 1, 0);
  right_start_.resize(new_right_count, 0);
  right_cap_.resize(new_right_count, 0);
  right_len_.resize(new_right_count, 0);
  {
    std::uint64_t tail = right_targets_.size();
    for (std::size_t a = 0; a < new_right_count; ++a) {
      if (a >= old_right) {
        // Joining right node: fresh slack region at the tail, no waste.
        right_start_[a] = tail;
        right_cap_[a] = static_cast<std::uint32_t>(
            counts_[a] > 0 ? slack_capacity(counts_[a]) : 0);
        tail += right_cap_[a];
      } else if (counts_[a] > 0 &&
                 right_len_[a] + counts_[a] > right_cap_[a]) {
        reloc_right_.push_back(static_cast<AttrId>(a));
        reloc_right_old_.push_back(right_start_[a]);
        right_waste_ += right_cap_[a];
        right_start_[a] = tail;
        right_cap_[a] = static_cast<std::uint32_t>(
            slack_capacity(right_len_[a] + counts_[a]));
        tail += right_cap_[a];
      }
      base_[a] = right_start_[a] + right_len_[a];
      dense_right_[a + 1] = dense_right_[a] + counts_[a];
    }
    right_targets_.resize(tail);
  }
  right_count_ = new_right_count;
  core::parallel_for(reloc_right_.size(), [&](std::size_t i) {
    const AttrId a = reloc_right_[i];
    const NodeId* old = right_targets_.data() + reloc_right_old_[i];
    std::copy(old, old + right_len_[a],
              right_targets_.data() + right_start_[a]);
  });
  by_attr_.scatter(
      base_,
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) emit(attrs[i], users[i]);
      },
      right_targets_.data());
  for (std::size_t a = 0; a < new_right_count; ++a) {
    right_len_[a] += static_cast<std::uint32_t>(counts_[a]);
  }

  // Left side: joining users get fresh tail regions; overflowing users are
  // relocated. The batch is walked attr-major (ascending attribute) and
  // scattered by user into dense per-user runs — each run is the user's
  // new attribute ids sorted ascending, ready for one merge per node.
  left_start_.resize(new_left_count, 0);
  left_cap_.resize(new_left_count, 0);
  left_len_.resize(new_left_count, 0);
  reloc_left_.assign(touched_left_.size(),
                     std::numeric_limits<std::uint64_t>::max());
  {
    std::uint64_t tail = left_targets_.size();
    for (std::size_t ti = 0; ti < touched_left_.size(); ++ti) {
      const std::size_t u = touched_left_[ti];
      if (u >= old_left) {
        left_start_[u] = tail;
        left_cap_[u] =
            static_cast<std::uint32_t>(slack_capacity(add_left_[u]));
        tail += left_cap_[u];
      } else if (left_len_[u] + add_left_[u] > left_cap_[u]) {
        reloc_left_[ti] = left_start_[u];
        left_waste_ += left_cap_[u];
        left_start_[u] = tail;
        left_cap_[u] = static_cast<std::uint32_t>(
            slack_capacity(left_len_[u] + add_left_[u]));
        tail += left_cap_[u];
      }
    }
    left_targets_.resize(tail);
  }
  left_count_ = new_left_count;

  // The batch's attr-major walk: new ranks live in the freshly appended
  // right segments, addressed by base_ and the batch's dense rank prefix.
  const auto attr_major = [&](std::size_t begin, std::size_t end, auto&& fn) {
    core::walk_keyed_regions(dense_right_, base_, begin, end, fn);
  };
  by_user_.count(
      m, new_left_count,
      [&](std::size_t begin, std::size_t end, auto emit) {
        attr_major(begin, end, [&](std::uint64_t pos, AttrId) {
          emit(right_targets_[pos]);
        });
      },
      add_left_);
  delta_left_base_.assign(new_left_count, 0);
  {
    std::uint64_t running = 0;
    for (std::size_t u = 0; u < new_left_count; ++u) {
      delta_left_base_[u] = running;
      running += add_left_[u];
    }
  }
  delta_left_attrs_.resize(m);
  by_user_.scatter(
      delta_left_base_,
      [&](std::size_t begin, std::size_t end, auto emit) {
        attr_major(begin, end, [&](std::uint64_t pos, AttrId a) {
          emit(right_targets_[pos], a);
        });
      },
      delta_left_attrs_.data());

  core::parallel_for(touched_left_.size(), [&](std::size_t ti) {
    const std::size_t u = touched_left_[ti];
    const AttrId* batch = delta_left_attrs_.data() + delta_left_base_[u];
    AttrId* region = left_targets_.data() + left_start_[u];
    if (reloc_left_[ti] != std::numeric_limits<std::uint64_t>::max()) {
      const AttrId* old = left_targets_.data() + reloc_left_[ti];
      std::merge(old, old + left_len_[u], batch, batch + add_left_[u],
                 region);
    } else {
      merge_sorted_tail(region, left_len_[u], batch, add_left_[u]);
    }
    left_len_[u] += static_cast<std::uint32_t>(add_left_[u]);
  });
  link_count_ += m;

  delta_left_attrs_.clear();
  touched_left_.clear();
  reloc_left_.clear();
  reloc_right_.clear();
  reloc_right_old_.clear();
  return true;
}

std::span<const AttrId> BipartiteCsr::attrs_of(NodeId u) const {
  if (u >= left_count_) {
    throw std::out_of_range("BipartiteCsr: unknown left node");
  }
  return {left_targets_.data() + left_start_[u],
          static_cast<std::size_t>(left_len_[u])};
}

std::span<const NodeId> BipartiteCsr::members_of(AttrId a) const {
  if (a >= right_count_) {
    throw std::out_of_range("BipartiteCsr: unknown right node");
  }
  return {right_targets_.data() + right_start_[a],
          static_cast<std::size_t>(right_len_[a])};
}

std::size_t BipartiteCsr::populated_right_count() const {
  std::size_t count = 0;
  for (AttrId a = 0; a < right_count_; ++a) {
    if (right_len_[a] > 0) ++count;
  }
  return count;
}

std::size_t BipartiteCsr::common_attrs(NodeId u, NodeId v) const {
  const auto au = attrs_of(u);
  const auto av = attrs_of(v);
  std::size_t count = 0;
  auto iu = au.begin();
  auto iv = av.begin();
  while (iu != au.end() && iv != av.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      ++count;
      ++iu;
      ++iv;
    }
  }
  return count;
}

}  // namespace san::graph

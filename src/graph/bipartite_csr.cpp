#include "graph/bipartite_csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"

namespace san::graph {
namespace {

/// Base chunk grain for the scatter passes. Coarser than the general
/// default: each chunk carries a per-chunk histogram row over one side's
/// id space, so memory is chunks x side_count — at 64Ki links per chunk a
/// ~1M-link rebuild stays in the tens of rows.
constexpr std::size_t kScatterGrain = std::size_t{1} << 16;

/// Cap on total cursor-matrix cells (chunks x (side_count+1)) per pass:
/// 16Mi cells = 128 MiB of u64. A side whose id space is huge relative to
/// the link count widens the grain — degrading gracefully toward the
/// single-row serial sort — instead of allocating chunks x side rows. The
/// grain derives only from (m, side_count), never from the thread count,
/// so the chunk decomposition, and therefore every written byte, is
/// identical at any SAN_THREADS.
constexpr std::size_t kCursorBudgetCells = std::size_t{1} << 24;

std::size_t scatter_grain(std::size_t m, std::size_t side_count) {
  const std::size_t max_chunks =
      std::max<std::size_t>(1, kCursorBudgetCells / (side_count + 1));
  const std::size_t budget_grain = (m + max_chunks - 1) / max_chunks;
  return std::max(kScatterGrain, budget_grain);
}

}  // namespace

BipartiteCsr BipartiteCsr::from_links(std::size_t left_count,
                                      std::size_t right_count,
                                      std::span<const NodeId> users,
                                      std::span<const AttrId> attrs) {
  BipartiteCsr b;
  b.rebuild_from_links(left_count, right_count, users, attrs);
  return b;
}

void BipartiteCsr::rebuild_from_links(std::size_t left_count,
                                      std::size_t right_count,
                                      std::span<const NodeId> users,
                                      std::span<const AttrId> attrs) {
  if (users.size() != attrs.size()) {
    throw std::invalid_argument("BipartiteCsr: users/attrs size mismatch");
  }
  const std::size_t m = users.size();
  const std::size_t bad = core::parallel_reduce(
      m, std::size_t{0},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::size_t count = 0;
        for (std::size_t i = begin; i < end; ++i) {
          if (users[i] >= left_count || attrs[i] >= right_count) ++count;
        }
        return count;
      },
      [](std::size_t a, std::size_t b) { return a + b; }, kScatterGrain);
  if (bad > 0) {
    throw std::out_of_range("BipartiteCsr: link endpoint out of range");
  }
  left_count_ = left_count;
  right_count_ = right_count;
  link_count_ = m;

  // Both sides are stable counting sorts, parallelized with two-level
  // per-chunk cursors: chunk c's starting cursor for key x is the global
  // offset of x plus every earlier chunk's count of x, so chunks scatter
  // concurrently into disjoint slots while the result stays byte-identical
  // to the serial stable sort (earlier input positions land first).

  // Right side: sort links by attribute, stable in input order, so
  // members_of(a) preserves the (time) order of the input links.
  const std::size_t right_grain = scatter_grain(m, right_count);
  const std::size_t right_chunks =
      std::max<std::size_t>(1, core::chunk_count_for(m, right_grain));
  cursors_.assign(right_chunks * (right_count + 1), 0);
  core::parallel_for_chunks(
      m, right_grain, [&](std::size_t begin, std::size_t end, std::size_t c) {
        std::uint64_t* row = cursors_.data() + c * (right_count + 1);
        for (std::size_t i = begin; i < end; ++i) ++row[attrs[i]];
      });
  right_offsets_.assign(right_count + 1, 0);
  {
    // Serial O(chunks x right_count) transform of counts into cursor starts
    // and global offsets — bounded by kCursorBudgetCells, negligible next
    // to the scatters.
    std::uint64_t running = 0;
    for (std::size_t a = 0; a < right_count; ++a) {
      right_offsets_[a] = running;
      for (std::size_t c = 0; c < right_chunks; ++c) {
        std::uint64_t& cell = cursors_[c * (right_count + 1) + a];
        const std::uint64_t count = cell;
        cell = running;
        running += count;
      }
    }
    right_offsets_[right_count] = running;
  }
  right_targets_.resize(m);
  core::parallel_for_chunks(
      m, right_grain, [&](std::size_t begin, std::size_t end, std::size_t c) {
        std::uint64_t* cursor = cursors_.data() + c * (right_count + 1);
        for (std::size_t i = begin; i < end; ++i) {
          right_targets_[cursor[attrs[i]]++] = users[i];
        }
      });

  // Left side from the right side: walking the attr-major sequence in
  // ascending attribute order and scattering by user yields per-user
  // attribute lists already sorted ascending — a second counting sort
  // instead of a per-user sort. Chunks cover positions of right_targets_;
  // each chunk recovers its attribute range from right_offsets_.
  const std::size_t left_grain = scatter_grain(m, left_count);
  const std::size_t left_chunks =
      std::max<std::size_t>(1, core::chunk_count_for(m, left_grain));
  cursors_.assign(left_chunks * (left_count + 1), 0);
  core::parallel_for_chunks(
      m, left_grain, [&](std::size_t begin, std::size_t end, std::size_t c) {
        std::uint64_t* row = cursors_.data() + c * (left_count + 1);
        for (std::size_t i = begin; i < end; ++i) ++row[right_targets_[i]];
      });
  left_offsets_.assign(left_count + 1, 0);
  {
    std::uint64_t running = 0;
    for (std::size_t u = 0; u < left_count; ++u) {
      left_offsets_[u] = running;
      for (std::size_t c = 0; c < left_chunks; ++c) {
        std::uint64_t& cell = cursors_[c * (left_count + 1) + u];
        const std::uint64_t count = cell;
        cell = running;
        running += count;
      }
    }
    left_offsets_[left_count] = running;
  }
  left_targets_.resize(m);
  core::parallel_for_chunks(
      m, left_grain, [&](std::size_t begin, std::size_t end, std::size_t c) {
        std::uint64_t* cursor = cursors_.data() + c * (left_count + 1);
        // The attribute owning position `begin`: the last a with
        // right_offsets_[a] <= begin (empty attributes collapse to equal
        // offsets; the in-loop advance below skips them).
        AttrId a = static_cast<AttrId>(
            std::upper_bound(right_offsets_.begin(), right_offsets_.end(),
                             begin) -
            right_offsets_.begin() - 1);
        for (std::size_t i = begin; i < end; ++i) {
          while (i >= right_offsets_[a + 1]) ++a;
          left_targets_[cursor[right_targets_[i]]++] = a;
        }
      });
}

std::span<const AttrId> BipartiteCsr::attrs_of(NodeId u) const {
  if (u >= left_count_) {
    throw std::out_of_range("BipartiteCsr: unknown left node");
  }
  return {left_targets_.data() + left_offsets_[u],
          static_cast<std::size_t>(left_offsets_[u + 1] - left_offsets_[u])};
}

std::span<const NodeId> BipartiteCsr::members_of(AttrId a) const {
  if (a >= right_count_) {
    throw std::out_of_range("BipartiteCsr: unknown right node");
  }
  return {right_targets_.data() + right_offsets_[a],
          static_cast<std::size_t>(right_offsets_[a + 1] - right_offsets_[a])};
}

std::size_t BipartiteCsr::populated_right_count() const {
  std::size_t count = 0;
  for (AttrId a = 0; a < right_count_; ++a) {
    if (right_offsets_[a + 1] > right_offsets_[a]) ++count;
  }
  return count;
}

std::size_t BipartiteCsr::common_attrs(NodeId u, NodeId v) const {
  const auto au = attrs_of(u);
  const auto av = attrs_of(v);
  std::size_t count = 0;
  auto iu = au.begin();
  auto iv = av.begin();
  while (iu != au.end() && iv != av.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      ++count;
      ++iu;
      ++iv;
    }
  }
  return count;
}

}  // namespace san::graph

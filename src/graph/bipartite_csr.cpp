#include "graph/bipartite_csr.hpp"

#include <stdexcept>

namespace san::graph {

BipartiteCsr BipartiteCsr::from_links(std::size_t left_count,
                                      std::size_t right_count,
                                      std::span<const NodeId> users,
                                      std::span<const AttrId> attrs) {
  BipartiteCsr b;
  b.rebuild_from_links(left_count, right_count, users, attrs);
  return b;
}

void BipartiteCsr::rebuild_from_links(std::size_t left_count,
                                      std::size_t right_count,
                                      std::span<const NodeId> users,
                                      std::span<const AttrId> attrs) {
  if (users.size() != attrs.size()) {
    throw std::invalid_argument("BipartiteCsr: users/attrs size mismatch");
  }
  const std::size_t m = users.size();
  for (std::size_t i = 0; i < m; ++i) {
    if (users[i] >= left_count || attrs[i] >= right_count) {
      throw std::out_of_range("BipartiteCsr: link endpoint out of range");
    }
  }
  left_count_ = left_count;
  right_count_ = right_count;
  link_count_ = m;

  // Right side first: counting sort by attribute, stable in input order, so
  // members_of(a) preserves the (time) order of the input links.
  right_offsets_.assign(right_count + 1, 0);
  for (std::size_t i = 0; i < m; ++i) ++right_offsets_[attrs[i] + 1];
  for (std::size_t a = 1; a <= right_count; ++a) {
    right_offsets_[a] += right_offsets_[a - 1];
  }
  right_targets_.resize(m);
  {
    std::vector<std::uint64_t> cursor(right_offsets_.begin(),
                                      right_offsets_.end() - 1);
    for (std::size_t i = 0; i < m; ++i) {
      right_targets_[cursor[attrs[i]]++] = users[i];
    }
  }

  // Left side from the right side: scanning attributes in ascending id order
  // and scattering members yields per-user attribute lists already sorted
  // ascending — a second counting pass instead of a per-user sort.
  left_offsets_.assign(left_count + 1, 0);
  for (std::size_t i = 0; i < m; ++i) ++left_offsets_[users[i] + 1];
  for (std::size_t u = 1; u <= left_count; ++u) {
    left_offsets_[u] += left_offsets_[u - 1];
  }
  left_targets_.resize(m);
  {
    std::vector<std::uint64_t> cursor(left_offsets_.begin(),
                                      left_offsets_.end() - 1);
    for (AttrId a = 0; a < right_count; ++a) {
      const std::uint64_t begin = right_offsets_[a];
      const std::uint64_t end = right_offsets_[a + 1];
      for (std::uint64_t i = begin; i < end; ++i) {
        left_targets_[cursor[right_targets_[i]]++] = a;
      }
    }
  }
}

std::span<const AttrId> BipartiteCsr::attrs_of(NodeId u) const {
  if (u >= left_count_) {
    throw std::out_of_range("BipartiteCsr: unknown left node");
  }
  return {left_targets_.data() + left_offsets_[u],
          static_cast<std::size_t>(left_offsets_[u + 1] - left_offsets_[u])};
}

std::span<const NodeId> BipartiteCsr::members_of(AttrId a) const {
  if (a >= right_count_) {
    throw std::out_of_range("BipartiteCsr: unknown right node");
  }
  return {right_targets_.data() + right_offsets_[a],
          static_cast<std::size_t>(right_offsets_[a + 1] - right_offsets_[a])};
}

std::size_t BipartiteCsr::populated_right_count() const {
  std::size_t count = 0;
  for (AttrId a = 0; a < right_count_; ++a) {
    if (right_offsets_[a + 1] > right_offsets_[a]) ++count;
  }
  return count;
}

std::size_t BipartiteCsr::common_attrs(NodeId u, NodeId v) const {
  const auto au = attrs_of(u);
  const auto av = attrs_of(v);
  std::size_t count = 0;
  auto iu = au.begin();
  auto iv = av.begin();
  while (iu != au.end() && iv != av.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      ++count;
      ++iu;
      ++iv;
    }
  }
  return count;
}

}  // namespace san::graph

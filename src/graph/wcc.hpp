// Weakly connected components. The Google+ crawl of the paper collects one
// large WCC (§2.2); the crawler simulation reports its coverage with this.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace san::graph {

struct WccResult {
  std::vector<NodeId> component;     // component id per node (dense, 0-based)
  std::vector<std::uint64_t> sizes;  // size per component id
  std::size_t component_count() const { return sizes.size(); }
  /// Id of the largest component (by node count); requires >= 1 node.
  NodeId largest() const;
};

WccResult weakly_connected_components(const CsrGraph& g);

}  // namespace san::graph

// Immutable compressed-sparse-row snapshot of a directed graph. All metric
// code operates on this form: adjacency is sorted (binary-searchable) and
// an undirected neighbor view (the paper's Γs(u)) is precomputed.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace san::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  static CsrGraph from_digraph(const Digraph& g);
  /// Build from an explicit edge list over nodes [0, node_count). Duplicate
  /// edges and self-loops are dropped.
  static CsrGraph from_edges(std::size_t node_count,
                             std::span<const std::pair<NodeId, NodeId>> edges);

  std::size_t node_count() const { return node_count_; }
  std::uint64_t edge_count() const { return edge_count_; }

  std::span<const NodeId> out(NodeId u) const;
  std::span<const NodeId> in(NodeId u) const;
  /// Undirected neighbor view: sorted union of in- and out-neighbors.
  std::span<const NodeId> neighbors(NodeId u) const;

  std::size_t out_degree(NodeId u) const { return out(u).size(); }
  std::size_t in_degree(NodeId u) const { return in(u).size(); }
  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  bool has_edge(NodeId u, NodeId v) const;
  /// The paper's F mapping for directed graphs: 0 if v,w unconnected, 1 if
  /// linked one way, 2 if reciprocally linked (Appendix A).
  int link_count(NodeId v, NodeId w) const;

 private:
  static CsrGraph build(std::size_t node_count,
                        std::vector<std::pair<NodeId, NodeId>> edges);

  std::size_t node_count_ = 0;
  std::uint64_t edge_count_ = 0;
  std::vector<std::uint64_t> out_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<std::uint64_t> in_offsets_;
  std::vector<NodeId> in_targets_;
  std::vector<std::uint64_t> nbr_offsets_;
  std::vector<NodeId> nbr_targets_;
};

}  // namespace san::graph

// Immutable compressed-sparse-row snapshot of a directed graph. All metric
// code operates on this form: adjacency is sorted (binary-searchable) and
// an undirected neighbor view (the paper's Γs(u)) is precomputed.
//
// Two build paths exist. `from_edges` canonicalizes an arbitrary edge list
// (comparison sort + dedup). `from_sorted_edges` / `rebuild_from_sorted_edges`
// accept edges already sorted by (src, dst) and build all three adjacency
// views in O(edges + nodes) with no comparison sort — the SanTimeline
// snapshot fast path, which radix-orders a time-prefix slice and rebuilds
// into the same CsrGraph to reuse array capacity across a sweep. The
// undirected neighbor merge, the dominant cost, runs chunked on the
// src/core/ substrate (per-node disjoint writes, byte-identical at any
// thread count).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace san::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  static CsrGraph from_digraph(const Digraph& g);
  /// Build from an explicit edge list over nodes [0, node_count). Duplicate
  /// edges and self-loops are dropped.
  static CsrGraph from_edges(std::size_t node_count,
                             std::span<const std::pair<NodeId, NodeId>> edges);
  /// Fast path: edges must already be sorted by (src, dst). Duplicates and
  /// self-loops are still dropped (single linear pass); an unsorted input
  /// throws std::invalid_argument.
  static CsrGraph from_sorted_edges(
      std::size_t node_count, std::span<const std::pair<NodeId, NodeId>> edges);

  /// Structure-of-arrays variant of from_sorted_edges that rebuilds in
  /// place, reusing this object's array capacity (the sweep fast path).
  void rebuild_from_sorted_edges(std::size_t node_count,
                                 std::span<const NodeId> srcs,
                                 std::span<const NodeId> dsts);

  /// Expert fast path (SanTimeline): adopt externally built out/in adjacency
  /// by SWAPPING buffers — on return the arguments hold this graph's
  /// previous arrays, so a sweep ping-pongs two buffer sets with zero
  /// steady-state allocation. Offsets must be prefix sums over node_count+1
  /// entries and each per-node target list must be sorted, unique, and
  /// loop-free; cheap shape invariants are always checked, full sortedness
  /// only in debug builds. The undirected neighbor view is rebuilt here
  /// (chunked on the core substrate).
  void adopt_sorted_adjacency(std::size_t node_count,
                              std::vector<std::uint64_t>& out_offsets,
                              std::vector<NodeId>& out_targets,
                              std::vector<std::uint64_t>& in_offsets,
                              std::vector<NodeId>& in_targets);

  std::size_t node_count() const { return node_count_; }
  std::uint64_t edge_count() const { return edge_count_; }

  std::span<const NodeId> out(NodeId u) const;
  std::span<const NodeId> in(NodeId u) const;
  /// Undirected neighbor view: sorted union of in- and out-neighbors.
  std::span<const NodeId> neighbors(NodeId u) const;

  std::size_t out_degree(NodeId u) const { return out(u).size(); }
  std::size_t in_degree(NodeId u) const { return in(u).size(); }
  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  bool has_edge(NodeId u, NodeId v) const;
  /// The paper's F mapping for directed graphs: 0 if v,w unconnected, 1 if
  /// linked one way, 2 if reciprocally linked (Appendix A).
  int link_count(NodeId v, NodeId w) const;

 private:
  static CsrGraph build(std::size_t node_count,
                        std::vector<std::pair<NodeId, NodeId>> edges);

  /// Recompute nbr_len_/nbr_targets_ from the out/in views.
  void build_neighbor_view();

  std::size_t node_count_ = 0;
  std::uint64_t edge_count_ = 0;
  std::vector<std::uint64_t> out_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<std::uint64_t> in_offsets_;
  std::vector<NodeId> in_targets_;
  // Neighbor view with per-node slack: node u's union of out/in lists lives
  // at [out_offsets_[u] + in_offsets_[u], +nbr_len_[u]) in nbr_targets_ —
  // the start is each node's worst case (disjoint by construction), so the
  // union is built in ONE parallel merge pass with no counting prescan, at
  // the cost of gaps where links are reciprocated.
  std::vector<std::uint32_t> nbr_len_;
  std::vector<NodeId> nbr_targets_;
};

}  // namespace san::graph

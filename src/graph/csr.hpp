// Compressed-sparse-row snapshot of a directed graph. All metric code
// operates on this form: adjacency is sorted (binary-searchable) and an
// undirected neighbor view (the paper's Γs(u)) is precomputed.
//
// Layout: node u's out list lives at [out_start_[u], +out_len_[u]) inside a
// reserved region of out_cap_[u] slots in out_targets_ (in and neighbor
// views mirror this). A DENSE build packs the regions (cap == len); a
// SLACK build (graph/slack.hpp) reserves amortized-doubling headroom per
// node so whole days of links can be appended in place — the delta-sweep
// fast path of san/timeline.hpp. When one node outgrows its region,
// `append_sorted_links` RELOCATES just that node's list to the array tail
// with doubled capacity (the old region becomes tracked waste) instead of
// rebuilding the world; only when accumulated waste would exceed the live
// entries does it refuse, and the caller compacts with a full rebuild.
// Readers never see any of this: every accessor is bounded by the length
// arrays.
//
// Build paths:
//   - `from_edges` canonicalizes an arbitrary edge list (comparison sort +
//     dedup);
//   - `from_sorted_edges` / `rebuild_from_sorted_edges` accept edges sorted
//     by (src, dst) and build all three adjacency views in O(edges + nodes)
//     with no comparison sort;
//   - `adopt_adjacency` swaps in externally built length/target arrays (the
//     SanTimeline fast path — big-buffer ping-pong, zero steady-state
//     allocation);
//   - `append_sorted_links` merges a sorted batch of new edges into the
//     per-node regions (chunk-parallel counting, per-node merges).
//
// The undirected neighbor merge runs chunked on the src/core/ substrate
// (per-node disjoint writes, byte-identical at any thread count).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/counting_scatter.hpp"
#include "graph/digraph.hpp"

namespace san::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  static CsrGraph from_digraph(const Digraph& g);
  /// Build from an explicit edge list over nodes [0, node_count). Duplicate
  /// edges and self-loops are dropped.
  static CsrGraph from_edges(std::size_t node_count,
                             std::span<const std::pair<NodeId, NodeId>> edges);
  /// Fast path: edges must already be sorted by (src, dst). Duplicates and
  /// self-loops are still dropped (single linear pass); an unsorted input
  /// throws std::invalid_argument.
  static CsrGraph from_sorted_edges(
      std::size_t node_count, std::span<const std::pair<NodeId, NodeId>> edges);

  /// Structure-of-arrays variant of from_sorted_edges that rebuilds in
  /// place, reusing this object's array capacity (the sweep fast path).
  /// `with_slack` builds the append-friendly layout (graph/slack.hpp)
  /// instead of packing the regions densely.
  void rebuild_from_sorted_edges(std::size_t node_count,
                                 std::span<const NodeId> srcs,
                                 std::span<const NodeId> dsts,
                                 bool with_slack = false);

  /// Expert fast path (SanTimeline): adopt externally built out/in
  /// adjacency. The length and target vectors are SWAPPED in — on return
  /// they hold this graph's previous arrays, so a sweep ping-pongs two
  /// buffer sets with zero steady-state allocation; the offset vectors are
  /// only read. Offsets are monotone per-node storage starts over
  /// node_count+1 entries (dense prefix sums or a slack layout with
  /// offsets[u+1] - offsets[u] slots reserved for u); lengths give the live
  /// entries per node and each live per-node target range must be sorted,
  /// unique, and loop-free. Cheap shape invariants are always checked,
  /// full sortedness only in debug builds. The undirected neighbor view is
  /// rebuilt here (chunked on the core substrate).
  void adopt_adjacency(std::size_t node_count,
                       std::span<const std::uint64_t> out_offsets,
                       std::vector<std::uint32_t>& out_len,
                       std::vector<NodeId>& out_targets,
                       std::span<const std::uint64_t> in_offsets,
                       std::vector<std::uint32_t>& in_len,
                       std::vector<NodeId>& in_targets);

  /// Dense-layout compatibility wrapper for adopt_adjacency: offsets must
  /// be exact prefix sums (no slack); lengths are derived here. Target
  /// vectors are swapped, offsets only read.
  void adopt_sorted_adjacency(std::size_t node_count,
                              std::vector<std::uint64_t>& out_offsets,
                              std::vector<NodeId>& out_targets,
                              std::vector<std::uint64_t>& in_offsets,
                              std::vector<NodeId>& in_targets);

  /// Append a batch of new edges in place — the delta-sweep fast path. The
  /// batch must be sorted by (src, dst), free of self loops, and disjoint
  /// from both itself and the edges already present (the SAN link log
  /// guarantees uniqueness at insert time); ids must be < new_node_count
  /// >= node_count(). Nodes in [node_count(), new_node_count) are appended
  /// with fresh slack; an existing node whose region overflows is
  /// relocated to the tail with amortized-doubling capacity. Returns false
  /// — leaving the graph UNCHANGED — only when the relocation waste would
  /// exceed the live entries; the caller then compacts with a full
  /// (re-slacked) rebuild. Counting is chunk-parallel and the per-node
  /// merges write disjoint ranges, so results are byte-identical at any
  /// SAN_THREADS count.
  bool append_sorted_links(std::size_t new_node_count,
                           std::span<const NodeId> srcs,
                           std::span<const NodeId> dsts);

  std::size_t node_count() const { return node_count_; }
  std::uint64_t edge_count() const { return edge_count_; }

  std::span<const NodeId> out(NodeId u) const;
  std::span<const NodeId> in(NodeId u) const;
  /// Undirected neighbor view: sorted union of in- and out-neighbors.
  std::span<const NodeId> neighbors(NodeId u) const;

  std::size_t out_degree(NodeId u) const { return out(u).size(); }
  std::size_t in_degree(NodeId u) const { return in(u).size(); }
  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  bool has_edge(NodeId u, NodeId v) const;
  /// The paper's F mapping for directed graphs: 0 if v,w unconnected, 1 if
  /// linked one way, 2 if reciprocally linked (Appendix A).
  int link_count(NodeId v, NodeId w) const;

 private:
  static CsrGraph build(std::size_t node_count,
                        std::vector<std::pair<NodeId, NodeId>> edges);

  /// Reset start/cap/len bookkeeping from monotone offsets (build paths).
  void adopt_layout(std::size_t node_count,
                    std::span<const std::uint64_t> out_offsets,
                    std::span<const std::uint64_t> in_offsets);
  /// Recompute nbr_len_/nbr_targets_ for every node.
  void build_neighbor_view();
  /// Rebuild the neighbor union of one node into its (fixed) region.
  void rebuild_neighbors_of(std::size_t u);

  std::size_t node_count_ = 0;
  std::uint64_t edge_count_ = 0;
  // Per-node regions: start slot, reserved capacity, live length. Starts
  // are monotone after a build but relocation moves individual regions to
  // the tail, so only (start, cap, len) is authoritative.
  std::vector<std::uint64_t> out_start_, in_start_, nbr_start_;
  std::vector<std::uint32_t> out_cap_, in_cap_, nbr_cap_;
  std::vector<std::uint32_t> out_len_, in_len_, nbr_len_;
  std::vector<NodeId> out_targets_, in_targets_, nbr_targets_;
  // Dead slots stranded by relocations; a full rebuild resets them.
  std::uint64_t out_waste_ = 0, in_waste_ = 0, nbr_waste_ = 0;

  // append_sorted_links scratch (the base vectors double as
  // rebuild_from_sorted_edges' offset prefixes), kept as members so
  // steady-state appends — one batch per swept day — recycle capacity
  // instead of allocating. All are empty outside a call.
  core::StableCountingScatter append_by_src_, append_by_dst_;
  std::vector<std::uint64_t> add_out_, add_in_;
  std::vector<std::uint64_t> delta_out_base_, delta_in_base_;
  std::vector<NodeId> delta_in_src_;
  std::vector<NodeId> touched_;
  std::vector<std::uint64_t> reloc_out_, reloc_in_;  // old starts, ~0 = none
};

}  // namespace san::graph

// HyperANF (Boldi, Rosa, Vigna [8]): approximate neighborhood function and
// effective diameter of large directed graphs with HyperLogLog counters —
// the algorithm the paper uses for Fig 4c.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace san::graph {

/// Minimal HyperLogLog counter with 2^log2m 8-bit registers.
class HyperLogLog {
 public:
  explicit HyperLogLog(int log2m = 6);

  void add_hash(std::uint64_t hash);
  /// Merge other into *this; returns true if any register changed.
  bool merge(const HyperLogLog& other);
  double estimate() const;

  int log2m() const { return log2m_; }

 private:
  int log2m_;
  std::vector<std::uint8_t> registers_;
};

struct HyperAnfResult {
  /// neighborhood[t] ~= number of (u, v) pairs with dist(u, v) <= t,
  /// summed over the selected sources (v ranges over all reachable nodes,
  /// including u itself at t = 0).
  std::vector<double> neighborhood;

  /// Effective diameter: the (interpolated) distance at which the
  /// neighborhood function reaches fraction q of its final value. q = 0.9
  /// is the paper's 90th-percentile definition.
  double effective_diameter(double q = 0.9) const;
};

struct HyperAnfOptions {
  int log2m = 6;           // 64 registers/counter, a good accuracy/cost point
  int max_iterations = 96; // safety bound; iteration stops at convergence
  std::uint64_t seed = 0x5eed5eedULL;
};

/// Run HyperANF over out-links. If `sources` is non-empty the neighborhood
/// function is accumulated only over those source nodes (used for the
/// attribute diameter, where sources are attribute nodes of the augmented
/// graph); every node still participates in propagation.
HyperAnfResult hyper_anf(const CsrGraph& g, const HyperAnfOptions& options = {},
                         std::span<const NodeId> sources = {});

}  // namespace san::graph

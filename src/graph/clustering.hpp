// Clustering coefficients for directed graphs, exact and approximate.
//
// The paper (§3.4, Appendix A) defines, for a node u with social neighbors
// Γs(u), c(u) = L(u) / (|Γs(u)| (|Γs(u)|-1)) where L(u) counts directed
// links among Γs(u) (each direction separately). The approximate algorithm
// (Algorithm 2) samples K = ceil(ln(2 nu) / (2 eps^2)) triples and achieves
// |C~ - C| <= eps with probability >= 1 - 1/nu (Theorem 3).
//
// The sampled estimator works on arbitrary neighbor groups, so the same code
// computes the paper's attribute clustering coefficient: pass each attribute
// node's member list as the group (§4.1).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "stats/rng.hpp"

namespace san::graph {

/// Exact clustering coefficient of one node (0 when it has < 2 neighbors).
double exact_clustering(const CsrGraph& g, NodeId u);

/// Exact average clustering coefficient over all nodes. Quadratic in hub
/// degrees; intended for tests and small graphs.
double exact_average_clustering(const CsrGraph& g);

/// Exact clustering coefficient of an arbitrary node group: the directed
/// link density among `members` (the paper's attribute clustering
/// coefficient when members = Γs(attribute)).
double exact_group_clustering(const CsrGraph& g,
                              std::span<const NodeId> members);

struct ClusteringOptions {
  double epsilon = 0.005;  // target absolute error (paper uses 0.002)
  double nu = 100.0;       // failure probability 1/nu (paper uses 100)
  std::uint64_t seed = 0xc0ffee;
};

/// Number of samples K = ceil(ln(2 nu) / (2 eps^2)) from Theorem 3.
std::uint64_t clustering_sample_count(const ClusteringOptions& options);

/// Approximate average social clustering coefficient over all nodes of g
/// (Algorithm 2 with Omega = Vs).
double approx_average_clustering(const CsrGraph& g,
                                 const ClusteringOptions& options = {});

/// Approximate average clustering coefficient over an arbitrary family of
/// groups: `group(i)` returns the neighbor set of the i-th element of Omega,
/// 0 <= i < group_count. Directed links between group members are evaluated
/// on g. This computes the paper's average attribute clustering coefficient
/// when the groups are attribute-node member lists.
double approx_average_group_clustering(
    const CsrGraph& g,
    const std::function<std::span<const NodeId>(std::size_t)>& group,
    std::size_t group_count, const ClusteringOptions& options = {});

/// Average clustering coefficient bucketed by degree (log-spaced buckets),
/// as plotted in Fig 9a. Returns (representative degree, average c) pairs.
/// `samples_per_node` bounds the per-node pair sampling for large degrees.
std::vector<std::pair<double, double>> clustering_by_degree(
    const CsrGraph& g, std::size_t samples_per_node = 64,
    std::uint64_t seed = 0xc0ffee);

/// Same bucketing for arbitrary groups (attribute clustering vs social
/// degree of the attribute node, Fig 9a's second curve).
std::vector<std::pair<double, double>> group_clustering_by_degree(
    const CsrGraph& g,
    const std::function<std::span<const NodeId>(std::size_t)>& group,
    std::size_t group_count, std::size_t samples_per_node = 64,
    std::uint64_t seed = 0xc0ffee);

}  // namespace san::graph

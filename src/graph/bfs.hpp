// Breadth-first searches: exact directed distances (the paper's dist(u,v),
// §3.3) plus sampled pairwise distance distributions.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "stats/rng.hpp"

namespace san::graph {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

enum class Direction { kOut, kIn };

/// Directed BFS distances from `source` following out-links (or in-links).
/// Unreachable nodes get kUnreachable.
std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source,
                                         Direction direction = Direction::kOut);

/// Multi-source BFS: distance to the nearest source.
std::vector<std::uint32_t> bfs_distances_multi(
    const CsrGraph& g, std::span<const NodeId> sources,
    Direction direction = Direction::kOut);

/// Histogram of directed distances between connected node pairs, estimated
/// from `sample_sources` random BFS roots. Index d holds the number of
/// (source, target) pairs at distance d.
std::vector<std::uint64_t> sampled_distance_histogram(
    const CsrGraph& g, std::size_t sample_sources, stats::Rng& rng);

/// q-quantile (e.g. 0.9 for the effective diameter) of a distance histogram,
/// with the linear interpolation used by [33].
double interpolated_quantile(std::span<const std::uint64_t> histogram,
                             double q);

}  // namespace san::graph

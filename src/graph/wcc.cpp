#include "graph/wcc.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace san::graph {

NodeId WccResult::largest() const {
  if (sizes.empty()) throw std::out_of_range("WccResult::largest: no components");
  const auto it = std::max_element(sizes.begin(), sizes.end());
  return static_cast<NodeId>(it - sizes.begin());
}

WccResult weakly_connected_components(const CsrGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> parent(n);
  std::iota(parent.begin(), parent.end(), NodeId{0});

  // Path-halving union-find.
  const auto find = [&](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.out(u)) {
      const NodeId ru = find(u), rv = find(v);
      if (ru != rv) parent[ru] = rv;
    }
  }

  WccResult result;
  result.component.assign(n, 0);
  std::vector<NodeId> root_to_id(n, static_cast<NodeId>(n));
  for (NodeId u = 0; u < n; ++u) {
    const NodeId r = find(u);
    if (root_to_id[r] == static_cast<NodeId>(n)) {
      root_to_id[r] = static_cast<NodeId>(result.sizes.size());
      result.sizes.push_back(0);
    }
    result.component[u] = root_to_id[r];
    ++result.sizes[root_to_id[r]];
  }
  return result;
}

}  // namespace san::graph

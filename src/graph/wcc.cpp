#include "graph/wcc.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/parallel.hpp"

namespace san::graph {

NodeId WccResult::largest() const {
  if (sizes.empty()) {
    throw std::out_of_range("WccResult::largest: no components");
  }
  const auto it = std::max_element(sizes.begin(), sizes.end());
  return static_cast<NodeId>(it - sizes.begin());
}

WccResult weakly_connected_components(const CsrGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> parent(n);
  std::iota(parent.begin(), parent.end(), NodeId{0});

  // Lock-free union-find: concurrent unions race over the tree shape, but
  // the connectivity relation they converge to is unique, and the serial
  // relabeling pass below assigns component ids in node order — so the
  // result is byte-identical at any thread count.
  const auto find = [&](NodeId x) {
    for (;;) {
      const NodeId p =
          std::atomic_ref(parent[x]).load(std::memory_order_relaxed);
      if (p == x) return x;
      const NodeId gp =
          std::atomic_ref(parent[p]).load(std::memory_order_relaxed);
      if (gp == p) return p;
      // Opportunistic path halving; a lost race just skips the shortcut.
      NodeId expected = p;
      std::atomic_ref(parent[x]).compare_exchange_weak(
          expected, gp, std::memory_order_relaxed);
      x = gp;
    }
  };
  const auto unite = [&](NodeId u, NodeId v) {
    for (;;) {
      NodeId ru = find(u), rv = find(v);
      if (ru == rv) return;
      // Always link the higher root under the lower to rule out cycles.
      if (ru < rv) std::swap(ru, rv);
      NodeId expected = ru;
      if (std::atomic_ref(parent[ru]).compare_exchange_strong(
              expected, rv, std::memory_order_relaxed)) {
        return;
      }
    }
  };

  core::parallel_for(n, [&](std::size_t i) {
    const auto u = static_cast<NodeId>(i);
    for (const NodeId v : g.out(u)) unite(u, v);
  });

  // Serial finalize: full path compression, then dense ids in node order.
  const auto find_seq = [&](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  WccResult result;
  result.component.assign(n, 0);
  std::vector<NodeId> root_to_id(n, static_cast<NodeId>(n));
  for (NodeId u = 0; u < n; ++u) {
    const NodeId r = find_seq(u);
    if (root_to_id[r] == static_cast<NodeId>(n)) {
      root_to_id[r] = static_cast<NodeId>(result.sizes.size());
      result.sizes.push_back(0);
    }
    result.component[u] = root_to_id[r];
    ++result.sizes[root_to_id[r]];
  }
  return result;
}

}  // namespace san::graph

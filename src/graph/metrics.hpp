// Canonical social-structure metrics from §3 of the paper: reciprocity,
// density (links-to-nodes ratio), degree histograms, the knn degree
// correlation, and the assortativity coefficient.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "stats/summary.hpp"

namespace san::graph {

/// Fraction of directed edges (u, v) whose reverse edge (v, u) also exists
/// (§3.1). Returns 0 for an empty graph.
double reciprocity(const CsrGraph& g);

/// Links-to-nodes ratio |E|/|V| (§3.2, following the terminology of [26]).
double density(const CsrGraph& g);

stats::Histogram out_degree_histogram(const CsrGraph& g);
stats::Histogram in_degree_histogram(const CsrGraph& g);
/// Histogram of |Γs(u)| (undirected neighbor count).
stats::Histogram degree_histogram(const CsrGraph& g);

/// knn degree-correlation function (§3.6): for each outdegree k, the average
/// indegree of all nodes that out-neighbors of outdegree-k nodes point to.
/// Returns (k, knn(k)) pairs in ascending k, skipping empty degrees.
std::vector<std::pair<std::uint64_t, double>> knn_out_in(const CsrGraph& g);

/// Directed assortativity coefficient: Pearson correlation, over directed
/// edges (u, v), between the source's outdegree and the target's indegree.
/// ~0 for the neutral mixing the paper observes on Google+ (Fig 7b).
double assortativity(const CsrGraph& g);

/// General joint-degree correlation: Pearson correlation over edges between
/// arbitrary per-node source/target scores (used for the attribute
/// assortativity of Fig 12b).
double edge_score_correlation(const CsrGraph& g,
                              const std::vector<double>& source_score,
                              const std::vector<double>& target_score);

}  // namespace san::graph

#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace san::graph {

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

NodeId Digraph::add_nodes(std::size_t count) {
  const auto first = static_cast<NodeId>(out_.size());
  out_.resize(out_.size() + count);
  in_.resize(in_.size() + count);
  return first;
}

void Digraph::check_node(NodeId u) const {
  if (u >= out_.size()) throw std::out_of_range("Digraph: unknown node id");
}

bool Digraph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (u == v) return false;
  if (has_edge(u, v)) return false;
  out_[u].push_back(v);
  in_[v].push_back(u);
  ++edge_count_;
  return true;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  // Scan the shorter of u's out-list and v's in-list; degree distributions
  // are skewed, so this keeps hub lookups cheap.
  const auto& uo = out_[u];
  const auto& vi = in_[v];
  if (uo.size() <= vi.size()) {
    return std::find(uo.begin(), uo.end(), v) != uo.end();
  }
  return std::find(vi.begin(), vi.end(), u) != vi.end();
}

}  // namespace san::graph

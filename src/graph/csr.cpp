#include "graph/csr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/parallel.hpp"
#include "graph/slack.hpp"

namespace san::graph {
namespace {

constexpr std::uint64_t kNoReloc = std::numeric_limits<std::uint64_t>::max();

/// Sort-and-dedup an edge list; drops self loops.
void canonicalize(std::vector<std::pair<NodeId, NodeId>>& edges) {
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const auto& e) { return e.first == e.second; }),
              edges.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

}  // namespace

CsrGraph CsrGraph::from_digraph(const Digraph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const NodeId v : g.out_neighbors(u)) edges.emplace_back(u, v);
  }
  return build(g.node_count(), std::move(edges));
}

CsrGraph CsrGraph::from_edges(
    std::size_t node_count, std::span<const std::pair<NodeId, NodeId>> edges) {
  std::vector<std::pair<NodeId, NodeId>> copy(edges.begin(), edges.end());
  for (const auto& [u, v] : copy) {
    if (u >= node_count || v >= node_count) {
      throw std::out_of_range("CsrGraph::from_edges: node id out of range");
    }
  }
  return build(node_count, std::move(copy));
}

CsrGraph CsrGraph::from_sorted_edges(
    std::size_t node_count, std::span<const std::pair<NodeId, NodeId>> edges) {
  std::vector<NodeId> srcs(edges.size()), dsts(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    srcs[i] = edges[i].first;
    dsts[i] = edges[i].second;
  }
  CsrGraph g;
  g.rebuild_from_sorted_edges(node_count, srcs, dsts);
  return g;
}

CsrGraph CsrGraph::build(std::size_t node_count,
                         std::vector<std::pair<NodeId, NodeId>> edges) {
  canonicalize(edges);
  return from_sorted_edges(node_count, edges);
}

void CsrGraph::rebuild_from_sorted_edges(std::size_t node_count,
                                         std::span<const NodeId> srcs,
                                         std::span<const NodeId> dsts,
                                         bool with_slack) {
  if (srcs.size() != dsts.size()) {
    throw std::invalid_argument("CsrGraph: srcs/dsts size mismatch");
  }
  const std::size_t m = srcs.size();

  // Single validation + counting pass. `keep(i)` = not a self loop and not
  // equal to the previous kept edge (sorted input makes duplicates adjacent).
  const auto keep = [&](std::size_t i) {
    if (srcs[i] == dsts[i]) return false;
    if (i > 0 && srcs[i] == srcs[i - 1] && dsts[i] == dsts[i - 1]) return false;
    return true;
  };
  out_len_.assign(node_count, 0);
  in_len_.assign(node_count, 0);
  std::uint64_t kept = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (srcs[i] >= node_count || dsts[i] >= node_count) {
      throw std::out_of_range("CsrGraph: node id out of range");
    }
    if (i > 0 && (srcs[i] < srcs[i - 1] ||
                  (srcs[i] == srcs[i - 1] && dsts[i] < dsts[i - 1]))) {
      throw std::invalid_argument("CsrGraph: edges not sorted by (src, dst)");
    }
    if (!keep(i)) continue;
    ++out_len_[srcs[i]];
    ++in_len_[dsts[i]];
    ++kept;
  }
  edge_count_ = kept;
  // The append scratch is empty outside append_sorted_links; reuse it for
  // the offset prefixes so repeated rebuilds recycle capacity.
  auto& out_offsets = delta_out_base_;
  auto& in_offsets = delta_in_base_;
  out_offsets.assign(node_count + 1, 0);
  in_offsets.assign(node_count + 1, 0);
  for (std::size_t u = 0; u < node_count; ++u) {
    const std::size_t out_cap =
        with_slack ? slack_capacity(out_len_[u]) : out_len_[u];
    const std::size_t in_cap =
        with_slack ? slack_capacity(in_len_[u]) : in_len_[u];
    out_offsets[u + 1] = out_offsets[u] + out_cap;
    in_offsets[u + 1] = in_offsets[u] + in_cap;
  }
  adopt_layout(node_count, out_offsets, in_offsets);

  // Outgoing lists fill in input order (already dst-sorted per src); the
  // incoming scatter visits sources in ascending order per target, so
  // in-lists come out sorted as well.
  out_targets_.resize(out_offsets.back());
  in_targets_.resize(in_offsets.back());
  {
    // Src-major input: one running out cursor that jumps to the node's
    // storage start whenever the source changes.
    bool have_src = false;
    NodeId cur_src = 0;
    std::uint64_t out_cursor = 0;
    std::vector<std::uint64_t> in_cursor(in_start_.begin(), in_start_.end());
    for (std::size_t i = 0; i < m; ++i) {
      if (!keep(i)) continue;
      if (!have_src || srcs[i] != cur_src) {
        have_src = true;
        cur_src = srcs[i];
        out_cursor = out_start_[cur_src];
      }
      out_targets_[out_cursor++] = dsts[i];
      in_targets_[in_cursor[dsts[i]]++] = srcs[i];
    }
  }
  out_offsets.clear();
  in_offsets.clear();

  build_neighbor_view();
}

void CsrGraph::adopt_layout(std::size_t node_count,
                            std::span<const std::uint64_t> out_offsets,
                            std::span<const std::uint64_t> in_offsets) {
  node_count_ = node_count;
  out_start_.resize(node_count);
  out_cap_.resize(node_count);
  in_start_.resize(node_count);
  in_cap_.resize(node_count);
  nbr_start_.resize(node_count);
  nbr_cap_.resize(node_count);
  for (std::size_t u = 0; u < node_count; ++u) {
    out_start_[u] = out_offsets[u];
    out_cap_[u] = static_cast<std::uint32_t>(out_offsets[u + 1] -
                                             out_offsets[u]);
    in_start_[u] = in_offsets[u];
    in_cap_[u] = static_cast<std::uint32_t>(in_offsets[u + 1] -
                                            in_offsets[u]);
    // Each node's neighbor region sits at its worst-case slot (out + in
    // capacity prefix), disjoint by the offsets' monotonicity.
    nbr_start_[u] = out_offsets[u] + in_offsets[u];
    nbr_cap_[u] = out_cap_[u] + in_cap_[u];
  }
  out_waste_ = 0;
  in_waste_ = 0;
  nbr_waste_ = 0;
}

void CsrGraph::adopt_adjacency(std::size_t node_count,
                               std::span<const std::uint64_t> out_offsets,
                               std::vector<std::uint32_t>& out_len,
                               std::vector<NodeId>& out_targets,
                               std::span<const std::uint64_t> in_offsets,
                               std::vector<std::uint32_t>& in_len,
                               std::vector<NodeId>& in_targets) {
  if (out_offsets.size() != node_count + 1 ||
      in_offsets.size() != node_count + 1 || out_len.size() != node_count ||
      in_len.size() != node_count || out_offsets.front() != 0 ||
      in_offsets.front() != 0 || out_offsets.back() != out_targets.size() ||
      in_offsets.back() != in_targets.size()) {
    throw std::invalid_argument("CsrGraph::adopt_adjacency: bad shape");
  }
  std::uint64_t out_total = 0, in_total = 0;
  for (std::size_t u = 0; u < node_count; ++u) {
    if (out_offsets[u + 1] < out_offsets[u] ||
        in_offsets[u + 1] < in_offsets[u]) {
      throw std::invalid_argument(
          "CsrGraph::adopt_adjacency: offsets not monotone");
    }
    if (out_offsets[u] + out_len[u] > out_offsets[u + 1] ||
        in_offsets[u] + in_len[u] > in_offsets[u + 1]) {
      throw std::invalid_argument(
          "CsrGraph::adopt_adjacency: length exceeds node capacity");
    }
    out_total += out_len[u];
    in_total += in_len[u];
  }
  if (out_total != in_total) {
    throw std::invalid_argument(
        "CsrGraph::adopt_adjacency: out/in edge totals disagree");
  }
#ifndef NDEBUG
  for (std::size_t u = 0; u < node_count; ++u) {
    for (const bool out_side : {true, false}) {
      const auto& off = out_side ? out_offsets : in_offsets;
      const auto& len = out_side ? out_len : in_len;
      const auto& arr = out_side ? out_targets : in_targets;
      for (std::uint64_t i = off[u]; i + 1 < off[u] + len[u]; ++i) {
        if (arr[i] >= arr[i + 1]) {
          throw std::invalid_argument(
              "CsrGraph::adopt_adjacency: unsorted adjacency");
        }
      }
    }
  }
#endif
  edge_count_ = out_total;
  adopt_layout(node_count, out_offsets, in_offsets);
  std::swap(out_len_, out_len);
  std::swap(out_targets_, out_targets);
  std::swap(in_len_, in_len);
  std::swap(in_targets_, in_targets);
  build_neighbor_view();
}

void CsrGraph::adopt_sorted_adjacency(std::size_t node_count,
                                      std::vector<std::uint64_t>& out_offsets,
                                      std::vector<NodeId>& out_targets,
                                      std::vector<std::uint64_t>& in_offsets,
                                      std::vector<NodeId>& in_targets) {
  if (out_offsets.size() != node_count + 1 ||
      in_offsets.size() != node_count + 1) {
    throw std::invalid_argument("CsrGraph::adopt_sorted_adjacency: bad shape");
  }
  std::vector<std::uint32_t> out_len(node_count), in_len(node_count);
  for (std::size_t u = 0; u < node_count; ++u) {
    if (out_offsets[u + 1] < out_offsets[u] ||
        in_offsets[u + 1] < in_offsets[u]) {
      throw std::invalid_argument(
          "CsrGraph::adopt_sorted_adjacency: offsets not monotone");
    }
    out_len[u] =
        static_cast<std::uint32_t>(out_offsets[u + 1] - out_offsets[u]);
    in_len[u] = static_cast<std::uint32_t>(in_offsets[u + 1] - in_offsets[u]);
  }
  adopt_adjacency(node_count, out_offsets, out_len, out_targets, in_offsets,
                  in_len, in_targets);
}

bool CsrGraph::append_sorted_links(std::size_t new_node_count,
                                   std::span<const NodeId> srcs,
                                   std::span<const NodeId> dsts) {
  if (srcs.size() != dsts.size()) {
    throw std::invalid_argument("CsrGraph::append: srcs/dsts size mismatch");
  }
  if (new_node_count < node_count_) {
    throw std::invalid_argument("CsrGraph::append: node count may not shrink");
  }
  const std::size_t m = srcs.size();
  const std::size_t old_n = node_count_;
  for (std::size_t i = 0; i < m; ++i) {
    if (srcs[i] >= new_node_count || dsts[i] >= new_node_count) {
      throw std::out_of_range("CsrGraph::append: node id out of range");
    }
    if (srcs[i] == dsts[i]) {
      throw std::invalid_argument("CsrGraph::append: self loop");
    }
    if (i > 0 && (srcs[i] < srcs[i - 1] ||
                  (srcs[i] == srcs[i - 1] && dsts[i] <= dsts[i - 1]))) {
      throw std::invalid_argument(
          "CsrGraph::append: edges not sorted by (src, dst)");
    }
  }

  // Chunk-parallel counts of the new links per endpoint.
  append_by_src_.count(
      m, new_node_count,
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) emit(srcs[i]);
      },
      add_out_);
  append_by_dst_.count(
      m, new_node_count,
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) emit(dsts[i]);
      },
      add_in_);

  // Waste policy check BEFORE any mutation: relocating every overflowing
  // region must not strand more dead slots than there are live entries —
  // past that point a compacting rebuild is cheaper, so refuse and leave
  // the graph untouched for the caller.
  touched_.clear();
  std::uint64_t out_hole = 0, in_hole = 0, nbr_hole = 0;
  for (std::size_t u = 0; u < new_node_count; ++u) {
    if (add_out_[u] == 0 && add_in_[u] == 0) continue;
    touched_.push_back(static_cast<NodeId>(u));
    if (u < old_n) {
      const bool move_out = out_len_[u] + add_out_[u] > out_cap_[u];
      const bool move_in = in_len_[u] + add_in_[u] > in_cap_[u];
      if (move_out) out_hole += out_cap_[u];
      if (move_in) in_hole += in_cap_[u];
      if (move_out || move_in) nbr_hole += nbr_cap_[u];
    }
  }
  const std::uint64_t live = edge_count_ + m;
  if (out_waste_ + out_hole > live || in_waste_ + in_hole > live ||
      nbr_waste_ + nbr_hole > 2 * live) {
    return false;
  }

  // Plan relocations and joining-node regions serially in ascending id
  // order (deterministic tails), then grow the arrays once.
  out_start_.resize(new_node_count, 0);
  out_cap_.resize(new_node_count, 0);
  out_len_.resize(new_node_count, 0);
  in_start_.resize(new_node_count, 0);
  in_cap_.resize(new_node_count, 0);
  in_len_.resize(new_node_count, 0);
  nbr_start_.resize(new_node_count, 0);
  nbr_cap_.resize(new_node_count, 0);
  nbr_len_.resize(new_node_count, 0);
  std::uint64_t out_tail = out_targets_.size();
  std::uint64_t in_tail = in_targets_.size();
  std::uint64_t nbr_tail = nbr_targets_.size();
  reloc_out_.assign(touched_.size(), kNoReloc);
  reloc_in_.assign(touched_.size(), kNoReloc);
  for (std::size_t ti = 0; ti < touched_.size(); ++ti) {
    const std::size_t u = touched_[ti];
    if (u >= old_n) {
      out_start_[u] = out_tail;
      out_cap_[u] = static_cast<std::uint32_t>(
          slack_capacity(add_out_[u]));
      out_tail += out_cap_[u];
      in_start_[u] = in_tail;
      in_cap_[u] = static_cast<std::uint32_t>(slack_capacity(add_in_[u]));
      in_tail += in_cap_[u];
      nbr_start_[u] = nbr_tail;
      nbr_cap_[u] = out_cap_[u] + in_cap_[u];
      nbr_tail += nbr_cap_[u];
      continue;
    }
    const bool move_out = out_len_[u] + add_out_[u] > out_cap_[u];
    const bool move_in = in_len_[u] + add_in_[u] > in_cap_[u];
    if (move_out) {
      reloc_out_[ti] = out_start_[u];
      out_waste_ += out_cap_[u];
      out_start_[u] = out_tail;
      out_cap_[u] = static_cast<std::uint32_t>(
          slack_capacity(out_len_[u] + add_out_[u]));
      out_tail += out_cap_[u];
    }
    if (move_in) {
      reloc_in_[ti] = in_start_[u];
      in_waste_ += in_cap_[u];
      in_start_[u] = in_tail;
      in_cap_[u] = static_cast<std::uint32_t>(
          slack_capacity(in_len_[u] + add_in_[u]));
      in_tail += in_cap_[u];
    }
    if (move_out || move_in) {
      nbr_waste_ += nbr_cap_[u];
      nbr_start_[u] = nbr_tail;
      nbr_cap_[u] = out_cap_[u] + in_cap_[u];
      nbr_tail += nbr_cap_[u];
    }
  }
  node_count_ = new_node_count;
  out_targets_.resize(out_tail);
  in_targets_.resize(in_tail);
  nbr_targets_.resize(nbr_tail);

  // Out side: the batch is src-major, so each node's new targets are a
  // contiguous ascending run addressed by the dense prefix of add_out_.
  // In side: one stable scatter by dst yields per-target source runs in
  // ascending order (stable over the src-sorted input).
  delta_out_base_.assign(new_node_count, 0);
  delta_in_base_.assign(new_node_count, 0);
  {
    std::uint64_t out_run = 0, in_run = 0;
    for (std::size_t u = 0; u < new_node_count; ++u) {
      delta_out_base_[u] = out_run;
      delta_in_base_[u] = in_run;
      out_run += add_out_[u];
      in_run += add_in_[u];
    }
  }
  delta_in_src_.resize(m);
  append_by_dst_.scatter(
      delta_in_base_,
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) emit(dsts[i], srcs[i]);
      },
      delta_in_src_.data());

  // Per-node work is independent (disjoint regions) — one parallel pass
  // merges both sides and refreshes the neighbor union, byte-identical at
  // any thread count.
  core::parallel_for(touched_.size(), [&](std::size_t ti) {
    const std::size_t u = touched_[ti];
    if (add_out_[u] > 0 || reloc_out_[ti] != kNoReloc) {
      const NodeId* batch = dsts.data() + delta_out_base_[u];
      NodeId* region = out_targets_.data() + out_start_[u];
      if (reloc_out_[ti] != kNoReloc) {
        const NodeId* old = out_targets_.data() + reloc_out_[ti];
        std::merge(old, old + out_len_[u], batch, batch + add_out_[u],
                   region);
      } else {
        merge_sorted_tail(region, out_len_[u], batch, add_out_[u]);
      }
      out_len_[u] += static_cast<std::uint32_t>(add_out_[u]);
    }
    if (add_in_[u] > 0 || reloc_in_[ti] != kNoReloc) {
      const NodeId* batch = delta_in_src_.data() + delta_in_base_[u];
      NodeId* region = in_targets_.data() + in_start_[u];
      if (reloc_in_[ti] != kNoReloc) {
        const NodeId* old = in_targets_.data() + reloc_in_[ti];
        std::merge(old, old + in_len_[u], batch, batch + add_in_[u], region);
      } else {
        merge_sorted_tail(region, in_len_[u], batch, add_in_[u]);
      }
      in_len_[u] += static_cast<std::uint32_t>(add_in_[u]);
    }
    rebuild_neighbors_of(u);
  });
  edge_count_ += m;

  delta_in_src_.clear();
  touched_.clear();
  reloc_out_.clear();
  reloc_in_.clear();
  return true;
}

void CsrGraph::rebuild_neighbors_of(std::size_t u) {
  const auto o = out(static_cast<NodeId>(u));
  const auto i = in(static_cast<NodeId>(u));
  const auto begin =
      nbr_targets_.begin() + static_cast<std::ptrdiff_t>(nbr_start_[u]);
  const auto end = std::set_union(o.begin(), o.end(), i.begin(), i.end(),
                                  begin);
  nbr_len_[u] = static_cast<std::uint32_t>(end - begin);
}

void CsrGraph::build_neighbor_view() {
  // Undirected neighbor view: per-node set_union of the two sorted lists,
  // written at each node's worst-case region — one chunked merge pass, no
  // counting prescan, byte-identical at any thread count.
  nbr_len_.resize(node_count_);
  nbr_targets_.resize(out_targets_.size() + in_targets_.size());
  core::parallel_for(node_count_,
                     [&](std::size_t u) { rebuild_neighbors_of(u); });
}

std::span<const NodeId> CsrGraph::out(NodeId u) const {
  if (u >= node_count_) throw std::out_of_range("CsrGraph: unknown node id");
  return {out_targets_.data() + out_start_[u],
          static_cast<std::size_t>(out_len_[u])};
}

std::span<const NodeId> CsrGraph::in(NodeId u) const {
  if (u >= node_count_) throw std::out_of_range("CsrGraph: unknown node id");
  return {in_targets_.data() + in_start_[u],
          static_cast<std::size_t>(in_len_[u])};
}

std::span<const NodeId> CsrGraph::neighbors(NodeId u) const {
  if (u >= node_count_) throw std::out_of_range("CsrGraph: unknown node id");
  return {nbr_targets_.data() + nbr_start_[u], nbr_len_[u]};
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  const auto o = out(u);
  return std::binary_search(o.begin(), o.end(), v);
}

int CsrGraph::link_count(NodeId v, NodeId w) const {
  return static_cast<int>(has_edge(v, w)) + static_cast<int>(has_edge(w, v));
}

}  // namespace san::graph

#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"

namespace san::graph {
namespace {

/// Sort-and-dedup an edge list; drops self loops.
void canonicalize(std::vector<std::pair<NodeId, NodeId>>& edges) {
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const auto& e) { return e.first == e.second; }),
              edges.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

}  // namespace

CsrGraph CsrGraph::from_digraph(const Digraph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const NodeId v : g.out_neighbors(u)) edges.emplace_back(u, v);
  }
  return build(g.node_count(), std::move(edges));
}

CsrGraph CsrGraph::from_edges(
    std::size_t node_count, std::span<const std::pair<NodeId, NodeId>> edges) {
  std::vector<std::pair<NodeId, NodeId>> copy(edges.begin(), edges.end());
  for (const auto& [u, v] : copy) {
    if (u >= node_count || v >= node_count) {
      throw std::out_of_range("CsrGraph::from_edges: node id out of range");
    }
  }
  return build(node_count, std::move(copy));
}

CsrGraph CsrGraph::from_sorted_edges(
    std::size_t node_count, std::span<const std::pair<NodeId, NodeId>> edges) {
  std::vector<NodeId> srcs(edges.size()), dsts(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    srcs[i] = edges[i].first;
    dsts[i] = edges[i].second;
  }
  CsrGraph g;
  g.rebuild_from_sorted_edges(node_count, srcs, dsts);
  return g;
}

CsrGraph CsrGraph::build(std::size_t node_count,
                         std::vector<std::pair<NodeId, NodeId>> edges) {
  canonicalize(edges);
  return from_sorted_edges(node_count, edges);
}

void CsrGraph::rebuild_from_sorted_edges(std::size_t node_count,
                                         std::span<const NodeId> srcs,
                                         std::span<const NodeId> dsts) {
  if (srcs.size() != dsts.size()) {
    throw std::invalid_argument("CsrGraph: srcs/dsts size mismatch");
  }
  const std::size_t m = srcs.size();

  // Single validation + counting pass. `keep(i)` = not a self loop and not
  // equal to the previous kept edge (sorted input makes duplicates adjacent).
  const auto keep = [&](std::size_t i) {
    if (srcs[i] == dsts[i]) return false;
    if (i > 0 && srcs[i] == srcs[i - 1] && dsts[i] == dsts[i - 1]) return false;
    return true;
  };
  out_offsets_.assign(node_count + 1, 0);
  in_offsets_.assign(node_count + 1, 0);
  std::uint64_t kept = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (srcs[i] >= node_count || dsts[i] >= node_count) {
      throw std::out_of_range("CsrGraph: node id out of range");
    }
    if (i > 0 && (srcs[i] < srcs[i - 1] ||
                  (srcs[i] == srcs[i - 1] && dsts[i] < dsts[i - 1]))) {
      throw std::invalid_argument("CsrGraph: edges not sorted by (src, dst)");
    }
    if (!keep(i)) continue;
    ++out_offsets_[srcs[i] + 1];
    ++in_offsets_[dsts[i] + 1];
    ++kept;
  }
  node_count_ = node_count;
  edge_count_ = kept;
  for (std::size_t i = 1; i <= node_count; ++i) {
    out_offsets_[i] += out_offsets_[i - 1];
    in_offsets_[i] += in_offsets_[i - 1];
  }

  // Outgoing lists fill in input order (already dst-sorted per src); the
  // incoming scatter visits sources in ascending order per target, so
  // in-lists come out sorted as well.
  out_targets_.resize(kept);
  in_targets_.resize(kept);
  {
    std::uint64_t out_cursor = 0;  // out lists are contiguous in input order
    std::vector<std::uint64_t> in_cursor(in_offsets_.begin(),
                                         in_offsets_.end() - 1);
    for (std::size_t i = 0; i < m; ++i) {
      if (!keep(i)) continue;
      out_targets_[out_cursor++] = dsts[i];
      in_targets_[in_cursor[dsts[i]]++] = srcs[i];
    }
  }

  build_neighbor_view();
}

void CsrGraph::adopt_sorted_adjacency(std::size_t node_count,
                                      std::vector<std::uint64_t>& out_offsets,
                                      std::vector<NodeId>& out_targets,
                                      std::vector<std::uint64_t>& in_offsets,
                                      std::vector<NodeId>& in_targets) {
  if (out_offsets.size() != node_count + 1 ||
      in_offsets.size() != node_count + 1 ||
      out_offsets.front() != 0 || in_offsets.front() != 0 ||
      out_offsets.back() != out_targets.size() ||
      in_offsets.back() != in_targets.size() ||
      out_targets.size() != in_targets.size()) {
    throw std::invalid_argument("CsrGraph::adopt_sorted_adjacency: bad shape");
  }
#ifndef NDEBUG
  for (std::size_t u = 0; u < node_count; ++u) {
    for (const auto* arr : {&out_targets, &in_targets}) {
      const auto& off = arr == &out_targets ? out_offsets : in_offsets;
      for (std::uint64_t i = off[u]; i + 1 < off[u + 1]; ++i) {
        if ((*arr)[i] >= (*arr)[i + 1]) {
          throw std::invalid_argument(
              "CsrGraph::adopt_sorted_adjacency: unsorted adjacency");
        }
      }
    }
  }
#endif
  node_count_ = node_count;
  edge_count_ = out_targets.size();
  std::swap(out_offsets_, out_offsets);
  std::swap(out_targets_, out_targets);
  std::swap(in_offsets_, in_offsets);
  std::swap(in_targets_, in_targets);
  build_neighbor_view();
}

void CsrGraph::build_neighbor_view() {
  // Undirected neighbor view: per-node set_union of the two sorted lists,
  // written at each node's worst-case offset (out-degree + in-degree prefix,
  // disjoint by construction) — one chunked merge pass, no counting
  // prescan, byte-identical at any thread count.
  const std::size_t node_count = node_count_;
  nbr_len_.resize(node_count);
  nbr_targets_.resize(2 * edge_count_);
  core::parallel_for(node_count, [&](std::size_t u) {
    const auto o = out(static_cast<NodeId>(u));
    const auto i = in(static_cast<NodeId>(u));
    const auto begin = nbr_targets_.begin() +
                       static_cast<std::ptrdiff_t>(out_offsets_[u] +
                                                   in_offsets_[u]);
    const auto end = std::set_union(o.begin(), o.end(), i.begin(), i.end(),
                                    begin);
    nbr_len_[u] = static_cast<std::uint32_t>(end - begin);
  });
}

std::span<const NodeId> CsrGraph::out(NodeId u) const {
  if (u >= node_count_) throw std::out_of_range("CsrGraph: unknown node id");
  return {out_targets_.data() + out_offsets_[u],
          static_cast<std::size_t>(out_offsets_[u + 1] - out_offsets_[u])};
}

std::span<const NodeId> CsrGraph::in(NodeId u) const {
  if (u >= node_count_) throw std::out_of_range("CsrGraph: unknown node id");
  return {in_targets_.data() + in_offsets_[u],
          static_cast<std::size_t>(in_offsets_[u + 1] - in_offsets_[u])};
}

std::span<const NodeId> CsrGraph::neighbors(NodeId u) const {
  if (u >= node_count_) throw std::out_of_range("CsrGraph: unknown node id");
  return {nbr_targets_.data() + out_offsets_[u] + in_offsets_[u], nbr_len_[u]};
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  const auto o = out(u);
  return std::binary_search(o.begin(), o.end(), v);
}

int CsrGraph::link_count(NodeId v, NodeId w) const {
  return static_cast<int>(has_edge(v, w)) + static_cast<int>(has_edge(w, v));
}

}  // namespace san::graph

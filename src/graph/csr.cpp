#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace san::graph {
namespace {

/// Sort-and-dedup an edge list; drops self loops.
void canonicalize(std::vector<std::pair<NodeId, NodeId>>& edges) {
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const auto& e) { return e.first == e.second; }),
              edges.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

}  // namespace

CsrGraph CsrGraph::from_digraph(const Digraph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const NodeId v : g.out_neighbors(u)) edges.emplace_back(u, v);
  }
  return build(g.node_count(), std::move(edges));
}

CsrGraph CsrGraph::from_edges(std::size_t node_count,
                              std::span<const std::pair<NodeId, NodeId>> edges) {
  std::vector<std::pair<NodeId, NodeId>> copy(edges.begin(), edges.end());
  for (const auto& [u, v] : copy) {
    if (u >= node_count || v >= node_count) {
      throw std::out_of_range("CsrGraph::from_edges: node id out of range");
    }
  }
  return build(node_count, std::move(copy));
}

CsrGraph CsrGraph::build(std::size_t node_count,
                         std::vector<std::pair<NodeId, NodeId>> edges) {
  canonicalize(edges);

  CsrGraph g;
  g.node_count_ = node_count;
  g.edge_count_ = edges.size();

  // Outgoing adjacency straight from the sorted edge list.
  g.out_offsets_.assign(node_count + 1, 0);
  for (const auto& [u, v] : edges) ++g.out_offsets_[u + 1];
  for (std::size_t i = 1; i <= node_count; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
  }
  g.out_targets_.resize(edges.size());
  {
    std::vector<std::uint64_t> cursor(g.out_offsets_.begin(),
                                      g.out_offsets_.end() - 1);
    for (const auto& [u, v] : edges) g.out_targets_[cursor[u]++] = v;
  }

  // Incoming adjacency via counting sort on target.
  g.in_offsets_.assign(node_count + 1, 0);
  for (const auto& [u, v] : edges) ++g.in_offsets_[v + 1];
  for (std::size_t i = 1; i <= node_count; ++i) {
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.in_targets_.resize(edges.size());
  {
    std::vector<std::uint64_t> cursor(g.in_offsets_.begin(),
                                      g.in_offsets_.end() - 1);
    for (const auto& [u, v] : edges) g.in_targets_[cursor[v]++] = u;
  }
  // Sorted edge iteration gives sorted out-lists; in-lists are sorted too
  // because sources appear in ascending order for each target.

  // Undirected neighbor view: merge of the two sorted lists per node.
  g.nbr_offsets_.assign(node_count + 1, 0);
  std::vector<NodeId> merged;
  for (NodeId u = 0; u < node_count; ++u) {
    const auto o = g.out(u);
    const auto i = g.in(u);
    merged.clear();
    merged.reserve(o.size() + i.size());
    std::set_union(o.begin(), o.end(), i.begin(), i.end(),
                   std::back_inserter(merged));
    g.nbr_offsets_[u + 1] = g.nbr_offsets_[u] + merged.size();
    g.nbr_targets_.insert(g.nbr_targets_.end(), merged.begin(), merged.end());
  }
  return g;
}

std::span<const NodeId> CsrGraph::out(NodeId u) const {
  if (u >= node_count_) throw std::out_of_range("CsrGraph: unknown node id");
  return {out_targets_.data() + out_offsets_[u],
          static_cast<std::size_t>(out_offsets_[u + 1] - out_offsets_[u])};
}

std::span<const NodeId> CsrGraph::in(NodeId u) const {
  if (u >= node_count_) throw std::out_of_range("CsrGraph: unknown node id");
  return {in_targets_.data() + in_offsets_[u],
          static_cast<std::size_t>(in_offsets_[u + 1] - in_offsets_[u])};
}

std::span<const NodeId> CsrGraph::neighbors(NodeId u) const {
  if (u >= node_count_) throw std::out_of_range("CsrGraph: unknown node id");
  return {nbr_targets_.data() + nbr_offsets_[u],
          static_cast<std::size_t>(nbr_offsets_[u + 1] - nbr_offsets_[u])};
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  const auto o = out(u);
  return std::binary_search(o.begin(), o.end(), v);
}

int CsrGraph::link_count(NodeId v, NodeId w) const {
  return static_cast<int>(has_edge(v, w)) + static_cast<int>(has_edge(w, v));
}

}  // namespace san::graph

#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/zeta.hpp"

namespace san::stats {
namespace {

constexpr std::size_t kMaxTable = 1u << 18;  // cached CDF entries per dist
constexpr double kTableCoverage = 1.0 - 1e-12;

/// Binary search for the smallest index with cum[i] >= u; returns table size
/// when u exceeds the covered mass.
std::size_t inverted_index(const std::vector<double>& cum, double u) {
  auto it = std::lower_bound(cum.begin(), cum.end(), u);
  return static_cast<std::size_t>(it - cum.begin());
}

}  // namespace

double norm_pdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double norm_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// ---------------------------------------------------------------------------
// DiscretePowerLaw
// ---------------------------------------------------------------------------

DiscretePowerLaw::DiscretePowerLaw(double alpha, std::uint32_t kmin)
    : alpha_(alpha), kmin_(kmin) {
  if (alpha <= 1.0) {
    throw std::invalid_argument("DiscretePowerLaw: alpha must be > 1");
  }
  if (kmin < 1) {
    throw std::invalid_argument("DiscretePowerLaw: kmin must be >= 1");
  }
  log_norm_ = std::log(hurwitz_zeta(alpha_, kmin_));
  cum_.reserve(1024);
  double acc = 0.0;
  for (std::size_t i = 0; i < kMaxTable; ++i) {
    acc += pmf(kmin_ + i);
    cum_.push_back(acc);
    if (acc >= kTableCoverage) break;
  }
}

double DiscretePowerLaw::pmf(std::uint64_t k) const {
  if (k < kmin_) return 0.0;
  return std::exp(log_pmf(k));
}

double DiscretePowerLaw::log_pmf(std::uint64_t k) const {
  if (k < kmin_) return -std::numeric_limits<double>::infinity();
  return -alpha_ * std::log(static_cast<double>(k)) - log_norm_;
}

double DiscretePowerLaw::cdf(std::uint64_t k) const {
  if (k < kmin_) return 0.0;
  const std::uint64_t idx = k - kmin_;
  if (idx < cum_.size()) return std::min(cum_[idx], 1.0);
  // Tail beyond the table: P(K > k) ~= zeta(alpha, k+1) / zeta(alpha, kmin).
  const double tail = hurwitz_zeta(alpha_, static_cast<double>(k) + 1.0);
  return 1.0 - tail * std::exp(-log_norm_);
}

std::uint64_t DiscretePowerLaw::sample(Rng& rng) const {
  const double u = rng.uniform();
  const std::size_t idx = inverted_index(cum_, u);
  if (idx < cum_.size()) return kmin_ + idx;
  // Rare deep-tail fallback: continuous inversion (Clauset et al. appendix).
  const double x = (static_cast<double>(kmin_) - 0.5) *
                       std::pow(1.0 - u, -1.0 / (alpha_ - 1.0)) +
                   0.5;
  return static_cast<std::uint64_t>(
      std::max(x, static_cast<double>(kmin_ + cum_.size())));
}

// ---------------------------------------------------------------------------
// DiscreteLognormal
// ---------------------------------------------------------------------------

DiscreteLognormal::DiscreteLognormal(double mu, double sigma,
                                     std::uint32_t kmin)
    : mu_(mu), sigma_(sigma), kmin_(kmin) {
  if (sigma <= 0.0) {
    throw std::invalid_argument("DiscreteLognormal: sigma must be > 0");
  }
  if (kmin < 1) {
    throw std::invalid_argument("DiscreteLognormal: kmin must be >= 1");
  }
  // Normalization: exact sum over the table range, then an integral tail of
  // the smooth continuous envelope.
  double acc = 0.0;
  std::vector<double> mass;
  mass.reserve(1024);
  for (std::size_t i = 0; i < kMaxTable; ++i) {
    const std::uint64_t k = kmin_ + i;
    const double m = std::exp(unnormalized_log(k));
    acc += m;
    mass.push_back(acc);
    // Stop once well past the mode and contributing negligibly.
    if (std::log(static_cast<double>(k)) > mu_ + 8.0 * sigma_ &&
        m < acc * 1e-14) {
      break;
    }
  }
  const double tail =
      tail_integral(static_cast<double>(kmin_ + mass.size()) - 0.5);
  norm_ = acc + tail;
  cum_ = std::move(mass);
  for (auto& c : cum_) c /= norm_;
}

double DiscreteLognormal::unnormalized_log(std::uint64_t k) const {
  const double lk = std::log(static_cast<double>(k));
  const double z = (lk - mu_) / sigma_;
  return -lk - 0.5 * z * z;
}

double DiscreteLognormal::tail_integral(double x) const {
  // ∫_x^inf (1/t) exp(-(ln t - mu)^2 / (2 sigma^2)) dt
  //   = sqrt(2 pi) sigma (1 - Phi((ln x - mu)/sigma)).
  const double z = (std::log(x) - mu_) / sigma_;
  return std::sqrt(2.0 * M_PI) * sigma_ * (1.0 - norm_cdf(z));
}

double DiscreteLognormal::pmf(std::uint64_t k) const {
  if (k < kmin_) return 0.0;
  return std::exp(unnormalized_log(k)) / norm_;
}

double DiscreteLognormal::log_pmf(std::uint64_t k) const {
  if (k < kmin_) return -std::numeric_limits<double>::infinity();
  return unnormalized_log(k) - std::log(norm_);
}

double DiscreteLognormal::cdf(std::uint64_t k) const {
  if (k < kmin_) return 0.0;
  const std::uint64_t idx = k - kmin_;
  if (idx < cum_.size()) return std::min(cum_[idx], 1.0);
  return 1.0 - tail_integral(static_cast<double>(k) + 0.5) / norm_;
}

std::uint64_t DiscreteLognormal::sample(Rng& rng) const {
  const double u = rng.uniform();
  const std::size_t idx = inverted_index(cum_, u);
  if (idx < cum_.size()) return kmin_ + idx;
  // Deep tail: sample the continuous lognormal and round, clamped to the
  // region beyond the table so the support stays consistent.
  const double x = std::exp(mu_ + sigma_ * rng.normal());
  const double lo = static_cast<double>(kmin_ + cum_.size());
  return static_cast<std::uint64_t>(std::max(std::round(x), lo));
}

// ---------------------------------------------------------------------------
// PowerLawCutoff
// ---------------------------------------------------------------------------

PowerLawCutoff::PowerLawCutoff(double alpha, double lambda, std::uint32_t kmin)
    : alpha_(alpha), lambda_(lambda), kmin_(kmin) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("PowerLawCutoff: lambda must be > 0");
  }
  if (kmin < 1) {
    throw std::invalid_argument("PowerLawCutoff: kmin must be >= 1");
  }
  // The exponential cutoff makes the direct sum converge quickly.
  long double acc = 0.0L;
  std::vector<double> mass;
  mass.reserve(1024);
  for (std::size_t i = 0; i < kMaxTable; ++i) {
    const auto k = static_cast<double>(kmin_ + i);
    const long double m = std::exp(-alpha_ * std::log(k) - lambda_ * k);
    acc += m;
    mass.push_back(static_cast<double>(acc));
    if (lambda_ * k > 40.0 && i > 8) break;  // e^{-40} ~ 4e-18: done
  }
  log_norm_ = std::log(static_cast<double>(acc));
  cum_ = std::move(mass);
  const double norm = static_cast<double>(acc);
  for (auto& c : cum_) c /= norm;
}

double PowerLawCutoff::pmf(std::uint64_t k) const {
  if (k < kmin_) return 0.0;
  return std::exp(log_pmf(k));
}

double PowerLawCutoff::log_pmf(std::uint64_t k) const {
  if (k < kmin_) return -std::numeric_limits<double>::infinity();
  const auto kd = static_cast<double>(k);
  return -alpha_ * std::log(kd) - lambda_ * kd - log_norm_;
}

double PowerLawCutoff::cdf(std::uint64_t k) const {
  if (k < kmin_) return 0.0;
  const std::uint64_t idx = k - kmin_;
  if (idx < cum_.size()) return std::min(cum_[idx], 1.0);
  return 1.0;  // table captured all non-negligible mass
}

std::uint64_t PowerLawCutoff::sample(Rng& rng) const {
  const double u = rng.uniform();
  const std::size_t idx = inverted_index(cum_, u);
  return kmin_ + std::min(idx, cum_.size() - 1);
}

// ---------------------------------------------------------------------------
// TruncatedNormal
// ---------------------------------------------------------------------------

TruncatedNormal::TruncatedNormal(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  if (sigma <= 0.0) {
    throw std::invalid_argument("TruncatedNormal: sigma must be > 0");
  }
}

double TruncatedNormal::g(double x) {
  const double denom = 1.0 - norm_cdf(x);
  if (denom <= 0.0) {
    // Asymptotic hazard for far-right truncation points.
    return x + 1.0 / x;
  }
  return norm_pdf(x) / denom;
}

double TruncatedNormal::delta(double x) {
  const double gx = g(x);
  return gx * (gx - x);
}

double TruncatedNormal::mean() const {
  const double gamma = -mu_ / sigma_;
  return mu_ + sigma_ * g(gamma);
}

double TruncatedNormal::variance() const {
  const double gamma = -mu_ / sigma_;
  return sigma_ * sigma_ * (1.0 - delta(gamma));
}

double TruncatedNormal::sample(Rng& rng) const {
  const double gamma = -mu_ / sigma_;
  if (gamma < 3.0) {
    // Acceptance probability 1 - Phi(gamma) is large enough for plain
    // rejection from the untruncated normal.
    for (;;) {
      const double x = rng.normal(mu_, sigma_);
      if (x >= 0.0) return x;
    }
  }
  // Far-left-mean case: Robert's exponential accept-reject on the standard
  // normal truncated to [gamma, inf).
  const double a = 0.5 * (gamma + std::sqrt(gamma * gamma + 4.0));
  for (;;) {
    const double z = gamma + rng.exponential(a);
    const double rho = std::exp(-0.5 * (z - a) * (z - a));
    if (rng.uniform() <= rho) return mu_ + sigma_ * z;
  }
}

}  // namespace san::stats

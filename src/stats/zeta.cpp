#include "stats/zeta.hpp"

#include <cmath>
#include <stdexcept>

namespace san::stats {

double hurwitz_zeta(double s, double q) {
  if (s <= 1.0) throw std::invalid_argument("hurwitz_zeta: requires s > 1");
  if (q <= 0.0) throw std::invalid_argument("hurwitz_zeta: requires q > 0");

  // Direct sum of the first N terms, then an Euler-Maclaurin tail.
  constexpr int kDirectTerms = 16;
  double sum = 0.0;
  for (int n = 0; n < kDirectTerms; ++n) {
    sum += std::pow(n + q, -s);
  }
  const double a = kDirectTerms + q;
  // Integral term + 1/2 correction + Bernoulli-number corrections B2, B4, B6.
  const double a_ms = std::pow(a, -s);
  sum += a * a_ms / (s - 1.0);  // a^{1-s}/(s-1)
  sum += 0.5 * a_ms;
  double term = s * a_ms / a;  // s * a^{-s-1}
  sum += term / 12.0;          // B2/2! = 1/12
  term *= (s + 1.0) * (s + 2.0) / (a * a);
  sum -= term / 720.0;  // B4/4! = -1/720
  term *= (s + 3.0) * (s + 4.0) / (a * a);
  sum += term / 30240.0;  // B6/6! = 1/30240
  return sum;
}

double riemann_zeta(double s) { return hurwitz_zeta(s, 1.0); }

}  // namespace san::stats

#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>

namespace san::stats {

double ks_distance(const Histogram& hist,
                   const std::function<double(std::uint64_t)>& model_cdf,
                   std::uint64_t kmin) {
  std::uint64_t n = 0;
  for (const auto& [value, count] : hist.bins) {
    if (value >= kmin) n += count;
  }
  if (n == 0) return 0.0;

  double worst = 0.0;
  std::uint64_t seen = 0;
  for (const auto& [value, count] : hist.bins) {
    if (value < kmin) continue;
    seen += count;
    const double f_emp = static_cast<double>(seen) / static_cast<double>(n);
    const double f_model = model_cdf(value);
    worst = std::max(worst, std::abs(f_emp - f_model));
  }
  return worst;
}

double ks_two_sample(const Histogram& a, const Histogram& b) {
  if (a.total == 0 || b.total == 0) return 0.0;
  double worst = 0.0;
  std::size_t ia = 0, ib = 0;
  std::uint64_t ca = 0, cb = 0;
  while (ia < a.bins.size() || ib < b.bins.size()) {
    std::uint64_t v;
    if (ib >= b.bins.size()) {
      v = a.bins[ia].first;
    } else if (ia >= a.bins.size()) {
      v = b.bins[ib].first;
    } else {
      v = std::min(a.bins[ia].first, b.bins[ib].first);
    }
    if (ia < a.bins.size() && a.bins[ia].first == v) ca += a.bins[ia++].second;
    if (ib < b.bins.size() && b.bins[ib].first == v) cb += b.bins[ib++].second;
    const double fa = static_cast<double>(ca) / static_cast<double>(a.total);
    const double fb = static_cast<double>(cb) / static_cast<double>(b.total);
    worst = std::max(worst, std::abs(fa - fb));
  }
  return worst;
}

}  // namespace san::stats

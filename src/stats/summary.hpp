// Summary statistics and plotting helpers (log-binned empirical PDFs are
// what the paper's degree-distribution figures plot).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace san::stats {

/// Sorted (value, count) histogram of a non-negative integer sample.
struct Histogram {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> bins;  // ascending
  std::uint64_t total = 0;

  /// Number of observations with value >= kmin.
  std::uint64_t count_at_least(std::uint64_t kmin) const;
  /// Restrict to values >= kmin.
  Histogram tail(std::uint64_t kmin) const;
};

Histogram make_histogram(std::span<const std::uint64_t> values);

double mean(std::span<const double> values);
double variance(std::span<const double> values);  // unbiased (n-1)
double mean_of_histogram(const Histogram& hist);

/// Interpolated percentile (q in [0,100]) of an unsorted sample.
double percentile(std::vector<double> values, double q);

/// Point of a log-binned empirical probability density.
struct LogBinPoint {
  double center = 0.0;   // geometric bin center
  double density = 0.0;  // probability mass / bin width
};

/// Log-binned PDF of a positive-integer sample, as plotted in Figs 5/10/16.
std::vector<LogBinPoint> log_binned_pdf(const Histogram& hist,
                                        double bins_per_decade = 8.0);

/// Empirical CCDF points (k, P(K >= k)) over the observed support.
std::vector<std::pair<std::uint64_t, double>> ccdf_points(
    const Histogram& hist);

/// Pearson correlation coefficient of two equally sized samples.
double pearson_correlation(std::span<const double> x,
                           std::span<const double> y);

}  // namespace san::stats

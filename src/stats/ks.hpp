// Kolmogorov-Smirnov distances between empirical histograms and fitted
// discrete distributions (the goodness-of-fit criterion of Clauset et al.
// [10], which the paper uses to pick best-fit degree distributions).
#pragma once

#include <cstdint>
#include <functional>

#include "stats/summary.hpp"

namespace san::stats {

/// KS distance max_k |F_emp(k) - F_model(k)| over the observed support with
/// value >= kmin. `model_cdf(k)` must return P(K <= k) for the fitted model
/// conditioned on K >= kmin.
double ks_distance(const Histogram& hist,
                   const std::function<double(std::uint64_t)>& model_cdf,
                   std::uint64_t kmin = 1);

/// Two-sample KS distance between two integer histograms.
double ks_two_sample(const Histogram& a, const Histogram& b);

}  // namespace san::stats

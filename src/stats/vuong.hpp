// Vuong's closeness test for non-nested model comparison — the criterion
// Clauset-Shalizi-Newman [10] actually use to decide "power law vs
// lognormal", which the paper applies to conclude that Google+ social
// degrees are lognormal. AIC (fit.hpp) gives the same ordering in clear
// cases; Vuong adds a significance level.
#pragma once

#include <cstdint>
#include <functional>

#include "stats/summary.hpp"

namespace san::stats {

struct VuongResult {
  /// Normalized log-likelihood ratio statistic; positive favors model A,
  /// negative favors model B.
  double statistic = 0.0;
  /// Two-sided p-value for the null "both models equally close".
  double p_value = 1.0;
  /// Raw log-likelihood difference sum(log pA - log pB).
  double loglik_difference = 0.0;
  std::uint64_t n = 0;

  bool favors_a(double significance = 0.05) const {
    return statistic > 0.0 && p_value < significance;
  }
  bool favors_b(double significance = 0.05) const {
    return statistic < 0.0 && p_value < significance;
  }
};

/// Vuong test between two fitted log-pmfs on the tail k >= kmin of `hist`.
/// `log_pmf_a` / `log_pmf_b` must be normalized over the same support.
VuongResult vuong_test(const Histogram& hist,
                       const std::function<double(std::uint64_t)>& log_pmf_a,
                       const std::function<double(std::uint64_t)>& log_pmf_b,
                       std::uint64_t kmin = 1);

}  // namespace san::stats

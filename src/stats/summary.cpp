#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace san::stats {

std::uint64_t Histogram::count_at_least(std::uint64_t kmin) const {
  std::uint64_t n = 0;
  for (const auto& [value, count] : bins) {
    if (value >= kmin) n += count;
  }
  return n;
}

Histogram Histogram::tail(std::uint64_t kmin) const {
  Histogram out;
  for (const auto& bin : bins) {
    if (bin.first >= kmin) {
      out.bins.push_back(bin);
      out.total += bin.second;
    }
  }
  return out;
}

Histogram make_histogram(std::span<const std::uint64_t> values) {
  std::map<std::uint64_t, std::uint64_t> counts;
  for (const auto v : values) ++counts[v];
  Histogram hist;
  hist.bins.assign(counts.begin(), counts.end());
  hist.total = values.size();
  return hist;
}

double mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean: empty sample");
  double acc = 0.0;
  for (const double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) throw std::invalid_argument("variance: need >= 2 "
                                                     "values");
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size() - 1);
}

double mean_of_histogram(const Histogram& hist) {
  if (hist.total == 0) throw std::invalid_argument("mean_of_histogram: empty");
  double acc = 0.0;
  for (const auto& [value, count] : hist.bins) {
    acc += static_cast<double>(value) * static_cast<double>(count);
  }
  return acc / static_cast<double>(hist.total);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile: q in "
                                                        "[0,100]");
  std::sort(values.begin(), values.end());
  const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<LogBinPoint> log_binned_pdf(const Histogram& hist,
                                        double bins_per_decade) {
  std::vector<LogBinPoint> points;
  if (hist.total == 0 || bins_per_decade <= 0.0) return points;
  const double ratio = std::pow(10.0, 1.0 / bins_per_decade);

  double lo = 1.0;
  std::size_t idx = 0;
  // Skip zero values (log bins cover k >= 1); report them as a point at 0?
  // The paper's figures plot k >= 1, so zeros are dropped from the PDF.
  while (idx < hist.bins.size() && hist.bins[idx].first == 0) ++idx;

  while (idx < hist.bins.size()) {
    double hi = lo * ratio;
    if (hi <= lo + 1.0) hi = lo + 1.0;  // ensure every bin has integer width
    std::uint64_t mass = 0;
    while (idx < hist.bins.size() &&
           static_cast<double>(hist.bins[idx].first) < hi) {
      mass += hist.bins[idx].second;
      ++idx;
    }
    if (mass > 0) {
      LogBinPoint p;
      p.center = std::sqrt(lo * hi);
      p.density = static_cast<double>(mass) /
                  (static_cast<double>(hist.total) * (hi - lo));
      points.push_back(p);
    }
    lo = hi;
  }
  return points;
}

std::vector<std::pair<std::uint64_t, double>> ccdf_points(
    const Histogram& hist) {
  std::vector<std::pair<std::uint64_t, double>> points;
  points.reserve(hist.bins.size());
  std::uint64_t remaining = hist.total;
  for (const auto& [value, count] : hist.bins) {
    points.emplace_back(value, static_cast<double>(remaining) /
                                   static_cast<double>(hist.total));
    remaining -= count;
  }
  return points;
}

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("pearson_correlation: size mismatch or too "
                                "small");
  }
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace san::stats

// Probability distributions used throughout the paper:
//   - discrete power law (social degree of attribute nodes, Fig 10b),
//   - discrete lognormal (social in/outdegree, attribute degree, Figs 5/10a),
//   - power law with exponential cutoff (fit alternative, per [10]),
//   - truncated normal (node lifetime in the generative model, §5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace san::stats {

/// Standard normal probability density function.
double norm_pdf(double x);
/// Standard normal cumulative distribution function.
double norm_cdf(double x);

/// Discrete power law: p(k) = k^{-alpha} / zeta(alpha, kmin), k >= kmin.
class DiscretePowerLaw {
 public:
  /// Requires alpha > 1 and kmin >= 1.
  DiscretePowerLaw(double alpha, std::uint32_t kmin = 1);

  double alpha() const { return alpha_; }
  std::uint32_t kmin() const { return kmin_; }

  double pmf(std::uint64_t k) const;
  double log_pmf(std::uint64_t k) const;
  /// P(K <= k); exact within the cached table, integral-tail beyond it.
  double cdf(std::uint64_t k) const;
  std::uint64_t sample(Rng& rng) const;

 private:
  double alpha_;
  std::uint32_t kmin_;
  double log_norm_;            // log zeta(alpha, kmin)
  std::vector<double> cum_;    // cumulative probability for kmin .. kmin+N-1
};

/// Discrete lognormal: p(k) ∝ (1/k) exp(-(ln k - mu)^2 / (2 sigma^2)),
/// k >= kmin (the DGX-style distribution of [7] with integer support).
class DiscreteLognormal {
 public:
  /// Requires sigma > 0 and kmin >= 1.
  DiscreteLognormal(double mu, double sigma, std::uint32_t kmin = 1);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }
  std::uint32_t kmin() const { return kmin_; }

  double pmf(std::uint64_t k) const;
  double log_pmf(std::uint64_t k) const;
  double cdf(std::uint64_t k) const;
  std::uint64_t sample(Rng& rng) const;

 private:
  double unnormalized_log(std::uint64_t k) const;
  /// Integral of the continuous envelope over [x, inf); used for tails.
  double tail_integral(double x) const;

  double mu_;
  double sigma_;
  std::uint32_t kmin_;
  double norm_;                // normalizing constant Z
  std::vector<double> cum_;
};

/// Power law with exponential cutoff: p(k) ∝ k^{-alpha} e^{-lambda k},
/// k >= kmin.
class PowerLawCutoff {
 public:
  /// Requires lambda > 0 (alpha may be any real once the cutoff guarantees
  /// normalizability) and kmin >= 1.
  PowerLawCutoff(double alpha, double lambda, std::uint32_t kmin = 1);

  double alpha() const { return alpha_; }
  double lambda() const { return lambda_; }

  double pmf(std::uint64_t k) const;
  double log_pmf(std::uint64_t k) const;
  double cdf(std::uint64_t k) const;
  std::uint64_t sample(Rng& rng) const;

 private:
  double alpha_;
  double lambda_;
  std::uint32_t kmin_;
  double log_norm_;
  std::vector<double> cum_;
};

/// Normal distribution truncated to [0, inf):
/// p(l) ∝ exp(-(l-mu)^2/(2 sigma^2))
/// for l >= 0. Mean and variance follow the standard truncated-normal
/// moments used in Theorem 1 of the paper:
///   mean     = mu + sigma * g(gamma),        gamma = -mu / sigma,
///   variance = sigma^2 * (1 - delta(gamma)), g = phi/(1-Phi),
///   delta(gamma) = g(gamma) * (g(gamma) - gamma).
class TruncatedNormal {
 public:
  /// Requires sigma > 0.
  TruncatedNormal(double mu, double sigma);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }
  double mean() const;
  double variance() const;
  double sample(Rng& rng) const;

  /// Hazard function of the standard normal: g(x) = phi(x) / (1 - Phi(x)).
  static double g(double x);
  static double delta(double x);

 private:
  double mu_;
  double sigma_;
};

}  // namespace san::stats

#include "stats/vuong.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace san::stats {

VuongResult vuong_test(const Histogram& hist,
                       const std::function<double(std::uint64_t)>& log_pmf_a,
                       const std::function<double(std::uint64_t)>& log_pmf_b,
                       std::uint64_t kmin) {
  VuongResult result;
  // First pass: mean of the pointwise log-likelihood ratio.
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& [value, count] : hist.bins) {
    if (value < kmin) continue;
    const double r = log_pmf_a(value) - log_pmf_b(value);
    sum += static_cast<double>(count) * r;
    n += count;
  }
  if (n < 2) {
    throw std::invalid_argument("vuong_test: needs >= 2 tail observations");
  }
  const double mean = sum / static_cast<double>(n);

  // Second pass: variance of the ratio.
  double var_acc = 0.0;
  for (const auto& [value, count] : hist.bins) {
    if (value < kmin) continue;
    const double r = log_pmf_a(value) - log_pmf_b(value);
    var_acc += static_cast<double>(count) * (r - mean) * (r - mean);
  }
  const double variance = var_acc / static_cast<double>(n);

  result.n = n;
  result.loglik_difference = sum;
  if (variance <= 0.0) {
    // Identical pointwise likelihoods: no evidence either way.
    result.statistic = 0.0;
    result.p_value = 1.0;
    return result;
  }
  result.statistic =
      std::sqrt(static_cast<double>(n)) * mean / std::sqrt(variance);
  result.p_value = 2.0 * (1.0 - norm_cdf(std::abs(result.statistic)));
  return result;
}

}  // namespace san::stats

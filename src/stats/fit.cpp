#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/distributions.hpp"
#include "stats/ks.hpp"
#include "stats/optimize.hpp"
#include "stats/zeta.hpp"

namespace san::stats {
namespace {

/// Sum over the tail of count * log(value) and the tail size.
struct TailMoments {
  double sum_log = 0.0;       // sum of count * ln k
  double sum_log_sq = 0.0;    // sum of count * (ln k)^2
  double sum_value = 0.0;     // sum of count * k
  std::uint64_t n = 0;
};

TailMoments tail_moments(const Histogram& hist, std::uint64_t kmin) {
  TailMoments m;
  for (const auto& [value, count] : hist.bins) {
    if (value < kmin) continue;
    const double lk = std::log(static_cast<double>(value));
    const auto c = static_cast<double>(count);
    m.sum_log += c * lk;
    m.sum_log_sq += c * lk * lk;
    m.sum_value += c * static_cast<double>(value);
    m.n += count;
  }
  return m;
}

void require_tail(const TailMoments& m, const char* who) {
  if (m.n < 2) {
    throw std::invalid_argument(std::string(who) + ": needs >= 2 tail "
                                                   "observations");
  }
}

}  // namespace

PowerLawFit fit_power_law(const Histogram& hist, std::uint32_t kmin) {
  if (kmin < 1) throw std::invalid_argument("fit_power_law: kmin >= 1");
  const TailMoments m = tail_moments(hist, kmin);
  require_tail(m, "fit_power_law");

  // l(alpha) = -n * ln zeta(alpha, kmin) - alpha * sum ln k.
  const auto neg_loglik = [&](double alpha) {
    return static_cast<double>(m.n) * std::log(hurwitz_zeta(alpha, kmin)) +
           alpha * m.sum_log;
  };
  const double alpha = golden_section_minimize(neg_loglik, 1.001, 8.0, 1e-8);

  PowerLawFit fit;
  fit.alpha = alpha;
  fit.kmin = kmin;
  fit.n_tail = m.n;
  fit.loglik = -neg_loglik(alpha);
  const DiscretePowerLaw dist(alpha, kmin);
  fit.ks = ks_distance(hist, [&](std::uint64_t k) { return dist.cdf(k); },
                       kmin);
  return fit;
}

PowerLawFit fit_power_law_scan(const Histogram& hist,
                               std::size_t max_candidates) {
  // Candidate kmin values: distinct observed values, thinned to the cap.
  std::vector<std::uint64_t> candidates;
  for (const auto& [value, count] : hist.bins) {
    if (value >= 1) candidates.push_back(value);
  }
  if (candidates.empty()) {
    throw std::invalid_argument("fit_power_law_scan: empty histogram");
  }
  // Never let the tail get so small the fit is meaningless.
  while (candidates.size() > 1 &&
         hist.count_at_least(candidates.back()) < 50) {
    candidates.pop_back();
  }
  if (candidates.size() > max_candidates) {
    std::vector<std::uint64_t> thinned;
    const double stride = static_cast<double>(candidates.size()) /
                          static_cast<double>(max_candidates);
    for (std::size_t i = 0; i < max_candidates; ++i) {
      thinned.push_back(candidates[static_cast<std::size_t>(i * stride)]);
    }
    candidates = std::move(thinned);
  }

  PowerLawFit best;
  best.ks = std::numeric_limits<double>::infinity();
  for (const auto kmin : candidates) {
    const auto fit = fit_power_law(hist, static_cast<std::uint32_t>(kmin));
    if (fit.ks < best.ks) best = fit;
  }
  return best;
}

LognormalFit fit_discrete_lognormal(const Histogram& hist, std::uint32_t kmin) {
  if (kmin < 1) {
    throw std::invalid_argument("fit_discrete_lognormal: kmin >= 1");
  }
  const TailMoments m = tail_moments(hist, kmin);
  require_tail(m, "fit_discrete_lognormal");

  // Method-of-moments starting point from ln k statistics.
  const double n = static_cast<double>(m.n);
  const double mean_log = m.sum_log / n;
  const double var_log = std::max(m.sum_log_sq / n - mean_log * mean_log, 1e-4);

  const auto neg_loglik = [&](const std::vector<double>& params) {
    const double mu = params[0];
    const double sigma = std::exp(params[1]);
    if (sigma < 1e-3 || sigma > 50.0 || std::abs(mu) > 50.0) return 1e18;
    const DiscreteLognormal dist(mu, sigma, kmin);
    double ll = 0.0;
    for (const auto& [value, count] : hist.bins) {
      if (value < kmin) continue;
      ll += static_cast<double>(count) * dist.log_pmf(value);
    }
    return -ll;
  };

  const auto res = nelder_mead(neg_loglik,
                               {mean_log, 0.5 * std::log(var_log)},
                               {0.25, 0.25}, 1e-10, 400);
  LognormalFit fit;
  fit.mu = res.x[0];
  fit.sigma = std::exp(res.x[1]);
  fit.kmin = kmin;
  fit.n_tail = m.n;
  fit.loglik = -res.value;
  const DiscreteLognormal dist(fit.mu, fit.sigma, kmin);
  fit.ks = ks_distance(hist, [&](std::uint64_t k) { return dist.cdf(k); },
                       kmin);
  return fit;
}

CutoffFit fit_power_law_cutoff(const Histogram& hist, std::uint32_t kmin) {
  if (kmin < 1) throw std::invalid_argument("fit_power_law_cutoff: kmin >= 1");
  const TailMoments m = tail_moments(hist, kmin);
  require_tail(m, "fit_power_law_cutoff");

  const auto neg_loglik = [&](const std::vector<double>& params) {
    const double alpha = params[0];
    const double lambda = std::exp(params[1]);
    // Keep lambda in the numerically supported regime (see PowerLawCutoff).
    if (alpha < -2.0 || alpha > 8.0 || lambda < 3e-4 || lambda > 10.0) {
      return 1e18;
    }
    const PowerLawCutoff dist(alpha, lambda, kmin);
    double ll = 0.0;
    for (const auto& [value, count] : hist.bins) {
      if (value < kmin) continue;
      ll += static_cast<double>(count) * dist.log_pmf(value);
    }
    return -ll;
  };

  const double mean_k = m.sum_value / static_cast<double>(m.n);
  const auto res = nelder_mead(
      neg_loglik, {1.5, std::log(std::clamp(1.0 / mean_k, 5e-4, 1.0))},
      {0.5, 0.5}, 1e-10, 400);
  CutoffFit fit;
  fit.alpha = res.x[0];
  fit.lambda = std::exp(res.x[1]);
  fit.kmin = kmin;
  fit.n_tail = m.n;
  fit.loglik = -res.value;
  const PowerLawCutoff dist(fit.alpha, fit.lambda, kmin);
  fit.ks = ks_distance(hist, [&](std::uint64_t k) { return dist.cdf(k); },
                       kmin);
  return fit;
}

std::string to_string(DegreeModel model) {
  switch (model) {
    case DegreeModel::kPowerLaw:
      return "power-law";
    case DegreeModel::kLognormal:
      return "lognormal";
    case DegreeModel::kPowerLawCutoff:
      return "power-law-with-cutoff";
  }
  return "unknown";
}

ModelSelection select_degree_model(const Histogram& hist, std::uint32_t kmin) {
  ModelSelection sel;
  sel.power_law = fit_power_law(hist, kmin);
  sel.lognormal = fit_discrete_lognormal(hist, kmin);
  sel.cutoff = fit_power_law_cutoff(hist, kmin);

  sel.aic_power_law = 2.0 * 1.0 - 2.0 * sel.power_law.loglik;
  sel.aic_lognormal = 2.0 * 2.0 - 2.0 * sel.lognormal.loglik;
  sel.aic_cutoff = 2.0 * 2.0 - 2.0 * sel.cutoff.loglik;

  sel.best = DegreeModel::kPowerLaw;
  double best_aic = sel.aic_power_law;
  if (sel.aic_lognormal < best_aic) {
    sel.best = DegreeModel::kLognormal;
    best_aic = sel.aic_lognormal;
  }
  if (sel.aic_cutoff < best_aic) {
    sel.best = DegreeModel::kPowerLawCutoff;
    best_aic = sel.aic_cutoff;
  }
  return sel;
}

}  // namespace san::stats

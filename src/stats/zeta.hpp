// Hurwitz zeta function, the normalizing constant of the discrete power law.
#pragma once

namespace san::stats {

/// Hurwitz zeta  zeta(s, q) = sum_{n >= 0} (n + q)^{-s}  for s > 1, q > 0.
/// Euler-Maclaurin evaluation, accurate to ~1e-12 over the parameter ranges
/// used for degree-distribution fitting (1 < s < 8, q >= 1).
double hurwitz_zeta(double s, double q);

/// Riemann zeta zeta(s) = hurwitz_zeta(s, 1).
double riemann_zeta(double s);

}  // namespace san::stats

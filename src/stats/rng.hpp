// Deterministic pseudo-random number generation for all stochastic
// components. Every simulator and sampler in this project takes an explicit
// seed so that benches and tests are reproducible run-to-run.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace san::stats {

/// xoshiro256++ generator (Blackman & Vigna). Fast, high-quality, and small
/// enough to copy by value; seeded through SplitMix64 so that any 64-bit
/// seed yields a well-mixed state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
    has_spare_normal_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (caches the spare variate).
  double normal() {
    if (has_spare_normal_) {
      has_spare_normal_ = false;
      return spare_normal_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_normal_ = v * f;
    has_spare_normal_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) {
    if (rate <= 0.0) {
      throw std::invalid_argument("exponential: rate must be > 0");
    }
    return -std::log1p(-uniform()) / rate;
  }

  /// Derive an independent generator; useful to hand sub-components their
  /// own deterministic stream.
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace san::stats

// Maximum-likelihood fitting and model selection for degree distributions,
// mirroring the methodology of Clauset-Shalizi-Newman [10] that the paper
// uses ("the tool [54, 10]") to conclude that Google+ social degrees are
// lognormal (Fig 5) while attribute-node social degrees are power-law
// (Fig 10b).
#pragma once

#include <cstdint>
#include <string>

#include "stats/summary.hpp"

namespace san::stats {

struct PowerLawFit {
  double alpha = 0.0;
  std::uint32_t kmin = 1;
  double loglik = 0.0;   // over the tail k >= kmin
  double ks = 0.0;       // KS distance on the tail
  std::uint64_t n_tail = 0;
};

/// MLE power-law fit with a fixed lower cutoff kmin.
PowerLawFit fit_power_law(const Histogram& hist, std::uint32_t kmin = 1);

/// Clauset-Shalizi-Newman fit: scan candidate kmin values, fit alpha by MLE
/// for each, keep the kmin minimizing the KS distance on the tail.
/// `max_candidates` caps how many distinct observed values are tried.
PowerLawFit fit_power_law_scan(const Histogram& hist,
                               std::size_t max_candidates = 50);

struct LognormalFit {
  double mu = 0.0;
  double sigma = 1.0;
  std::uint32_t kmin = 1;
  double loglik = 0.0;
  double ks = 0.0;
  std::uint64_t n_tail = 0;
};

/// MLE fit of the discrete lognormal on k >= kmin (Nelder-Mead on (mu, ln
/// sigma)).
LognormalFit fit_discrete_lognormal(const Histogram& hist,
                                    std::uint32_t kmin = 1);

struct CutoffFit {
  double alpha = 0.0;
  double lambda = 1e-3;
  std::uint32_t kmin = 1;
  double loglik = 0.0;
  double ks = 0.0;
  std::uint64_t n_tail = 0;
};

/// MLE fit of the power law with exponential cutoff on k >= kmin.
CutoffFit fit_power_law_cutoff(const Histogram& hist, std::uint32_t kmin = 1);

enum class DegreeModel { kPowerLaw, kLognormal, kPowerLawCutoff };

std::string to_string(DegreeModel model);

struct ModelSelection {
  DegreeModel best = DegreeModel::kLognormal;
  PowerLawFit power_law;
  LognormalFit lognormal;
  CutoffFit cutoff;
  double aic_power_law = 0.0;
  double aic_lognormal = 0.0;
  double aic_cutoff = 0.0;
};

/// Fit all candidate distributions on the common support k >= kmin and pick
/// the one minimizing AIC (equivalently, maximizing penalized likelihood).
ModelSelection select_degree_model(const Histogram& hist,
                                   std::uint32_t kmin = 1);

}  // namespace san::stats

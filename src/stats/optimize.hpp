// Small derivative-free optimizers for maximum-likelihood fitting.
#pragma once

#include <functional>
#include <vector>

namespace san::stats {

/// Minimize a unimodal 1-D function on [lo, hi] by golden-section search.
/// Returns the argmin; `iterations` bounds the number of shrink steps.
double golden_section_minimize(const std::function<double(double)>& f,
                               double lo, double hi, double tol = 1e-7,
                               int iterations = 200);

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
};

/// Minimize an N-dimensional function with the Nelder-Mead simplex method.
/// `step` gives the initial simplex edge length per dimension.
NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, std::vector<double> step, double tol = 1e-9,
    int max_iterations = 2000);

}  // namespace san::stats

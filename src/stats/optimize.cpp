#include "stats/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace san::stats {

double golden_section_minimize(const std::function<double(double)>& f,
                               double lo, double hi, double tol,
                               int iterations) {
  if (!(lo < hi)) {
    throw std::invalid_argument("golden_section: requires lo < hi");
  }
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c), fd = f(d);
  for (int i = 0; i < iterations && (b - a) > tol; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, std::vector<double> step, double tol,
    int max_iterations) {
  const std::size_t n = x0.size();
  if (n == 0 || step.size() != n) {
    throw std::invalid_argument("nelder_mead: dimension mismatch");
  }

  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += step[i];
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

  NelderMeadResult result;
  int iter = 0;
  for (; iter < max_iterations; ++iter) {
    // Order vertices by function value.
    std::vector<std::size_t> order(n + 1);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a,
                  std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front(), worst = order.back();
    const std::size_t second_worst = order[n - 1];
    if (std::abs(values[worst] - values[best]) <
        tol * (std::abs(values[best]) + tol)) {
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (auto& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> x(n);
      for (std::size_t d = 0; d < n; ++d) {
        x[d] = centroid[d] + coeff * (simplex[worst][d] - centroid[d]);
      }
      return x;
    };

    const auto reflected = blend(-1.0);
    const double fr = f(reflected);
    if (fr < values[best]) {
      const auto expanded = blend(-2.0);
      const double fe = f(expanded);
      if (fe < fr) {
        simplex[worst] = expanded;
        values[worst] = fe;
      } else {
        simplex[worst] = reflected;
        values[worst] = fr;
      }
    } else if (fr < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = fr;
    } else {
      const auto contracted = blend(0.5);
      const double fk = f(contracted);
      if (fk < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = fk;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < n; ++d) {
            simplex[i][d] =
                simplex[best][d] + 0.5 * (simplex[i][d] - simplex[best][d]);
          }
          values[i] = f(simplex[i]);
        }
      }
    }
  }

  const auto best_it = std::min_element(values.begin(), values.end());
  result.x = simplex[static_cast<std::size_t>(best_it - values.begin())];
  result.value = *best_it;
  result.iterations = iter;
  return result;
}

}  // namespace san::stats

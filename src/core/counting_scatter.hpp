// Chunk-parallel stable counting sort, the scatter engine shared by the
// graph builders (graph/bipartite_csr.cpp, san/timeline.cpp, graph/csr.cpp
// append path).
//
// The scheme is two-level per-chunk cursors: phase one counts each chunk's
// keys into a private histogram row, a serial transform turns the rows into
// per-chunk starting cursors (chunk c's cursor for key k is the caller's
// base slot of k plus every earlier chunk's count of k), and phase two
// scatters chunks concurrently into disjoint slots. Because earlier input
// positions always land first, the output is byte-identical to the serial
// stable counting sort at any SAN_THREADS count — the grain derives only
// from (m, key_count), never from the thread count.
//
// The caller owns the output layout: `base[k]` is the first output slot of
// key k, which may be a dense prefix sum of the counts or a slack layout
// with per-key gaps (graph/slack.hpp) for append-in-place structures.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/parallel.hpp"

namespace san::core {

/// Base chunk grain for counting scatters. Coarser than the general
/// default: each chunk carries a histogram row over the key space, so
/// memory is chunks x key_count — at 64Ki items per chunk a ~1M-item
/// scatter stays in the tens of rows.
inline constexpr std::size_t kScatterGrain = std::size_t{1} << 16;

/// Cap on total cursor-matrix cells (chunks x (key_count+1)) per pass:
/// 16Mi cells = 128 MiB of u64. A key space that is huge relative to the
/// item count widens the grain — degrading gracefully toward the
/// single-row serial sort — instead of allocating chunks x key_count rows.
inline constexpr std::size_t kCursorBudgetCells = std::size_t{1} << 24;

inline std::size_t scatter_grain(std::size_t m, std::size_t key_count) {
  const std::size_t max_chunks =
      std::max<std::size_t>(1, kCursorBudgetCells / (key_count + 1));
  const std::size_t budget_grain = (m + max_chunks - 1) / max_chunks;
  return std::max(kScatterGrain, budget_grain);
}

/// Walk ranks [begin, end) of a keyed sequence laid out as per-key
/// regions: `dense` (key_count + 1 entries) is the dense prefix of the
/// per-key counts and `start[k]` each key's first storage slot (pass
/// `dense` itself for packed layouts, or a slack layout's starts). Calls
/// fn(pos, key) once per rank in ascending order with
/// pos = start[k] + (rank - dense[k]); keys with zero items are skipped.
/// The upper_bound seeds once per call, so walk whole chunks, not items.
template <typename Fn>
void walk_keyed_regions(std::span<const std::uint64_t> dense,
                        std::span<const std::uint64_t> start,
                        std::size_t begin, std::size_t end, Fn&& fn) {
  if (begin >= end) return;
  std::size_t k = static_cast<std::size_t>(
      std::upper_bound(dense.begin(), dense.end(), begin) - dense.begin() -
      1);
  for (std::size_t i = begin; i < end; ++i) {
    while (i >= dense[k + 1]) ++k;
    fn(start[k] + (i - dense[k]), k);
  }
}

/// One stable counting sort = one count() followed by one scatter() over
/// the SAME item sequence. The object owns the cursor matrix, so keeping it
/// alive across rebuilds makes the steady state allocation-free.
///
/// Both phases take a `visit(begin, end, emit)` callback instead of a plain
/// key array: visit must call emit exactly once per item of [begin, end) in
/// ascending item order. This lets callers walk derived sequences (e.g.
/// CSR rank spaces with slack gaps) with per-chunk incremental state
/// instead of paying a binary search per item.
class StableCountingScatter {
 public:
  /// Phase 1: count keys. visit(begin, end, emit) must call emit(key) with
  /// key < key_count once per item in order. `counts` is resized to
  /// key_count and overwritten with the global per-key totals.
  template <typename Visit>
  void count(std::size_t m, std::size_t key_count, Visit&& visit,
             std::vector<std::uint64_t>& counts) {
    m_ = m;
    key_count_ = key_count;
    grain_ = scatter_grain(m, key_count);
    chunks_ = std::max<std::size_t>(1, chunk_count_for(m, grain_));
    rows_.assign(chunks_ * key_count, 0);
    parallel_for_chunks(
        m, grain_, [&](std::size_t begin, std::size_t end, std::size_t c) {
          std::uint64_t* row = rows_.data() + c * key_count_;
          visit(begin, end, [&](std::uint64_t key) { ++row[key]; });
        });
    counts.assign(key_count, 0);
    for (std::size_t c = 0; c < chunks_; ++c) {
      const std::uint64_t* row = rows_.data() + c * key_count;
      for (std::size_t k = 0; k < key_count; ++k) counts[k] += row[k];
    }
  }

  /// Phase 2: stable scatter. Must follow a count() over the same item
  /// sequence; visit must call emit(key, value) in the same order count saw
  /// the keys. Item i of key k lands at base[k] + (stable rank of i within
  /// k) — `base` may describe any non-overlapping layout whose per-key
  /// extent is >= counts[k].
  template <typename Visit, typename T>
  void scatter(std::span<const std::uint64_t> base, Visit&& visit, T* out) {
    // Serial transform of counts into per-chunk starting cursors; bounded
    // by kCursorBudgetCells, negligible next to the parallel scatters.
    for (std::size_t k = 0; k < key_count_; ++k) {
      std::uint64_t running = base[k];
      for (std::size_t c = 0; c < chunks_; ++c) {
        std::uint64_t& cell = rows_[c * key_count_ + k];
        const std::uint64_t count = cell;
        cell = running;
        running += count;
      }
    }
    parallel_for_chunks(
        m_, grain_, [&](std::size_t begin, std::size_t end, std::size_t c) {
          std::uint64_t* cursor = rows_.data() + c * key_count_;
          visit(begin, end, [&](std::uint64_t key, T value) {
            out[cursor[key]++] = value;
          });
        });
  }

 private:
  std::vector<std::uint64_t> rows_;
  std::size_t m_ = 0;
  std::size_t key_count_ = 0;
  std::size_t grain_ = 0;
  std::size_t chunks_ = 0;
};

}  // namespace san::core

// Chunk-parallel stable counting sort, the scatter engine shared by the
// graph builders (graph/bipartite_csr.cpp, san/timeline.cpp, graph/csr.cpp
// append path).
//
// The scheme is two-level per-chunk cursors: phase one counts each chunk's
// keys into a private histogram row, a serial transform turns the rows into
// per-chunk starting cursors (chunk c's cursor for key k is the caller's
// base slot of k plus every earlier chunk's count of k), and phase two
// scatters chunks concurrently into disjoint slots. Because the cursor
// transform computes each item's GLOBAL stable rank exactly — chunk c's
// cursor for key k is base[k] plus every earlier chunk's count of k — the
// output is byte-identical to the serial stable counting sort for ANY
// chunk partition, so the grain may (and does) depend on the thread
// count: a serial pool collapses to one chunk, shedding the row-matrix
// zeroing and strided cursor transform that the chunked scheme pays.
// Parallel pools derive the grain only from (m, key_count).
//
// The caller owns the output layout: `base[k]` is the first output slot of
// key k, which may be a dense prefix sum of the counts or a slack layout
// with per-key gaps (graph/slack.hpp) for append-in-place structures.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/parallel.hpp"

namespace san::core {

/// Base chunk grain for counting scatters. Coarser than the general
/// default: each chunk carries a histogram row over the key space, so
/// memory is chunks x key_count — at 64Ki items per chunk a ~1M-item
/// scatter stays in the tens of rows.
inline constexpr std::size_t kScatterGrain = std::size_t{1} << 16;

/// Cap on total cursor-matrix cells (chunks x (key_count+1)) per pass:
/// 16Mi cells = 128 MiB of u64. A key space that is huge relative to the
/// item count widens the grain — degrading gracefully toward the
/// single-row serial sort — instead of allocating chunks x key_count rows.
inline constexpr std::size_t kCursorBudgetCells = std::size_t{1} << 24;

inline std::size_t scatter_grain(std::size_t m, std::size_t key_count) {
  const std::size_t max_chunks =
      std::max<std::size_t>(1, kCursorBudgetCells / (key_count + 1));
  const std::size_t budget_grain = (m + max_chunks - 1) / max_chunks;
  return std::max(kScatterGrain, budget_grain);
}

/// Walk ranks [begin, end) of a keyed sequence laid out as per-key
/// regions: `dense` (key_count + 1 entries) is the dense prefix of the
/// per-key counts and `start[k]` each key's first storage slot (pass
/// `dense` itself for packed layouts, or a slack layout's starts). Calls
/// fn(pos, key) once per rank in ascending order with
/// pos = start[k] + (rank - dense[k]); keys with zero items are skipped.
/// The upper_bound seeds once per call, so walk whole chunks, not items.
template <typename Fn>
void walk_keyed_regions(std::span<const std::uint64_t> dense,
                        std::span<const std::uint64_t> start,
                        std::size_t begin, std::size_t end, Fn&& fn) {
  if (begin >= end) return;
  std::size_t k = static_cast<std::size_t>(
      std::upper_bound(dense.begin(), dense.end(), begin) - dense.begin() -
      1);
  for (std::size_t i = begin; i < end; ++i) {
    while (i >= dense[k + 1]) ++k;
    fn(start[k] + (i - dense[k]), k);
  }
}

/// Walk STORAGE slots [begin, end) of a slack layout: `start[k]` is key
/// k's first slot (monotone; region k extends to start[k+1] or the array
/// tail) and `len[k]` its live entries. Calls fn(pos, key) for every live
/// slot in ascending pos order; dead slack is skipped region-by-region.
/// This is the item-space view a fused count sees (begin_fused_count
/// positions are storage slots), so the scatter that follows one walks
/// storage, not dense ranks.
template <typename Fn>
void walk_slack_slots(std::span<const std::uint64_t> start,
                      std::span<const std::uint32_t> len, std::size_t begin,
                      std::size_t end, Fn&& fn) {
  const std::size_t n = len.size();
  if (begin >= end || n == 0) return;
  std::size_t k = static_cast<std::size_t>(
      std::upper_bound(start.begin(), start.end(), begin) - start.begin());
  if (k > 0) --k;  // the last region whose start is <= begin owns it
  std::uint64_t pos = begin;
  for (; k < n; ++k) {
    if (pos < start[k]) pos = start[k];
    const std::uint64_t live_end = start[k] + len[k];
    const std::uint64_t stop = end < live_end ? end : live_end;
    for (; pos < stop; ++pos) fn(pos, k);
    if (pos >= end) return;
  }
}

/// One stable counting sort = one count() followed by one scatter() over
/// the SAME item sequence. The object owns the cursor matrix, so keeping it
/// alive across rebuilds makes the steady state allocation-free.
///
/// Both phases take a `visit(begin, end, emit)` callback instead of a plain
/// key array: visit must call emit exactly once per item of [begin, end) in
/// ascending item order. This lets callers walk derived sequences (e.g.
/// CSR rank spaces with slack gaps) with per-chunk incremental state
/// instead of paying a binary search per item.
class StableCountingScatter {
 public:
  /// Phase 1: count keys. visit(begin, end, emit) must call emit(key) with
  /// key < key_count once per item in order (emitting FEWER items — a
  /// filtered sequence — is fine as long as the scatter visit skips the
  /// same items). `counts` is resized to key_count and overwritten with
  /// the global per-key totals.
  template <typename Visit>
  void count(std::size_t m, std::size_t key_count, Visit&& visit,
             std::vector<std::uint64_t>& counts) {
    m_ = m;
    key_count_ = key_count;
    // A serial pool runs one chunk — the plain serial counting sort.
    // Output bytes are chunking-invariant (see file header), so this
    // cannot diverge from the chunked layout a parallel pool picks.
    grain_ = thread_count() > 1 ? scatter_grain(m, key_count)
                                : std::max<std::size_t>(m, 1);
    chunks_ = std::max<std::size_t>(1, chunk_count_for(m, grain_));
    rows_.assign(chunks_ * key_count, 0);
    parallel_for_chunks(
        m, grain_, [&](std::size_t begin, std::size_t end, std::size_t c) {
          std::uint64_t* row = rows_.data() + c * key_count_;
          // Plain increments beat staged/prefetched batches here: the row
          // is cache-resident at bench key counts and random histogram
          // stores are absorbed by the store buffer (measured: a 16-item
          // prefetch stage cost ~15% on the 1-core rebuild sweep).
          visit(begin, end, [&](std::uint64_t key) { ++row[key]; });
        });
    reduce_rows(counts);
  }

  /// Phase-1 alternative: prepare to receive this pass's counts from a
  /// PRECEDING scatter (scatter_fused's hook) instead of a dedicated
  /// counting pass — the rebuild-pipeline fusion that removes whole
  /// passes from SanTimeline::build_social and BipartiteCsr rebuilds.
  /// `m` is the item space the hook's positions index (a storage slot
  /// space for slack layouts); the grain is rounded to a power of two so
  /// fused_add maps positions to chunk rows with one shift.
  void begin_fused_count(std::size_t m, std::size_t key_count) {
    m_ = m;
    key_count_ = key_count;
    grain_ = std::bit_ceil(thread_count() > 1
                               ? scatter_grain(m, key_count)
                               : std::max<std::size_t>(m, 1));
    shift_ = static_cast<unsigned>(std::countr_zero(grain_));
    chunks_ = std::max<std::size_t>(1, chunk_count_for(m, grain_));
    rows_.assign(chunks_ * key_count, 0);
    // Chunks of the FEEDING scatter race on these rows (distinct input
    // chunks scatter into the same output chunk). The adds commute, so
    // totals are byte-identical at any thread count; plain increments
    // when the pool is serial keep the 1-core path penalty-free.
    fused_atomic_ = thread_count() > 1;
  }

  /// Record one fused-count item: the item at position `pos` (of the
  /// space declared to begin_fused_count) has `key`. Called from inside a
  /// preceding scatter's parallel chunks.
  void fused_add(std::uint64_t pos, std::uint64_t key) {
    std::uint64_t& cell = rows_[(pos >> shift_) * key_count_ + key];
    if (fused_atomic_) {
      std::atomic_ref<std::uint64_t>(cell).fetch_add(
          1, std::memory_order_relaxed);
    } else {
      ++cell;
    }
  }

  /// Optional fused-count tail: global per-key totals, as count() returns.
  /// scatter() itself only needs the rows, so callers that already know
  /// the totals (e.g. from an earlier pass's layout) skip this.
  void finish_fused_count(std::vector<std::uint64_t>& counts) {
    reduce_rows(counts);
  }

  /// Phase 2: stable scatter. Must follow a count() / fused count over the
  /// same item sequence; visit must call emit(key, value) in the same
  /// order count saw the keys. Item i of key k lands at base[k] + (stable
  /// rank of i within k) — `base` may describe any non-overlapping layout
  /// whose per-key extent is >= counts[k].
  template <typename Visit, typename T>
  void scatter(std::span<const std::uint64_t> base, Visit&& visit, T* out) {
    scatter_fused(base, visit, out, [](std::uint64_t, T) {});
  }

  /// scatter() that additionally calls hook(pos, value) for every item at
  /// the moment its output slot is known — the feeder side of the fused
  /// count (hook = next_engine.fused_add(pos, key_of(value))). Hook calls
  /// are in ascending item order within a chunk; across chunks they
  /// interleave, which fused_add's commutative adds absorb.
  template <typename Visit, typename T, typename Hook>
  void scatter_fused(std::span<const std::uint64_t> base, Visit&& visit,
                     T* out, Hook&& hook) {
    // Serial transform of counts into per-chunk starting cursors; bounded
    // by kCursorBudgetCells, negligible next to the parallel scatters.
    for (std::size_t k = 0; k < key_count_; ++k) {
      std::uint64_t running = base[k];
      for (std::size_t c = 0; c < chunks_; ++c) {
        std::uint64_t& cell = rows_[c * key_count_ + k];
        const std::uint64_t count = cell;
        cell = running;
        running += count;
      }
    }
    parallel_for_chunks(
        m_, grain_, [&](std::size_t begin, std::size_t end, std::size_t c) {
          std::uint64_t* cursor = rows_.data() + c * key_count_;
          visit(begin, end, [&](std::uint64_t key, T value) {
            const std::uint64_t pos = cursor[key]++;
            hook(pos, value);
            out[pos] = value;
          });
        });
  }

 private:
  void reduce_rows(std::vector<std::uint64_t>& counts) {
    counts.assign(key_count_, 0);
    for (std::size_t c = 0; c < chunks_; ++c) {
      const std::uint64_t* row = rows_.data() + c * key_count_;
      for (std::size_t k = 0; k < key_count_; ++k) counts[k] += row[k];
    }
  }

  std::vector<std::uint64_t> rows_;
  std::size_t m_ = 0;
  std::size_t key_count_ = 0;
  std::size_t grain_ = 0;
  std::size_t chunks_ = 0;
  unsigned shift_ = 0;
  bool fused_atomic_ = false;
};

}  // namespace san::core

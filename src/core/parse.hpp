// Strict whole-token numeric parsing shared by every user-facing text
// surface (san_tool flags, serve workload files). Unlike atof/atol, a
// malformed token is an error, not a silent zero: the entire token must
// convert, leading whitespace is rejected, and NaN is rejected for doubles
// (a NaN snapshot time would poison hash-keyed caches — NaN != NaN).
#pragma once

#include <cctype>
#include <cmath>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace san::core {

/// Parse `text` as a double. Returns false on nullptr, empty, partial
/// consumption, range error, leading whitespace, or NaN (infinities are
/// allowed: "+inf" is a meaningful snapshot time).
inline bool parse_double_strict(const char* text, double& out) {
  if (text == nullptr || *text == '\0' ||
      std::isspace(static_cast<unsigned char>(*text))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  out = std::strtod(text, &end);
  return *end == '\0' && errno == 0 && !std::isnan(out);
}

/// Parse `text` as an unsigned 64-bit integer (base 10). Returns false on
/// any malformed input, including a leading '-' (strtoull would silently
/// wrap it).
inline bool parse_u64_strict(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text == '\0' || *text == '-' ||
      std::isspace(static_cast<unsigned char>(*text))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return *end == '\0' && errno == 0;
}

/// Parse `text` as one of `names[0..count)`, whole-token exact match only
/// (no prefixes, no case folding). Returns false on nullptr, empty, or an
/// unknown token; on success `out` is the matched index. Shared by the
/// enum-valued knobs (SAN_SIMD) so they fail loudly like the numeric ones.
inline bool parse_enum_strict(const char* text, const char* const* names,
                              std::size_t count, std::size_t& out) {
  if (text == nullptr || *text == '\0') return false;
  for (std::size_t i = 0; i < count; ++i) {
    if (std::strcmp(text, names[i]) == 0) {
      out = i;
      return true;
    }
  }
  return false;
}

}  // namespace san::core

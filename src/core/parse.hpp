// Strict whole-token numeric parsing shared by every user-facing text
// surface (san_tool flags, serve workload files). Unlike atof/atol, a
// malformed token is an error, not a silent zero: the entire token must
// convert, leading whitespace is rejected, and NaN is rejected for doubles
// (a NaN snapshot time would poison hash-keyed caches — NaN != NaN).
#pragma once

#include <cctype>
#include <cmath>
#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace san::core {

/// Parse `text` as a double. Returns false on nullptr, empty, partial
/// consumption, range error, leading whitespace, or NaN (infinities are
/// allowed: "+inf" is a meaningful snapshot time).
inline bool parse_double_strict(const char* text, double& out) {
  if (text == nullptr || *text == '\0' ||
      std::isspace(static_cast<unsigned char>(*text))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  out = std::strtod(text, &end);
  return *end == '\0' && errno == 0 && !std::isnan(out);
}

/// Parse `text` as an unsigned 64-bit integer (base 10). Returns false on
/// any malformed input, including a leading '-' (strtoull would silently
/// wrap it).
inline bool parse_u64_strict(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text == '\0' || *text == '-' ||
      std::isspace(static_cast<unsigned char>(*text))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return *end == '\0' && errno == 0;
}

}  // namespace san::core

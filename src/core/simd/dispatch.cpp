// Runtime dispatch for the SIMD kernel layer. The level is resolved once
// (thread-safe function-local static): cpuid picks the best level the
// binary was compiled with, SAN_SIMD overrides it downward, and tests
// re-point the kernel table with set_level between batches. Kernel calls
// go through one atomic pointer load — no per-call cpuid, no branches.
#include <atomic>
#include <cstdlib>
#include <string>

#include "core/parse.hpp"
#include "core/simd/intersect_common.hpp"
#include "core/simd/simd.hpp"

namespace san::core::simd {

namespace {

using Span = std::span<const std::uint32_t>;

struct KernelTable {
  std::size_t (*count)(Span, Span);
  std::size_t (*into)(Span, Span, std::uint32_t*);
  Level level;
};

constexpr KernelTable kTables[] = {
    {detail::intersect_count_scalar, detail::intersect_into_scalar,
     Level::kScalar},
    {detail::intersect_count_sse, detail::intersect_into_sse, Level::kSse},
    {detail::intersect_count_avx2, detail::intersect_into_avx2,
     Level::kAvx2},
};

Level detect() {
#if defined(__x86_64__) || defined(__i386__)
  if (detail::kAvx2Compiled && __builtin_cpu_supports("avx2")) {
    return Level::kAvx2;
  }
  if (detail::kSseCompiled && __builtin_cpu_supports("sse4.2")) {
    return Level::kSse;
  }
#endif
  return Level::kScalar;
}

struct InitState {
  Level detected = Level::kScalar;
  Level initial = Level::kScalar;
  std::string env_error;  // the unparseable SAN_SIMD token, if any
};

const InitState& init_state() {
  static const InitState state = [] {
    InitState s;
    s.detected = detect();
    s.initial = s.detected;
    if (const char* env = std::getenv("SAN_SIMD")) {
      Level parsed = Level::kScalar;
      if (parse_level(env, parsed)) {
        // Valid but unsupported (e.g. SAN_SIMD=avx2 on an SSE-only
        // host) clamps to the best available level.
        s.initial = parsed < s.detected ? parsed : s.detected;
      } else {
        s.env_error = env;
      }
    }
    return s;
  }();
  return state;
}

std::atomic<const KernelTable*> g_table{nullptr};

const KernelTable* table() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  const KernelTable* resolved =
      &kTables[static_cast<int>(init_state().initial)];
  // First resolver wins; a concurrent set_level is never clobbered.
  const KernelTable* expected = nullptr;
  if (g_table.compare_exchange_strong(expected, resolved,
                                      std::memory_order_acq_rel)) {
    return resolved;
  }
  return expected;
}

}  // namespace

const char* level_name(Level level) {
  return kLevelNames[static_cast<int>(level)];
}

bool parse_level(const char* text, Level& out) {
  std::size_t index = 0;
  if (!core::parse_enum_strict(text, kLevelNames, 3, index)) return false;
  out = static_cast<Level>(index);
  return true;
}

Level detected_level() { return init_state().detected; }

Level active_level() { return table()->level; }

const char* env_error() {
  const InitState& s = init_state();
  return s.env_error.empty() ? nullptr : s.env_error.c_str();
}

bool set_level(Level level) {
  table();  // resolve SAN_SIMD first so it can never clobber this store
  if (static_cast<int>(level) > static_cast<int>(init_state().detected)) {
    return false;
  }
  g_table.store(&kTables[static_cast<int>(level)],
                std::memory_order_release);
  return true;
}

std::size_t intersect_count(std::span<const std::uint32_t> a,
                            std::span<const std::uint32_t> b) {
  return table()->count(a, b);
}

std::size_t intersect_into(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b,
                           std::uint32_t* out) {
  return table()->into(a, b, out);
}

}  // namespace san::core::simd

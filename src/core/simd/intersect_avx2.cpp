// AVX2 intersection kernels: 8x8 all-pairs block compare (seven cyclic
// rotations of the b-block via permutevar8x32 ORed into one match mask),
// movemask + popcount for counting, and a 256-entry permutevar LUT to
// left-pack matches for the into variant. Compiled with -mavx2 via a
// per-file option in CMakeLists.txt; without it the symbols forward to
// the scalar kernels and kAvx2Compiled is false so dispatch never picks
// them.
#include <cstddef>
#include <cstdint>
#include <span>

#include "core/simd/intersect_common.hpp"

#if defined(__AVX2__)

#include <array>
#include <bit>
#include <immintrin.h>

namespace san::core::simd::detail {

namespace {

// Rotation index vectors: kRotIdx[r] maps lane l to lane (l + r) % 8 of
// the b-block, so the 7 non-identity rotations cover all 8x8 pairings.
constexpr std::array<std::array<std::uint32_t, 8>, 8> kRotIdx = [] {
  std::array<std::array<std::uint32_t, 8>, 8> idx{};
  for (int r = 0; r < 8; ++r) {
    for (int l = 0; l < 8; ++l) {
      idx[r][l] = static_cast<std::uint32_t>((l + r) % 8);
    }
  }
  return idx;
}();

// mask bit k set => lane k of the a-block matched; the LUT row is the
// permutevar8x32 control that packs those lanes to the front. Slots past
// the match count replicate lane 0 — they are never part of the result.
constexpr std::array<std::array<std::uint32_t, 8>, 256> kPackLut = [] {
  std::array<std::array<std::uint32_t, 8>, 256> lut{};
  for (int mask = 0; mask < 256; ++mask) {
    int o = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((mask >> lane) & 1) {
        lut[mask][o++] = static_cast<std::uint32_t>(lane);
      }
    }
  }
  return lut;
}();

/// Balanced block phase: compare 8-element blocks all-pairs, then advance
/// whichever block has the smaller maximum (both on ties). Strictly
/// ascending inputs guarantee a lane matches at most one lane of the
/// other block, so popcount(mask) is exact.
template <bool kEmit>
inline std::size_t block_avx2(const std::uint32_t* a, std::size_t& ai,
                              std::size_t na, const std::uint32_t* b,
                              std::size_t& bi, std::size_t nb,
                              std::uint32_t* out) {
  std::size_t c = 0;
  std::size_t i = ai, j = bi;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(kRotIdx[r].data()));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, idx)));
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    if constexpr (kEmit) {
      // c <= min(na, nb) here, so the full-vector store stays inside the
      // documented min(na, nb) + kIntoPad capacity.
      const __m256i ctrl = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(kPackLut[mask].data()));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c),
                          _mm256_permutevar8x32_epi32(va, ctrl));
    }
    c += static_cast<std::size_t>(std::popcount(
        static_cast<unsigned>(mask)));
    const std::uint32_t amax = a[i + 7];
    const std::uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  ai = i;
  bi = j;
  return c;
}

}  // namespace

std::size_t intersect_count_avx2(std::span<const std::uint32_t> a,
                                 std::span<const std::uint32_t> b) {
  return intersect_adaptive<false>(a, b, nullptr, block_avx2<false>);
}

std::size_t intersect_into_avx2(std::span<const std::uint32_t> a,
                                std::span<const std::uint32_t> b,
                                std::uint32_t* out) {
  return intersect_adaptive<true>(a, b, out, block_avx2<true>);
}

const bool kAvx2Compiled = true;

}  // namespace san::core::simd::detail

#else  // !defined(__AVX2__)

namespace san::core::simd::detail {

std::size_t intersect_count_avx2(std::span<const std::uint32_t> a,
                                 std::span<const std::uint32_t> b) {
  return intersect_count_scalar(a, b);
}

std::size_t intersect_into_avx2(std::span<const std::uint32_t> a,
                                std::span<const std::uint32_t> b,
                                std::uint32_t* out) {
  return intersect_into_scalar(a, b, out);
}

const bool kAvx2Compiled = false;

}  // namespace san::core::simd::detail

#endif  // defined(__AVX2__)

// Shared scaffolding for the per-ISA intersection translation units: the
// scalar merge loop (also every SIMD path's tail), the galloping walk for
// skewed size ratios, and the adaptive entry that picks between them.
// Each TU instantiates these with its own block kernel; keeping one copy
// of the control flow is what makes the byte-identity contract easy to
// audit — the levels differ only in how a balanced block range is scanned.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

namespace san::core::simd::detail {

/// One span longer than the other by this factor switches to galloping:
/// per-element exponential search costs O(small * log(big/small)), beating
/// any linear scan once the ratio dwarfs the SIMD width.
inline constexpr std::size_t kGallopRatio = 32;

/// Plain sorted merge over [ai, na) x [bi, nb); the scalar kernel and the
/// tail of every SIMD kernel. kEmit selects count-only vs write-into.
template <bool kEmit>
inline std::size_t scalar_merge(const std::uint32_t* a, std::size_t ai,
                                std::size_t na, const std::uint32_t* b,
                                std::size_t bi, std::size_t nb,
                                std::uint32_t* out, std::size_t c) {
  while (ai < na && bi < nb) {
    const std::uint32_t x = a[ai];
    const std::uint32_t y = b[bi];
    if (x < y) {
      ++ai;
    } else if (y < x) {
      ++bi;
    } else {
      if constexpr (kEmit) out[c] = x;
      ++c;
      ++ai;
      ++bi;
    }
  }
  return c;
}

/// Galloping intersection, `a` the (much) smaller span: advance through b
/// by exponential probe + binary search per a-element. Purely scalar —
/// the win is algorithmic, so every level shares this path and skewed
/// inputs are trivially byte-identical across levels.
template <bool kEmit>
inline std::size_t gallop(const std::uint32_t* a, std::size_t na,
                          const std::uint32_t* b, std::size_t nb,
                          std::uint32_t* out) {
  std::size_t c = 0, j = 0;
  for (std::size_t i = 0; i < na && j < nb; ++i) {
    const std::uint32_t x = a[i];
    if (b[j] < x) {
      // b[lo] < x always; hunt the first candidate window, then bisect.
      std::size_t lo = j, step = 1;
      while (lo + step < nb && b[lo + step] < x) {
        lo += step;
        step <<= 1;
      }
      const std::size_t hi = std::min(nb, lo + step);
      j = static_cast<std::size_t>(
          std::lower_bound(b + lo + 1, b + hi, x) - b);
      if (j >= nb) break;
    }
    if (b[j] == x) {
      if constexpr (kEmit) out[c] = x;
      ++c;
      ++j;
    }
  }
  return c;
}

/// Adaptive entry shared by every TU. `Block` is the level's balanced
/// block kernel: block(a, ai, na, b, bi, nb, out, c) consumes whole
/// vector blocks, updates ai/bi, and returns the match count so far; the
/// scalar level passes a no-op and everything runs through the tail.
template <bool kEmit, typename Block>
inline std::size_t intersect_adaptive(std::span<const std::uint32_t> a,
                                      std::span<const std::uint32_t> b,
                                      std::uint32_t* out, Block&& block) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (b.size() >= a.size() * kGallopRatio) {
    return gallop<kEmit>(a.data(), a.size(), b.data(), b.size(), out);
  }
  std::size_t ai = 0, bi = 0;
  const std::size_t c =
      block(a.data(), ai, a.size(), b.data(), bi, b.size(), out);
  return scalar_merge<kEmit>(a.data(), ai, a.size(), b.data(), bi, b.size(),
                             out, c);
}

/// The scalar reference kernels (intersect_scalar.cpp) — also the
/// fallback bodies for SSE/AVX2 TUs built without their ISA flags.
std::size_t intersect_count_scalar(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b);
std::size_t intersect_into_scalar(std::span<const std::uint32_t> a,
                                  std::span<const std::uint32_t> b,
                                  std::uint32_t* out);

std::size_t intersect_count_sse(std::span<const std::uint32_t> a,
                                std::span<const std::uint32_t> b);
std::size_t intersect_into_sse(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b,
                               std::uint32_t* out);

std::size_t intersect_count_avx2(std::span<const std::uint32_t> a,
                                 std::span<const std::uint32_t> b);
std::size_t intersect_into_avx2(std::span<const std::uint32_t> a,
                                std::span<const std::uint32_t> b,
                                std::uint32_t* out);

/// Whether the TU was built with its ISA enabled (false = its symbols
/// forward to scalar and the level must not be selectable).
extern const bool kSseCompiled;
extern const bool kAvx2Compiled;

}  // namespace san::core::simd::detail

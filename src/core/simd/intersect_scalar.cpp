// Scalar reference kernels: the byte-identity ground truth every SIMD
// level is gated against (bench_kernels hard-fails on any mismatch), and
// the portable fallback on non-x86 builds.
#include <cstddef>
#include <cstdint>
#include <span>

#include "core/simd/intersect_common.hpp"

namespace san::core::simd::detail {

namespace {

// No block phase: everything runs through the shared scalar tail.
inline std::size_t no_block(const std::uint32_t*, std::size_t&, std::size_t,
                            const std::uint32_t*, std::size_t&, std::size_t,
                            std::uint32_t*) {
  return 0;
}

}  // namespace

std::size_t intersect_count_scalar(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b) {
  return intersect_adaptive<false>(a, b, nullptr, no_block);
}

std::size_t intersect_into_scalar(std::span<const std::uint32_t> a,
                                  std::span<const std::uint32_t> b,
                                  std::uint32_t* out) {
  return intersect_adaptive<true>(a, b, out, no_block);
}

}  // namespace san::core::simd::detail

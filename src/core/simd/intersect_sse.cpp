// SSE4.2 intersection kernels: 4x4 all-pairs block compare (three
// cyclic shuffles of the b-block ORed into one match mask), movemask +
// popcount for counting, and a 16-entry pshufb LUT to left-pack matches
// for the into variant. Compiled with -msse4.2 via a per-file option in
// CMakeLists.txt; without it (non-x86 builds) the symbols forward to the
// scalar kernels and kSseCompiled is false so dispatch never picks them.
#include <cstddef>
#include <cstdint>
#include <span>

#include "core/simd/intersect_common.hpp"

#if defined(__SSE4_2__)

#include <array>
#include <bit>
#include <smmintrin.h>

namespace san::core::simd::detail {

namespace {

// mask bit k set => lane k of the a-block matched; the LUT row is the
// pshufb control that packs those lanes to the front (0x80 zeroes the
// rest — slots past the match count are never part of the result).
constexpr std::array<std::array<std::uint8_t, 16>, 16> kPackLut = [] {
  std::array<std::array<std::uint8_t, 16>, 16> lut{};
  for (int mask = 0; mask < 16; ++mask) {
    int o = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask >> lane) & 1) {
        for (int byte = 0; byte < 4; ++byte) {
          lut[mask][o * 4 + byte] =
              static_cast<std::uint8_t>(lane * 4 + byte);
        }
        ++o;
      }
    }
    for (; o < 4; ++o) {
      for (int byte = 0; byte < 4; ++byte) lut[mask][o * 4 + byte] = 0x80;
    }
  }
  return lut;
}();

/// Balanced block phase: compare 4-element blocks all-pairs, then advance
/// whichever block has the smaller maximum (both on ties). Strictly
/// ascending inputs guarantee a lane matches at most one lane of the
/// other block, so popcount(mask) is exact.
template <bool kEmit>
inline std::size_t block_sse(const std::uint32_t* a, std::size_t& ai,
                             std::size_t na, const std::uint32_t* b,
                             std::size_t& bi, std::size_t nb,
                             std::uint32_t* out) {
  std::size_t c = 0;
  std::size_t i = ai, j = bi;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4e)));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
    if constexpr (kEmit) {
      // c <= min(na, nb) here, so the full-vector store stays inside the
      // documented min(na, nb) + kIntoPad capacity.
      const __m128i ctrl = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(kPackLut[mask].data()));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + c),
                       _mm_shuffle_epi8(va, ctrl));
    }
    c += static_cast<std::size_t>(std::popcount(
        static_cast<unsigned>(mask)));
    const std::uint32_t amax = a[i + 3];
    const std::uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  ai = i;
  bi = j;
  return c;
}

}  // namespace

std::size_t intersect_count_sse(std::span<const std::uint32_t> a,
                                std::span<const std::uint32_t> b) {
  return intersect_adaptive<false>(a, b, nullptr, block_sse<false>);
}

std::size_t intersect_into_sse(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b,
                               std::uint32_t* out) {
  return intersect_adaptive<true>(a, b, out, block_sse<true>);
}

const bool kSseCompiled = true;

}  // namespace san::core::simd::detail

#else  // !defined(__SSE4_2__)

namespace san::core::simd::detail {

std::size_t intersect_count_sse(std::span<const std::uint32_t> a,
                                std::span<const std::uint32_t> b) {
  return intersect_count_scalar(a, b);
}

std::size_t intersect_into_sse(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b,
                               std::uint32_t* out) {
  return intersect_into_scalar(a, b, out);
}

const bool kSseCompiled = false;

}  // namespace san::core::simd::detail

#endif  // defined(__SSE4_2__)

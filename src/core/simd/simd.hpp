// Runtime-dispatched SIMD kernel layer for the serving hot loops.
//
// Every per-query kernel in serve/ and apps/ reduces to walks over sorted
// u32 spans (adjacency lists, attribute lists); this header is their one
// entry point. The implementation level — scalar, SSE4.2, or AVX2 — is
// picked ONCE at startup from cpuid, forceable with SAN_SIMD=scalar|sse|
// avx2 (and by tests via set_level), and every level is byte-identical by
// contract: the determinism gates (thread sweeps, batch==single, epoch
// oracles) run unchanged at any dispatch level. Kernels with float
// accumulation keep bit-equality by intersecting into an index buffer
// first and summing in span order (see apps/linkpred.cpp).
//
// Preconditions: intersection inputs are STRICTLY ascending u32 spans (the
// CSR invariant — no duplicates). members_of spans are time-ordered, not
// sorted, and must never be passed here.
//
// The per-ISA translation units live next to this header; only
// intersect_sse.cpp / intersect_avx2.cpp are compiled with -msse4.2 /
// -mavx2 (per-file options in CMakeLists.txt), so no SIMD instruction can
// leak into code that runs before the cpuid check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace san::core::simd {

/// Dispatch levels, ordered: a CPU that supports level L supports every
/// level below it.
enum class Level : int { kScalar = 0, kSse = 1, kAvx2 = 2 };

inline constexpr const char* kLevelNames[] = {"scalar", "sse", "avx2"};

const char* level_name(Level level);

/// Strict parse of a SAN_SIMD token ("scalar" | "sse" | "avx2"); false on
/// anything else (including empty / prefixes / mixed case).
bool parse_level(const char* text, Level& out);

/// Best level both compiled into this binary and supported by the CPU.
Level detected_level();

/// The level the kernels below currently dispatch to. Resolved on first
/// use: SAN_SIMD if set and valid (clamped to detected_level()), else
/// detected_level().
Level active_level();

/// The SAN_SIMD value that failed to parse at startup, or nullptr. The
/// library falls back to detected_level() and keeps running; user-facing
/// binaries (san_tool) turn this into a usage error (exit 2) instead.
const char* env_error();

/// Force the dispatch level (tests, SAN_SIMD). Returns false — leaving
/// dispatch unchanged — when the CPU or build lacks the level. Not for
/// use concurrent with in-flight queries: callers switch levels between
/// batches, as the test sweeps do.
bool set_level(Level level);

/// |a ∩ b| for strictly ascending u32 spans. Adaptive: galloping when one
/// span is many times shorter, block-compare SIMD otherwise. Identical
/// result at every dispatch level.
std::size_t intersect_count(std::span<const std::uint32_t> a,
                            std::span<const std::uint32_t> b);

/// Extra writable slots intersect_into requires past min(a.size(),
/// b.size()): the SIMD compaction stores whole vectors, and a store that
/// begins at the final result size can extend one vector past it.
inline constexpr std::size_t kIntoPad = 8;

/// a ∩ b written ascending into `out`; returns the intersection size n.
/// `out` needs capacity min(a.size(), b.size()) + kIntoPad — slots past n
/// are scratch with unspecified contents. out[0..n) is identical at every
/// dispatch level.
std::size_t intersect_into(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b,
                           std::uint32_t* out);

}  // namespace san::core::simd

// Process-wide worker pool for the chunked parallel_for / parallel_reduce
// helpers (core/parallel.hpp). Design goals, in order:
//
//  1. Determinism: the pool never decides how work is split. Callers hand it
//     a fixed chunk count (derived from the problem size and a grain that is
//     independent of the thread count) and the pool only schedules those
//     chunks. Combined with ordered chunk reduction this makes every kernel
//     byte-identical across thread counts.
//  2. No allocation on the hot path: one atomic fetch_add per chunk.
//  3. Safe nesting: a parallel region entered from inside a worker runs
//     inline on that worker instead of deadlocking the pool.
//
// The worker count defaults to the SAN_THREADS environment variable, falling
// back to std::thread::hardware_concurrency(); benches override it at
// runtime through set_thread_count().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace san::core {

class ThreadPool {
 public:
  /// The process-wide pool, created on first use.
  static ThreadPool& instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Total execution lanes (workers + the calling thread).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Resize to `n` lanes (n >= 1 enforced). Joins or spawns workers; must
  /// not be called from inside a parallel region.
  void set_thread_count(std::size_t n);

  /// Run fn(chunk_index) once for every chunk_index in [0, chunk_count).
  /// The calling thread participates; returns after all chunks finished.
  /// The first exception thrown by any chunk is rethrown on the caller.
  /// Concurrent calls from distinct external threads are serialized: the
  /// second caller blocks until the first job drains, then runs its own.
  void run_chunks(std::size_t chunk_count,
                  const std::function<void(std::size_t)>& fn);

 private:
  ThreadPool();

  void worker_loop();
  void drain_chunks(const std::function<void(std::size_t)>& fn,
                    std::size_t chunk_count);
  void stop_workers();
  void spawn_workers(std::size_t count);

  std::vector<std::thread> workers_;

  std::mutex job_mutex_;  // serializes whole jobs across external callers
  std::mutex mutex_;
  std::condition_variable job_cv_;   // workers wait here for a new epoch
  std::condition_variable done_cv_;  // caller waits here for job completion
  std::uint64_t epoch_ = 0;
  std::size_t active_workers_ = 0;
  bool stopping_ = false;

  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_chunk_count_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::exception_ptr first_exception_;
};

/// Current lane count of the process-wide pool.
std::size_t thread_count();

/// True while the calling thread is executing chunks of a pool job.
/// Blocking on foreign work from inside a job risks deadlock — the pool's
/// job lock is held until every chunk (including the blocked one) drains —
/// so long waits must be replaced with local work when this is set.
bool in_parallel_region();

/// Resize the process-wide pool (used by benches to sweep 1/2/4/8 threads).
void set_thread_count(std::size_t n);

}  // namespace san::core

// Chunked data-parallel helpers over the process-wide ThreadPool.
//
// Determinism contract: work is split into chunks of a fixed `grain`
// (independent of the thread count), partial results are kept per chunk,
// and reductions combine them serially in ascending chunk order. Any kernel
// built from these helpers therefore produces byte-identical results at 1,
// 2, 4, ... threads — only the wall clock changes. Randomized kernels get
// the same guarantee by drawing from chunk_rng(seed, chunk_index) instead
// of a shared sequential stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "stats/rng.hpp"

namespace san::core {

/// Default iterations per chunk: small enough to load-balance skewed work
/// (hub-heavy adjacency), large enough to amortize dispatch.
inline constexpr std::size_t kDefaultGrain = 2048;

inline constexpr std::size_t chunk_count_for(std::size_t n, std::size_t grain) {
  return grain == 0 ? 0 : (n + grain - 1) / grain;
}

/// Deterministic per-chunk generator: a well-mixed stream keyed by
/// (seed, index), independent of which thread runs the chunk.
inline stats::Rng chunk_rng(std::uint64_t seed, std::uint64_t index) {
  // SplitMix64 finalizer over the combined key.
  std::uint64_t x = seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return stats::Rng(x ^ (x >> 31));
}

/// body(begin, end, chunk) over [0, n) split into grain-sized chunks. The
/// chunk index is authoritative — use it (not begin/grain arithmetic) to key
/// chunk_rng or per-chunk buffers.
template <typename Body>
void parallel_for_chunks(std::size_t n, std::size_t grain, Body&& body) {
  if (n == 0) return;
  const std::size_t chunks = chunk_count_for(n, grain);
  ThreadPool::instance().run_chunks(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    body(begin, end, c);
  });
}

/// body(i) for every i in [0, n).
template <typename Body>
void parallel_for(std::size_t n, Body&& body,
                  std::size_t grain = kDefaultGrain) {
  parallel_for_chunks(n, grain,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

/// Deterministic reduction: partial = map(begin, end, chunk) per chunk, then
/// a serial left fold combine(acc, partial) in ascending chunk order. Key
/// randomized maps with chunk_rng(seed, chunk).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine,
                  std::size_t grain = kDefaultGrain) {
  if (n == 0) return identity;
  const std::size_t chunks = chunk_count_for(n, grain);
  std::vector<T> partials(chunks, identity);
  ThreadPool::instance().run_chunks(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    partials[c] = map(begin, end, c);
  });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace san::core

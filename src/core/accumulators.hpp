// Reusable accumulators for chunked reductions (core/parallel.hpp). Both are
// plain value types: build one per chunk in the map stage, merge with += in
// the ordered combine stage — addition order is then fixed by chunk index,
// keeping floating-point results thread-count-invariant.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace san::core {

/// Running moments of (x, y) pairs for a Pearson correlation.
struct PearsonMoments {
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  std::uint64_t n = 0;

  void add(double x, double y) {
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
    ++n;
  }

  PearsonMoments& operator+=(const PearsonMoments& o) {
    sx += o.sx;
    sy += o.sy;
    sxx += o.sxx;
    syy += o.syy;
    sxy += o.sxy;
    n += o.n;
    return *this;
  }

  /// Pearson correlation; 0 for degenerate inputs (n < 2, zero variance).
  double correlation() const {
    if (n < 2) return 0.0;
    const auto m = static_cast<double>(n);
    const double cov = sxy - sx * sy / m;
    const double vx = sxx - sx * sx / m;
    const double vy = syy - sy * sy / m;
    if (vx <= 0.0 || vy <= 0.0) return 0.0;
    return cov / std::sqrt(vx * vy);
  }
};

/// Per-integer-bin (sum, count) accumulator for mean-by-key curves such as
/// the knn degree correlations.
struct BinnedMean {
  std::vector<double> sum;
  std::vector<std::uint64_t> count;

  void add(std::size_t k, double value) {
    if (k >= sum.size()) {
      sum.resize(k + 1, 0.0);
      count.resize(k + 1, 0);
    }
    sum[k] += value;
    ++count[k];
  }

  BinnedMean& operator+=(const BinnedMean& o) {
    if (o.sum.size() > sum.size()) {
      sum.resize(o.sum.size(), 0.0);
      count.resize(o.count.size(), 0);
    }
    for (std::size_t k = 0; k < o.sum.size(); ++k) {
      sum[k] += o.sum[k];
      count[k] += o.count[k];
    }
    return *this;
  }

  /// (k, mean) pairs in ascending k starting at min_k, skipping empty bins.
  std::vector<std::pair<std::uint64_t, double>> means_from(
      std::size_t min_k) const {
    std::vector<std::pair<std::uint64_t, double>> points;
    for (std::size_t k = min_k; k < sum.size(); ++k) {
      if (count[k] == 0) continue;
      points.emplace_back(k, sum[k] / static_cast<double>(count[k]));
    }
    return points;
  }
};

}  // namespace san::core

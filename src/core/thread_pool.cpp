#include "core/thread_pool.hpp"

#include <cstdlib>

namespace san::core {
namespace {

// True while the current thread is executing chunks of some job; nested
// parallel regions detect this and run inline.
thread_local bool t_in_parallel_region = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("SAN_THREADS")) {
    const long value = std::atol(env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() { spawn_workers(default_thread_count() - 1); }

ThreadPool::~ThreadPool() { stop_workers(); }

void ThreadPool::set_thread_count(std::size_t n) {
  if (n < 1) n = 1;
  std::lock_guard job_lock(job_mutex_);  // never resize under a live job
  if (n == thread_count()) return;
  stop_workers();
  spawn_workers(n - 1);
}

void ThreadPool::spawn_workers(std::size_t count) {
  {
    std::lock_guard lock(mutex_);
    stopping_ = false;
  }
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::drain_chunks(const std::function<void(std::size_t)>& fn,
                              std::size_t chunk_count) {
  for (;;) {
    const std::size_t chunk = next_chunk_.fetch_add(1,
                                                    std::memory_order_relaxed);
    if (chunk >= chunk_count) break;
    try {
      fn(chunk);
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    job_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen_epoch; });
    if (stopping_) return;
    seen_epoch = epoch_;
    const auto* fn = job_fn_;
    const std::size_t chunk_count = job_chunk_count_;
    lock.unlock();

    t_in_parallel_region = true;
    drain_chunks(*fn, chunk_count);
    t_in_parallel_region = false;

    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run_chunks(std::size_t chunk_count,
                            const std::function<void(std::size_t)>& fn) {
  if (chunk_count == 0) return;
  // Serial paths: nested region, single-lane pool, or a single chunk.
  if (t_in_parallel_region || workers_.empty() || chunk_count == 1) {
    for (std::size_t i = 0; i < chunk_count; ++i) fn(i);
    return;
  }

  // One job owns the shared dispatch state at a time; a second external
  // caller queues here instead of clobbering a live epoch.
  std::lock_guard job_lock(job_mutex_);
  {
    std::lock_guard lock(mutex_);
    job_fn_ = &fn;
    job_chunk_count_ = chunk_count;
    next_chunk_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++epoch_;
  }
  job_cv_.notify_all();

  t_in_parallel_region = true;
  drain_chunks(fn, chunk_count);
  t_in_parallel_region = false;

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  if (first_exception_) {
    auto e = first_exception_;
    first_exception_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

std::size_t thread_count() { return ThreadPool::instance().thread_count(); }

bool in_parallel_region() { return t_in_parallel_region; }

void set_thread_count(std::size_t n) {
  ThreadPool::instance().set_thread_count(n);
}

}  // namespace san::core

#include "serve/query.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/parse.hpp"

namespace san::serve {
namespace {

void append_double(std::string& line, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  line += buffer;
}

void append_u64(std::string& line, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  line += buffer;
}

[[noreturn]] void bad_line(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("workload line " + std::to_string(line_no) +
                              ": " + what);
}

/// Parses a snapshot time; where a query time is expected (`now` non-null)
/// the token `now` is accepted and maps to +infinity with *now set.
double parse_time(const std::string& token, std::size_t line_no,
                  bool* now = nullptr) {
  if (now != nullptr && token == "now") {
    *now = true;
    return std::numeric_limits<double>::infinity();
  }
  double value = 0.0;
  if (!core::parse_double_strict(token.c_str(), value)) {
    bad_line(line_no, "malformed time '" + token + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line_no,
                        const char* what) {
  std::uint64_t value = 0;
  if (!core::parse_u64_strict(token.c_str(), value)) {
    bad_line(line_no, std::string("malformed ") + what + " '" + token + "'");
  }
  return value;
}

NodeId parse_node(const std::string& token, std::size_t line_no,
                  const char* what) {
  const std::uint64_t value = parse_u64(token, line_no, what);
  if (value > 0xffffffffULL) {
    bad_line(line_no, std::string(what) + " '" + token + "' too big");
  }
  return static_cast<NodeId>(value);
}

std::uint32_t parse_k(const std::string& token, std::size_t line_no) {
  const std::uint64_t k = parse_u64(token, line_no, "k");
  if (k == 0 || k > 0xffffffffULL) {
    bad_line(line_no, "k '" + token + "' out of range");
  }
  return static_cast<std::uint32_t>(k);
}

}  // namespace

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kLinkRec:
      return "linkrec";
    case QueryKind::kAttrInfer:
      return "attrs";
    case QueryKind::kEgoMetrics:
      return "ego";
    case QueryKind::kReciprocity:
      return "recip";
    case QueryKind::kSybil:
      return "sybil";
    case QueryKind::kCommunity:
      return "community";
    case QueryKind::kInfluence:
      return "influence";
  }
  return "?";
}

std::string QueryResult::to_line(const Query& query) const {
  std::string line = to_string(kind);
  line += " t=";
  if (query.now) {
    line += "now";
  } else {
    append_double(line, query.time);
  }
  if (kind == QueryKind::kInfluence) {
    // No subject user: the query is identified by its pick budget and
    // given seed set.
    line += " k=";
    append_u64(line, query.k);
    line += " s=";
    if (query.seeds.empty()) {
      line += '-';
    } else {
      for (std::size_t i = 0; i < query.seeds.size(); ++i) {
        if (i > 0) line += ',';
        append_u64(line, query.seeds[i]);
      }
    }
  } else {
    line += " u=";
    append_u64(line, query.user);
  }
  if (kind == QueryKind::kReciprocity) {
    line += " v=";
    append_u64(line, query.other);
  }
  if (!ok) {
    line += " ERR unknown-node";
    return line;
  }
  switch (kind) {
    case QueryKind::kLinkRec:
      for (const auto& rec : recommendations) {
        line += ' ';
        append_u64(line, rec.candidate);
        line += ':';
        append_double(line, rec.score);
      }
      break;
    case QueryKind::kAttrInfer:
      for (const auto& pred : predictions) {
        line += ' ';
        append_u64(line, pred.attribute);
        line += ':';
        append_double(line, pred.score);
      }
      break;
    case QueryKind::kEgoMetrics:
      line += " out=";
      append_u64(line, ego.out_degree);
      line += " in=";
      append_u64(line, ego.in_degree);
      line += " deg=";
      append_u64(line, ego.degree);
      line += " mutual=";
      append_u64(line, ego.mutual_degree);
      line += " attrs=";
      append_u64(line, ego.attribute_count);
      line += " twohop=";
      append_u64(line, ego.two_hop_count);
      break;
    case QueryKind::kReciprocity:
      line += link_present ? (already_mutual ? " mutual" : " oneway")
                           : " nolink";
      line += " structural=";
      append_double(line, reciprocity.structural);
      line += " san=";
      append_double(line, reciprocity.san);
      break;
    case QueryKind::kSybil:
      line += " region=";
      append_u64(line, sybil.compromised);
      line += " attack=";
      append_u64(line, sybil.attack_edges);
      line += " sybils=";
      append_double(line, sybil.sybil_identities);
      break;
    case QueryKind::kCommunity:
      line += " label=";
      append_u64(line, community.label);
      line += " size=";
      append_u64(line, community.size);
      line += " of=";
      append_u64(line, community.communities);
      break;
    case QueryKind::kInfluence:
      for (const auto& pick : influence.picks) {
        line += ' ';
        append_u64(line, pick.node);
        line += ':';
        append_u64(line, pick.gain);
      }
      line += " covered=";
      append_u64(line, influence.covered);
      break;
  }
  return line;
}

namespace {

/// Parses one line into `step`; returns false for blanks and comments.
/// `allow_ingest` gates the live-only `ingest` directive.
bool parse_step(const std::string& line, std::size_t line_no,
                bool allow_ingest, WorkloadStep& step) {
  std::istringstream fields(line);
  std::string op;
  if (!(fields >> op) || op[0] == '#') return false;

  step = WorkloadStep{};
  Query& q = step.query;
  std::string a, b, c, extra;
  if (op == "ingest") {
    if (!allow_ingest) {
      bad_line(line_no, "ingest lines need live replay (san_tool live)");
    }
    step.ingest = true;
    if (!(fields >> a)) bad_line(line_no, "'" + op + "' expects TIP");
    step.tip = parse_time(a, line_no);
  } else if (op == "linkrec" || op == "attrs") {
    q.kind = op == "linkrec" ? QueryKind::kLinkRec : QueryKind::kAttrInfer;
    if (!(fields >> a >> b >> c)) {
      bad_line(line_no, "'" + op + "' expects TIME USER K");
    }
    q.time = parse_time(a, line_no, &q.now);
    q.user = parse_node(b, line_no, "user");
    q.k = parse_k(c, line_no);
  } else if (op == "ego" || op == "sybil" || op == "community") {
    q.kind = op == "ego"     ? QueryKind::kEgoMetrics
             : op == "sybil" ? QueryKind::kSybil
                             : QueryKind::kCommunity;
    if (!(fields >> a >> b)) {
      bad_line(line_no, "'" + op + "' expects TIME USER");
    }
    q.time = parse_time(a, line_no, &q.now);
    q.user = parse_node(b, line_no, "user");
  } else if (op == "recip") {
    q.kind = QueryKind::kReciprocity;
    if (!(fields >> a >> b >> c)) {
      bad_line(line_no, "'" + op + "' expects TIME SRC DST");
    }
    q.time = parse_time(a, line_no, &q.now);
    q.user = parse_node(b, line_no, "src");
    q.other = parse_node(c, line_no, "dst");
  } else if (op == "influence") {
    q.kind = QueryKind::kInfluence;
    if (!(fields >> a >> b)) {
      bad_line(line_no, "'" + op + "' expects TIME K [SEED...]");
    }
    q.time = parse_time(a, line_no, &q.now);
    q.k = parse_k(b, line_no);
    while (fields >> c) q.seeds.push_back(parse_node(c, line_no, "seed"));
    return true;  // variable arity: every remaining token was consumed
  } else {
    bad_line(line_no, "unknown query kind '" + op + "'");
  }
  if (fields >> extra) bad_line(line_no, "trailing token '" + extra + "'");
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read workload file " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

}  // namespace

std::vector<Query> parse_workload(const std::string& text) {
  std::vector<Query> queries;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  WorkloadStep step;
  while (std::getline(stream, line)) {
    ++line_no;
    if (parse_step(line, line_no, /*allow_ingest=*/false, step)) {
      queries.push_back(step.query);
    }
  }
  return queries;
}

std::vector<WorkloadStep> parse_live_workload(const std::string& text) {
  std::vector<WorkloadStep> steps;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  WorkloadStep step;
  while (std::getline(stream, line)) {
    ++line_no;
    if (parse_step(line, line_no, /*allow_ingest=*/true, step)) {
      steps.push_back(step);
    }
  }
  return steps;
}

bool parse_workload_line(const std::string& line, std::size_t line_no,
                         WorkloadStep& step) {
  return parse_step(line, line_no, /*allow_ingest=*/true, step);
}

std::vector<Query> load_workload(const std::string& path) {
  return parse_workload(read_file(path));
}

std::vector<WorkloadStep> load_live_workload(const std::string& path) {
  return parse_live_workload(read_file(path));
}

}  // namespace san::serve

#include "serve/query.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/parse.hpp"

namespace san::serve {
namespace {

void append_double(std::string& line, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  line += buffer;
}

void append_u64(std::string& line, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  line += buffer;
}

[[noreturn]] void bad_line(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("workload line " + std::to_string(line_no) +
                              ": " + what);
}

double parse_time(const std::string& token, std::size_t line_no) {
  double value = 0.0;
  if (!core::parse_double_strict(token.c_str(), value)) {
    bad_line(line_no, "malformed time '" + token + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line_no,
                        const char* what) {
  std::uint64_t value = 0;
  if (!core::parse_u64_strict(token.c_str(), value)) {
    bad_line(line_no, std::string("malformed ") + what + " '" + token + "'");
  }
  return value;
}

NodeId parse_node(const std::string& token, std::size_t line_no,
                  const char* what) {
  const std::uint64_t value = parse_u64(token, line_no, what);
  if (value > 0xffffffffULL) bad_line(line_no, std::string(what) + " too big");
  return static_cast<NodeId>(value);
}

}  // namespace

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kLinkRec:
      return "linkrec";
    case QueryKind::kAttrInfer:
      return "attrs";
    case QueryKind::kEgoMetrics:
      return "ego";
    case QueryKind::kReciprocity:
      return "recip";
  }
  return "?";
}

std::string QueryResult::to_line(const Query& query) const {
  std::string line = to_string(kind);
  line += " t=";
  append_double(line, query.time);
  line += " u=";
  append_u64(line, query.user);
  if (kind == QueryKind::kReciprocity) {
    line += " v=";
    append_u64(line, query.other);
  }
  if (!ok) {
    line += " ERR unknown-node";
    return line;
  }
  switch (kind) {
    case QueryKind::kLinkRec:
      for (const auto& rec : recommendations) {
        line += ' ';
        append_u64(line, rec.candidate);
        line += ':';
        append_double(line, rec.score);
      }
      break;
    case QueryKind::kAttrInfer:
      for (const auto& pred : predictions) {
        line += ' ';
        append_u64(line, pred.attribute);
        line += ':';
        append_double(line, pred.score);
      }
      break;
    case QueryKind::kEgoMetrics:
      line += " out=";
      append_u64(line, ego.out_degree);
      line += " in=";
      append_u64(line, ego.in_degree);
      line += " deg=";
      append_u64(line, ego.degree);
      line += " mutual=";
      append_u64(line, ego.mutual_degree);
      line += " attrs=";
      append_u64(line, ego.attribute_count);
      line += " twohop=";
      append_u64(line, ego.two_hop_count);
      break;
    case QueryKind::kReciprocity:
      line += link_present ? (already_mutual ? " mutual" : " oneway")
                           : " nolink";
      line += " structural=";
      append_double(line, reciprocity.structural);
      line += " san=";
      append_double(line, reciprocity.san);
      break;
  }
  return line;
}

std::vector<Query> parse_workload(const std::string& text) {
  std::vector<Query> queries;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string op;
    if (!(fields >> op) || op[0] == '#') continue;

    std::string a, b, c, extra;
    Query q;
    if (op == "linkrec" || op == "attrs") {
      q.kind = op == "linkrec" ? QueryKind::kLinkRec : QueryKind::kAttrInfer;
      if (!(fields >> a >> b >> c)) bad_line(line_no, "expected TIME USER K");
      q.time = parse_time(a, line_no);
      q.user = parse_node(b, line_no, "user");
      const std::uint64_t k = parse_u64(c, line_no, "k");
      if (k == 0 || k > 0xffffffffULL) bad_line(line_no, "k out of range");
      q.k = static_cast<std::uint32_t>(k);
    } else if (op == "ego") {
      q.kind = QueryKind::kEgoMetrics;
      if (!(fields >> a >> b)) bad_line(line_no, "expected TIME USER");
      q.time = parse_time(a, line_no);
      q.user = parse_node(b, line_no, "user");
    } else if (op == "recip") {
      q.kind = QueryKind::kReciprocity;
      if (!(fields >> a >> b >> c)) bad_line(line_no, "expected TIME SRC DST");
      q.time = parse_time(a, line_no);
      q.user = parse_node(b, line_no, "src");
      q.other = parse_node(c, line_no, "dst");
    } else {
      bad_line(line_no, "unknown query kind '" + op + "'");
    }
    if (fields >> extra) bad_line(line_no, "trailing tokens");
    queries.push_back(q);
  }
  return queries;
}

std::vector<Query> load_workload(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read workload file " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return parse_workload(text.str());
}

}  // namespace san::serve

#include "serve/query_engine.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/parallel.hpp"
#include "core/simd/simd.hpp"
#include "obs/trace.hpp"

namespace san::serve {
namespace {

/// Per-lane execution state: the apps' dense-array scratch plus reusable
/// ego-metrics flags. Thread-local so a serving loop allocates only while
/// the arrays are still growing; every helper restores the all-zero
/// invariant, so reuse cannot leak state between queries (which is what
/// keeps batch results byte-identical at any thread count).
struct ServeScratch {
  apps::RecommendScratch recommend;
  apps::InferenceScratch inference;
  std::vector<std::uint8_t> sybil_flags;     // all-zero between queries
  std::vector<NodeId> sybil_touched;
  apps::InfluenceScratch influence;
};

/// The derived-state handles one snapshot group executes against —
/// resolved through the cache's side-cache once per group, only for the
/// kinds the group actually contains.
struct DerivedHandles {
  std::shared_ptr<const apps::SybilLimit> sybil;
  std::shared_ptr<const CommunityState> community;
  std::shared_ptr<const InfluenceState> influence;
};

DerivedHandles resolve_derived(SnapshotCache& cache,
                               const std::shared_ptr<const SanSnapshot>& snap,
                               const QueryEngineOptions& options,
                               bool need_sybil, bool need_community,
                               bool need_influence) {
  DerivedHandles handles;
  if (need_sybil) {
    handles.sybil = cache.derived().sybil(snap, options.derived.sybil);
  }
  if (need_community) {
    handles.community =
        cache.derived().community(snap, options.derived.community);
  }
  if (need_influence) handles.influence = cache.derived().influence(snap);
  return handles;
}

ServeScratch& lane_scratch() {
  thread_local ServeScratch scratch;
  return scratch;
}

EgoMetrics ego_metrics(const SanSnapshot& snap, NodeId u,
                       apps::RecommendScratch& scratch) {
  EgoMetrics m;
  const auto& g = snap.social;
  m.out_degree = g.out_degree(u);
  m.in_degree = g.in_degree(u);
  m.degree = g.degree(u);
  m.attribute_count = snap.attributes_of(u).size();
  // v reciprocal iff v ∈ out(u) ∩ in(u) — one intersection instead of a
  // binary search per out-neighbor.
  m.mutual_degree = core::simd::intersect_count(g.out(u), g.in(u));

  // Distinct nodes at distance exactly 2 over the undirected view, via the
  // same dense seen/excluded flags the recommender uses.
  const std::size_t n = snap.social_node_count();
  if (scratch.seen.size() < n) {
    scratch.score.resize(n, 0.0);
    scratch.seen.resize(n, 0);
    scratch.excluded.resize(n, 0);
  }
  scratch.touched.clear();
  const auto ego_neighbors = g.neighbors(u);
  scratch.excluded[u] = 1;
  for (const NodeId w : ego_neighbors) scratch.excluded[w] = 1;
  for (const NodeId w : ego_neighbors) {
    for (const NodeId c : g.neighbors(w)) {
      if (scratch.seen[c]) continue;
      scratch.seen[c] = 1;
      scratch.touched.push_back(c);
      if (!scratch.excluded[c]) ++m.two_hop_count;
    }
  }
  for (const NodeId c : scratch.touched) scratch.seen[c] = 0;
  for (const NodeId w : ego_neighbors) scratch.excluded[w] = 0;
  scratch.excluded[u] = 0;
  return m;
}

QueryResult execute(const SanSnapshot& snap, const Query& query,
                    const QueryEngineOptions& options,
                    const DerivedHandles& derived, ServeScratch& scratch) {
  QueryResult result;
  result.kind = query.kind;
  const std::size_t n = snap.social_node_count();
  if (query.user >= n ||
      (query.kind == QueryKind::kReciprocity && query.other >= n)) {
    return result;  // ok stays false: subject unknown at this snapshot
  }
  if (query.kind == QueryKind::kInfluence) {
    for (const NodeId s : query.seeds) {
      if (s >= n) return result;  // ok stays false: unknown seed
    }
  }
  result.ok = true;
  switch (query.kind) {
    case QueryKind::kLinkRec:
      apps::recommend_friends_into(snap, query.user, query.k,
                                   options.link_weights, scratch.recommend,
                                   result.recommendations);
      break;
    case QueryKind::kAttrInfer: {
      auto inference = options.inference;
      inference.top_k = query.k;
      apps::rank_attribute_candidates(snap, query.user,
                                      apps::kNoHeldOutAttribute, inference,
                                      scratch.inference, result.predictions);
      break;
    }
    case QueryKind::kEgoMetrics:
      result.ego = ego_metrics(snap, query.user, scratch.recommend);
      break;
    case QueryKind::kReciprocity:
      result.reciprocity = apps::score_reciprocity(
          snap, query.user, query.other, options.reciprocity_weights);
      result.link_present = snap.social.has_edge(query.user, query.other);
      result.already_mutual =
          result.link_present && snap.social.has_edge(query.other, query.user);
      break;
    case QueryKind::kSybil:
      result.sybil = derived.sybil->evaluate_region(
          query.user, scratch.sybil_flags, scratch.sybil_touched);
      break;
    case QueryKind::kCommunity: {
      const CommunityState& state = *derived.community;
      result.community.label = state.result.label[query.user];
      result.community.size = state.size[result.community.label];
      result.community.communities = state.result.community_count;
      break;
    }
    case QueryKind::kInfluence:
      result.influence = apps::influence_maximize(
          snap.social, query.seeds, query.k, scratch.influence,
          derived.influence->first_pick);
      break;
  }
  return result;
}

/// Which derived kinds a span of admission indices needs.
void scan_needs(std::span<const Query> queries,
                std::span<const std::uint32_t> indices, bool& need_sybil,
                bool& need_community, bool& need_influence) {
  need_sybil = need_community = need_influence = false;
  for (const std::uint32_t i : indices) {
    switch (queries[i].kind) {
      case QueryKind::kSybil:
        need_sybil = true;
        break;
      case QueryKind::kCommunity:
        need_community = true;
        break;
      case QueryKind::kInfluence:
        need_influence = true;
        break;
      default:
        break;
    }
  }
}

}  // namespace

QueryEngine::QueryEngine(SnapshotCache& cache, QueryEngineOptions options)
    : cache_(cache), options_(std::move(options)) {}

QueryResult QueryEngine::run_single(const Query& query) {
  const auto snap = cache_.at(query.time);
  const DerivedHandles derived = resolve_derived(
      cache_, snap, options_, query.kind == QueryKind::kSybil,
      query.kind == QueryKind::kCommunity,
      query.kind == QueryKind::kInfluence);
  obs::ScopedTimer timer(
      query_ns_[static_cast<std::size_t>(query.kind)].get());
  return execute(*snap, query, options_, derived, lane_scratch());
}

void QueryEngine::register_metrics(obs::Registry& registry,
                                   const std::string& prefix) const {
  for (std::size_t k = 0; k < query_ns_.size(); ++k) {
    registry.attach_histogram(
        prefix + ".query." + to_string(static_cast<QueryKind>(k)),
        query_ns_[k]);
  }
  registry.attach_histogram(prefix + ".batch", batch_ns_);
}

std::vector<QueryResult> QueryEngine::run_batch(
    std::span<const Query> queries) {
  // Admission-to-completion: the batch clock starts here, before grouping,
  // and stops when every result slot is filled.
  obs::TraceSpan batch_span("serve.run_batch");
  obs::ScopedTimer batch_timer(batch_ns_.get());
  std::vector<QueryResult> results(queries.size());

  // Group admission indices by snapshot time, first-appearance order, so
  // each distinct day is resolved through the cache exactly once.
  std::vector<std::pair<double, std::vector<std::uint32_t>>> groups;
  std::unordered_map<double, std::size_t> group_of;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto [it, inserted] =
        group_of.try_emplace(queries[i].time, groups.size());
    if (inserted) groups.push_back({queries[i].time, {}});
    groups[it->second].second.push_back(static_cast<std::uint32_t>(i));
  }

  // Resolve distinct times one WINDOW at a time, one lane per time: the
  // cache materializes cold days CONCURRENTLY (its misses build outside
  // the cache lock), so a batch spanning many cold days is no longer
  // bounded by one serial materialization chain. The window is the cache
  // capacity: holding more handles than that would defeat the cache's own
  // memory bound (evicted snapshots stay alive through their shared_ptr).
  // Each distinct time is still resolved exactly once per batch, and
  // snapshot content is identical whichever lane builds it, so results
  // stay byte-identical.
  //
  // Small query grain: per-query cost is wildly skewed (hub egos
  // dominate), and determinism never depends on the split — each query
  // only writes its own admission slot.
  constexpr std::size_t kQueryGrain = 16;
  const std::size_t window = std::max<std::size_t>(cache_.capacity(), 1);
  std::vector<std::shared_ptr<const SanSnapshot>> snapshots;
  for (std::size_t g0 = 0; g0 < groups.size(); g0 += window) {
    const std::size_t count = std::min(window, groups.size() - g0);
    snapshots.assign(count, nullptr);
    core::parallel_for(
        count,
        [&](std::size_t j) { snapshots[j] = cache_.at(groups[g0 + j].first); },
        /*grain=*/1);
    for (std::size_t j = 0; j < count; ++j) {
      const auto& snap = snapshots[j];
      const auto& indices = groups[g0 + j].second;
      // Derived state resolves ONCE per group, before the data-parallel
      // fan-out, so lanes share one immutable build instead of racing
      // (or privately duplicating) it.
      bool need_sybil = false, need_community = false, need_influence = false;
      scan_needs(queries, indices, need_sybil, need_community,
                 need_influence);
      const DerivedHandles derived =
          resolve_derived(cache_, snap, options_, need_sybil, need_community,
                          need_influence);
      core::parallel_for(
          indices.size(),
          [&](std::size_t i_of) {
            const std::uint32_t i = indices[i_of];
            obs::ScopedTimer timer(
                query_ns_[static_cast<std::size_t>(queries[i].kind)].get());
            results[i] = execute(*snap, queries[i], options_, derived,
                                 lane_scratch());
          },
          kQueryGrain);
    }
  }
  return results;
}

}  // namespace san::serve

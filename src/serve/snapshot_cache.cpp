#include "serve/snapshot_cache.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.hpp"
#include "obs/trace.hpp"
#include "san/live_timeline.hpp"

namespace san::serve {

SnapshotCache::SnapshotCache(const SanTimeline& timeline, std::size_t capacity)
    : timeline_(timeline),
      capacity_(capacity),
      derived_(std::max<std::size_t>(capacity, 1)) {
  if (capacity == 0) {
    throw std::invalid_argument("SnapshotCache: capacity must be >= 1");
  }
}

std::shared_ptr<const SanSnapshot> SnapshotCache::at(double time) {
  if (std::isnan(time)) {
    // NaN != NaN would defeat both the index lookup and eviction's erase,
    // leaking one stale index entry per call. The workload parser already
    // rejects NaN; guard the programmatic path too.
    throw std::invalid_argument("SnapshotCache: time must not be NaN");
  }
  if (live_ != nullptr && time > live_horizon_) {
    // Past the frozen horizon the exact per-day history does not exist —
    // it is being written right now. Resolve against the latest published
    // ingest epoch: one atomic load, never the cache mutex, never a
    // materialization, so queries cannot block on ingest.
    live_hits_->add();
    return live_->tip();
  }

  std::shared_future<Handle> wait_on;
  std::optional<std::promise<Handle>> promise;
  std::unique_ptr<SanTimeline::Materializer> materializer;
  std::function<void(double)> hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = index_.find(time); it != index_.end()) {
      hits_->add();
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
      return it->second->snapshot;
    }
    if (const auto it = inflight_.find(time); it != inflight_.end()) {
      coalesced_->add();
      if (!core::in_parallel_region()) {
        // Another thread is already building this exact time: wait on ITS
        // future (outside the lock) instead of duplicating the work.
        wait_on = it->second;
      }
      // From inside a pool job, waiting could deadlock: the foreign
      // builder may be queued behind THIS job's lock while this lane
      // blocks the job from finishing. Build an unregistered duplicate
      // instead (the registered builder still owns the cache insert).
    } else {
      misses_->add();
      promise.emplace();
      inflight_.emplace(time,
                        std::shared_future<Handle>(promise->get_future()));
      peak_inflight_->update_max(static_cast<std::int64_t>(inflight_.size()));
      hook = miss_hook_;
    }
    if (!wait_on.valid()) {
      if (idle_.empty()) {
        materializer = std::make_unique<SanTimeline::Materializer>(timeline_);
      } else {
        materializer = std::move(idle_.back());
        idle_.pop_back();
      }
    }
  }
  if (wait_on.valid()) return wait_on.get();

  // Cold miss (or in-region duplicate): materialize WITHOUT the lock, so
  // distinct cold times build concurrently. Duplicate requests block on
  // the future registered above, never on the mutex.
  Handle handle;
  try {
    if (hook) hook(time);
    auto snap = std::make_shared<SanSnapshot>();
    {
      obs::TraceSpan span("cache.materialize");
      obs::ScopedTimer timer(materialize_ns_.get());
      materializer->materialize(time, *snap);
    }
    handle = std::move(snap);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (promise) inflight_.erase(time);
      idle_.push_back(std::move(materializer));
    }
    if (promise) promise->set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(materializer));
    if (!promise) return handle;  // unregistered duplicate: no insert
    if (lru_.size() >= capacity_) {
      evictions_->add();
      // Derived state is invalidated WITH its snapshot's eviction, so the
      // side-cache never pins state for days the LRU has given up on.
      derived_.erase(lru_.back().snapshot.get());
      index_.erase(lru_.back().time);
      lru_.pop_back();
    }
    lru_.push_front(Entry{time, handle});
    index_.emplace(time, lru_.begin());
    inflight_.erase(time);
  }
  promise->set_value(handle);
  return handle;
}

std::size_t SnapshotCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

SnapshotCache::Stats SnapshotCache::stats() const {
  Stats out;
  out.hits = hits_->value();
  out.misses = misses_->value();
  out.coalesced = coalesced_->value();
  out.evictions = evictions_->value();
  out.peak_inflight = static_cast<std::uint64_t>(peak_inflight_->value());
  out.live_hits = live_hits_->value();
  out.derived_hits = derived_.hits();
  out.derived_misses = derived_.misses();
  return out;
}

void SnapshotCache::reset_stats() {
  hits_->reset();
  misses_->reset();
  coalesced_->reset();
  evictions_->reset();
  live_hits_->reset();
  peak_inflight_->reset();
  materialize_ns_->reset();
  derived_.reset_stats();
}

void SnapshotCache::clear() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
  }
  derived_.clear();
  reset_stats();
}

void SnapshotCache::register_metrics(obs::Registry& registry,
                                     const std::string& prefix) const {
  registry.attach_counter(prefix + ".hits", hits_);
  registry.attach_counter(prefix + ".misses", misses_);
  registry.attach_counter(prefix + ".coalesced", coalesced_);
  registry.attach_counter(prefix + ".evictions", evictions_);
  registry.attach_counter(prefix + ".live_hits", live_hits_);
  registry.attach_gauge(prefix + ".peak_inflight", peak_inflight_);
  registry.attach_histogram(prefix + ".materialize", materialize_ns_);
  derived_.register_metrics(registry, prefix);
}

void SnapshotCache::bind_live(const LiveTipSource& live) {
  bind_live(live, timeline_.max_time());
}

void SnapshotCache::bind_live(const LiveTipSource& live, double horizon) {
  if (std::isnan(horizon)) {
    throw std::invalid_argument("SnapshotCache: horizon must not be NaN");
  }
  live_ = &live;
  live_horizon_ = horizon;
}

void SnapshotCache::set_miss_hook(std::function<void(double)> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  miss_hook_ = std::move(hook);
}

}  // namespace san::serve

#include "serve/snapshot_cache.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace san::serve {

SnapshotCache::SnapshotCache(const SanTimeline& timeline, std::size_t capacity)
    : timeline_(timeline),
      capacity_(capacity),
      materializer_(timeline) {
  if (capacity == 0) {
    throw std::invalid_argument("SnapshotCache: capacity must be >= 1");
  }
}

std::shared_ptr<const SanSnapshot> SnapshotCache::at(double time) {
  if (std::isnan(time)) {
    // NaN != NaN would defeat both the index lookup and eviction's erase,
    // leaking one stale index entry per call. The workload parser already
    // rejects NaN; guard the programmatic path too.
    throw std::invalid_argument("SnapshotCache: time must not be NaN");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(time); it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
    return it->second->snapshot;
  }
  ++stats_.misses;

  // Materialize into a fresh snapshot. The materializer's scratch arrays
  // ping-pong with the snapshot's CSR buffers, so repeated misses reuse the
  // scratch side's capacity even though each resident snapshot owns its own.
  auto snap = std::make_shared<SanSnapshot>();
  materializer_.materialize(time, *snap);

  if (lru_.size() >= capacity_) {
    ++stats_.evictions;
    index_.erase(lru_.back().time);
    lru_.pop_back();
  }
  lru_.push_front(Entry{time, std::move(snap)});
  index_.emplace(time, lru_.begin());
  return lru_.front().snapshot;
}

std::size_t SnapshotCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SnapshotCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
}

}  // namespace san::serve

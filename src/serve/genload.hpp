// Reproducible scenario-workload generator (`san_tool genload`): instead
// of hand-written traces, benches and tests draw whole workload FAMILIES
// from a seeded model —
//
//   * Zipf-skewed user popularity (rank r drawn ∝ (r+1)^-zipf, ranks
//     mapped to node ids by a seeded shuffle so hot users are scattered
//     across the id space);
//   * diurnal / bursty / uniform arrival processes over [0, horizon]
//     days, arrival times mapped to the snapshot-day grid (floor), so a
//     skewed workload concentrates on few days and stresses the LRU the
//     way real traffic would;
//   * a configurable query-kind mix over all seven served kinds and a
//     read/ingest mix (ingest_fraction > 0 emits `ingest <tip>` lines
//     with strictly increasing tips — live-replay grammar).
//
// Output is the EXISTING workload grammar (serve/query.hpp), byte-
// identical for equal options: `san_tool serve` consumes it unchanged
// when ingest_fraction == 0, `san_tool live` consumes it unchanged always.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "serve/query.hpp"

namespace san::serve {

enum class ArrivalModel : std::uint8_t {
  kUniform = 0,  // flat intensity over the horizon
  kDiurnal = 1,  // within-day sinusoid peak (thinned from uniform)
  kBursty = 2,   // geometric bursts around uniformly placed centers
};

/// Parses "uniform" | "diurnal" | "bursty".
bool parse_arrival(const char* text, ArrivalModel& out);

struct GenloadOptions {
  std::size_t queries = 1000;  // emitted steps (queries + ingest lines)
  std::size_t nodes = 20000;   // user id space [0, nodes)
  std::uint64_t seed = 42;
  double zipf = 0.8;           // popularity skew exponent, >= 0 (0=uniform)
  double horizon = 98.0;       // arrival window [0, horizon] days, > 0
  ArrivalModel arrival = ArrivalModel::kDiurnal;
  double now_fraction = 0.1;     // queries addressing the live tip, [0, 1]
  double ingest_fraction = 0.0;  // steps emitted as ingest lines, [0, 1]
  /// Query-kind mix weights indexed by QueryKind (need not sum to 1;
  /// negative weights are invalid, sum must be > 0).
  std::array<double, kQueryKindCount> mix = {40, 15, 15, 10, 5, 10, 5};
};

/// Parses a "kind:weight,kind:weight,..." mix spec (kinds as in
/// to_string(QueryKind): linkrec/attrs/ego/recip/sybil/community/
/// influence; unnamed kinds get weight 0). Returns false on unknown
/// kinds, malformed or negative weights, or an all-zero mix.
bool parse_mix(const char* text, std::array<double, kQueryKindCount>& out);

/// The whole workload file as one string — byte-identical for equal
/// options (the reproducibility contract genload's tests gate). Throws
/// std::invalid_argument on out-of-range options.
std::string generate_workload(const GenloadOptions& options);

}  // namespace san::serve

// serve::Server — the socket serving front end (`san_tool listen`): an
// epoll-based single-threaded event loop on a loopback TCP listener
// speaking a newline-delimited protocol that IS the existing serve/live
// workload grammar (serve/query.hpp). One query or `ingest` line in, one
// result line out, rendered by the same QueryResult::to_line the file
// replay paths print — so `genload` output pipes straight over a socket
// and a loopback client's response stream is byte-identical to
// `san_tool serve`/`live` over the same lines.
//
// Execution model:
//
//  * Admission batching. Parsed queries from every connection accumulate
//    into one pending batch in arrival order; the batch flushes into
//    QueryEngine::run_batch when it reaches batch_size OR when
//    max_delay_us has elapsed since its first admission, whichever comes
//    first (max_delay_us == 0 flushes after every event-loop pass). The
//    engine's batch==single byte-identity contract makes the flush
//    boundary invisible in the results.
//  * Ingest ordering. An `ingest <tip>` line first flushes the pending
//    batch (queries admitted before the ingest must see the pre-ingest
//    epochs — the same order file replay executes), then invokes the
//    bound ingest handler (`san_tool listen` wires it to LiveReplay +
//    LiveTimeline/ShardedLiveTimeline). Successful ingest produces no
//    response line, matching the file-replay renderer; a failed one (for
//    example a non-advancing tip) produces an `ERR workload line N: ...`
//    line on that connection instead of killing the process.
//  * Write backpressure. Responses append to a bounded per-connection
//    outbound buffer; EAGAIN arms EPOLLOUT and the buffer drains as the
//    socket opens up. A consumer whose buffer exceeds max_outbound_bytes
//    is disconnected and counted (slow_disconnects) — one slow reader
//    must never wedge the loop or grow memory without bound.
//  * Graceful drain. request_drain() (async-signal-safe: one eventfd
//    write, callable from a SIGTERM/SIGINT handler) stops the listener,
//    performs one final read drain of every connection (lines already in
//    the kernel socket buffers — including queries that arrived mid-drain
//    — are accepted and served), flushes the in-flight batch, writes all
//    outbound buffers (bounded by drain_timeout_ms), and returns from
//    run(). No accepted query is ever dropped by a drain.
//
// Protocol edge rules: lines end in '\n' (one optional trailing '\r' is
// stripped); blank lines and '#' comments are skipped; a line longer than
// max_line_bytes gets an ERR line and a disconnect (the framing cannot be
// trusted past it); NUL bytes and malformed tokens take exactly the path
// file replay takes — a bad line's line-numbered std::invalid_argument
// message is echoed back as `ERR <message>`; a half-closed connection's final
// unterminated line is parsed like std::getline would at EOF. Line
// numbers count per connection, so diagnostics match replaying that
// connection's stream as a file.
//
// Telemetry (register_metrics, `server.*` by convention): accepted /
// closed / slow_disconnects / oversize_disconnects / queries / ingests /
// parse_errors / batches / backpressure / dropped_responses counters, an
// open_connections gauge, and two latency histograms — `<p>.turnaround`
// (per-connection: query line read to response line enqueued, the
// server-side SLO number) and `<p>.batch_flush` (run_batch duration per
// flush). Histograms record only while obs::timing_enabled(), like every
// other instrumented site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/query_engine.hpp"

namespace san::serve {

struct ServerOptions {
  /// Listening port on 127.0.0.1; 0 asks the kernel for an ephemeral
  /// port (read it back with Server::port()).
  std::uint16_t port = 0;
  /// Pending-batch flush threshold (queries), >= 1.
  std::size_t batch_size = 1024;
  /// Flush deadline: microseconds after the first admission of a pending
  /// batch before it flushes regardless of size. 0 = flush after every
  /// event-loop pass (minimum latency, smallest batches).
  std::uint64_t max_delay_us = 1000;
  /// A line longer than this (no '\n' seen) is an error + disconnect.
  std::size_t max_line_bytes = 64 * 1024;
  /// Outbound-buffer cap per connection; exceeding it disconnects the
  /// slow consumer (counted, never blocks the loop).
  std::size_t max_outbound_bytes = 1 << 20;
  /// Drain: how long the final write-out may keep retrying EAGAIN
  /// sockets before force-closing the stragglers.
  std::uint64_t drain_timeout_ms = 5000;
  /// When nonzero, SO_SNDBUF for accepted connections (tests shrink it
  /// to force backpressure deterministically).
  int sndbuf_bytes = 0;
};

class Server {
 public:
  struct Stats {
    std::uint64_t accepted = 0;           // connections accepted
    std::uint64_t closed = 0;             // connections closed (any cause)
    std::uint64_t slow_disconnects = 0;   // outbound cap exceeded
    std::uint64_t oversize_disconnects = 0;
    std::uint64_t queries = 0;            // query lines admitted
    std::uint64_t ingests = 0;            // successful ingest lines
    std::uint64_t parse_errors = 0;       // ERR lines sent (parse + ingest)
    std::uint64_t batches = 0;            // run_batch flushes
    std::uint64_t backpressure = 0;       // EAGAIN -> EPOLLOUT arms
    std::uint64_t dropped_responses = 0;  // results whose conn had closed
  };

  /// Ingest hook for `ingest <tip>` lines: return true on success, false
  /// with `error` filled to send `ERR workload line N: <error>` back.
  /// Without a handler every ingest line fails with "no live binding".
  using IngestHandler = std::function<bool(double tip, std::string& error)>;

  /// Binds and listens on 127.0.0.1:options.port immediately (throws
  /// std::runtime_error on socket failures); the loop starts in run().
  /// The engine must outlive the server.
  Server(QueryEngine& engine, ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void set_ingest_handler(IngestHandler handler);

  /// The port actually bound (resolves port 0 to the kernel's choice).
  std::uint16_t port() const { return port_; }

  /// The event loop: blocks the calling thread until a drain completes.
  void run();

  /// Begin graceful drain. Async-signal-safe (one write(2) to an
  /// eventfd) and callable from any thread.
  void request_drain() noexcept;

  Stats stats() const;

  /// Attach the server telemetry under `<prefix>.` (see file comment for
  /// the key schema).
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string in;            // bytes read, not yet consumed as lines
    std::string out;           // response bytes not yet written
    std::size_t out_off = 0;   // written prefix of `out`
    std::size_t line_no = 0;   // per-connection line counter
    std::size_t inflight = 0;  // admitted queries awaiting their response
    bool read_closed = false;  // EOF seen or input poisoned (oversize)
    bool want_write = false;   // EPOLLOUT armed
  };

  void accept_ready();
  void on_readable(Connection& conn);
  void on_writable(Connection& conn);
  void process_line(Connection& conn, std::string line);
  void flush_pending();
  void enqueue(Connection& conn, const std::string& text);
  void try_write(Connection& conn);
  void update_epoll(Connection& conn);
  void close_if_done(Connection& conn);
  void close_connection(Connection& conn);
  void drain_and_stop();

  QueryEngine& engine_;
  ServerOptions options_;
  IngestHandler ingest_handler_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: request_drain() wakes the loop with it
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 16;  // low ids are reserved for the fds
  std::unordered_map<std::uint64_t, Connection> conns_;
  // The pending admission batch: queries contiguous for run_batch, the
  // (connection, admit stamp) rows parallel to them.
  std::vector<Query> pending_;
  struct PendingMeta {
    std::uint64_t conn_id = 0;
    std::uint64_t admit_ns = 0;  // 0 while timing capture is off
  };
  std::vector<PendingMeta> pending_meta_;
  std::uint64_t first_admit_us_ = 0;  // deadline base (monotonic us)
  std::int64_t open_count_ = 0;       // live fds behind open_connections_
  bool draining_ = false;

  // Telemetry cells (lock-free; stats() may be read from other threads).
  std::shared_ptr<obs::Counter> accepted_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> closed_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> slow_disconnects_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> oversize_disconnects_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> queries_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> ingests_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> parse_errors_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> batches_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> backpressure_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> dropped_responses_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Gauge> open_connections_ =
      std::make_shared<obs::Gauge>();
  std::shared_ptr<obs::Histogram> turnaround_ns_ =
      std::make_shared<obs::Histogram>();
  std::shared_ptr<obs::Histogram> batch_flush_ns_ =
      std::make_shared<obs::Histogram>();
};

}  // namespace san::serve

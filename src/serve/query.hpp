// Typed queries and results for the SAN serving engine. Each query names a
// snapshot time (a day on the workload's shared grid) plus the paper-§7
// application it invokes:
//
//   kLinkRec     top-k friend recommendation (common neighbors +
//                type-weighted shared attributes);
//   kAttrInfer   top-k attribute inference for a user (neighborhood vote);
//   kEgoMetrics  degree/reciprocity/attribute counts of one ego;
//   kReciprocity will the one-directional link src -> dst reciprocate?
//   kSybil       accepted-Sybil bound for USER's region (Fig 19a) on the
//                snapshot's cached degree-bounded topology;
//   kCommunity   USER's label + community size from the snapshot's cached
//                label-propagation run (§3.4);
//   kInfluence   frontier-bounded greedy influence seed selection.
//
// Results render to one stable text line each (to_line): the serving CLI
// prints them and the throughput bench compares batch output byte-for-byte
// against the single-query reference path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/attr_inference.hpp"
#include "apps/influence_max.hpp"
#include "apps/linkpred.hpp"
#include "apps/reciprocity_pred.hpp"
#include "apps/sybil.hpp"
#include "san/san.hpp"

namespace san::serve {

enum class QueryKind : std::uint8_t {
  kLinkRec = 0,
  kAttrInfer = 1,
  kEgoMetrics = 2,
  kReciprocity = 3,
  kSybil = 4,
  kCommunity = 5,
  kInfluence = 6,
};

/// One past the largest QueryKind value — per-kind arrays size to this.
inline constexpr std::size_t kQueryKindCount = 7;

const char* to_string(QueryKind kind);

/// One serving request. `user` is the subject (the link source for
/// kReciprocity, whose target is `other`); `k` caps result size for the
/// top-k kinds and is the pick budget for kInfluence, whose optional
/// given seed set rides in `seeds` (kInfluence has no `user`). The
/// workload time token `now` parses to time = +infinity with `now` set:
/// against a static timeline that resolves to the complete network,
/// against a live binding (SnapshotCache::bind_live) to the latest
/// published ingest epoch.
struct Query {
  QueryKind kind = QueryKind::kEgoMetrics;
  double time = 0.0;
  NodeId user = 0;
  NodeId other = 0;
  std::uint32_t k = 0;
  bool now = false;  // rendering flag: the time came from the `now` token
  std::vector<NodeId> seeds;  // kInfluence: given seeds (may be empty)

  bool operator==(const Query&) const = default;
};

struct EgoMetrics {
  std::uint64_t out_degree = 0;
  std::uint64_t in_degree = 0;
  std::uint64_t degree = 0;         // undirected neighbor count
  std::uint64_t mutual_degree = 0;  // out-links that are reciprocated
  std::uint64_t attribute_count = 0;
  std::uint64_t two_hop_count = 0;  // distinct nodes at distance exactly 2

  bool operator==(const EgoMetrics&) const = default;
};

/// kCommunity payload: the subject's community in the snapshot's cached
/// label-propagation run.
struct CommunityMembership {
  std::uint32_t label = 0;        // dense community id of `user`
  std::uint64_t size = 0;         // members sharing that label
  std::uint64_t communities = 0;  // total communities in the snapshot

  bool operator==(const CommunityMembership&) const = default;
};

/// Result of one query. `ok` is false when the subject does not exist at
/// the requested snapshot time (the payload is then empty); batch and
/// single-query paths produce identical results, rendered identically.
struct QueryResult {
  QueryKind kind = QueryKind::kEgoMetrics;
  bool ok = false;
  std::vector<apps::Recommendation> recommendations;      // kLinkRec
  std::vector<apps::AttributePrediction> predictions;     // kAttrInfer
  EgoMetrics ego;                                         // kEgoMetrics
  apps::ReciprocityScore reciprocity;                     // kReciprocity
  bool link_present = false;   // kReciprocity: u -> v existed at `time`
  bool already_mutual = false; // kReciprocity: v -> u also existed
  apps::SybilLimitResult sybil;                           // kSybil
  CommunityMembership community;                          // kCommunity
  apps::InfluenceResult influence;                        // kInfluence

  bool operator==(const QueryResult&) const = default;

  /// Stable one-line rendering (doubles at max round-trip precision).
  std::string to_line(const Query& query) const;
};

/// Parse a workload file of one query per line:
///
///   linkrec   <time> <user> <k>
///   attrs     <time> <user> <k>
///   ego       <time> <user>
///   recip     <time> <src> <dst>
///   sybil     <time> <user>
///   community <time> <user>
///   influence <time> <k> [<seed>...]
///
/// <time> is a snapshot day or the token `now` (the live tip). Blank lines
/// and lines starting with '#' are skipped. Malformed lines — including
/// `ingest` lines, which only live replay accepts — throw
/// std::invalid_argument naming the line number and the offending token.
std::vector<Query> parse_workload(const std::string& text);

/// parse_workload over the contents of `path` (throws std::runtime_error
/// when the file cannot be read).
std::vector<Query> load_workload(const std::string& path);

/// One step of a live-replay workload (san_tool live): either a query, or
/// an `ingest <tip>` directive that advances the live ingest frontier to
/// <tip> before the following queries run.
struct WorkloadStep {
  bool ingest = false;
  double tip = 0.0;  // ingest target tip (ingest steps only)
  Query query;       // valid when !ingest

  bool operator==(const WorkloadStep&) const = default;
};

/// parse_workload plus `ingest <tip>` lines, in admission order.
std::vector<WorkloadStep> parse_live_workload(const std::string& text);

/// Parse ONE line of the live grammar, the entry point the socket server
/// (serve/server.hpp) uses as lines arrive over a connection. Returns
/// false for blank and comment lines (nothing parsed), true with `step`
/// filled otherwise. Malformed lines throw std::invalid_argument carrying
/// exactly the message parse_live_workload would produce for the same
/// line at position `line_no` — the server echoes it back verbatim, so a
/// socket client sees the same line-numbered diagnostics as file replay.
bool parse_workload_line(const std::string& line, std::size_t line_no,
                         WorkloadStep& step);

/// parse_live_workload over the contents of `path`.
std::vector<WorkloadStep> load_live_workload(const std::string& path);

}  // namespace san::serve

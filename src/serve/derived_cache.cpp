#include "serve/derived_cache.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.hpp"

namespace san::serve {

DerivedCache::DerivedCache(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("DerivedCache: capacity must be >= 1");
  }
}

template <typename T, typename Build>
std::shared_ptr<const T> DerivedCache::resolve(
    std::shared_future<std::shared_ptr<const T>> Cell::* slot,
    const Handle& snap, Build&& build) {
  using Ptr = std::shared_ptr<const T>;
  const SanSnapshot* key = snap.get();
  std::optional<std::promise<Ptr>> promise;
  std::shared_future<Ptr> shared;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end() && (it->second->owner.expired() ||
                               it->second->time != snap->time)) {
      // The address carries a different network state now — either the
      // owning snapshot died and the allocator reused its address, or a
      // live timeline recycled this epoch buffer in place (same object,
      // advanced tip). Drop the stale cell.
      lru_.erase(it->second);
      index_.erase(it);
      it = index_.end();
    }
    if (it == index_.end()) {
      if (lru_.size() >= capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
      }
      lru_.push_front(Cell{key, snap, snap->time, {}, {}, {}});
      it = index_.emplace(key, lru_.begin()).first;
    } else {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
    }
    auto& future = (*it->second).*slot;
    if (future.valid()) {
      hits_->add();
      shared = future;
    } else {
      misses_->add();
      promise.emplace();
      future = std::shared_future<Ptr>(promise->get_future());
    }
  }
  if (shared.valid()) {
    if (!core::in_parallel_region() ||
        shared.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
      return shared.get();
    }
    // A pool lane must not block on a foreign in-flight build — the
    // builder may be queued behind this very job. Build a private
    // unregistered copy; the determinism contract makes it identical.
    return build();
  }
  // Miss: build OUTSIDE the mutex so distinct snapshots (and distinct
  // kinds of one snapshot) build concurrently.
  Ptr value;
  try {
    value = build();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = index_.find(key);
      // Reset the slot (so a later request can retry) only if the cell is
      // still ours — it may have been evicted and recreated meanwhile.
      if (it != index_.end() && it->second->owner.lock() == snap &&
          it->second->time == snap->time) {
        (*it->second).*slot = {};
      }
    }
    promise->set_exception(std::current_exception());
    throw;
  }
  promise->set_value(value);
  return value;
}

std::shared_ptr<const apps::SybilLimit> DerivedCache::sybil(
    const Handle& snap, const apps::SybilLimitOptions& options) {
  return resolve<apps::SybilLimit>(&Cell::sybil, snap, [&] {
    return std::make_shared<const apps::SybilLimit>(snap->social, options);
  });
}

std::shared_ptr<const CommunityState> DerivedCache::community(
    const Handle& snap, const apps::CommunityOptions& options) {
  return resolve<CommunityState>(&Cell::community, snap, [&] {
    auto state = std::make_shared<CommunityState>();
    state->result = apps::detect_communities(*snap, options);
    state->size.assign(state->result.community_count, 0);
    for (const std::uint32_t label : state->result.label) {
      ++state->size[label];
    }
    return std::shared_ptr<const CommunityState>(std::move(state));
  });
}

std::shared_ptr<const InfluenceState> DerivedCache::influence(
    const Handle& snap) {
  return resolve<InfluenceState>(&Cell::influence, snap, [&] {
    auto state = std::make_shared<InfluenceState>();
    state->first_pick = apps::best_first_pick(snap->social);
    return std::shared_ptr<const InfluenceState>(std::move(state));
  });
}

void DerivedCache::erase(const SanSnapshot* snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(snapshot);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void DerivedCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::size_t DerivedCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void DerivedCache::reset_stats() {
  hits_->reset();
  misses_->reset();
}

void DerivedCache::register_metrics(obs::Registry& registry,
                                    const std::string& prefix) const {
  registry.attach_counter(prefix + ".derived_hits", hits_);
  registry.attach_counter(prefix + ".derived_misses", misses_);
}

}  // namespace san::serve

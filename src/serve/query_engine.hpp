// Batched query execution over cached snapshots — the serving engine that
// turns the paper's one-shot "implications" programs (link prediction,
// attribute inference, reciprocity prediction, §7) into a high-throughput
// query path.
//
// Execution model: a batch is admitted as an ordered span of queries.
// Distinct snapshot times are resolved through the SnapshotCache in first-
// appearance order (so a day materializes at most once per batch, however
// many queries address it), then each time-group runs data-parallel on the
// src/core/ substrate. Every query is self-contained — per-query scratch
// restores its all-zero invariant after each call and results are written
// to the query's admission slot — so batch output is byte-identical to the
// single-query reference path at any SAN_THREADS count.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/query.hpp"
#include "serve/snapshot_cache.hpp"

namespace san::serve {

struct QueryEngineOptions {
  apps::LinkPredictionWeights link_weights;
  apps::AttributeInferenceOptions inference;  // top_k comes from the query
  apps::ReciprocityWeights reciprocity_weights;
  /// sybil/community builder options for the per-snapshot derived-state
  /// side-cache. Cells are keyed by snapshot only, so every engine sharing
  /// one SnapshotCache must use identical DerivedOptions.
  DerivedOptions derived;
};

class QueryEngine {
 public:
  explicit QueryEngine(SnapshotCache& cache, QueryEngineOptions options = {});

  /// Reference path: resolve the snapshot and execute one query serially.
  QueryResult run_single(const Query& query);

  /// Serving path: execute the batch, returning one result per query in
  /// admission order. Equal to running run_single on each query in turn,
  /// byte-for-byte, at any thread count.
  std::vector<QueryResult> run_batch(std::span<const Query> queries);

  const QueryEngineOptions& options() const { return options_; }

  /// Attach this engine's service-latency telemetry to `registry`:
  /// `<prefix>.query.<kind>` per-query execute latency (one histogram per
  /// QueryKind, named with to_string: linkrec/attrs/ego/recip/sybil/
  /// community/influence) and `<prefix>.batch` admission-to-completion
  /// latency per run_batch call.
  /// Latencies record only while obs::timing_enabled(); attach is
  /// per-instance (two engines under different prefixes stay independent).
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

 private:
  SnapshotCache& cache_;
  QueryEngineOptions options_;
  // One latency histogram per QueryKind, indexed by the enum value, plus
  // whole-batch admission-to-completion. Lock-free per-thread rows, so the
  // data-parallel batch lanes record without contention.
  std::array<std::shared_ptr<obs::Histogram>, kQueryKindCount> query_ns_ =
      [] {
        std::array<std::shared_ptr<obs::Histogram>, kQueryKindCount> a;
        for (auto& h : a) h = std::make_shared<obs::Histogram>();
        return a;
      }();
  std::shared_ptr<obs::Histogram> batch_ns_ =
      std::make_shared<obs::Histogram>();
};

}  // namespace san::serve

// Batched query execution over cached snapshots — the serving engine that
// turns the paper's one-shot "implications" programs (link prediction,
// attribute inference, reciprocity prediction, §7) into a high-throughput
// query path.
//
// Execution model: a batch is admitted as an ordered span of queries.
// Distinct snapshot times are resolved through the SnapshotCache in first-
// appearance order (so a day materializes at most once per batch, however
// many queries address it), then each time-group runs data-parallel on the
// src/core/ substrate. Every query is self-contained — per-query scratch
// restores its all-zero invariant after each call and results are written
// to the query's admission slot — so batch output is byte-identical to the
// single-query reference path at any SAN_THREADS count.
#pragma once

#include <span>
#include <vector>

#include "serve/query.hpp"
#include "serve/snapshot_cache.hpp"

namespace san::serve {

struct QueryEngineOptions {
  apps::LinkPredictionWeights link_weights;
  apps::AttributeInferenceOptions inference;  // top_k comes from the query
  apps::ReciprocityWeights reciprocity_weights;
};

class QueryEngine {
 public:
  explicit QueryEngine(SnapshotCache& cache, QueryEngineOptions options = {});

  /// Reference path: resolve the snapshot and execute one query serially.
  QueryResult run_single(const Query& query);

  /// Serving path: execute the batch, returning one result per query in
  /// admission order. Equal to running run_single on each query in turn,
  /// byte-for-byte, at any thread count.
  std::vector<QueryResult> run_batch(std::span<const Query> queries);

  const QueryEngineOptions& options() const { return options_; }

 private:
  SnapshotCache& cache_;
  QueryEngineOptions options_;
};

}  // namespace san::serve

#include "serve/genload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "core/parse.hpp"
#include "stats/rng.hpp"

namespace san::serve {
namespace {

void append_double(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  out += buffer;
}

[[noreturn]] void bad_option(const char* what) {
  throw std::invalid_argument(std::string("genload: ") + what);
}

void validate(const GenloadOptions& o) {
  if (o.nodes == 0) bad_option("nodes must be > 0");
  if (!(o.zipf >= 0.0)) bad_option("zipf must be >= 0");
  if (!(o.horizon > 0.0)) bad_option("horizon must be > 0");
  if (!(o.now_fraction >= 0.0 && o.now_fraction <= 1.0)) {
    bad_option("now fraction must be in [0, 1]");
  }
  if (!(o.ingest_fraction >= 0.0 && o.ingest_fraction <= 1.0)) {
    bad_option("ingest fraction must be in [0, 1]");
  }
  double total = 0.0;
  for (const double w : o.mix) {
    if (!(w >= 0.0)) bad_option("mix weights must be >= 0");
    total += w;
  }
  if (!(total > 0.0)) bad_option("mix weights must not all be zero");
}

/// Zipf sampler over ranks [0, n): rank r drawn ∝ (r+1)^-theta, ranks
/// mapped to ids by a seeded Fisher-Yates shuffle so popular users are
/// scattered across the id space instead of clustering at id 0.
class ZipfUsers {
 public:
  ZipfUsers(std::size_t n, double theta, stats::Rng perm_rng) : ids_(n) {
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += std::pow(static_cast<double>(r + 1), -theta);
      cdf_.push_back(total);
    }
    for (std::size_t i = 0; i < n; ++i) ids_[i] = static_cast<NodeId>(i);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(ids_[i - 1], ids_[perm_rng.uniform_index(i)]);
    }
  }

  NodeId draw(stats::Rng& rng) const {
    const double u = rng.uniform() * cdf_.back();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const std::size_t rank = std::min<std::size_t>(
        static_cast<std::size_t>(it - cdf_.begin()), ids_.size() - 1);
    return ids_[rank];
  }

 private:
  std::vector<double> cdf_;
  std::vector<NodeId> ids_;
};

/// One arrival time in [0, horizon] under the requested process.
double draw_arrival(const GenloadOptions& o, stats::Rng& rng,
                    double& burst_center) {
  switch (o.arrival) {
    case ArrivalModel::kUniform:
      return o.horizon * rng.uniform();
    case ArrivalModel::kDiurnal: {
      // Thinning: flat proposals accepted with the within-day intensity
      // (1 + 0.8 sin(2π t)) / 1.8, peaking mid-day.
      for (;;) {
        const double t = o.horizon * rng.uniform();
        const double accept =
            (1.0 + 0.8 * std::sin(2.0 * std::numbers::pi * t)) / 1.8;
        if (rng.uniform() < accept) return t;
      }
    }
    case ArrivalModel::kBursty: {
      // Events cluster behind uniformly placed burst centers; a new
      // center opens with probability 1/8 (mean burst length 8) and
      // events trail it by a short exponential offset.
      if (burst_center < 0.0 || rng.uniform() < 0.125) {
        burst_center = o.horizon * rng.uniform();
      }
      const double t = burst_center + rng.exponential(8.0);
      return std::min(t, o.horizon);
    }
  }
  return 0.0;
}

QueryKind draw_kind(const std::array<double, kQueryKindCount>& mix,
                    double total, stats::Rng& rng) {
  double u = rng.uniform() * total;
  for (std::size_t k = 0; k < kQueryKindCount; ++k) {
    u -= mix[k];
    if (u < 0.0) return static_cast<QueryKind>(k);
  }
  return static_cast<QueryKind>(kQueryKindCount - 1);
}

const char* arrival_name(ArrivalModel arrival) {
  switch (arrival) {
    case ArrivalModel::kUniform:
      return "uniform";
    case ArrivalModel::kDiurnal:
      return "diurnal";
    case ArrivalModel::kBursty:
      return "bursty";
  }
  return "?";
}

}  // namespace

bool parse_arrival(const char* text, ArrivalModel& out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "uniform") == 0) out = ArrivalModel::kUniform;
  else if (std::strcmp(text, "diurnal") == 0) out = ArrivalModel::kDiurnal;
  else if (std::strcmp(text, "bursty") == 0) out = ArrivalModel::kBursty;
  else return false;
  return true;
}

bool parse_mix(const char* text, std::array<double, kQueryKindCount>& out) {
  if (text == nullptr || *text == '\0') return false;
  std::array<double, kQueryKindCount> mix{};
  const std::string spec(text);
  std::size_t pos = 0;
  double total = 0.0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) return false;
    const std::string name = item.substr(0, colon);
    double weight = 0.0;
    if (!core::parse_double_strict(item.c_str() + colon + 1, weight) ||
        !(weight >= 0.0)) {
      return false;
    }
    bool known = false;
    for (std::size_t k = 0; k < kQueryKindCount; ++k) {
      if (name == to_string(static_cast<QueryKind>(k))) {
        mix[k] = weight;
        known = true;
        break;
      }
    }
    if (!known) return false;
    total += weight;
    pos = comma + 1;
  }
  if (!(total > 0.0)) return false;
  out = mix;
  return true;
}

std::string generate_workload(const GenloadOptions& options) {
  validate(options);
  stats::Rng rng(options.seed);
  stats::Rng perm_rng = rng.split();
  stats::Rng time_rng = rng.split();
  stats::Rng step_rng = rng.split();
  const ZipfUsers users(options.nodes, options.zipf, perm_rng);
  double mix_total = 0.0;
  for (const double w : options.mix) mix_total += w;

  // Arrival times are drawn i.i.d. from the requested process, then
  // sorted: the emitted trace is time-ordered, which live replay requires
  // (ingest tips must advance) and serve benefits from (day locality).
  std::vector<double> times(options.queries);
  double burst_center = -1.0;
  for (double& t : times) t = draw_arrival(options, time_rng, burst_center);
  std::sort(times.begin(), times.end());

  std::string out = "# genload queries=";
  append_u64(out, options.queries);
  out += " nodes=";
  append_u64(out, options.nodes);
  out += " seed=";
  append_u64(out, options.seed);
  out += " zipf=";
  append_double(out, options.zipf);
  out += " horizon=";
  append_double(out, options.horizon);
  out += " arrival=";
  out += arrival_name(options.arrival);
  out += " now=";
  append_double(out, options.now_fraction);
  out += " ingest=";
  append_double(out, options.ingest_fraction);
  out += '\n';

  double last_tip = 0.0;
  for (const double t : times) {
    if (options.ingest_fraction > 0.0 &&
        step_rng.bernoulli(options.ingest_fraction) && t > last_tip) {
      // Strictly advancing tips only: an arrival that ties the current
      // tip falls through to a query instead.
      out += "ingest ";
      append_double(out, t);
      out += '\n';
      last_tip = t;
      continue;
    }
    const QueryKind kind = draw_kind(options.mix, mix_total, step_rng);
    const bool now = step_rng.bernoulli(options.now_fraction);
    out += to_string(kind);
    out += ' ';
    if (now) {
      out += "now";
    } else {
      append_double(out, std::floor(t));  // snapshot-day grid
    }
    switch (kind) {
      case QueryKind::kLinkRec:
      case QueryKind::kAttrInfer:
        out += ' ';
        append_u64(out, users.draw(step_rng));
        out += ' ';
        append_u64(out, 1 + step_rng.uniform_index(20));
        break;
      case QueryKind::kEgoMetrics:
      case QueryKind::kSybil:
      case QueryKind::kCommunity:
        out += ' ';
        append_u64(out, users.draw(step_rng));
        break;
      case QueryKind::kReciprocity:
        out += ' ';
        append_u64(out, users.draw(step_rng));
        out += ' ';
        append_u64(out, users.draw(step_rng));
        break;
      case QueryKind::kInfluence: {
        out += ' ';
        append_u64(out, 1 + step_rng.uniform_index(4));
        const std::uint64_t seeds = step_rng.uniform_index(4);
        for (std::uint64_t s = 0; s < seeds; ++s) {
          out += ' ';
          append_u64(out, users.draw(step_rng));
        }
        break;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace san::serve

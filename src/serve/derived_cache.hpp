// Typed side-cache of per-snapshot DERIVED serving state — the expensive
// artifacts the sybil/community/influence query kinds need beyond the raw
// snapshot: the degree-bounded SybilLimit topology, a full
// label-propagation community run, and the influence first-pick scan.
// Each is computed at most once per resolved snapshot and shared by every
// query in a batch (and across batches) that addresses the same time.
//
// Keying: cells are keyed by snapshot IDENTITY (the SanSnapshot address),
// not by time — live-tip epochs are not LRU-cached by SnapshotCache and
// have no stable time key. Identity alone is not enough, though, because
// an address can carry DIFFERENT network states over the cache's
// lifetime, two ways:
//   * the owning snapshot died and the allocator handed the address to a
//     new one — caught by a weak_ptr owner guard (expired => drop);
//   * a live timeline RECYCLED a retired epoch buffer in place (same
//     object, same control block, grown content) — invisible to the
//     owner guard, caught by storing the snapshot's `time` in the cell:
//     published tips strictly advance, and resident non-live snapshots
//     are immutable, so `cell.time != snap->time` means the content
//     changed and the cell is dropped on the next lookup.
//
// Eviction: SnapshotCache::at erases a snapshot's cell the moment it
// evicts the snapshot (the coupling the serving layer relies on — derived
// state never outlives its snapshot's residency), and the side-cache
// additionally bounds itself with its own LRU of the same capacity so
// live-tip cells (one per published epoch) cannot accumulate.
//
// Determinism contract: every builder is a deterministic serial function
// of the immutable snapshot and the options fixed at engine construction
// (SybilLimit's projection, seeded label propagation, a max-degree scan),
// so a cell's content is byte-identical WHEREVER it is built — on a cache
// hit, a coalesced wait, or a pool lane's private unregistered copy (a
// lane inside core::in_parallel_region() must not block on a foreign
// build; it rebuilds privately, same bytes). Cells are keyed by snapshot
// only, NOT by options: every engine sharing one SnapshotCache must use
// identical DerivedOptions.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/community.hpp"
#include "apps/influence_max.hpp"
#include "apps/sybil.hpp"
#include "obs/metrics.hpp"
#include "san/snapshot.hpp"

namespace san::serve {

/// Options for the derived builders, fixed per engine (and per cache —
/// see the keying note above).
struct DerivedOptions {
  apps::SybilLimitOptions sybil;
  apps::CommunityOptions community;
};

/// One snapshot's community run plus the per-label member counts the
/// `community` query renders.
struct CommunityState {
  apps::CommunityResult result;
  std::vector<std::uint64_t> size;  // members per dense community id
};

/// One snapshot's influence precomputation: the globally best first seed
/// (apps::best_first_pick), so a no-seed `influence` query never scans
/// all nodes on the serving path.
struct InfluenceState {
  graph::NodeId first_pick = apps::kNoFirstPick;
};

class DerivedCache {
 public:
  explicit DerivedCache(std::size_t capacity);

  /// The derived artifact for `snap`, built on first request. Safe from
  /// any number of threads; duplicate requests coalesce onto the first
  /// build except on a core-substrate pool lane, which builds a private
  /// copy instead of blocking (identical bytes either way).
  std::shared_ptr<const apps::SybilLimit> sybil(
      const std::shared_ptr<const SanSnapshot>& snap,
      const apps::SybilLimitOptions& options);
  std::shared_ptr<const CommunityState> community(
      const std::shared_ptr<const SanSnapshot>& snap,
      const apps::CommunityOptions& options);
  std::shared_ptr<const InfluenceState> influence(
      const std::shared_ptr<const SanSnapshot>& snap);

  /// Drop `snapshot`'s cell, if resident (the SnapshotCache eviction
  /// hook). Outstanding shared_ptrs to the derived state stay valid.
  void erase(const SanSnapshot* snapshot);
  void clear();

  std::size_t size() const;
  std::uint64_t hits() const { return hits_->value(); }
  std::uint64_t misses() const { return misses_->value(); }
  void reset_stats();

  /// Attach `<prefix>.derived_hits` / `<prefix>.derived_misses`.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

 private:
  using Handle = std::shared_ptr<const SanSnapshot>;
  struct Cell {
    const SanSnapshot* key = nullptr;
    std::weak_ptr<const SanSnapshot> owner;  // address-reuse guard
    double time = 0.0;  // epoch-buffer-recycling guard (see keying note)
    // Per-kind build slots: an invalid future means "never requested";
    // a valid one is the (possibly still in-flight) single build.
    std::shared_future<std::shared_ptr<const apps::SybilLimit>> sybil;
    std::shared_future<std::shared_ptr<const CommunityState>> community;
    std::shared_future<std::shared_ptr<const InfluenceState>> influence;
  };

  template <typename T, typename Build>
  std::shared_ptr<const T> resolve(
      std::shared_future<std::shared_ptr<const T>> Cell::* slot,
      const Handle& snap, Build&& build);

  const std::size_t capacity_;
  std::shared_ptr<obs::Counter> hits_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> misses_ = std::make_shared<obs::Counter>();
  mutable std::mutex mutex_;
  std::list<Cell> lru_;  // front = most recently used
  std::unordered_map<const SanSnapshot*, std::list<Cell>::iterator> index_;
};

}  // namespace san::serve

#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <span>
#include <stdexcept>
#include <utility>

namespace san::serve {
namespace {

// epoll user-data ids for the two non-connection descriptors; connection
// ids start at Server::next_conn_id_'s initial value, above both.
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;

std::uint64_t mono_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string errno_string() { return std::strerror(errno); }

void close_retry(int fd) {
  int rc;
  do {
    rc = ::close(fd);
  } while (rc < 0 && errno == EINTR);
}

}  // namespace

Server::Server(QueryEngine& engine, ServerOptions options)
    : engine_(engine), options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("server: socket() failed: " + errno_string());
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string what = "server: cannot listen on 127.0.0.1:" +
                             std::to_string(options_.port) + ": " +
                             errno_string();
    close_retry(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(what);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const std::string what =
        "server: epoll/eventfd setup failed: " + errno_string();
    if (epoll_fd_ >= 0) close_retry(epoll_fd_);
    if (wake_fd_ >= 0) close_retry(wake_fd_);
    close_retry(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    throw std::runtime_error(what);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

Server::~Server() {
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) close_retry(conn.fd);
  }
  if (listen_fd_ >= 0) close_retry(listen_fd_);
  if (epoll_fd_ >= 0) close_retry(epoll_fd_);
  if (wake_fd_ >= 0) close_retry(wake_fd_);
}

void Server::set_ingest_handler(IngestHandler handler) {
  ingest_handler_ = std::move(handler);
}

void Server::request_drain() noexcept {
  const std::uint64_t one = 1;
  ssize_t r;
  do {
    r = ::write(wake_fd_, &one, sizeof one);
  } while (r < 0 && errno == EINTR);
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_->value();
  s.closed = closed_->value();
  s.slow_disconnects = slow_disconnects_->value();
  s.oversize_disconnects = oversize_disconnects_->value();
  s.queries = queries_->value();
  s.ingests = ingests_->value();
  s.parse_errors = parse_errors_->value();
  s.batches = batches_->value();
  s.backpressure = backpressure_->value();
  s.dropped_responses = dropped_responses_->value();
  return s;
}

void Server::register_metrics(obs::Registry& registry,
                              const std::string& prefix) const {
  registry.attach_counter(prefix + ".accepted", accepted_);
  registry.attach_counter(prefix + ".closed", closed_);
  registry.attach_counter(prefix + ".slow_disconnects", slow_disconnects_);
  registry.attach_counter(prefix + ".oversize_disconnects",
                          oversize_disconnects_);
  registry.attach_counter(prefix + ".queries", queries_);
  registry.attach_counter(prefix + ".ingests", ingests_);
  registry.attach_counter(prefix + ".parse_errors", parse_errors_);
  registry.attach_counter(prefix + ".batches", batches_);
  registry.attach_counter(prefix + ".backpressure", backpressure_);
  registry.attach_counter(prefix + ".dropped_responses", dropped_responses_);
  registry.attach_gauge(prefix + ".open_connections", open_connections_);
  registry.attach_histogram(prefix + ".turnaround", turnaround_ns_);
  registry.attach_histogram(prefix + ".batch_flush", batch_flush_ns_);
}

void Server::run() {
  std::vector<epoll_event> events(64);
  while (true) {
    // Sweep connections closed during the previous pass (close only marks
    // fd = -1 so references held across enqueue/flush stay valid).
    for (auto it = conns_.begin(); it != conns_.end();) {
      it = it->second.fd < 0 ? conns_.erase(it) : std::next(it);
    }
    if (draining_) break;

    int timeout_ms = -1;
    if (!pending_.empty()) {
      if (options_.max_delay_us == 0) {
        timeout_ms = 0;
      } else {
        const std::uint64_t now = mono_us();
        const std::uint64_t deadline = first_admit_us_ + options_.max_delay_us;
        timeout_ms = now >= deadline
                         ? 0
                         : static_cast<int>((deadline - now + 999) / 1000);
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("server: epoll_wait failed: " +
                               errno_string());
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        accept_ready();
        continue;
      }
      if (id == kWakeId) {
        std::uint64_t value = 0;
        ssize_t r;
        do {
          r = ::read(wake_fd_, &value, sizeof value);
        } while (r < 0 && errno == EINTR);
        draining_ = true;
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end() || it->second.fd < 0) continue;
      Connection& conn = it->second;
      const std::uint32_t mask = events[i].events;
      if ((mask & EPOLLIN) != 0 && !conn.read_closed) on_readable(conn);
      if (conn.fd >= 0 && (mask & EPOLLOUT) != 0) on_writable(conn);
      if (conn.fd >= 0 && (mask & (EPOLLHUP | EPOLLERR)) != 0 &&
          (mask & EPOLLIN) == 0) {
        // Hard error or full close with nothing readable: the next read
        // observes it (EOF or errno) and closes the connection.
        on_readable(conn);
      }
    }
    if (!pending_.empty() &&
        (options_.max_delay_us == 0 ||
         mono_us() >= first_admit_us_ + options_.max_delay_us)) {
      flush_pending();
    }
  }
  drain_and_stop();
}

void Server::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient per-connection accept error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(int));
    }
    const std::uint64_t id = next_conn_id_++;
    Connection& conn = conns_[id];
    conn.fd = fd;
    conn.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close_retry(fd);
      conns_.erase(id);
      continue;
    }
    accepted_->add();
    open_connections_->set(++open_count_);
  }
}

void Server::on_readable(Connection& conn) {
  char buf[64 * 1024];
  while (conn.fd >= 0 && !conn.read_closed) {
    const ssize_t r = ::read(conn.fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn);
      return;
    }
    if (r == 0) {
      conn.read_closed = true;
      if (!conn.in.empty()) {
        // std::getline's EOF rule: a final unterminated line still parses.
        std::string line;
        line.swap(conn.in);
        process_line(conn, std::move(line));
      }
      // The client finished its stream: serve its queued queries now
      // instead of waiting out the flush deadline, then close below.
      flush_pending();
      break;
    }
    conn.in.append(buf, static_cast<std::size_t>(r));
    std::size_t start = 0;
    std::size_t nl;
    while (conn.fd >= 0 && !conn.read_closed &&
           (nl = conn.in.find('\n', start)) != std::string::npos) {
      process_line(conn, conn.in.substr(start, nl - start));
      start = nl + 1;
    }
    if (conn.fd < 0) return;
    conn.in.erase(0, start);
    if (!conn.read_closed && conn.in.size() > options_.max_line_bytes) {
      // Unterminated line past the cap: framing can't be trusted, so
      // error out and stop reading; the connection closes once the error
      // line (and any earlier responses) are written.
      ++conn.line_no;
      oversize_disconnects_->add();
      enqueue(conn, "ERR workload line " + std::to_string(conn.line_no) +
                        ": line exceeds " +
                        std::to_string(options_.max_line_bytes) + " bytes\n");
      conn.in.clear();
      conn.read_closed = true;
    }
  }
  if (conn.fd < 0) return;
  update_epoll(conn);
  try_write(conn);
  close_if_done(conn);
}

void Server::on_writable(Connection& conn) {
  try_write(conn);
  close_if_done(conn);
}

void Server::process_line(Connection& conn, std::string line) {
  ++conn.line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  WorkloadStep step;
  try {
    if (!parse_workload_line(line, conn.line_no, step)) return;  // blank/#
  } catch (const std::invalid_argument& error) {
    parse_errors_->add();
    enqueue(conn, std::string("ERR ") + error.what() + "\n");
    return;
  }
  if (step.ingest) {
    // Queries admitted before this line must execute against the
    // pre-ingest epochs, exactly as file replay orders them.
    flush_pending();
    std::string error;
    if (!ingest_handler_) {
      error = "no live binding for ingest";
    } else if (ingest_handler_(step.tip, error)) {
      ingests_->add();
      return;
    }
    parse_errors_->add();
    enqueue(conn, "ERR workload line " + std::to_string(conn.line_no) +
                      ": " + error + "\n");
    return;
  }
  if (pending_.empty()) first_admit_us_ = mono_us();
  pending_.push_back(std::move(step.query));
  pending_meta_.push_back(
      {conn.id, obs::timing_enabled() ? obs::now_ns() : 0});
  ++conn.inflight;
  queries_->add();
  if (pending_.size() >= options_.batch_size) flush_pending();
}

void Server::flush_pending() {
  if (pending_.empty()) return;
  const bool timing = obs::timing_enabled();
  const std::uint64_t t0 = timing ? obs::now_ns() : 0;
  const auto results =
      engine_.run_batch(std::span<const Query>(pending_.data(),
                                               pending_.size()));
  const std::uint64_t t1 = timing ? obs::now_ns() : 0;
  if (timing) batch_flush_ns_->record(t1 - t0);
  batches_->add();

  std::vector<std::uint64_t> touched;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto it = conns_.find(pending_meta_[i].conn_id);
    if (it == conns_.end() || it->second.fd < 0) {
      dropped_responses_->add();
      continue;
    }
    Connection& conn = it->second;
    if (conn.inflight > 0) --conn.inflight;
    enqueue(conn, results[i].to_line(pending_[i]) + "\n");
    if (timing && pending_meta_[i].admit_ns != 0) {
      turnaround_ns_->record(t1 - pending_meta_[i].admit_ns);
    }
    if (touched.empty() || touched.back() != pending_meta_[i].conn_id) {
      touched.push_back(pending_meta_[i].conn_id);
    }
  }
  pending_.clear();
  pending_meta_.clear();

  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const std::uint64_t id : touched) {
    const auto it = conns_.find(id);
    if (it == conns_.end() || it->second.fd < 0) continue;
    try_write(it->second);
    close_if_done(it->second);
  }
}

void Server::enqueue(Connection& conn, const std::string& text) {
  if (conn.fd < 0) return;
  conn.out += text;
  if (conn.out.size() - conn.out_off > options_.max_outbound_bytes) {
    slow_disconnects_->add();
    close_connection(conn);
  }
}

void Server::try_write(Connection& conn) {
  while (conn.fd >= 0 && conn.out_off < conn.out.size()) {
    const ssize_t w = ::send(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          backpressure_->add();
          update_epoll(conn);
        }
        return;
      }
      close_connection(conn);
      return;
    }
    conn.out_off += static_cast<std::size_t>(w);
  }
  if (conn.fd < 0) return;
  conn.out.clear();
  conn.out_off = 0;
  if (conn.want_write) {
    conn.want_write = false;
    update_epoll(conn);
  }
}

void Server::update_epoll(Connection& conn) {
  if (conn.fd < 0) return;
  epoll_event ev{};
  ev.events = (conn.read_closed ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
              (conn.want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::close_if_done(Connection& conn) {
  if (conn.fd >= 0 && conn.read_closed && conn.inflight == 0 &&
      conn.out_off >= conn.out.size()) {
    close_connection(conn);
  }
}

void Server::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  close_retry(conn.fd);
  conn.fd = -1;
  conn.in.clear();
  conn.out.clear();
  conn.out_off = 0;
  closed_->add();
  open_connections_->set(--open_count_);
}

void Server::drain_and_stop() {
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    close_retry(listen_fd_);
    listen_fd_ = -1;
  }
  // Final read drain: every line already delivered to the kernel socket
  // buffers — including queries that arrived mid-drain — is accepted.
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0 && !conn.read_closed) on_readable(conn);
  }
  flush_pending();

  // Write-out: keep retrying backpressured sockets until every response
  // is on the wire or the drain timeout expires.
  const std::uint64_t deadline =
      mono_us() + options_.drain_timeout_ms * 1000;
  std::vector<epoll_event> events(64);
  for (;;) {
    bool outstanding = false;
    for (auto& [id, conn] : conns_) {
      if (conn.fd < 0) continue;
      try_write(conn);
      if (conn.fd >= 0 && conn.out_off < conn.out.size()) outstanding = true;
    }
    if (!outstanding) break;
    const std::uint64_t now = mono_us();
    if (now >= deadline) {
      for (auto& [id, conn] : conns_) {
        if (conn.fd >= 0 && conn.out_off < conn.out.size()) {
          slow_disconnects_->add();
          close_connection(conn);
        }
      }
      break;
    }
    const int wait_ms = static_cast<int>(
        std::min<std::uint64_t>(100, (deadline - now) / 1000 + 1));
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), wait_ms);
    if (n < 0 && errno != EINTR) break;
  }
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) close_connection(conn);
  }
  conns_.clear();
}

}  // namespace san::serve

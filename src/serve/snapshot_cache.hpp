// LRU cache of materialized SanSnapshots, the storage layer of the serving
// engine (serve/query_engine.hpp). A SanTimeline makes one snapshot cheap —
// O(links <= t) — but a query workload concentrated on a few popular days
// would still re-materialize the same CSR over and over. The cache keys
// snapshots by their exact query time, hands them out as
// shared_ptr<const SanSnapshot> (an evicted snapshot stays valid for every
// query still holding it), and reuses one SanTimeline::Materializer so
// steady-state misses recycle buffer capacity instead of allocating.
//
// Thread safety: every public method takes an internal mutex, so concurrent
// readers at a warm time share the same immutable snapshot. A miss
// materializes while holding the lock — admission-ordered batches fetch
// each distinct time once, so serving throughput is bounded by query
// execution, not by this lock.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "san/timeline.hpp"

namespace san::serve {

class SnapshotCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// `capacity` >= 1 snapshots are kept resident; the timeline must outlive
  /// the cache.
  SnapshotCache(const SanTimeline& timeline, std::size_t capacity);

  /// The snapshot at exactly `time`, materialized on first use. Times are
  /// compared bit-exactly: query workloads address snapshots by a shared
  /// grid of days, not by free-form floats.
  std::shared_ptr<const SanSnapshot> at(double time);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  Stats stats() const;

  /// Drop every resident snapshot (outstanding shared_ptrs stay valid) and
  /// zero the stats. Benches use this to measure cold-start throughput.
  void clear();

 private:
  struct Entry {
    double time = 0.0;
    std::shared_ptr<const SanSnapshot> snapshot;
  };

  const SanTimeline& timeline_;
  const std::size_t capacity_;

  mutable std::mutex mutex_;
  SanTimeline::Materializer materializer_;  // guarded by mutex_
  std::list<Entry> lru_;                    // front = most recently used
  std::unordered_map<double, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace san::serve

// LRU cache of materialized SanSnapshots, the storage layer of the serving
// engine (serve/query_engine.hpp). A SanTimeline makes one snapshot cheap —
// O(links <= t) — but a query workload concentrated on a few popular days
// would still re-materialize the same CSR over and over. The cache keys
// snapshots by their exact query time and hands them out as
// shared_ptr<const SanSnapshot> (an evicted snapshot stays valid for every
// query still holding it).
//
// Concurrency: the mutex only guards the index — NEVER a materialization.
// A cold miss registers a per-time in-flight shared_future, releases the
// lock, and materializes on the calling thread, so DISTINCT cold times
// build concurrently while duplicate requests for one time coalesce onto
// that time's future (one materialization per time, stampede-proof). The
// one exception: a duplicate request arriving on a core-substrate pool
// lane (core::in_parallel_region()) must not block on a foreign build —
// the builder may be queued behind that very pool job — so it builds a
// private unregistered copy instead of waiting. Materializer scratch sets
// are pooled: steady-state misses recycle buffer capacity, and the pool
// high-water mark equals the peak miss concurrency.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "san/timeline.hpp"
#include "serve/derived_cache.hpp"

namespace san {
class LiveTipSource;
}

namespace san::serve {

class SnapshotCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Requests that found their time already in flight on another
    /// thread: they either waited on that build or — when arriving on a
    /// core-substrate pool lane, where waiting could deadlock — built a
    /// private unregistered copy. Either way no new cache entry resulted.
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
    /// High-water mark of concurrently materializing misses — > 1 proves
    /// cold misses on distinct times overlapped instead of serializing.
    std::uint64_t peak_inflight = 0;
    /// Requests past the live horizon, resolved to the published ingest
    /// epoch with one atomic load (never through the materializing path).
    std::uint64_t live_hits = 0;
    /// Derived-state side-cache traffic (serve/derived_cache.hpp): a hit
    /// means a sybil/community/influence query reused state already built
    /// for its snapshot.
    std::uint64_t derived_hits = 0;
    std::uint64_t derived_misses = 0;
  };

  /// `capacity` >= 1 snapshots are kept resident; the timeline must outlive
  /// the cache.
  SnapshotCache(const SanTimeline& timeline, std::size_t capacity);

  /// The snapshot at exactly `time`, materialized on first use. Times are
  /// compared bit-exactly: query workloads address snapshots by a shared
  /// grid of days, not by free-form floats. Safe to call from any number of
  /// threads; a cold time materializes once however many callers race it.
  std::shared_ptr<const SanSnapshot> at(double time);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  Stats stats() const;

  /// The per-snapshot derived-state side-cache (sybil topology, community
  /// labels, influence first pick). Cells are keyed by snapshot identity
  /// and dropped the moment at() evicts their snapshot; live-tip epochs
  /// get cells too, bounded by the side-cache's own LRU (same capacity).
  DerivedCache& derived() { return derived_; }

  /// One coherent zero-point for every stat, including the lock-free
  /// live_hits path: all counters advance their obs epoch baselines in
  /// one pass (obs/metrics.hpp), replacing the old split reset that
  /// zeroed the mutex-guarded fields and the live-hit atomic separately
  /// (a stats() racing that could see one half reset and not the other).
  void reset_stats();

  /// Drop every resident snapshot (outstanding shared_ptrs stay valid) and
  /// zero the stats. In-flight materializations are not interrupted; each
  /// lands in the cleared cache when it completes. Benches use this to
  /// measure cold-start throughput.
  void clear();

  /// Attach this cache's per-instance telemetry to `registry` under
  /// `prefix`: the Stats counters plus a `<prefix>.materialize` latency
  /// histogram (cold-miss build duration, recorded only while
  /// obs::timing_enabled()). Attach-only — recording never touches the
  /// registry, and two caches registered under different prefixes stay
  /// fully independent.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  /// Observability/test hook, invoked on the materializing thread right
  /// before a cold miss starts building (outside the cache lock). Tests
  /// use it to hold materializations at a barrier and prove that distinct
  /// cold times overlap; pass nullptr to remove.
  void set_miss_hook(std::function<void(double)> hook);

  /// Bind a live ingest frontier: at() resolves every time PAST `horizon`
  /// — including the `now` token, which parses to +infinity — to the live
  /// timeline's latest published epoch with one atomic load, lock-free
  /// with respect to ingest. Times at or before the horizon keep
  /// resolving exactly against the frozen timeline, and nothing is ever
  /// invalidated: history is immutable, and a time past the old tip
  /// simply resolves against the newer epoch on its next request (tip
  /// snapshots are intentionally not LRU-cached — an epoch handle would
  /// go stale on the next publish). `horizon` defaults to the frozen
  /// timeline's max event time; `live` must outlive the cache. Bind
  /// DURING SETUP, before any concurrent at() calls: the binding fields
  /// are read without synchronization on the serve path, so rebinding
  /// while queries are in flight is a data race (and could route a
  /// historical time to the tip). Any LiveTipSource works — LiveTimeline
  /// and ShardedLiveTimeline both publish through the same
  /// atomic-shared_ptr tip.
  void bind_live(const LiveTipSource& live);
  void bind_live(const LiveTipSource& live, double horizon);

 private:
  struct Entry {
    double time = 0.0;
    std::shared_ptr<const SanSnapshot> snapshot;
  };
  using Handle = std::shared_ptr<const SanSnapshot>;

  const SanTimeline& timeline_;
  const std::size_t capacity_;
  const LiveTipSource* live_ = nullptr;
  double live_horizon_ = 0.0;

  // Per-instance telemetry cells (obs/metrics.hpp): lock-free per-thread
  // slots, so the live-hit fast path and stats() never need the mutex.
  // The mutex-path counters (hits/misses/...) are only ever bumped while
  // mutex_ is held, but live on the same substrate so reset_stats() is
  // one coherent epoch cut across all of them.
  std::shared_ptr<obs::Counter> hits_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> misses_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> coalesced_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> evictions_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> live_hits_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Gauge> peak_inflight_ = std::make_shared<obs::Gauge>();
  std::shared_ptr<obs::Histogram> materialize_ns_ =
      std::make_shared<obs::Histogram>();

  DerivedCache derived_;

  mutable std::mutex mutex_;
  // Idle Materializer pool (guarded by mutex_); one is checked out per
  // in-flight miss and returned when it lands.
  std::vector<std::unique_ptr<SanTimeline::Materializer>> idle_;
  std::unordered_map<double, std::shared_future<Handle>> inflight_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<double, std::list<Entry>::iterator> index_;
  std::function<void(double)> miss_hook_;
};

}  // namespace san::serve

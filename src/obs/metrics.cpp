#include "obs/metrics.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace san::obs {

namespace {

std::atomic<bool> g_timing_enabled{false};

}  // namespace

bool timing_enabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

void set_timing_enabled(bool enabled) {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kSlotRows;
  return slot;
}

double Histogram::percentile(double q) const {
  const auto counts = merged();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank, 1-based: the smallest rank whose cumulative share
  // reaches q. ceil() via floating point is safe at these magnitudes
  // (counts are event totals, far below 2^53).
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (before + counts[b] >= rank) {
      // Interpolate by rank position inside the bucket; the midpoint
      // offset keeps single-count buckets at the bucket center and the
      // result strictly inside [lower, upper].
      const double lower = static_cast<double>(bucket_lower(b));
      const double upper = static_cast<double>(bucket_upper(b));
      const double pos = (static_cast<double>(rank - before) - 0.5) /
                         static_cast<double>(counts[b]);
      return lower + pos * (upper - lower);
    }
    before += counts[b];
  }
  return static_cast<double>(bucket_upper(kBuckets - 1));  // unreachable
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::attach_counter(std::string name,
                              std::shared_ptr<Counter> counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[std::move(name)] = std::move(counter);
}

void Registry::attach_gauge(std::string name, std::shared_ptr<Gauge> gauge) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[std::move(name)] = std::move(gauge);
}

void Registry::attach_histogram(std::string name,
                                std::shared_ptr<Histogram> hist) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_[std::move(name)] = std::move(hist);
}

void Registry::attach_fn(std::string name, std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  fns_[std::move(name)] = std::move(fn);
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  // Copy the directory under the lock, evaluate outside it: fn entries
  // may take component mutexes (LiveTimeline::stats()) and must not do so
  // while holding ours.
  std::map<std::string, std::shared_ptr<Counter>> counters;
  std::map<std::string, std::shared_ptr<Gauge>> gauges;
  std::map<std::string, std::shared_ptr<Histogram>> histograms;
  std::map<std::string, std::function<double()>> fns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters = counters_;
    gauges = gauges_;
    histograms = histograms_;
    fns = fns_;
  }
  std::map<std::string, double> flat;
  for (const auto& [name, counter] : counters) {
    flat[name] = static_cast<double>(counter->value());
  }
  for (const auto& [name, gauge] : gauges) {
    flat[name] = static_cast<double>(gauge->value());
  }
  for (const auto& [name, hist] : histograms) {
    flat[name + ".count"] = static_cast<double>(hist->count());
    flat[name + ".p50_us"] = hist->percentile(0.50) / 1000.0;
    flat[name + ".p90_us"] = hist->percentile(0.90) / 1000.0;
    flat[name + ".p99_us"] = hist->percentile(0.99) / 1000.0;
    flat[name + ".p999_us"] = hist->percentile(0.999) / 1000.0;
  }
  for (const auto& [name, fn] : fns) {
    const double value = fn();
    flat[name] = std::isfinite(value) ? value : 0.0;
  }
  return {flat.begin(), flat.end()};
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, hist] : histograms_) hist->reset();
}

bool Registry::write_json(const char* path) const {
  const auto flat = snapshot();
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write stats JSON file '%s'\n", path);
    return false;
  }
  // Every write and the close are checked: fopen succeeding says nothing
  // about a full disk or a revoked descriptor, and a truncated stats file
  // must fail the run, not parse as a smaller one.
  bool ok = std::fputs("{\n", out) >= 0;
  for (std::size_t i = 0; ok && i < flat.size(); ++i) {
    ok = std::fprintf(out, "  \"%s\": %.17g%s\n", flat[i].first.c_str(),
                      flat[i].second, i + 1 < flat.size() ? "," : "") >= 0;
  }
  ok = ok && std::fputs("}\n", out) >= 0;
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "FAIL: short write to stats JSON file '%s'\n", path);
    return false;
  }
  return true;
}

}  // namespace san::obs

// Unified telemetry layer: lock-free metrics primitives + a registry that
// serializes them as flat JSON (the bench::JsonReport conventions).
//
// Design rules, in order:
//
//  1. Observation only. Nothing here may change a served result: metrics
//     are written with relaxed atomics into per-thread cache-line-padded
//     slots, never a lock on a recording path, and every determinism gate
//     (batch==single, delta==naive, epoch oracle) runs unchanged with
//     telemetry enabled at any SAN_THREADS x SAN_SIMD combination.
//  2. Near-zero cost when no sink is attached. Counters are one relaxed
//     fetch_add; latency capture (the only clock reads) is gated behind
//     timing_enabled(), a single relaxed atomic-bool load, so a process
//     that never attaches a sink pays one predictable branch per site
//     (gated: warm serve throughput in bench_serve_throughput).
//  3. Per-instance ownership. Components (SnapshotCache, QueryEngine,
//     LiveTimeline, ...) OWN their metrics as shared_ptr members and only
//     ATTACH them to a Registry on request (register_metrics), so two
//     caches in one process never alias each other's counters and the
//     existing Stats accessor APIs keep returning per-instance numbers.
//
// Histograms are fixed-bucket log-scale (HdrHistogram-style): two buckets
// per octave over the full u64 range, which covers 100ns..100s latencies
// in ns at <= 50% relative bucket width, with exact nearest-rank
// p50/p90/p99/p999 extraction from the merged bucket counts (the reported
// value is interpolated inside the rank's bucket, so it always falls in
// the same bucket as a sorted-vector oracle — tests/test_obs.cpp).
//
// Coherent reset (the registry epoch mechanism): counters and histograms
// never zero their slots — concurrent relaxed adds would race a store and
// lose increments. reset() instead captures the current aggregate as the
// new epoch baseline; value() reports the delta since the last epoch.
// Registry::reset() advances every attached metric's epoch in one
// critical section, giving one coherent zero-point (this replaced
// SnapshotCache's old two-location reset, which zeroed an atomic and the
// mutex-guarded fields non-atomically).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace san::obs {

/// Latency capture switch: when false (the default), instrumented sites
/// skip both steady_clock reads and the histogram write. One relaxed
/// atomic load per site either way.
bool timing_enabled();
void set_timing_enabled(bool enabled);

/// Monotonic nanoseconds (steady_clock), the unit every histogram records.
std::uint64_t now_ns();

/// Per-thread slot rows per metric. Threads hash onto rows by a stable
/// per-thread index; two threads sharing a row still count exactly (the
/// slots are atomics), they just contend a cache line.
inline constexpr std::size_t kSlotRows = 16;

/// Stable per-thread row index in [0, kSlotRows): assigned once per
/// thread from a global counter, cached thread-locally.
std::size_t thread_slot();

/// Lock-free named-counter cell: per-thread padded slots summed at read
/// time, epoch baseline for coherent reset.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    slots_[thread_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum of all slots since the last reset() (saturating at 0 against
  /// adds that race the baseline capture).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& slot : slots_) {
      total += slot.v.load(std::memory_order_relaxed);
    }
    const std::uint64_t base = baseline_.load(std::memory_order_relaxed);
    return total >= base ? total - base : 0;
  }

  /// Epoch cut: value() becomes 0 as of the captured aggregate.
  void reset() {
    std::uint64_t total = 0;
    for (const auto& slot : slots_) {
      total += slot.v.load(std::memory_order_relaxed);
    }
    baseline_.store(total, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kSlotRows> slots_;
  std::atomic<std::uint64_t> baseline_{0};
};

/// Last-writer-wins level with a monotone-max helper (peak trackers).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log-scale histogram over u64 values (nanoseconds by
/// convention): two buckets per octave, per-thread slot rows, exact
/// nearest-rank percentile extraction from the merged counts.
class Histogram {
 public:
  /// 2 buckets/octave over the full u64 range: indices 0..3 are the exact
  /// values 0..3, then index 2e+bit for values with leading bit e.
  static constexpr std::size_t kBuckets = 128;

  /// Monotone bucketing: values 0..3 map to buckets 0..3; a larger v with
  /// leading bit e (2^e <= v < 2^(e+1)) maps to 2e + (second bit of v).
  static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < 4) return static_cast<std::size_t>(v);
    std::size_t e = 63;
    while ((v >> e) == 0) --e;  // e = floor(log2 v), v >= 4 so e >= 2
    return 2 * e + ((v >> (e - 1)) & 1);
  }

  /// Smallest value in bucket `index` (index < kBuckets).
  static std::uint64_t bucket_lower(std::size_t index) noexcept {
    if (index < 4) return index;
    const std::size_t e = index / 2;
    return (std::uint64_t{2} + (index & 1)) << (e - 1);
  }

  /// Largest value in bucket `index` (saturates for the last bucket).
  static std::uint64_t bucket_upper(std::size_t index) noexcept {
    if (index + 1 >= kBuckets) return ~std::uint64_t{0};
    return bucket_lower(index + 1) - 1;
  }

  void record(std::uint64_t v) noexcept {
    rows_[thread_slot()].buckets[bucket_index(v)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Per-bucket counts merged across all thread rows, minus the epoch
  /// baseline (saturating).
  std::array<std::uint64_t, kBuckets> merged() const {
    std::array<std::uint64_t, kBuckets> out{};
    for (const auto& row : rows_) {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        out[b] += row.buckets[b].load(std::memory_order_relaxed);
      }
    }
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t base = baseline_[b];
      out[b] = out[b] >= base ? out[b] - base : 0;
    }
    return out;
  }

  std::uint64_t count() const {
    const auto m = merged();
    std::uint64_t total = 0;
    for (const std::uint64_t c : m) total += c;
    return total;
  }

  /// Nearest-rank percentile (q in (0, 1]) from the merged counts: finds
  /// the bucket holding rank ceil(q * count) and interpolates linearly by
  /// rank position inside it, so the result falls inside the same bucket
  /// a sorted-vector oracle's rank element occupies. 0 when empty.
  double percentile(double q) const;

  /// Epoch cut, as Counter::reset().
  void reset() {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      std::uint64_t total = 0;
      for (const auto& row : rows_) {
        total += row.buckets[b].load(std::memory_order_relaxed);
      }
      baseline_[b] = total;
    }
  }

 private:
  struct alignas(64) Row {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Row, kSlotRows> rows_;
  // Written only under the owner's reset path; racing a reset against
  // concurrent merged() readers is benign (both orders are valid cuts).
  std::array<std::uint64_t, kBuckets> baseline_{};
};

/// Scoped wall-clock capture into a histogram: records elapsed ns on
/// destruction, only when timing was enabled at construction. Histogram
/// may be null (site instrumented but metric not wired).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(timing_enabled() ? histogram : nullptr),
        start_(histogram_ != nullptr ? now_ns() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->record(now_ns() - start_);
  }

 private:
  Histogram* histogram_;
  std::uint64_t start_;
};

/// Name -> metric directory. Components attach shared_ptr-owned metrics
/// (the registry keeps them alive past the component if needed);
/// snapshot() flattens everything into sorted (name, value) pairs —
/// histograms expand to `<name>.count` and `<name>.p50_us` / `.p90_us` /
/// `.p99_us` / `.p999_us` (microseconds) — and write_json() emits them in
/// the same flat-object format as bench::JsonReport, so check_bench.py
/// and the CI artifact tooling consume both interchangeably.
class Registry {
 public:
  /// Process-wide default instance (user-facing binaries attach here).
  static Registry& global();

  void attach_counter(std::string name, std::shared_ptr<Counter> counter);
  void attach_gauge(std::string name, std::shared_ptr<Gauge> gauge);
  void attach_histogram(std::string name, std::shared_ptr<Histogram> hist);
  /// Callback gauge, evaluated at snapshot time (e.g. a component's
  /// mutex-guarded Stats field, or one-shot SIMD dispatch info).
  void attach_fn(std::string name, std::function<double()> fn);

  /// Flat sorted (name, value) view of every attached metric.
  std::vector<std::pair<std::string, double>> snapshot() const;

  /// One coherent epoch cut across every attached counter/histogram/gauge
  /// (fn entries are stateless and unaffected).
  void reset();

  /// snapshot() as a flat JSON object (bench::JsonReport format); false
  /// with a message on stderr when the file cannot be written.
  bool write_json(const char* path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Counter>> counters_;
  std::map<std::string, std::shared_ptr<Gauge>> gauges_;
  std::map<std::string, std::shared_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> fns_;
};

}  // namespace san::obs

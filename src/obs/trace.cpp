#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace san::obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};

struct Event {
  const char* name = nullptr;
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
};

/// One thread's span ring. Only the owning thread writes; export reads a
/// quiesced process, so `head` is a plain relaxed counter, not a fence.
struct Ring {
  std::vector<Event> events = std::vector<Event>(kRingCapacity);
  std::atomic<std::uint64_t> head{0};  // total appends (wraps modulo cap)
  std::uint64_t tid = 0;               // registration order, stable
};

struct Directory {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
};

Directory& directory() {
  static Directory instance;
  return instance;
}

Ring& thread_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto fresh = std::make_shared<Ring>();
    Directory& dir = directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    fresh->tid = dir.rings.size();
    dir.rings.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

}  // namespace

bool tracing_enabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) {
  Ring& ring = thread_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  ring.events[head % kRingCapacity] = Event{name, t0_ns, t1_ns};
  ring.head.store(head + 1, std::memory_order_relaxed);
}

std::uint64_t span_count() {
  Directory& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : dir.rings) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

void clear_spans() {
  Directory& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mutex);
  for (const auto& ring : dir.rings) {
    ring->head.store(0, std::memory_order_relaxed);
  }
}

std::string chrome_trace_json() {
  // Snapshot the ring list, then read each ring's retained tail.
  std::vector<std::shared_ptr<Ring>> rings;
  {
    Directory& dir = directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    rings = dir.rings;
  }
  struct Out {
    Event event;
    std::uint64_t tid;
  };
  std::vector<Out> spans;
  std::uint64_t min_t0 = ~std::uint64_t{0};
  for (const auto& ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t kept = std::min<std::uint64_t>(head, kRingCapacity);
    for (std::uint64_t i = head - kept; i < head; ++i) {
      const Event& event = ring->events[i % kRingCapacity];
      if (event.name == nullptr) continue;
      spans.push_back(Out{event, ring->tid});
      min_t0 = std::min(min_t0, event.t0);
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Out& a, const Out& b) {
                     return a.event.t0 < b.event.t0;
                   });
  std::string json = "{\"traceEvents\": [";
  char buffer[256];
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Event& event = spans[i].event;
    const double ts = static_cast<double>(event.t0 - min_t0) / 1000.0;
    const double dur =
        static_cast<double>(event.t1 >= event.t0 ? event.t1 - event.t0 : 0) /
        1000.0;
    std::snprintf(buffer, sizeof buffer,
                  "%s\n  {\"name\": \"%s\", \"cat\": \"san\", \"ph\": \"X\","
                  " \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %llu}",
                  i == 0 ? "" : ",", event.name, ts, dur,
                  static_cast<unsigned long long>(spans[i].tid));
    json += buffer;
  }
  json += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return json;
}

bool write_chrome_trace(const char* path) {
  const std::string json = chrome_trace_json();
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write trace file '%s'\n", path);
    return false;
  }
  // Checked like the stats export: a full disk or closed descriptor at
  // write/close time must fail loudly, not leave a truncated trace.
  bool ok = std::fputs(json.c_str(), out) >= 0;
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "FAIL: short write to trace file '%s'\n", path);
    return false;
  }
  return true;
}

TraceSpan::TraceSpan(const char* name) noexcept
    : name_(tracing_enabled() ? name : nullptr),
      start_(name_ != nullptr ? now_ns() : 0) {}

TraceSpan::~TraceSpan() {
  if (name_ != nullptr) record_span(name_, start_, now_ns());
}

}  // namespace san::obs

// RAII trace spans recorded into per-thread ring buffers, exportable as
// Chrome trace-event JSON (load the file in chrome://tracing or Perfetto).
//
// Recording rules mirror obs/metrics.hpp: observation only, and near-zero
// cost when tracing is off — a TraceSpan constructor is one relaxed
// atomic-bool load, and only when tracing was enabled at construction
// does it read the clock and (on destruction) append one fixed-size event
// to the CALLING THREAD's ring. Rings never take a lock on the recording
// path; a full ring wraps and keeps the newest events (capacity
// kRingCapacity per thread — a bounded-memory tail, not a complete log).
//
// Span names must be string literals (the ring stores the pointer).
// Export (write_chrome_trace) walks every thread's ring; it is meant for
// a quiesced process — the CLI exports after the workload drains. Rings
// are shared_ptr-owned by both the thread and the global directory, so a
// ring outlives its thread and export never reads freed memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace san::obs {

bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Events retained per thread (newest win once the ring wraps).
inline constexpr std::size_t kRingCapacity = 8192;

/// Append one complete span [t0_ns, t1_ns) named `name` (string literal)
/// to the calling thread's ring. TraceSpan is the normal entry point.
void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns);

/// Total spans recorded since process start (including overwritten ones).
std::uint64_t span_count();

/// Drop every recorded span (quiesced use: tests and bench legs).
void clear_spans();

/// Chrome trace-event JSON of every retained span, ts/dur in microseconds
/// relative to the earliest span: {"traceEvents": [{"name", "cat", "ph":
/// "X", "ts", "dur", "pid", "tid"}, ...]}. Perfetto and chrome://tracing
/// load it directly.
std::string chrome_trace_json();

/// chrome_trace_json() to `path`; false with a message on stderr when the
/// file cannot be written.
bool write_chrome_trace(const char* path);

class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  const char* name_;  // nullptr when tracing was off at construction
  std::uint64_t start_;
};

}  // namespace san::obs

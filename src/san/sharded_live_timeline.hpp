// ShardedLiveTimeline: the multi-writer ingest frontier. LiveTimeline
// (san/live_timeline.hpp) serializes every writer on one mutex and owns
// one monolithic log + index; here the SOCIAL frontier is partitioned
// into S shards by source-node-id range, each with its own log, columnar
// SanTimeline index, Materializer delta state, and mutex — batches routed
// to different shards absorb and advance fully in parallel, with no
// global writer lock on the hot path.
//
// Partition (the id-range rule): node ids are split into fixed-width
// blocks of kShardBlock consecutive ids, striped round-robin across
// shards — owner(u) = (u / kShardBlock) % S. A directed link u->v lands
// in owner(u)'s shard (so both copies of a duplicate pair resolve inside
// one shard log, in one deterministic application order); v may live
// anywhere. Every shard carries the FULL social-join column (joins fan
// out to per-shard inboxes at admission), so shard-local snapshots agree
// on the node-id space and cross-shard endpoints are ordinary ids.
//
// Split state:
//   - per shard: joins + owned social links only. The shard's work
//     snapshot therefore holds exactly the owned rows of the social CSR.
//   - meta (one mutex, held only for admission and stitching): the
//     attribute layer — every join, attribute node, and admitted
//     attribute link in one SocialAttributeNetwork + SanTimeline +
//     Materializer. members_of order is the one log-order-sensitive
//     observable, and keeping the whole attribute column behind the meta
//     admission order preserves it exactly. Links naming ids that do not
//     exist yet are held at the meta level and routed once both
//     endpoints exist (the PR 4/5 deferral machinery then handles
//     time-based activation inside each shard / the attribute timeline).
//
// ingest(batch) = Phase A (meta admission: validate, admit joins to
// every inbox, admit attribute events, route social links by owner) then
// Phase B (apply each routed group under that shard's mutex only). Lock
// order is meta -> inbox, shard -> inbox, and meta -> shards-ascending;
// no path takes meta while holding a shard, so the hierarchy is acyclic.
//
// Epoch clock: one global frontier (max ingested tip). publish() stitches
// the per-shard work snapshots and the attribute work snapshot into a
// single immutable epoch at the frontier time T — all shard mutexes are
// taken (ascending) so every shard is advanced to exactly T, the owned
// out-rows are concatenated by prefix-sum, the in-rows are S-way merged
// (per-shard in-lists are ascending over disjoint owned source sets), and
// the attribute side is copied from the meta work snapshot. The result is
// swapped into the same std::atomic<shared_ptr<const SanSnapshot>>
// readers load — tip() stays one lock-free atomic load, and a held epoch
// is immutable forever. Writers stall during a stitch; readers never do.
//
// Determinism contract (the PR's oracle gate, absolute): every stitched
// epoch is bit-identical — full adjacency spans, members_of order,
// dropped counts, float metrics — to a single-shard
//   SanTimeline(merged_log()).snapshot_at(T)
// rebuild of the merged log, at any SAN_THREADS count and any shard
// count. Social CSR content is order-insensitive (out ascending by
// target, in ascending by source) so the shard concatenation order of
// the social log never shows; the attribute column keeps global meta
// admission order; per-pair duplicate resolution is per-shard-local.
//
// Tip rule: batch.tip must be strictly after the last PUBLISHED epoch
// time (with batches_per_epoch == 1 this degenerates to LiveTimeline's
// strictly-advancing tip). Between publishes, concurrent writers may
// interleave tips freely; the frontier is their running max.
//
// Batch atomicity is per shard: when a publish races an in-flight
// ingest, a batch spanning several shards may land half in one epoch and
// half in the next (each half applied atomically under its shard's
// mutex). Every epoch is still a self-consistent stitch of the logs as
// they stood at that stitch — single-driver flows (the CLI, the bench
// legs) never observe a torn batch.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "san/live_timeline.hpp"
#include "san/san.hpp"
#include "san/timeline.hpp"

namespace san {

struct ShardedLiveTimelineOptions {
  /// Number of ingest shards (>= 1). 1 keeps the sharded machinery but a
  /// single owner — useful as the equivalence baseline.
  std::size_t shards = 1;
  /// Publish cadence, as LiveTimelineOptions::batches_per_epoch.
  std::size_t batches_per_epoch = 1;
  /// Tip of the seed epoch; NaN derives it from the seed's max event time.
  double initial_tip = std::numeric_limits<double>::quiet_NaN();
};

class ShardedLiveTimeline : public LiveTipSource {
 public:
  /// Width of the id blocks striped across shards. Small enough that even
  /// tiny test networks span every shard.
  static constexpr std::size_t kShardBlock = 8;

  using Stats = LiveTimeline::Stats;

  /// Starts with `seed` fully ingested and epoch 0 (the seed's complete
  /// stitched snapshot) published, so tip() never returns null.
  explicit ShardedLiveTimeline(
      const SocialAttributeNetwork& seed = SocialAttributeNetwork{},
      ShardedLiveTimelineOptions options = ShardedLiveTimelineOptions{});
  ShardedLiveTimeline(const ShardedLiveTimeline&) = delete;
  ShardedLiveTimeline& operator=(const ShardedLiveTimeline&) = delete;
  ~ShardedLiveTimeline() override;

  /// Ingest one batch: meta admission, then per-shard application (only
  /// the owning shards' mutexes are taken). Returns the global frontier.
  /// Throws std::invalid_argument on a tip that is NaN or not strictly
  /// after the last published epoch, NaN times, or out-of-order joins —
  /// nothing is admitted on throw.
  double ingest(const IngestBatch& batch);

  /// Stitch and publish the current frontier as a new epoch (no-op when
  /// nothing changed since the last stitch).
  void publish();

  /// The latest stitched epoch: one atomic load, lock-free for readers.
  std::shared_ptr<const SanSnapshot> tip() const override;

  double tip_time() const { return tip()->time; }

  /// Published epoch counter (0 = the seed epoch).
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Aggregated stats. `late_batches` counts shard applications (and
  /// attribute-side publishes) that looked back past an already-applied
  /// time and forced a full shard rebuild; `activated_links` counts held
  /// links routed once their endpoints appeared (a duplicate among them is
  /// also counted rejected at its shard).
  Stats stats() const;

  /// Attach this frontier's ingest telemetry to `registry` under `prefix`,
  /// mirroring LiveTimeline::register_metrics where the phases correspond:
  /// `<prefix>.apply_shard` (per-shard absorb+advance under that shard's
  /// mutex), `<prefix>.stitch` (S-way epoch assembly), and the shared
  /// `<prefix>.ingest_to_publish` / `<prefix>.epoch_gap` latencies plus
  /// the Stats fn gauges — so CLI consumers read the same key schema
  /// whichever frontier backs the live path.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard that owns links sourced at `u` (the id-range rule).
  std::size_t owner_of(NodeId u) const {
    return (u / kShardBlock) % shards_.size();
  }

  /// The merged log: every admitted event of every shard plus the
  /// attribute layer, reassembled into one SocialAttributeNetwork — the
  /// log the determinism contract is stated against. Quiesced access
  /// only (no concurrent ingest/publish).
  SocialAttributeNetwork merged_log() const;

 private:
  struct Shard;

  void apply_shard(Shard& shard, std::span<const TimedSocialEdge> links,
                   double tip);
  void drain_inbox_locked(Shard& shard);
  void stitch_and_publish_locked();

  mutable std::mutex meta_mutex_;  // admission + attribute layer + stitch
  // Attribute layer: all joins + attribute nodes + admitted attribute
  // links, no social links. Its SanTimeline reproduces the oracle's
  // attribute columns exactly (same admission order).
  SocialAttributeNetwork attr_net_;
  std::unique_ptr<SanTimeline> attr_timeline_;
  std::unique_ptr<SanTimeline::Materializer> attr_mat_;
  SanSnapshot attr_work_;
  bool attr_late_ = false;  // attribute events at/below the published time
  double frontier_ = 0.0;   // max ingested tip (>= published_time_)
  double published_time_ = 0.0;
  std::size_t batches_since_publish_ = 0;
  ShardedLiveTimelineOptions options_;
  Stats stats_;  // meta-side counters; shard counters live in each shard
  // Ingest telemetry (obs/metrics.hpp). The tracking timestamps are
  // guarded by meta_mutex_; apply_ns_ records under shard mutexes (its
  // per-thread rows make that contention-free).
  std::shared_ptr<obs::Histogram> apply_ns_ =
      std::make_shared<obs::Histogram>();
  std::shared_ptr<obs::Histogram> stitch_ns_ =
      std::make_shared<obs::Histogram>();
  std::shared_ptr<obs::Histogram> ingest_to_publish_ns_ =
      std::make_shared<obs::Histogram>();
  std::shared_ptr<obs::Histogram> epoch_gap_ns_ =
      std::make_shared<obs::Histogram>();
  std::uint64_t pending_since_ns_ = 0;  // first unpublished batch admission
  std::uint64_t last_publish_ns_ = 0;
  // Held links whose endpoint id does not exist anywhere yet, admission
  // order.
  std::vector<TimedSocialEdge> pending_social_;
  std::vector<TimedAttributeLink> pending_attr_;
  std::vector<double> joins_scratch_;

  std::vector<std::unique_ptr<Shard>> shards_;

  // Mutation counter (Phase A admissions and Phase B applications) so
  // publish() can skip the stitch when nothing changed since the last one.
  std::atomic<std::uint64_t> version_{0};
  std::uint64_t stitched_version_ = 0;

  // Stitch scratch: prefix-sum offsets + target arrays, ping-ponged with
  // the epoch buffers by adopt_sorted_adjacency's swap.
  std::vector<std::uint64_t> stitch_out_off_, stitch_in_off_;
  std::vector<NodeId> stitch_out_tgt_, stitch_in_tgt_;

  // Epoch buffers, recycled exactly like LiveTimeline's pool.
  std::vector<std::shared_ptr<SanSnapshot>> pool_;
  std::atomic<std::shared_ptr<const SanSnapshot>> published_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace san

#include "san/live_timeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace san {
namespace {

[[noreturn]] void bad_batch(const char* what) {
  throw std::invalid_argument(std::string("LiveTimeline::ingest: ") + what);
}

}  // namespace

LiveTimeline::LiveTimeline(const SocialAttributeNetwork& seed,
                           LiveTimelineOptions options)
    : log_(seed),
      timeline_(log_),
      materializer_(timeline_),
      options_(options) {
  if (options_.batches_per_epoch == 0) {
    throw std::invalid_argument(
        "LiveTimeline: batches_per_epoch must be >= 1");
  }
  tip_ = std::isnan(options_.initial_tip) ? timeline_.max_time()
                                          : options_.initial_tip;
  materializer_.advance(tip_, work_);
  std::lock_guard<std::mutex> lock(mutex_);
  publish_locked();  // epoch 0: the seed's complete snapshot
}

double LiveTimeline::ingest(const IngestBatch& batch) {
  obs::TraceSpan ingest_span("live.ingest");
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::isnan(batch.tip) || batch.tip <= tip_) {
    bad_batch("tip must be a number strictly after the current tip");
  }

  // Validate before any mutation so a throw leaves the log unchanged.
  std::vector<double>& joins = joins_scratch_;
  joins.assign(batch.social_nodes.begin(), batch.social_nodes.end());
  std::stable_sort(joins.begin(), joins.end());
  for (const double t : joins) {
    if (std::isnan(t)) bad_batch("NaN social node join time");
  }
  if (!joins.empty() && log_.social_node_count() > 0 &&
      joins.front() < log_.social_node_times().back()) {
    bad_batch("social node join times must not precede already-logged joins");
  }
  for (const auto& a : batch.attribute_nodes) {
    if (std::isnan(a.time)) bad_batch("NaN attribute node time");
  }
  for (const auto& e : batch.social_links) {
    if (std::isnan(e.time)) bad_batch("NaN social link time");
  }
  for (const auto& link : batch.attribute_links) {
    if (std::isnan(link.time)) bad_batch("NaN attribute link time");
  }

  // Any event landing at or before the previous tip sits inside the
  // already-applied region of the indexed log, which the Materializer's
  // delta state cannot express — such a batch pays one full tip rebuild.
  const double prev_tip = tip_;
  bool late = false;

  for (const double t : joins) {
    log_.add_social_node(t);
    ++stats_.ingested_nodes;
  }
  for (const auto& a : batch.attribute_nodes) {
    log_.add_attribute_node(a.type, a.name, a.time);
    ++stats_.ingested_attribute_nodes;
    late |= a.time <= prev_tip;
  }

  const std::size_t n_social = log_.social_node_count();
  const std::size_t n_attr = log_.attribute_node_count();
  const auto apply_social = [&](const TimedSocialEdge& e) {
    if (!log_.add_social_link(e.src, e.dst, e.time)) {
      ++stats_.rejected_links;  // duplicate or self-link
      return false;
    }
    ++stats_.ingested_links;
    late |= e.time <= prev_tip;
    return true;
  };
  const auto apply_attr = [&](const TimedAttributeLink& link) {
    if (!log_.add_attribute_link(link.user, link.attr, link.time)) {
      ++stats_.rejected_links;
      return false;
    }
    ++stats_.ingested_attribute_links;
    late |= link.time <= prev_tip;
    return true;
  };

  // Held links whose missing endpoint id appeared activate first (they
  // were admitted earlier), then the batch's own links.
  std::size_t w = 0;
  for (const auto& e : pending_social_) {
    if (e.src < n_social && e.dst < n_social) {
      if (apply_social(e)) ++stats_.activated_links;
    } else {
      pending_social_[w++] = e;
    }
  }
  pending_social_.resize(w);
  w = 0;
  for (const auto& link : pending_attr_) {
    if (link.user < n_social && link.attr < n_attr) {
      if (apply_attr(link)) ++stats_.activated_links;
    } else {
      pending_attr_[w++] = link;
    }
  }
  pending_attr_.resize(w);

  for (const auto& e : batch.social_links) {
    if (e.src >= n_social || e.dst >= n_social) {
      pending_social_.push_back(e);  // id not created yet: hold
    } else {
      apply_social(e);
    }
  }
  for (const auto& link : batch.attribute_links) {
    if (link.user >= n_social || link.attr >= n_attr) {
      pending_attr_.push_back(link);
    } else {
      apply_attr(link);
    }
  }
  stats_.pending_links = pending_social_.size() + pending_attr_.size();

  // Ingest-to-publish latency starts at the FIRST batch an unpublished
  // work state absorbs — later batches in the same epoch ride the same
  // clock, measuring how stale the oldest admitted-but-invisible data is.
  if (obs::timing_enabled() && pending_since_ns_ == 0) {
    pending_since_ns_ = obs::now_ns();
  }

  // Index the new events, then bring the private work snapshot to the new
  // tip off the serve path — readers keep loading the published epoch.
  {
    obs::TraceSpan span("live.absorb");
    obs::ScopedTimer timer(absorb_ns_.get());
    timeline_.absorb(log_);
  }
  if (late) {
    materializer_.invalidate();
    ++stats_.late_batches;
  }
  {
    obs::TraceSpan span("live.advance");
    obs::ScopedTimer timer(advance_ns_.get());
    materializer_.advance(batch.tip, work_);
  }
  tip_ = batch.tip;
  work_published_ = false;
  ++stats_.batches;
  if (++batches_since_publish_ >= options_.batches_per_epoch) {
    publish_locked();
  }
  return tip_;
}

void LiveTimeline::publish() {
  std::lock_guard<std::mutex> lock(mutex_);
  publish_locked();
}

void LiveTimeline::publish_locked() {
  if (work_published_) {
    batches_since_publish_ = 0;
    return;
  }
  // Recycle a retired epoch buffer no reader holds (pool + nothing else);
  // the currently published buffer is pinned by the atomic itself.
  std::shared_ptr<SanSnapshot> buffer;
  for (const auto& candidate : pool_) {
    if (candidate.use_count() == 1) {
      buffer = candidate;
      break;
    }
  }
  if (!buffer) {
    buffer = std::make_shared<SanSnapshot>();
    pool_.push_back(buffer);
  }
  {
    obs::TraceSpan span("live.publish");
    obs::ScopedTimer timer(publish_ns_.get());
    *buffer = work_;  // deep copy; recycled buffers reuse their capacity
    published_.store(std::shared_ptr<const SanSnapshot>(buffer),
                     std::memory_order_release);
  }
  epoch_.store(stats_.epochs, std::memory_order_release);
  ++stats_.epochs;
  batches_since_publish_ = 0;
  work_published_ = true;
  record_publish_latency_locked();
}

void LiveTimeline::record_publish_latency_locked() {
  if (!obs::timing_enabled()) {
    pending_since_ns_ = 0;
    last_publish_ns_ = 0;
    return;
  }
  const std::uint64_t now = obs::now_ns();
  if (pending_since_ns_ != 0) {
    ingest_to_publish_ns_->record(now - pending_since_ns_);
    pending_since_ns_ = 0;
  }
  if (last_publish_ns_ != 0) {
    epoch_gap_ns_->record(now - last_publish_ns_);
  }
  last_publish_ns_ = now;
}

void LiveTimeline::register_metrics(obs::Registry& registry,
                                    const std::string& prefix) const {
  registry.attach_histogram(prefix + ".absorb", absorb_ns_);
  registry.attach_histogram(prefix + ".advance", advance_ns_);
  registry.attach_histogram(prefix + ".publish", publish_ns_);
  registry.attach_histogram(prefix + ".ingest_to_publish",
                            ingest_to_publish_ns_);
  registry.attach_histogram(prefix + ".epoch_gap", epoch_gap_ns_);
  registry.attach_fn(prefix + ".epochs", [this] {
    return static_cast<double>(stats().epochs);
  });
  registry.attach_fn(prefix + ".batches", [this] {
    return static_cast<double>(stats().batches);
  });
  registry.attach_fn(prefix + ".late_batches", [this] {
    return static_cast<double>(stats().late_batches);
  });
  registry.attach_fn(prefix + ".pending_links", [this] {
    return static_cast<double>(stats().pending_links);
  });
  registry.attach_fn(prefix + ".activated_links", [this] {
    return static_cast<double>(stats().activated_links);
  });
  registry.attach_fn(prefix + ".ingested_links", [this] {
    return static_cast<double>(stats().ingested_links);
  });
  registry.attach_fn(prefix + ".rejected_links", [this] {
    return static_cast<double>(stats().rejected_links);
  });
}

std::shared_ptr<const SanSnapshot> LiveTimeline::tip() const {
  return published_.load(std::memory_order_acquire);
}

LiveTimeline::Stats LiveTimeline::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace san

#include "san/san_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/accumulators.hpp"
#include "core/parallel.hpp"
#include "graph/bfs.hpp"
#include "graph/metrics.hpp"

namespace san {
namespace {

/// Ids of attribute nodes with at least one member — the paper's Omega for
/// attribute clustering. Group i is snap.members_of(populated[i]).
std::vector<AttrId> populated_attribute_ids(const SanSnapshot& snap) {
  std::vector<AttrId> populated;
  populated.reserve(snap.attribute_node_count());
  for (AttrId a = 0; a < snap.attribute_id_count(); ++a) {
    if (!snap.members_of(a).empty()) populated.push_back(a);
  }
  return populated;
}

}  // namespace

double attribute_density(const SanSnapshot& snap) {
  const std::size_t populated = snap.populated_attribute_count();
  if (populated == 0) return 0.0;
  return static_cast<double>(snap.attribute_link_count) /
         static_cast<double>(populated);
}

stats::Histogram attribute_degree_histogram(const SanSnapshot& snap) {
  std::vector<std::uint64_t> degrees(snap.social_node_count());
  core::parallel_for(snap.social_node_count(), [&](std::size_t u) {
    degrees[u] = snap.attribute.attr_degree(static_cast<NodeId>(u));
  });
  return stats::make_histogram(degrees);
}

stats::Histogram attribute_social_degree_histogram(const SanSnapshot& snap) {
  std::vector<std::uint64_t> degrees;
  degrees.reserve(snap.attribute_node_count());
  for (AttrId a = 0; a < snap.attribute_id_count(); ++a) {
    const std::size_t k = snap.attribute.member_count(a);
    if (k > 0) degrees.push_back(k);
  }
  return stats::make_histogram(degrees);
}

double average_attribute_clustering(const SanSnapshot& snap,
                                    const graph::ClusteringOptions& options) {
  // Omega = populated attribute nodes; each group is a member list.
  const auto populated = populated_attribute_ids(snap);
  if (populated.empty()) return 0.0;
  return graph::approx_average_group_clustering(
      snap.social,
      [&](std::size_t i) { return snap.members_of(populated[i]); },
      populated.size(), options);
}

std::vector<std::pair<double, double>> attribute_clustering_by_degree(
    const SanSnapshot& snap, std::size_t samples_per_node, std::uint64_t seed) {
  const auto populated = populated_attribute_ids(snap);
  return graph::group_clustering_by_degree(
      snap.social,
      [&](std::size_t i) { return snap.members_of(populated[i]); },
      populated.size(), samples_per_node, seed);
}

std::vector<std::pair<std::uint64_t, double>> attribute_knn(
    const SanSnapshot& snap) {
  const core::BinnedMean acc = core::parallel_reduce(
      snap.attribute_id_count(), core::BinnedMean{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        core::BinnedMean p;
        for (std::size_t i = begin; i < end; ++i) {
          const auto m = snap.members_of(static_cast<AttrId>(i));
          const std::size_t k = m.size();
          if (k == 0) continue;
          for (const NodeId u : m) {
            p.add(k, static_cast<double>(snap.attribute.attr_degree(u)));
          }
        }
        return p;
      },
      [](core::BinnedMean a, core::BinnedMean b) {
        a += b;
        return a;
      });
  return acc.means_from(1);
}

double attribute_assortativity(const SanSnapshot& snap) {
  // Pearson over attribute links of (social degree of attribute node,
  // attribute degree of social node). Chunked moments, ordered combine.
  const core::PearsonMoments m = core::parallel_reduce(
      snap.attribute_id_count(), core::PearsonMoments{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        core::PearsonMoments p;
        for (std::size_t i = begin; i < end; ++i) {
          const auto members = snap.members_of(static_cast<AttrId>(i));
          const auto x = static_cast<double>(members.size());
          for (const NodeId u : members) {
            p.add(x, static_cast<double>(snap.attribute.attr_degree(u)));
          }
        }
        return p;
      },
      [](core::PearsonMoments a, core::PearsonMoments b) {
        a += b;
        return a;
      });
  return m.correlation();
}

double attribute_effective_diameter(const SanSnapshot& snap,
                                    std::size_t sample_sources, stats::Rng& rng,
                                    double quantile) {
  const auto populated = populated_attribute_ids(snap);
  if (populated.size() < 2) return 0.0;

  // Roots drawn serially from the caller's stream, BFS + scan per root in
  // parallel, per-root histograms merged in root order.
  std::vector<AttrId> root_attrs(sample_sources);
  for (auto& a : root_attrs) {
    a = populated[rng.uniform_index(populated.size())];
  }
  std::vector<std::vector<std::uint64_t>> per_root(sample_sources);
  core::parallel_for(
      sample_sources,
      [&](std::size_t root) {
        const AttrId a = root_attrs[root];
        const auto dist = graph::bfs_distances_multi(
            snap.social, snap.members_of(a), graph::Direction::kOut);
        auto& local = per_root[root];
        // dist(a, b) = min over members(b) of dist + 1.
        for (const AttrId b : populated) {
          if (b == a) continue;
          std::uint32_t best = graph::kUnreachable;
          for (const NodeId v : snap.members_of(b)) {
            best = std::min(best, dist[v]);
          }
          if (best == graph::kUnreachable) continue;
          const std::uint32_t d = best + 1;
          if (d >= local.size()) local.resize(d + 1, 0);
          ++local[d];
        }
      },
      /*grain=*/1);
  std::vector<std::uint64_t> histogram;
  for (const auto& local : per_root) {
    if (local.size() > histogram.size()) histogram.resize(local.size(), 0);
    for (std::size_t d = 0; d < local.size(); ++d) histogram[d] += local[d];
  }
  return graph::interpolated_quantile(histogram, quantile);
}

double social_effective_diameter_sampled(const SanSnapshot& snap,
                                         std::size_t sample_sources,
                                         stats::Rng& rng, double quantile) {
  const auto histogram =
      graph::sampled_distance_histogram(snap.social, sample_sources, rng);
  return graph::interpolated_quantile(histogram, quantile);
}

}  // namespace san

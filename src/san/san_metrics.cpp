#include "san/san_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/metrics.hpp"

namespace san {

double attribute_density(const SanSnapshot& snap) {
  const std::size_t populated = snap.populated_attribute_count();
  if (populated == 0) return 0.0;
  return static_cast<double>(snap.attribute_link_count) /
         static_cast<double>(populated);
}

stats::Histogram attribute_degree_histogram(const SanSnapshot& snap) {
  std::vector<std::uint64_t> degrees;
  degrees.reserve(snap.social_node_count());
  for (const auto& attrs : snap.attributes) degrees.push_back(attrs.size());
  return stats::make_histogram(degrees);
}

stats::Histogram attribute_social_degree_histogram(const SanSnapshot& snap) {
  std::vector<std::uint64_t> degrees;
  degrees.reserve(snap.attribute_node_count());
  for (const auto& m : snap.members) {
    if (!m.empty()) degrees.push_back(m.size());
  }
  return stats::make_histogram(degrees);
}

double average_attribute_clustering(const SanSnapshot& snap,
                                    const graph::ClusteringOptions& options) {
  // Omega = populated attribute nodes; each group is a member list.
  std::vector<const std::vector<NodeId>*> groups;
  groups.reserve(snap.members.size());
  for (const auto& m : snap.members) {
    if (!m.empty()) groups.push_back(&m);
  }
  if (groups.empty()) return 0.0;
  return graph::approx_average_group_clustering(
      snap.social,
      [&](std::size_t i) {
        return std::span<const NodeId>(*groups[i]);
      },
      groups.size(), options);
}

std::vector<std::pair<double, double>> attribute_clustering_by_degree(
    const SanSnapshot& snap, std::size_t samples_per_node, std::uint64_t seed) {
  std::vector<const std::vector<NodeId>*> groups;
  groups.reserve(snap.members.size());
  for (const auto& m : snap.members) {
    if (!m.empty()) groups.push_back(&m);
  }
  return graph::group_clustering_by_degree(
      snap.social,
      [&](std::size_t i) {
        return std::span<const NodeId>(*groups[i]);
      },
      groups.size(), samples_per_node, seed);
}

std::vector<std::pair<std::uint64_t, double>> attribute_knn(const SanSnapshot& snap) {
  std::vector<double> attr_degree_sum;
  std::vector<std::uint64_t> link_cnt;
  for (const auto& m : snap.members) {
    const std::size_t k = m.size();
    if (k == 0) continue;
    if (k >= attr_degree_sum.size()) {
      attr_degree_sum.resize(k + 1, 0.0);
      link_cnt.resize(k + 1, 0);
    }
    for (const NodeId u : m) {
      attr_degree_sum[k] += static_cast<double>(snap.attributes[u].size());
      ++link_cnt[k];
    }
  }
  std::vector<std::pair<std::uint64_t, double>> knn;
  for (std::size_t k = 1; k < attr_degree_sum.size(); ++k) {
    if (link_cnt[k] == 0) continue;
    knn.emplace_back(k, attr_degree_sum[k] / static_cast<double>(link_cnt[k]));
  }
  return knn;
}

double attribute_assortativity(const SanSnapshot& snap) {
  // Pearson over attribute links of (social degree of attribute node,
  // attribute degree of social node).
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  std::uint64_t m_links = 0;
  for (const auto& m : snap.members) {
    const auto x = static_cast<double>(m.size());
    for (const NodeId u : m) {
      const auto y = static_cast<double>(snap.attributes[u].size());
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
      ++m_links;
    }
  }
  if (m_links < 2) return 0.0;
  const auto n = static_cast<double>(m_links);
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

double attribute_effective_diameter(const SanSnapshot& snap,
                                    std::size_t sample_sources, stats::Rng& rng,
                                    double quantile) {
  std::vector<AttrId> populated;
  for (AttrId a = 0; a < snap.members.size(); ++a) {
    if (!snap.members[a].empty()) populated.push_back(a);
  }
  if (populated.size() < 2) return 0.0;

  std::vector<std::uint64_t> histogram;
  for (std::size_t s = 0; s < sample_sources; ++s) {
    const AttrId a = populated[rng.uniform_index(populated.size())];
    const auto& sources = snap.members[a];
    const auto dist = graph::bfs_distances_multi(
        snap.social, std::span<const NodeId>(sources), graph::Direction::kOut);
    // dist(a, b) = min over members(b) of dist + 1.
    for (const AttrId b : populated) {
      if (b == a) continue;
      std::uint32_t best = graph::kUnreachable;
      for (const NodeId v : snap.members[b]) {
        best = std::min(best, dist[v]);
      }
      if (best == graph::kUnreachable) continue;
      const std::uint32_t d = best + 1;
      if (d >= histogram.size()) histogram.resize(d + 1, 0);
      ++histogram[d];
    }
  }
  return graph::interpolated_quantile(histogram, quantile);
}

double social_effective_diameter_sampled(const SanSnapshot& snap,
                                         std::size_t sample_sources,
                                         stats::Rng& rng, double quantile) {
  const auto histogram =
      graph::sampled_distance_histogram(snap.social, sample_sources, rng);
  return graph::interpolated_quantile(histogram, quantile);
}

}  // namespace san

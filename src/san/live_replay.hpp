// LiveReplay: the replay driver that turns an existing (fully logged)
// SocialAttributeNetwork into a live ingest stream — events up to `start`
// become the seed, the rest is handed out as LiveTimeline ingest batches
// in time order. Shared verbatim by `san_tool live`, the randomized
// oracle in tests/test_live_timeline.cpp, and bench_live_ingest, so the
// shipped CLI replays exactly the split the gates verify.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "san/live_timeline.hpp"
#include "san/san.hpp"

namespace san {

/// Splits `net` into a seed (events <= start, plus the WHOLE attribute
/// catalog so ids align with the source network — later creation times
/// stay future-scheduled) and time-sorted remainder streams. Links are
/// delivered as soon as their time passes, including ones whose endpoint
/// id does not exist yet, which the LiveTimeline holds and activates.
struct LiveReplay {
  SocialAttributeNetwork seed;
  std::vector<double> node_times;
  std::vector<TimedSocialEdge> edges;
  std::vector<TimedAttributeLink> links;
  std::size_t next_node = 0, next_edge = 0, next_link = 0;

  LiveReplay(const SocialAttributeNetwork& net, double start) {
    const auto times = net.social_node_times();
    std::size_t seed_nodes = 0;
    while (seed_nodes < times.size() && times[seed_nodes] <= start) {
      seed.add_social_node(times[seed_nodes]);
      ++seed_nodes;
    }
    for (AttrId a = 0; a < net.attribute_node_count(); ++a) {
      seed.add_attribute_node(net.attribute_type(a), net.attribute_name(a),
                              net.attribute_node_time(a));
    }
    for (const auto& e : net.social_log()) {
      if (e.time <= start && e.src < seed_nodes && e.dst < seed_nodes) {
        seed.add_social_link(e.src, e.dst, e.time);
      } else {
        edges.push_back(e);
      }
    }
    for (const auto& link : net.attribute_log()) {
      if (link.time <= start && link.user < seed_nodes) {
        seed.add_attribute_link(link.user, link.attr, link.time);
      } else {
        links.push_back(link);
      }
    }
    node_times.assign(times.begin() + static_cast<std::ptrdiff_t>(seed_nodes),
                      times.end());
    std::stable_sort(edges.begin(), edges.end(),
                     [](const TimedSocialEdge& a, const TimedSocialEdge& b) {
                       return a.time < b.time;
                     });
    std::stable_sort(
        links.begin(), links.end(),
        [](const TimedAttributeLink& a, const TimedAttributeLink& b) {
          return a.time < b.time;
        });
  }

  /// The next ingest batch: every not-yet-delivered event with time <=
  /// tip.
  IngestBatch batch_until(double tip) {
    IngestBatch batch;
    batch.tip = tip;
    while (next_node < node_times.size() && node_times[next_node] <= tip) {
      batch.social_nodes.push_back(node_times[next_node++]);
    }
    while (next_edge < edges.size() && edges[next_edge].time <= tip) {
      batch.social_links.push_back(edges[next_edge++]);
    }
    while (next_link < links.size() && links[next_link].time <= tip) {
      batch.attribute_links.push_back(links[next_link++]);
    }
    return batch;
  }
};

}  // namespace san

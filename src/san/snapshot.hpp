// Snapshot extraction: project the timestamped SAN onto "everything that
// existed by day t", the unit of analysis of the paper's 79 daily crawls.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "san/san.hpp"

namespace san {

/// Immutable snapshot of a SAN at one point in time. Node ids are the same
/// dense ids as the source network (nodes join chronologically).
struct SanSnapshot {
  graph::CsrGraph social;                       // social links with time <= t
  std::vector<std::vector<AttrId>> attributes;  // Γa(u), sorted, per social node
  std::vector<std::vector<NodeId>> members;     // Γs(a), per attribute node
  std::vector<AttributeType> attribute_types;
  std::uint64_t attribute_link_count = 0;
  double time = 0.0;

  std::size_t social_node_count() const { return social.node_count(); }
  std::size_t attribute_node_count() const { return members.size(); }
  std::uint64_t social_link_count() const { return social.edge_count(); }

  /// Attribute nodes with at least one member at this time (the crawled
  /// dataset only contains attributes that appear in some profile).
  std::size_t populated_attribute_count() const;

  std::size_t common_attributes(NodeId u, NodeId v) const;
};

/// Snapshot at time t: social/attribute nodes with join time <= t and links
/// with timestamp <= t.
SanSnapshot snapshot_at(const SocialAttributeNetwork& network, double time);

/// Snapshot of the complete network (t = +infinity).
SanSnapshot snapshot_full(const SocialAttributeNetwork& network);

}  // namespace san

// Snapshot extraction: project the timestamped SAN onto "everything that
// existed by day t", the unit of analysis of the paper's 79 daily crawls.
//
// The attribute layer is a graph::BipartiteCsr — apps read it through the
// span accessors attributes_of(u) (sorted ascending) and members_of(a)
// (link-time order), never through per-node vectors. The attribute id space
// always spans every attribute of the source network so ids stay aligned
// across snapshots; attribute_node_count() counts only the attributes whose
// creation time is <= t, and links that reference a not-yet-joined user or
// a not-yet-created attribute are dropped and surfaced in
// dropped_link_count instead of silently vanishing.
//
// snapshot_at() here is the naive path: it re-scans the full logs on every
// call (O(total links) regardless of t). Evolution studies that materialize
// many snapshots should build a san::SanTimeline (san/timeline.hpp) once
// and sweep it — same results, O(links <= t) per snapshot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_csr.hpp"
#include "graph/csr.hpp"
#include "san/san.hpp"

namespace san {

/// Immutable snapshot of a SAN at one point in time. Node ids are the same
/// dense ids as the source network (nodes join chronologically).
struct SanSnapshot {
  graph::CsrGraph social;           // social links with time <= t
  graph::BipartiteCsr attribute;    // user<->attribute links with time <= t
  std::vector<AttributeType> attribute_types;   // dense attr-id space
  std::vector<std::uint8_t> attribute_created;  // 1 iff creation time <= t
  std::uint64_t attribute_link_count = 0;
  /// Links with time <= t dropped because an endpoint did not exist yet
  /// (user joined or attribute created after t).
  std::uint64_t dropped_link_count = 0;
  std::size_t created_attribute_count = 0;
  double time = 0.0;

  std::size_t social_node_count() const { return social.node_count(); }
  /// Attribute nodes created by `time` (see attribute_id_count for the
  /// id-space size).
  std::size_t attribute_node_count() const { return created_attribute_count; }
  /// Size of the dense attribute id space (all attributes of the source
  /// network, so ids stay aligned across snapshots).
  std::size_t attribute_id_count() const { return attribute.right_count(); }
  std::uint64_t social_link_count() const { return social.edge_count(); }

  /// Γa(u): the attributes of social node u at this time, sorted ascending.
  std::span<const AttrId> attributes_of(NodeId u) const {
    return attribute.attrs_of(u);
  }
  /// Γs(a): the social nodes declaring attribute a, in link-time order.
  std::span<const NodeId> members_of(AttrId a) const {
    return attribute.members_of(a);
  }

  /// Attribute nodes with at least one member at this time (the crawled
  /// dataset only contains attributes that appear in some profile).
  std::size_t populated_attribute_count() const {
    return attribute.populated_right_count();
  }

  std::size_t common_attributes(NodeId u, NodeId v) const {
    return attribute.common_attrs(u, v);
  }
};

/// Snapshot at time t: social/attribute nodes with join time <= t and links
/// with timestamp <= t. Naive path — re-scans the full logs; prefer
/// SanTimeline for sweeps.
SanSnapshot snapshot_at(const SocialAttributeNetwork& network, double time);

/// Snapshot of the complete network (t = +infinity).
SanSnapshot snapshot_full(const SocialAttributeNetwork& network);

}  // namespace san

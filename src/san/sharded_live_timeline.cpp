#include "san/sharded_live_timeline.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "core/parallel.hpp"
#include "obs/trace.hpp"

namespace san {
namespace {

[[noreturn]] void bad_batch(const char* what) {
  throw std::invalid_argument(std::string("ShardedLiveTimeline::ingest: ") +
                              what);
}

}  // namespace

// Per-shard state. `mutex` guards everything below it except the inbox,
// which has its own leaf lock so meta admission can fan a join out to a
// shard that is mid-application without waiting for it.
struct ShardedLiveTimeline::Shard {
  std::mutex mutex;
  std::mutex inbox_mutex;
  std::vector<double> inbox;          // joins admitted, not yet applied
  std::vector<double> inbox_scratch;  // drain buffer, reused
  // All joins + owned social links, no attribute events: the shard's
  // slice of the merged log.
  SocialAttributeNetwork log;
  std::unique_ptr<SanTimeline> timeline;
  std::unique_ptr<SanTimeline::Materializer> mat;
  SanSnapshot work;  // slack-layout snapshot of the owned rows
  double applied_time = 0.0;
  std::uint64_t ingested_links = 0;
  std::uint64_t rejected_links = 0;
  std::uint64_t late_applies = 0;
};

ShardedLiveTimeline::ShardedLiveTimeline(const SocialAttributeNetwork& seed,
                                         ShardedLiveTimelineOptions options)
    : options_(options) {
  if (options_.shards == 0) {
    throw std::invalid_argument("ShardedLiveTimeline: shards must be >= 1");
  }
  if (options_.batches_per_epoch == 0) {
    throw std::invalid_argument(
        "ShardedLiveTimeline: batches_per_epoch must be >= 1");
  }
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Partition the seed: joins fan out to every shard, social links to
  // their owner, the whole attribute layer to the meta network.
  for (const double t : seed.social_node_times()) {
    attr_net_.add_social_node(t);
    for (auto& shard : shards_) shard->log.add_social_node(t);
  }
  for (AttrId a = 0; a < seed.attribute_node_count(); ++a) {
    attr_net_.add_attribute_node(seed.attribute_type(a),
                                 seed.attribute_name(a),
                                 seed.attribute_node_time(a));
  }
  for (const auto& e : seed.social_log()) {
    shards_[owner_of(e.src)]->log.add_social_link(e.src, e.dst, e.time);
  }
  for (const auto& link : seed.attribute_log()) {
    attr_net_.add_attribute_link(link.user, link.attr, link.time);
  }
  attr_timeline_ = std::make_unique<SanTimeline>(attr_net_);
  attr_mat_ = std::make_unique<SanTimeline::Materializer>(*attr_timeline_);
  double max_time = attr_timeline_->max_time();
  for (auto& shard : shards_) {
    shard->timeline = std::make_unique<SanTimeline>(shard->log);
    shard->mat = std::make_unique<SanTimeline::Materializer>(*shard->timeline);
    max_time = std::max(max_time, shard->timeline->max_time());
  }
  frontier_ = std::isnan(options_.initial_tip) ? max_time
                                               : options_.initial_tip;
  std::lock_guard<std::mutex> lock(meta_mutex_);
  stitch_and_publish_locked();  // epoch 0: the seed's stitched snapshot
}

ShardedLiveTimeline::~ShardedLiveTimeline() = default;

double ShardedLiveTimeline::ingest(const IngestBatch& batch) {
  obs::TraceSpan ingest_span("live.ingest");
  // Per-call routing buffers: writers run Phase B concurrently, so the
  // owner groups cannot live in shared scratch.
  std::vector<std::vector<TimedSocialEdge>> routed(shards_.size());
  bool do_publish = false;
  double frontier_now = 0.0;
  {
    std::lock_guard<std::mutex> lock(meta_mutex_);
    if (std::isnan(batch.tip) || batch.tip <= published_time_) {
      bad_batch("tip must be a number strictly after the published epoch");
    }

    // Validate before any mutation so a throw admits nothing anywhere.
    std::vector<double>& joins = joins_scratch_;
    joins.assign(batch.social_nodes.begin(), batch.social_nodes.end());
    std::stable_sort(joins.begin(), joins.end());
    for (const double t : joins) {
      if (std::isnan(t)) bad_batch("NaN social node join time");
    }
    if (!joins.empty() && attr_net_.social_node_count() > 0 &&
        joins.front() < attr_net_.social_node_times().back()) {
      bad_batch(
          "social node join times must not precede already-logged joins");
    }
    for (const auto& a : batch.attribute_nodes) {
      if (std::isnan(a.time)) bad_batch("NaN attribute node time");
    }
    for (const auto& e : batch.social_links) {
      if (std::isnan(e.time)) bad_batch("NaN social link time");
    }
    for (const auto& link : batch.attribute_links) {
      if (std::isnan(link.time)) bad_batch("NaN attribute link time");
    }

    // Ingest-to-publish latency starts at the first batch admitted into an
    // unpublished state (the meta mutex makes the 0-check race-free).
    if (obs::timing_enabled() && pending_since_ns_ == 0) {
      pending_since_ns_ = obs::now_ns();
    }

    version_.fetch_add(1, std::memory_order_acq_rel);
    for (const double t : joins) {
      attr_net_.add_social_node(t);
      ++stats_.ingested_nodes;
    }
    if (!joins.empty()) {
      for (auto& shard : shards_) {
        std::lock_guard<std::mutex> inbox_lock(shard->inbox_mutex);
        shard->inbox.insert(shard->inbox.end(), joins.begin(), joins.end());
      }
    }
    for (const auto& a : batch.attribute_nodes) {
      attr_net_.add_attribute_node(a.type, a.name, a.time);
      ++stats_.ingested_attribute_nodes;
      attr_late_ |= a.time <= published_time_;
    }

    const std::size_t n_social = attr_net_.social_node_count();
    const std::size_t n_attr = attr_net_.attribute_node_count();
    const auto apply_attr = [&](const TimedAttributeLink& link) {
      if (!attr_net_.add_attribute_link(link.user, link.attr, link.time)) {
        ++stats_.rejected_links;
        return false;
      }
      ++stats_.ingested_attribute_links;
      attr_late_ |= link.time <= published_time_;
      return true;
    };

    // Held links whose missing endpoint appeared activate first (they
    // were admitted earlier), then the batch's own links.
    std::size_t w = 0;
    for (const auto& e : pending_social_) {
      if (e.src < n_social && e.dst < n_social) {
        routed[owner_of(e.src)].push_back(e);
        ++stats_.activated_links;
      } else {
        pending_social_[w++] = e;
      }
    }
    pending_social_.resize(w);
    w = 0;
    for (const auto& link : pending_attr_) {
      if (link.user < n_social && link.attr < n_attr) {
        if (apply_attr(link)) ++stats_.activated_links;
      } else {
        pending_attr_[w++] = link;
      }
    }
    pending_attr_.resize(w);

    for (const auto& e : batch.social_links) {
      if (e.src >= n_social || e.dst >= n_social) {
        pending_social_.push_back(e);  // id not created yet: hold
      } else {
        routed[owner_of(e.src)].push_back(e);
      }
    }
    for (const auto& link : batch.attribute_links) {
      if (link.user >= n_social || link.attr >= n_attr) {
        pending_attr_.push_back(link);
      } else {
        apply_attr(link);
      }
    }
    stats_.pending_links = pending_social_.size() + pending_attr_.size();

    frontier_ = std::max(frontier_, batch.tip);
    frontier_now = frontier_;
    ++stats_.batches;
    do_publish = ++batches_since_publish_ >= options_.batches_per_epoch;
  }

  // Phase B: apply each owner group under that shard's mutex only —
  // groups bound for different shards absorb and advance in parallel
  // across writers. Ascending order keeps the lock hierarchy acyclic.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (routed[s].empty()) continue;
    std::lock_guard<std::mutex> shard_lock(shards_[s]->mutex);
    apply_shard(*shards_[s], routed[s], batch.tip);
  }
  if (do_publish) publish();
  return frontier_now;
}

// Requires shard.mutex held. Joins land first (the inbox preserves
// global admission order), then the routed links; the shard's columnar
// index absorbs the new log suffix and the work snapshot advances — the
// same absorb/invalidate/advance discipline as LiveTimeline::ingest, per
// shard.
void ShardedLiveTimeline::apply_shard(Shard& shard,
                                      std::span<const TimedSocialEdge> links,
                                      double tip) {
  obs::TraceSpan span("live.apply_shard");
  obs::ScopedTimer timer(apply_ns_.get());
  drain_inbox_locked(shard);
  bool late = false;
  for (const auto& e : links) {
    if (!shard.log.add_social_link(e.src, e.dst, e.time)) {
      ++shard.rejected_links;  // duplicate or self-link
      continue;
    }
    ++shard.ingested_links;
    late |= e.time <= shard.applied_time;
  }
  shard.timeline->absorb(shard.log);
  if (late) {
    shard.mat->invalidate();
    ++shard.late_applies;
  }
  // A concurrent writer with a newer tip may already have advanced this
  // shard past `tip`; never regress.
  const double target = std::max(shard.applied_time, tip);
  shard.mat->advance(target, shard.work);
  shard.applied_time = target;
  version_.fetch_add(1, std::memory_order_acq_rel);
}

void ShardedLiveTimeline::drain_inbox_locked(Shard& shard) {
  {
    std::lock_guard<std::mutex> inbox_lock(shard.inbox_mutex);
    shard.inbox_scratch.swap(shard.inbox);
  }
  for (const double t : shard.inbox_scratch) shard.log.add_social_node(t);
  shard.inbox_scratch.clear();
}

void ShardedLiveTimeline::publish() {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  if (version_.load(std::memory_order_acquire) == stitched_version_) {
    batches_since_publish_ = 0;  // current state already visible
    return;
  }
  stitch_and_publish_locked();
}

// Requires meta_mutex_ held. Takes every shard mutex (ascending) for the
// duration of the stitch: writers stall, readers keep loading the
// previously published epoch untouched.
void ShardedLiveTimeline::stitch_and_publish_locked() {
  obs::TraceSpan span("live.stitch");
  obs::ScopedTimer timer(stitch_ns_.get());
  const double time = frontier_;

  // Attribute side: one absorb + advance of the meta work snapshot.
  attr_timeline_->absorb(attr_net_);
  if (attr_late_) {
    attr_mat_->invalidate();
    ++stats_.late_batches;
    attr_late_ = false;
  }
  attr_mat_->advance(time, attr_work_);

  // Freeze every shard at exactly the epoch time.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (auto& shard : shards_) {
    shard_locks.emplace_back(shard->mutex);
    apply_shard(*shard, {}, time);
  }

  // Every shard carries the full join column, so they agree on the node
  // count at `time`.
  const std::size_t n = shards_[0]->work.social.node_count();

  // Offsets: out-degree comes from the owner row, in-degree sums across
  // shards (in-lists partition by source ownership).
  stitch_out_off_.assign(n + 1, 0);
  stitch_in_off_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    stitch_out_off_[u + 1] = shards_[owner_of(u)]->work.social.out(u).size();
    std::uint64_t in_deg = 0;
    for (const auto& shard : shards_) {
      in_deg += shard->work.social.in(u).size();
    }
    stitch_in_off_[u + 1] = in_deg;
  }
  for (NodeId u = 0; u < n; ++u) {
    stitch_out_off_[u + 1] += stitch_out_off_[u];
    stitch_in_off_[u + 1] += stitch_in_off_[u];
  }
  stitch_out_tgt_.resize(stitch_out_off_[n]);
  stitch_in_tgt_.resize(stitch_in_off_[n]);

  // Fill: copy the owned out-row; S-way ascending merge of the per-shard
  // in-lists (disjoint owned source sets, each ascending, so the merged
  // list is the globally ascending in-list — bit-identical to a
  // single-shard build). Chunked on the core substrate: deterministic at
  // any SAN_THREADS, and the per-chunk cursor buffer is hoisted out of
  // the per-node loop.
  const std::size_t n_shards = shards_.size();
  core::parallel_for_chunks(
      n, core::kDefaultGrain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<std::span<const NodeId>> lists(n_shards);
        for (std::size_t u = begin; u < end; ++u) {
          const auto out = shards_[owner_of(u)]->work.social.out(u);
          std::copy(out.begin(), out.end(),
                    stitch_out_tgt_.begin() +
                        static_cast<std::ptrdiff_t>(stitch_out_off_[u]));
          std::size_t write = stitch_in_off_[u];
          for (std::size_t s = 0; s < n_shards; ++s) {
            lists[s] = shards_[s]->work.social.in(u);
          }
          const std::size_t total = stitch_in_off_[u + 1] - write;
          for (std::size_t taken = 0; taken < total; ++taken) {
            std::size_t best = n_shards;
            for (std::size_t s = 0; s < n_shards; ++s) {
              if (lists[s].empty()) continue;
              if (best == n_shards || lists[s].front() < lists[best].front()) {
                best = s;
              }
            }
            stitch_in_tgt_[write++] = lists[best].front();
            lists[best] = lists[best].subspan(1);
          }
        }
      });

  // Recycle a retired epoch buffer no reader holds; the currently
  // published buffer is pinned by the atomic itself.
  std::shared_ptr<SanSnapshot> buffer;
  for (const auto& candidate : pool_) {
    if (candidate.use_count() == 1) {
      buffer = candidate;
      break;
    }
  }
  if (!buffer) {
    buffer = std::make_shared<SanSnapshot>();
    pool_.push_back(buffer);
  }

  // adopt_sorted_adjacency swaps the target vectors, so the stitch
  // scratch inherits the retired buffer's arrays — zero steady-state
  // allocation, as with LiveTimeline's epoch pool.
  buffer->social.adopt_sorted_adjacency(n, stitch_out_off_, stitch_out_tgt_,
                                        stitch_in_off_, stitch_in_tgt_);
  buffer->attribute = attr_work_.attribute;
  buffer->attribute_types = attr_work_.attribute_types;
  buffer->attribute_created = attr_work_.attribute_created;
  buffer->attribute_link_count = attr_work_.attribute_link_count;
  buffer->created_attribute_count = attr_work_.created_attribute_count;
  // Shard logs carry no attribute events and the meta network carries no
  // social links, so the two dropped counts partition the oracle's.
  buffer->dropped_link_count = attr_work_.dropped_link_count;
  for (const auto& shard : shards_) {
    buffer->dropped_link_count += shard->work.dropped_link_count;
  }
  buffer->time = time;

  published_.store(std::shared_ptr<const SanSnapshot>(buffer),
                   std::memory_order_release);
  epoch_.store(stats_.epochs, std::memory_order_release);
  ++stats_.epochs;
  published_time_ = time;
  batches_since_publish_ = 0;
  stitched_version_ = version_.load(std::memory_order_acquire);

  if (obs::timing_enabled()) {
    const std::uint64_t now = obs::now_ns();
    if (pending_since_ns_ != 0) {
      ingest_to_publish_ns_->record(now - pending_since_ns_);
      pending_since_ns_ = 0;
    }
    if (last_publish_ns_ != 0) epoch_gap_ns_->record(now - last_publish_ns_);
    last_publish_ns_ = now;
  } else {
    pending_since_ns_ = 0;
    last_publish_ns_ = 0;
  }
}

void ShardedLiveTimeline::register_metrics(obs::Registry& registry,
                                           const std::string& prefix) const {
  registry.attach_histogram(prefix + ".apply_shard", apply_ns_);
  registry.attach_histogram(prefix + ".stitch", stitch_ns_);
  registry.attach_histogram(prefix + ".ingest_to_publish",
                            ingest_to_publish_ns_);
  registry.attach_histogram(prefix + ".epoch_gap", epoch_gap_ns_);
  registry.attach_fn(prefix + ".epochs", [this] {
    return static_cast<double>(stats().epochs);
  });
  registry.attach_fn(prefix + ".batches", [this] {
    return static_cast<double>(stats().batches);
  });
  registry.attach_fn(prefix + ".late_batches", [this] {
    return static_cast<double>(stats().late_batches);
  });
  registry.attach_fn(prefix + ".pending_links", [this] {
    return static_cast<double>(stats().pending_links);
  });
  registry.attach_fn(prefix + ".activated_links", [this] {
    return static_cast<double>(stats().activated_links);
  });
  registry.attach_fn(prefix + ".ingested_links", [this] {
    return static_cast<double>(stats().ingested_links);
  });
  registry.attach_fn(prefix + ".rejected_links", [this] {
    return static_cast<double>(stats().rejected_links);
  });
  registry.attach_fn(prefix + ".shards", [this] {
    return static_cast<double>(shard_count());
  });
}

std::shared_ptr<const SanSnapshot> ShardedLiveTimeline::tip() const {
  return published_.load(std::memory_order_acquire);
}

ShardedLiveTimeline::Stats ShardedLiveTimeline::stats() const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  Stats out = stats_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    out.ingested_links += shard->ingested_links;
    out.rejected_links += shard->rejected_links;
    out.late_batches += shard->late_applies;
  }
  return out;
}

SocialAttributeNetwork ShardedLiveTimeline::merged_log() const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  SocialAttributeNetwork out;
  for (const double t : attr_net_.social_node_times()) {
    out.add_social_node(t);
  }
  for (AttrId a = 0; a < attr_net_.attribute_node_count(); ++a) {
    out.add_attribute_node(attr_net_.attribute_type(a),
                           attr_net_.attribute_name(a),
                           attr_net_.attribute_node_time(a));
  }
  // Shard concatenation order: per-pair order is shard-local (a pair's
  // copies all live in its owner), so replaying it admits exactly the
  // links the shards admitted. Social CSR content is insensitive to this
  // cross-shard order.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (const auto& e : shard->log.social_log()) {
      out.add_social_link(e.src, e.dst, e.time);
    }
  }
  for (const auto& link : attr_net_.attribute_log()) {
    out.add_attribute_link(link.user, link.attr, link.time);
  }
  return out;
}

}  // namespace san

#include "san/san.hpp"

#include <algorithm>
#include <stdexcept>

namespace san {

std::string to_string(AttributeType type) {
  switch (type) {
    case AttributeType::kSchool:
      return "School";
    case AttributeType::kMajor:
      return "Major";
    case AttributeType::kEmployer:
      return "Employer";
    case AttributeType::kCity:
      return "City";
    case AttributeType::kOther:
      return "Other";
  }
  return "Unknown";
}

NodeId SocialAttributeNetwork::add_social_node(double time) {
  if (!social_times_.empty() && time < social_times_.back()) {
    throw std::invalid_argument(
        "SocialAttributeNetwork: social node join times must be "
        "non-decreasing");
  }
  const NodeId id = social_.add_node();
  social_times_.push_back(time);
  attributes_.emplace_back();
  return id;
}

AttrId SocialAttributeNetwork::add_attribute_node(AttributeType type,
                                                  std::string name,
                                                  double time) {
  members_.emplace_back();
  attr_types_.push_back(type);
  attr_names_.push_back(std::move(name));
  attribute_times_.push_back(time);
  return static_cast<AttrId>(members_.size() - 1);
}

bool SocialAttributeNetwork::add_social_link(NodeId u, NodeId v, double time) {
  if (!social_.add_edge(u, v)) return false;
  social_log_.push_back({u, v, time});
  return true;
}

bool SocialAttributeNetwork::add_attribute_link(NodeId u, AttrId a,
                                                double time) {
  if (u >= social_node_count()) {
    throw std::out_of_range("add_attribute_link: unknown social node");
  }
  check_attr(a);
  auto& attrs = attributes_[u];
  const auto it = std::lower_bound(attrs.begin(), attrs.end(), a);
  if (it != attrs.end() && *it == a) return false;
  attrs.insert(it, a);
  members_[a].push_back(u);
  attribute_log_.push_back({u, a, time});
  return true;
}

std::span<const AttrId> SocialAttributeNetwork::attributes_of(NodeId u) const {
  if (u >= social_node_count()) {
    throw std::out_of_range("attributes_of: unknown social node");
  }
  return attributes_[u];
}

std::span<const NodeId> SocialAttributeNetwork::members_of(AttrId a) const {
  check_attr(a);
  return members_[a];
}

bool SocialAttributeNetwork::has_attribute(NodeId u, AttrId a) const {
  const auto attrs = attributes_of(u);
  return std::binary_search(attrs.begin(), attrs.end(), a);
}

std::size_t SocialAttributeNetwork::common_attributes(NodeId u,
                                                      NodeId v) const {
  const auto au = attributes_of(u);
  const auto av = attributes_of(v);
  std::size_t count = 0;
  auto iu = au.begin();
  auto iv = av.begin();
  while (iu != au.end() && iv != av.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      ++count;
      ++iu;
      ++iv;
    }
  }
  return count;
}

AttributeType SocialAttributeNetwork::attribute_type(AttrId a) const {
  check_attr(a);
  return attr_types_[a];
}

const std::string& SocialAttributeNetwork::attribute_name(AttrId a) const {
  check_attr(a);
  return attr_names_[a];
}

double SocialAttributeNetwork::social_node_time(NodeId u) const {
  if (u >= social_node_count()) {
    throw std::out_of_range("social_node_time: unknown social node");
  }
  return social_times_[u];
}

double SocialAttributeNetwork::attribute_node_time(AttrId a) const {
  check_attr(a);
  return attribute_times_[a];
}

void SocialAttributeNetwork::check_attr(AttrId a) const {
  if (a >= members_.size()) {
    throw std::out_of_range("SocialAttributeNetwork: unknown attribute id");
  }
}

}  // namespace san

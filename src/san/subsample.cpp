#include "san/subsample.hpp"

#include <stdexcept>

namespace san {

SocialAttributeNetwork subsample_attributes(
    const SocialAttributeNetwork& network, double keep_probability,
    std::uint64_t seed) {
  if (keep_probability < 0.0 || keep_probability > 1.0) {
    throw std::invalid_argument("subsample_attributes: probability in [0,1]");
  }
  stats::Rng rng(seed);
  SocialAttributeNetwork out;
  for (std::size_t u = 0; u < network.social_node_count(); ++u) {
    out.add_social_node(network.social_node_time(static_cast<NodeId>(u)));
  }
  for (std::size_t a = 0; a < network.attribute_node_count(); ++a) {
    const auto id = static_cast<AttrId>(a);
    out.add_attribute_node(network.attribute_type(id),
                           network.attribute_name(id),
                           network.attribute_node_time(id));
  }
  for (const auto& e : network.social_log()) {
    out.add_social_link(e.src, e.dst, e.time);
  }
  for (const auto& link : network.attribute_log()) {
    if (rng.bernoulli(keep_probability)) {
      out.add_attribute_link(link.user, link.attr, link.time);
    }
  }
  return out;
}

}  // namespace san

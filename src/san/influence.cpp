#include "san/influence.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "stats/summary.hpp"

namespace san {
namespace {

/// Number of common undirected social neighbors of u and v in snap.
std::size_t common_social_neighbors(const SanSnapshot& snap, NodeId u,
                                    NodeId v) {
  const auto nu = snap.social.neighbors(u);
  const auto nv = snap.social.neighbors(v);
  std::size_t count = 0;
  auto iu = nu.begin();
  auto iv = nv.begin();
  while (iu != nu.end() && iv != nv.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      ++count;
      ++iu;
      ++iv;
    }
  }
  return count;
}

}  // namespace

std::vector<ReciprocityCell> fine_grained_reciprocity(
    const SanSnapshot& halfway, const SanSnapshot& final_snap,
    std::size_t bucket_width, std::size_t max_common_social) {
  if (bucket_width == 0) {
    throw std::invalid_argument("fine_grained_reciprocity: bucket_width > 0");
  }
  if (final_snap.social_node_count() < halfway.social_node_count()) {
    throw std::invalid_argument(
        "fine_grained_reciprocity: final snapshot precedes halfway snapshot");
  }
  const std::size_t buckets =
      (max_common_social + bucket_width - 1) / bucket_width;
  std::vector<ReciprocityCell> cells(buckets * 3);
  for (std::size_t b = 0; b < buckets; ++b) {
    for (std::size_t a = 0; a < 3; ++a) {
      auto& cell = cells[b * 3 + a];
      cell.common_social_lo = b * bucket_width;
      cell.common_social_hi = (b + 1) * bucket_width;
      cell.common_attr = a;
    }
  }

  const auto& g = halfway.social;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const NodeId v : g.out(u)) {
      if (g.has_edge(v, u)) continue;  // already reciprocal at halfway
      const std::size_t s = common_social_neighbors(halfway, u, v);
      if (s >= max_common_social) continue;
      const std::size_t a =
          std::min<std::size_t>(halfway.common_attributes(u, v), 2);
      auto& cell = cells[(s / bucket_width) * 3 + a];
      ++cell.links;
      if (final_snap.social.has_edge(v, u)) ++cell.reciprocated;
    }
  }
  return cells;
}

std::array<double, kAttributeTypeCount> clustering_by_attribute_type(
    const SanSnapshot& snap, const graph::ClusteringOptions& options) {
  std::array<double, kAttributeTypeCount> result{};
  for (int t = 0; t < kAttributeTypeCount; ++t) {
    std::vector<AttrId> groups;
    for (AttrId a = 0; a < snap.attribute_id_count(); ++a) {
      if (snap.attribute_types[a] == static_cast<AttributeType>(t) &&
          !snap.members_of(a).empty()) {
        groups.push_back(a);
      }
    }
    if (groups.empty()) {
      result[static_cast<std::size_t>(t)] = 0.0;
      continue;
    }
    result[static_cast<std::size_t>(t)] =
        graph::approx_average_group_clustering(
            snap.social,
            [&](std::size_t i) { return snap.members_of(groups[i]); },
            groups.size(), options);
  }
  return result;
}

DegreeByAttribute degree_by_attribute(const SocialAttributeNetwork& network,
                                      const SanSnapshot& snap, AttrId attr) {
  if (attr >= snap.attribute_id_count()) {
    throw std::out_of_range("degree_by_attribute: unknown attribute");
  }
  DegreeByAttribute result;
  result.attribute_name = network.attribute_name(attr);
  const auto members = snap.members_of(attr);
  result.member_count = members.size();
  if (members.empty()) return result;

  std::vector<double> degrees;
  degrees.reserve(members.size());
  for (const NodeId u : members) {
    degrees.push_back(static_cast<double>(snap.social.out_degree(u)));
  }
  result.p25 = stats::percentile(degrees, 25.0);
  result.median = stats::percentile(degrees, 50.0);
  result.p75 = stats::percentile(degrees, 75.0);
  return result;
}

std::vector<DegreeByAttribute> top_attributes_by_degree(
    const SocialAttributeNetwork& network, const SanSnapshot& snap,
    AttributeType type, std::size_t count) {
  std::vector<AttrId> of_type;
  for (AttrId a = 0; a < snap.attribute_id_count(); ++a) {
    if (snap.attribute_types[a] == type && !snap.members_of(a).empty()) {
      of_type.push_back(a);
    }
  }
  std::sort(of_type.begin(), of_type.end(), [&](AttrId x, AttrId y) {
    return snap.attribute.member_count(x) > snap.attribute.member_count(y);
  });
  if (of_type.size() > count) of_type.resize(count);

  std::vector<DegreeByAttribute> result;
  result.reserve(of_type.size());
  for (const AttrId a : of_type) {
    result.push_back(degree_by_attribute(network, snap, a));
  }
  return result;
}

}  // namespace san

// §4.2 of the paper: how attributes influence the social structure.
//   - fine-grained reciprocity r_{s,a} (Fig 13a),
//   - per-attribute-type clustering coefficients (Fig 13b),
//   - social degree conditioned on attribute values (Fig 14).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/clustering.hpp"
#include "san/san.hpp"
#include "san/snapshot.hpp"

namespace san {

/// One cell of the fine-grained reciprocity study: among links that were
/// one-directional at the halfway snapshot whose endpoints had `s` common
/// social neighbors and `a` common attributes, the fraction that became
/// reciprocal by the final snapshot.
struct ReciprocityCell {
  std::size_t common_social_lo = 0;  // inclusive bucket bounds for s
  std::size_t common_social_hi = 0;
  std::size_t common_attr = 0;       // 0, 1 or 2 (meaning >= 2)
  std::uint64_t links = 0;
  std::uint64_t reciprocated = 0;

  double rate() const {
    return links == 0 ? 0.0 : static_cast<double>(reciprocated) /
                                  static_cast<double>(links);
  }
};

/// Compute r_{s,a} between two snapshots of the same network (the paper uses
/// the halfway and the final crawl). Common-social-neighbor counts are
/// bucketed as [lo, lo + bucket_width). Cells are returned for
/// common_attr in {0, 1, >=2} (encoded as 2).
std::vector<ReciprocityCell> fine_grained_reciprocity(
    const SanSnapshot& halfway, const SanSnapshot& final_snap,
    std::size_t bucket_width = 5, std::size_t max_common_social = 50);

/// Average attribute clustering coefficient per attribute type (Fig 13b):
/// Employer communities are far denser than City communities.
std::array<double, kAttributeTypeCount> clustering_by_attribute_type(
    const SanSnapshot& snap, const graph::ClusteringOptions& options = {});

/// Outdegree percentiles of the members of one attribute node (Fig 14).
struct DegreeByAttribute {
  std::string attribute_name;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  std::uint64_t member_count = 0;
};

DegreeByAttribute degree_by_attribute(const SocialAttributeNetwork& network,
                                      const SanSnapshot& snap, AttrId attr);

/// The top `count` attribute nodes of a type by membership, with their
/// degree percentiles — the data behind Fig 14's box plots.
std::vector<DegreeByAttribute> top_attributes_by_degree(
    const SocialAttributeNetwork& network, const SanSnapshot& snap,
    AttributeType type, std::size_t count);

}  // namespace san

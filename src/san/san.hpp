// The Social-Attribute Network (SAN) of §2.1: a directed social graph over
// social nodes Vs plus M binary-attribute nodes Va, with undirected links Ea
// between social nodes and the attributes they declare.
//
// All nodes and links carry a (logical, e.g. day-granularity) timestamp so
// that evolution studies can extract per-day snapshots, exactly like the
// paper's 79 daily crawls.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace san {

using graph::NodeId;
using AttrId = std::uint32_t;

/// The four attribute types the paper extracts from Google+ profiles (§2.2),
/// plus a catch-all for other applications.
enum class AttributeType : std::uint8_t {
  kSchool = 0,
  kMajor = 1,
  kEmployer = 2,
  kCity = 3,
  kOther = 4,
};

inline constexpr int kAttributeTypeCount = 5;

std::string to_string(AttributeType type);

struct TimedSocialEdge {
  NodeId src = 0;
  NodeId dst = 0;
  double time = 0.0;
};

struct TimedAttributeLink {
  NodeId user = 0;
  AttrId attr = 0;
  double time = 0.0;
};

class SocialAttributeNetwork {
 public:
  /// Append a social node joining at `time`; join times must be
  /// non-decreasing so that node ids are chronological.
  NodeId add_social_node(double time = 0.0);

  /// Append an attribute node of the given type. `name` is optional display
  /// metadata (e.g. "Google Inc.").
  AttrId add_attribute_node(AttributeType type, std::string name = {},
                            double time = 0.0);

  /// Add the directed social link u -> v at `time`. Returns false if the
  /// link already exists or u == v.
  bool add_social_link(NodeId u, NodeId v, double time = 0.0);

  /// Add the undirected attribute link between user u and attribute a.
  /// Returns false if it already exists.
  bool add_attribute_link(NodeId u, AttrId a, double time = 0.0);

  std::size_t social_node_count() const { return social_.node_count(); }
  std::size_t attribute_node_count() const { return members_.size(); }
  std::uint64_t social_link_count() const { return social_.edge_count(); }
  std::uint64_t attribute_link_count() const { return attribute_log_.size(); }

  const graph::Digraph& social() const { return social_; }

  /// Γa(u): the attributes of social node u, sorted ascending.
  std::span<const AttrId> attributes_of(NodeId u) const;
  /// Γs(a): the social nodes that declare attribute a (insertion order).
  std::span<const NodeId> members_of(AttrId a) const;

  bool has_attribute(NodeId u, AttrId a) const;
  /// a(u, v): the number of attributes u and v share (§5.1).
  std::size_t common_attributes(NodeId u, NodeId v) const;

  AttributeType attribute_type(AttrId a) const;
  const std::string& attribute_name(AttrId a) const;

  double social_node_time(NodeId u) const;
  double attribute_node_time(AttrId a) const;

  std::span<const TimedSocialEdge> social_log() const { return social_log_; }
  std::span<const TimedAttributeLink> attribute_log() const {
    return attribute_log_;
  }
  std::span<const double> social_node_times() const { return social_times_; }
  std::span<const double> attribute_node_times() const {
    return attribute_times_;
  }

 private:
  void check_attr(AttrId a) const;

  graph::Digraph social_;
  std::vector<double> social_times_;

  std::vector<std::vector<NodeId>> members_;      // per attribute
  std::vector<std::vector<AttrId>> attributes_;   // per social node, sorted
  std::vector<AttributeType> attr_types_;
  std::vector<std::string> attr_names_;
  std::vector<double> attribute_times_;

  std::vector<TimedSocialEdge> social_log_;
  std::vector<TimedAttributeLink> attribute_log_;
};

}  // namespace san

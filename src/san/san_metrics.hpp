// Attribute-structure metrics from §4.1 of the paper: attribute density,
// attribute diameter, attribute clustering coefficients, the two
// attribute-induced degree distributions, and the attribute joint degree
// distribution / assortativity.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/clustering.hpp"
#include "san/snapshot.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace san {

/// Attribute density |Ea| / |Va| over populated attribute nodes (§4.1).
double attribute_density(const SanSnapshot& snap);

/// Histogram of the attribute degree of social nodes (number of attributes
/// per user; lognormal in Google+, Fig 10a). Zero-attribute users included.
stats::Histogram attribute_degree_histogram(const SanSnapshot& snap);

/// Histogram of the social degree of attribute nodes (number of users per
/// attribute; power-law in Google+, Fig 10b). Empty attributes excluded.
stats::Histogram attribute_social_degree_histogram(const SanSnapshot& snap);

/// Average attribute clustering coefficient Ca (Algorithm 2 over attribute
/// member groups), Fig 8b.
double average_attribute_clustering(
    const SanSnapshot& snap, const graph::ClusteringOptions& options = {});

/// Attribute clustering coefficient vs social degree of the attribute node
/// (second curve of Fig 9a).
std::vector<std::pair<double, double>> attribute_clustering_by_degree(
    const SanSnapshot& snap, std::size_t samples_per_node = 64,
    std::uint64_t seed = 0xc0ffee);

/// Attribute knn (Fig 12a): for each social degree k of attribute nodes, the
/// average attribute degree of the members of those attribute nodes.
std::vector<std::pair<std::uint64_t, double>> attribute_knn(
    const SanSnapshot& snap);

/// Attribute assortativity (Fig 12b): Pearson correlation over attribute
/// links between the attribute node's social degree and the social node's
/// attribute degree.
double attribute_assortativity(const SanSnapshot& snap);

/// Sampled effective attribute diameter (Fig 4c). Attribute distance is
/// dist(a, b) = min{dist(u, v) : u in Γs(a), v in Γs(b)} + 1 (§4.1). Runs
/// one multi-source BFS per sampled source attribute.
double attribute_effective_diameter(const SanSnapshot& snap,
                                    std::size_t sample_sources, stats::Rng& rng,
                                    double quantile = 0.9);

/// Sampled social effective diameter via BFS (exact distances on sampled
/// sources); complements graph::hyper_anf for mid-sized snapshots.
double social_effective_diameter_sampled(const SanSnapshot& snap,
                                         std::size_t sample_sources,
                                         stats::Rng& rng,
                                         double quantile = 0.9);

}  // namespace san

#include "san/snapshot.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace san {

SanSnapshot snapshot_at(const SocialAttributeNetwork& network, double time) {
  SanSnapshot snap;
  snap.time = time;

  // Social nodes join chronologically, so the prefix with join time <= t is
  // exactly the node set of the snapshot.
  const auto social_times = network.social_node_times();
  const auto first_after =
      std::upper_bound(social_times.begin(), social_times.end(), time);
  const auto n_social =
      static_cast<std::size_t>(first_after - social_times.begin());

  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& e : network.social_log()) {
    if (e.time > time) continue;
    if (e.src >= n_social || e.dst >= n_social) {
      ++snap.dropped_link_count;  // link predates an endpoint's join
      continue;
    }
    edges.emplace_back(e.src, e.dst);
  }
  std::sort(edges.begin(), edges.end());
  snap.social = graph::CsrGraph::from_sorted_edges(n_social, edges);

  // Attribute nodes are not necessarily chronological (ids assigned on first
  // use); the id space spans all of them so ids stay aligned with the source
  // network, but only those created by t are part of the snapshot.
  const std::size_t n_attr = network.attribute_node_count();
  const auto attr_times = network.attribute_node_times();
  snap.attribute_types.assign(n_attr, AttributeType::kOther);
  snap.attribute_created.assign(n_attr, 0);
  for (AttrId a = 0; a < n_attr; ++a) {
    if (attr_times[a] <= time) {
      snap.attribute_created[a] = 1;
      snap.attribute_types[a] = network.attribute_type(a);
      ++snap.created_attribute_count;
    }
  }

  // Attribute links in stable time order — the same order a SanTimeline
  // prefix yields, so both paths produce bit-identical members_of spans.
  std::vector<TimedAttributeLink> links;
  for (const auto& link : network.attribute_log()) {
    if (link.time > time) continue;
    if (link.user >= n_social || !snap.attribute_created[link.attr]) {
      ++snap.dropped_link_count;  // link predates its user or attribute
      continue;
    }
    links.push_back(link);
  }
  std::stable_sort(links.begin(), links.end(),
                   [](const TimedAttributeLink& a,
                      const TimedAttributeLink& b) {
                     return a.time < b.time;
                   });
  std::vector<NodeId> users(links.size());
  std::vector<AttrId> attrs(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    users[i] = links[i].user;
    attrs[i] = links[i].attr;
  }
  snap.attribute =
      graph::BipartiteCsr::from_links(n_social, n_attr, users, attrs);
  snap.attribute_link_count = snap.attribute.link_count();
  return snap;
}

SanSnapshot snapshot_full(const SocialAttributeNetwork& network) {
  return snapshot_at(network, std::numeric_limits<double>::infinity());
}

}  // namespace san

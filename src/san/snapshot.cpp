#include "san/snapshot.hpp"

#include <algorithm>
#include <limits>

namespace san {

std::size_t SanSnapshot::populated_attribute_count() const {
  std::size_t count = 0;
  for (const auto& m : members) {
    if (!m.empty()) ++count;
  }
  return count;
}

std::size_t SanSnapshot::common_attributes(NodeId u, NodeId v) const {
  const auto& au = attributes.at(u);
  const auto& av = attributes.at(v);
  std::size_t count = 0;
  auto iu = au.begin();
  auto iv = av.begin();
  while (iu != au.end() && iv != av.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      ++count;
      ++iu;
      ++iv;
    }
  }
  return count;
}

SanSnapshot snapshot_at(const SocialAttributeNetwork& network, double time) {
  SanSnapshot snap;
  snap.time = time;

  // Social nodes join chronologically, so the prefix with join time <= t is
  // exactly the node set of the snapshot.
  const auto social_times = network.social_node_times();
  const auto first_after = std::upper_bound(social_times.begin(),
                                            social_times.end(), time);
  const auto n_social = static_cast<std::size_t>(first_after - social_times.begin());

  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& e : network.social_log()) {
    if (e.time <= time) edges.emplace_back(e.src, e.dst);
  }
  snap.social = graph::CsrGraph::from_edges(n_social, edges);

  // Attribute nodes are not necessarily chronological (ids assigned on first
  // use); include every attribute whose creation time is <= t so ids stay
  // aligned with the source network.
  const std::size_t n_attr = network.attribute_node_count();
  snap.attributes.resize(n_social);
  snap.members.resize(n_attr);
  snap.attribute_types.reserve(n_attr);
  for (AttrId a = 0; a < n_attr; ++a) {
    snap.attribute_types.push_back(network.attribute_type(a));
  }
  for (const auto& link : network.attribute_log()) {
    if (link.time > time) continue;
    if (link.user >= n_social) continue;  // defensive: link predates its user
    snap.attributes[link.user].push_back(link.attr);
    snap.members[link.attr].push_back(link.user);
    ++snap.attribute_link_count;
  }
  for (auto& attrs : snap.attributes) std::sort(attrs.begin(), attrs.end());
  return snap;
}

SanSnapshot snapshot_full(const SocialAttributeNetwork& network) {
  return snapshot_at(network, std::numeric_limits<double>::infinity());
}

}  // namespace san

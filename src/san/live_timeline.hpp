// LiveTimeline: an ingest frontier over SanTimeline — the first subsystem
// where the network is mutable at serve time. Writers feed timestamped
// link/node batches through ingest() while readers keep resolving
// snapshots; the two never share a lock:
//
//   writer (ingest, one batch at a time under a writer mutex):
//     1. append the batch to the accumulated log (a SocialAttributeNetwork,
//        the prefix every published epoch is gated against);
//     2. absorb the new events into the columnar timeline index
//        (SanTimeline::absorb — a stable suffix merge, not a re-sort);
//     3. bring the private work snapshot to the batch tip with
//        Materializer::advance — the PR 4 delta-append fast path (per-node
//        slack, relocation, deferred-link activation);
//     4. every `batches_per_epoch` batches, PUBLISH: deep-copy the work
//        snapshot into an immutable epoch buffer and atomically swap the
//        shared_ptr readers load.
//
//   readers: tip() is one atomic shared_ptr load — no mutex, no wait on
//     any ingest or materialization. A held epoch stays valid and
//     unchanged forever (publication never mutates earlier buffers;
//     retired buffers are only recycled once no reader references them).
//
// Determinism contract: every published epoch is bit-identical — adjacency
// spans, members_of order, dropped counts — to a from-scratch
//   SanTimeline(log()).snapshot_at(tip)
// rebuild of the ingested log prefix, at any SAN_THREADS count
// (tests/test_live_timeline.cpp and bench_live_ingest gate this).
//
// Time discipline: the tip strictly advances batch to batch. Event times
// at or after the previous tip ride the delta fast path; events that LOOK
// BACK — a link timestamped at or before the already-published tip, e.g.
// one that waited for its endpoint id to exist (PR 4 activation) — are
// legal but force one full (slack-layout) tip rebuild, because they land
// inside the already-applied region of the log. Links naming ids that do
// not exist yet are held internally and activate on the first batch where
// both endpoints exist.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "san/san.hpp"
#include "san/timeline.hpp"

namespace san {

/// One timestamped batch of new network events. All times must be finite
/// (NaN is rejected); `tip` must strictly exceed the previous tip and is
/// the time the next epoch is published at. Event times may exceed `tip`:
/// such events are indexed now and surface once the tip passes them,
/// exactly like future log entries in a SanTimeline replay.
struct IngestBatch {
  struct AttributeNode {
    AttributeType type = AttributeType::kOther;
    std::string name;
    double time = 0.0;
  };

  /// New tip time (required, strictly greater than the current tip).
  double tip = 0.0;
  /// Join times of new social nodes. Sorted on admission (stably, so ties
  /// keep batch order) and assigned consecutive ids in sorted order,
  /// starting at the log's current social_node_count(); the earliest time
  /// must not precede the last already-logged join (ids stay
  /// chronological).
  std::vector<double> social_nodes;
  /// New attribute nodes, assigned consecutive ids in batch order starting
  /// at the log's current attribute_node_count().
  std::vector<AttributeNode> attribute_nodes;
  /// New directed social links. Links naming a not-yet-existing id are
  /// held and activate when the id appears; duplicates and self-links are
  /// counted and dropped.
  std::vector<TimedSocialEdge> social_links;
  /// New user<->attribute links; same holding/dropping rules.
  std::vector<TimedAttributeLink> attribute_links;
};

struct LiveTimelineOptions {
  /// Publish cadence: a new epoch becomes visible every N ingested
  /// batches (>= 1). Publication is the only per-epoch O(network) cost
  /// (one buffer copy), so batching amortizes it; publish() forces one.
  std::size_t batches_per_epoch = 1;
  /// Tip of the seed epoch. NaN (the default) derives it from the seed's
  /// max event time; pass an explicit tip when the seed schedules events
  /// in the future (e.g. the full attribute catalog with later creation
  /// times) — they stay pending in the index and surface when the tip
  /// passes them.
  double initial_tip = std::numeric_limits<double>::quiet_NaN();
};

/// The reader-side face every live frontier shares: tip() is one atomic
/// shared_ptr load of the latest published epoch, lock-free with respect
/// to writers. serve::SnapshotCache binds against this interface so both
/// LiveTimeline and ShardedLiveTimeline can back the live path.
class LiveTipSource {
 public:
  virtual ~LiveTipSource() = default;
  virtual std::shared_ptr<const SanSnapshot> tip() const = 0;
};

class LiveTimeline : public LiveTipSource {
 public:
  struct Stats {
    std::uint64_t batches = 0;
    /// Published epochs, including the seed epoch.
    std::uint64_t epochs = 0;
    std::uint64_t ingested_nodes = 0;
    std::uint64_t ingested_attribute_nodes = 0;
    std::uint64_t ingested_links = 0;
    std::uint64_t ingested_attribute_links = 0;
    /// Links dropped: already present, or a self-link.
    std::uint64_t rejected_links = 0;
    /// Links currently held because an endpoint id does not exist yet.
    std::uint64_t pending_links = 0;
    /// Held links that activated (their endpoints appeared).
    std::uint64_t activated_links = 0;
    /// Batches that looked back past the previous tip and forced a full
    /// tip rebuild instead of the delta append.
    std::uint64_t late_batches = 0;
  };

  /// Starts with `seed` fully ingested: the initial tip is the seed's
  /// max event time (0.0 for an empty seed) and epoch 0 — the seed's
  /// complete snapshot — is published immediately, so tip() never returns
  /// null.
  explicit LiveTimeline(const SocialAttributeNetwork& seed =
                            SocialAttributeNetwork{},
                        LiveTimelineOptions options = LiveTimelineOptions{});
  LiveTimeline(const LiveTimeline&) = delete;
  LiveTimeline& operator=(const LiveTimeline&) = delete;

  /// Ingest one batch and advance the tip to batch.tip (returned).
  /// Serializes with other writers on an internal mutex; never blocks
  /// readers. Throws std::invalid_argument on a non-advancing tip, NaN
  /// times, or out-of-order node joins — the log is unchanged on throw.
  double ingest(const IngestBatch& batch);

  /// Force publication of the current tip as a new epoch (a no-op when
  /// the tip is already published).
  void publish();

  /// The latest published epoch snapshot: one atomic load, lock-free with
  /// respect to writers. The snapshot is immutable; hold it as long as
  /// needed.
  std::shared_ptr<const SanSnapshot> tip() const override;

  /// Time of the latest published epoch (== tip()->time).
  double tip_time() const { return tip()->time; }

  /// Published epoch counter (0 = the seed epoch).
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  Stats stats() const;

  /// Attach this frontier's ingest telemetry to `registry` under `prefix`:
  /// phase latency histograms (`<prefix>.absorb` / `.advance` / `.publish`),
  /// `<prefix>.ingest_to_publish` (first unpublished batch admitted ->
  /// epoch visible to readers), `<prefix>.epoch_gap` (publish cadence), and
  /// fn gauges over the Stats fields (`<prefix>.epochs`, `.batches`,
  /// `.late_batches`, `.pending_links`, `.activated_links`,
  /// `.ingested_links`, `.rejected_links`). Latencies record only while
  /// obs::timing_enabled(); attach is per-instance.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  /// The accumulated log: seed plus every ingested event, the prefix the
  /// determinism contract is stated against. Writer-side access only —
  /// reading it while another thread ingests is a data race.
  const SocialAttributeNetwork& log() const { return log_; }

 private:
  void publish_locked();
  void record_publish_latency_locked();

  mutable std::mutex mutex_;  // serializes writers; readers never take it
  SocialAttributeNetwork log_;
  SanTimeline timeline_;
  SanTimeline::Materializer materializer_;
  SanSnapshot work_;  // slack-layout tip, advanced per batch
  double tip_ = 0.0;  // ingest frontier (>= published tip)
  std::size_t batches_since_publish_ = 0;
  bool work_published_ = false;  // current work_ state already visible?
  LiveTimelineOptions options_;
  Stats stats_;
  // Ingest telemetry (obs/metrics.hpp): phase latencies plus publish
  // cadence. The tracking timestamps are guarded by mutex_ like the rest
  // of the writer state; clock reads happen only while timing is enabled.
  std::shared_ptr<obs::Histogram> absorb_ns_ =
      std::make_shared<obs::Histogram>();
  std::shared_ptr<obs::Histogram> advance_ns_ =
      std::make_shared<obs::Histogram>();
  std::shared_ptr<obs::Histogram> publish_ns_ =
      std::make_shared<obs::Histogram>();
  std::shared_ptr<obs::Histogram> ingest_to_publish_ns_ =
      std::make_shared<obs::Histogram>();
  std::shared_ptr<obs::Histogram> epoch_gap_ns_ =
      std::make_shared<obs::Histogram>();
  std::uint64_t pending_since_ns_ = 0;  // first unpublished batch admission
  std::uint64_t last_publish_ns_ = 0;
  // Held links whose endpoint ids do not exist yet, in admission order.
  std::vector<TimedSocialEdge> pending_social_;
  std::vector<TimedAttributeLink> pending_attr_;
  std::vector<double> joins_scratch_;  // per-batch sort buffer, reused
  // Epoch buffers: the published one plus retired ones kept for recycling
  // (a retired buffer is reused only when no reader holds it).
  std::vector<std::shared_ptr<SanSnapshot>> pool_;
  std::atomic<std::shared_ptr<const SanSnapshot>> published_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace san

// SanTimeline: temporal index over a SocialAttributeNetwork that makes the
// daily snapshot sweep — the paper's 79 crawls replayed as snapshot_at(t)
// for t = 1..79 — the fast path.
//
// Cost model:
//   - construction: both link logs are stably time-sorted ONCE into
//     columnar arrays (O(E log E) total, the only comparison sort);
//   - snapshot_at(t): binary-search the time prefix, radix-order the
//     <= t slice with counting sorts, rebuild CSR — O(links <= t + nodes),
//     zero comparison sorting;
//   - sweep(times, visit): snapshot_at for each time, reusing one scratch
//     set and one SanSnapshot, so the steady state allocates nothing (the
//     arrays only grow while snapshots do).
//
// Results are bit-identical to the naive san::snapshot_at at every time and
// at any SAN_THREADS count: the stable time order fixes members_of ordering,
// CSR content is order-independent, and the parallel phases write disjoint
// per-node ranges (see core/parallel.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "san/snapshot.hpp"

namespace san {

class SanTimeline {
 private:
  struct Scratch;

 public:
  explicit SanTimeline(const SocialAttributeNetwork& network);
  SanTimeline(const SanTimeline&) = delete;
  SanTimeline& operator=(const SanTimeline&) = delete;
  ~SanTimeline();

  /// Reusable materialization state: one Materializer + one SanSnapshot make
  /// repeated snapshot_at calls allocation-free in the steady state (the
  /// serving layer's SnapshotCache holds one per cache). Not thread-safe;
  /// the timeline it borrows must outlive it.
  class Materializer {
   public:
    explicit Materializer(const SanTimeline& timeline);
    Materializer(const Materializer&) = delete;
    Materializer& operator=(const Materializer&) = delete;
    ~Materializer();

    /// Rebuild `snap` as of `time`, reusing both this scratch set and the
    /// snapshot's own arrays (CSR buffers ping-pong between the two).
    void materialize(double time, SanSnapshot& snap);

   private:
    const SanTimeline* timeline_;
    std::unique_ptr<Scratch> scratch_;
  };

  std::size_t social_node_total() const { return social_node_times_.size(); }
  std::size_t attribute_node_total() const { return attr_times_.size(); }
  std::uint64_t social_link_total() const { return edge_time_.size(); }
  std::uint64_t attribute_link_total() const { return link_time_.size(); }
  /// Largest timestamp of any node or link (0.0 for an empty network).
  double max_time() const { return max_time_; }

  /// Snapshot at time t in O(links <= t); equivalent to
  /// san::snapshot_at(network, t).
  SanSnapshot snapshot_at(double time) const;

  /// Snapshot of the complete network (t = +infinity).
  SanSnapshot snapshot_full() const;

  /// Materialize a snapshot at each element of `times` in order and invoke
  /// visit(time, snapshot) for it. The snapshot reference is only valid
  /// during the call — its buffers are reused for the next day.
  void sweep(
      std::span<const double> times,
      const std::function<void(double, const SanSnapshot&)>& visit) const;

 private:
  void materialize(double time, SanSnapshot& snap, Scratch& s) const;

  // Columnar logs, stably sorted by time (ties keep append order).
  std::vector<double> social_node_times_;
  std::vector<NodeId> edge_src_, edge_dst_;
  std::vector<double> edge_time_;
  std::vector<NodeId> link_user_;
  std::vector<AttrId> link_attr_;
  std::vector<double> link_time_;
  std::vector<AttributeType> attr_types_;
  std::vector<double> attr_times_;
  double max_time_ = 0.0;
};

}  // namespace san

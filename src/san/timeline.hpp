// SanTimeline: temporal index over a SocialAttributeNetwork that makes the
// daily snapshot sweep — the paper's 79 crawls replayed as snapshot_at(t)
// for t = 1..79 — the fast path.
//
// Cost model:
//   - construction: both link logs are stably time-sorted ONCE into
//     columnar arrays (O(E log E) total, the only comparison sort);
//   - snapshot_at(t): binary-search the time prefix, radix-order the
//     <= t slice with chunk-parallel counting sorts, rebuild CSR —
//     O(links <= t + nodes), zero comparison sorting;
//   - advance(snapshot, t'): build the snapshot at t' FROM its state at
//     t <= t' by appending only the (t, t'] log slice into per-node
//     adjacency slack (graph/slack.hpp) — O(new links + nodes) per day,
//     falling back to a full O(prefix) rebuild when slack is exhausted or
//     a previously dropped link activates;
//   - sweep(times, visit): advance one snapshot through the grid, reusing
//     one scratch set, so a whole replay costs O(total links) amortized
//     instead of O(sum of prefixes) and the steady state allocates nothing.
//
// Results are bit-identical to the naive san::snapshot_at at every time and
// at any SAN_THREADS count: the stable time order fixes members_of
// ordering, CSR content is order-independent, the chunked counting sorts
// use thread-count-independent grains (core/counting_scatter.hpp), and the
// per-node phases write disjoint ranges (see core/parallel.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "san/snapshot.hpp"

namespace san {

class SanTimeline {
 private:
  struct Scratch;

 public:
  explicit SanTimeline(const SocialAttributeNetwork& network);
  SanTimeline(const SanTimeline&) = delete;
  SanTimeline& operator=(const SanTimeline&) = delete;
  ~SanTimeline();

  /// Reusable materialization state: one Materializer + one SanSnapshot make
  /// repeated snapshot_at calls allocation-free in the steady state (the
  /// serving layer's SnapshotCache holds a pool of these). Not thread-safe;
  /// the timeline it borrows must outlive it.
  class Materializer {
   public:
    explicit Materializer(const SanTimeline& timeline);
    Materializer(const Materializer&) = delete;
    Materializer& operator=(const Materializer&) = delete;
    ~Materializer();

    /// Rebuild `snap` as of `time` from scratch, reusing both this scratch
    /// set and the snapshot's own arrays (CSR buffers ping-pong between the
    /// two). Densely packed — the layout for snapshots that will be shared
    /// and read, not advanced.
    void materialize(double time, SanSnapshot& snap);

    /// Delta path: bring `snap` to `time` by appending only the links that
    /// arrived since this Materializer last produced it. Falls back to a
    /// full (slack-layout) rebuild when `snap` is not the snapshot this
    /// Materializer built last, `time` regresses, per-node slack is
    /// exhausted, or a previously dropped link activates (its endpoint
    /// joined, which belongs mid-list in members_of time order). Either
    /// way the result is bit-identical to materialize(time, snap).
    void advance(double time, SanSnapshot& snap);

    /// Drop the delta state so the next advance() performs a full
    /// (slack-layout) rebuild. Required after the borrowed timeline
    /// absorbs events at or before this Materializer's last-produced
    /// time — such events shift the indexed log under the recorded
    /// prefixes, which advance() cannot detect on its own (LiveTimeline
    /// calls this on every late batch).
    void invalidate();

   private:
    const SanTimeline* timeline_;
    std::unique_ptr<Scratch> scratch_;
  };

  std::size_t social_node_total() const { return social_node_times_.size(); }
  std::size_t attribute_node_total() const { return attr_times_.size(); }
  std::uint64_t social_link_total() const { return edge_time_.size(); }
  std::uint64_t attribute_link_total() const { return link_time_.size(); }
  /// Largest timestamp of any node or link (0.0 for an empty network).
  double max_time() const { return max_time_; }

  /// Live-ingest extension (san/live_timeline.hpp): index every event
  /// `network` gained since this timeline last saw it (construction or a
  /// previous absorb) by stable-merging the new log slices into the
  /// columnar time-sorted arrays — identical to rebuilding the timeline
  /// from `network`, at O(moved suffix + new events) instead of a full
  /// re-sort. `network` must be the same append-only network this timeline
  /// indexes. NOT thread-safe: absorbing while any other thread reads this
  /// timeline (snapshot_at, a Materializer, a SnapshotCache bound to it)
  /// is a data race — LiveTimeline keeps its growing timeline writer-only
  /// and gives historical readers a separate frozen index for exactly that
  /// reason. Absorbing events at or before a Materializer's last-produced
  /// time additionally requires invalidating that Materializer.
  void absorb(const SocialAttributeNetwork& network);

  /// Snapshot at time t in O(links <= t); equivalent to
  /// san::snapshot_at(network, t).
  SanSnapshot snapshot_at(double time) const;

  /// Snapshot of the complete network (t = +infinity).
  SanSnapshot snapshot_full() const;

  /// Materialize a snapshot at each element of `times` in order and invoke
  /// visit(time, snapshot) for it. The snapshot reference is only valid
  /// during the call — its buffers are reused for the next day. Consecutive
  /// times advance incrementally (the delta path); a non-ascending grid
  /// still works but pays a full rebuild at each regression.
  void sweep(
      std::span<const double> times,
      const std::function<void(double, const SanSnapshot&)>& visit) const;

  /// Reference sweep that rebuilds every snapshot from scratch (the PR 2
  /// behavior). Same results as sweep(); kept for benchmarking the delta
  /// path against and for callers that want dense snapshot layouts.
  void sweep_full_rebuild(
      std::span<const double> times,
      const std::function<void(double, const SanSnapshot&)>& visit) const;

 private:
  void materialize(double time, SanSnapshot& snap, Scratch& s,
                   bool slack) const;
  void advance(double time, SanSnapshot& snap, Scratch& s) const;
  void build_social(std::size_t n_social, std::size_t edge_prefix,
                    SanSnapshot& snap, Scratch& s, bool slack) const;
  void build_attribute_links(std::size_t n_social, std::size_t link_prefix,
                             SanSnapshot& snap, Scratch& s, bool slack) const;

  // Columnar logs, stably sorted by time (ties keep append order).
  std::vector<double> social_node_times_;
  std::vector<NodeId> edge_src_, edge_dst_;
  std::vector<double> edge_time_;
  std::vector<NodeId> link_user_;
  std::vector<AttrId> link_attr_;
  std::vector<double> link_time_;
  std::vector<AttributeType> attr_types_;
  std::vector<double> attr_times_;
  // Attribute ids in stable creation-time order plus the matching sorted
  // times, so both materialize and advance touch exactly the attributes
  // created inside their time window.
  std::vector<AttrId> attr_order_;
  std::vector<double> attr_sorted_times_;
  double max_time_ = 0.0;

  // absorb() scratch, reused across batches so the live ingest hot path
  // stops allocating once the arrays reach their high-water size.
  struct AbsorbScratch {
    std::vector<std::uint64_t> perm, order;
    std::vector<double> chunk_times, time_scratch;
    std::vector<NodeId> id_scratch;
    std::vector<AttrId> attr_scratch;
  };
  AbsorbScratch absorb_;
};

}  // namespace san

// Plain-text serialization of a SAN (nodes, links, timestamps, attribute
// metadata). The format is line-oriented and versioned so datasets generated
// by the crawler or the models can be stored and reloaded.
#pragma once

#include <iosfwd>
#include <string>

#include "san/san.hpp"

namespace san {

/// Write `network` to `out` in the "SANv1" text format.
void save_san(const SocialAttributeNetwork& network, std::ostream& out);
void save_san(const SocialAttributeNetwork& network, const std::string& path);

/// Parse a "SANv1" stream. Throws std::runtime_error on malformed input.
SocialAttributeNetwork load_san(std::istream& in);
SocialAttributeNetwork load_san(const std::string& path);

}  // namespace san

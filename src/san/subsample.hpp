// Attribute subsampling validation (§4.3): drop each user's declared
// attributes independently with probability 1 - keep_probability and verify
// attribute metrics are stable, which the paper uses to argue that the 22 %
// of users with declared attributes are representative.
#pragma once

#include "san/san.hpp"
#include "stats/rng.hpp"

namespace san {

/// Copy of `network` in which every attribute link survives independently
/// with probability keep_probability. Social structure is untouched.
SocialAttributeNetwork subsample_attributes(
    const SocialAttributeNetwork& network, double keep_probability,
    std::uint64_t seed);

}  // namespace san

#include "san/serialization.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace san {
namespace {

constexpr const char* kMagic = "SANv1";

void expect(bool condition, const char* message) {
  if (!condition) throw std::runtime_error(std::string("load_san: ") + message);
}

}  // namespace

void save_san(const SocialAttributeNetwork& network, std::ostream& out) {
  // Timestamps must survive a save/load round trip exactly: SanTimeline
  // snapshots binary-search them, so a 6-digit default would shift snapshot
  // boundaries for fractional times.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kMagic << '\n';
  out << "social_nodes " << network.social_node_count() << '\n';
  for (std::size_t u = 0; u < network.social_node_count(); ++u) {
    out << network.social_node_time(static_cast<NodeId>(u)) << '\n';
  }
  out << "attribute_nodes " << network.attribute_node_count() << '\n';
  for (std::size_t a = 0; a < network.attribute_node_count(); ++a) {
    const auto id = static_cast<AttrId>(a);
    // Name goes last because it may contain spaces (never newlines).
    out << static_cast<int>(network.attribute_type(id)) << ' '
        << network.attribute_node_time(id) << ' ' << network.attribute_name(id)
        << '\n';
  }
  out << "social_links " << network.social_log().size() << '\n';
  for (const auto& e : network.social_log()) {
    out << e.src << ' ' << e.dst << ' ' << e.time << '\n';
  }
  out << "attribute_links " << network.attribute_log().size() << '\n';
  for (const auto& link : network.attribute_log()) {
    out << link.user << ' ' << link.attr << ' ' << link.time << '\n';
  }
}

void save_san(const SocialAttributeNetwork& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_san: cannot open " + path);
  save_san(network, out);
  // Opening writable says nothing about the writes themselves: surface a
  // full disk as a failure instead of leaving a truncated SANv1 file.
  out.flush();
  if (!out) throw std::runtime_error("save_san: short write to " + path);
}

SocialAttributeNetwork load_san(std::istream& in) {
  std::string token;
  expect(static_cast<bool>(in >> token) && token == kMagic, "bad magic");

  SocialAttributeNetwork network;
  std::size_t n_social = 0;
  expect(static_cast<bool>(in >> token >> n_social) && token == "social_nodes",
         "expected social_nodes");
  for (std::size_t u = 0; u < n_social; ++u) {
    double time = 0.0;
    expect(static_cast<bool>(in >> time), "truncated social node times");
    network.add_social_node(time);
  }

  std::size_t n_attr = 0;
  expect(static_cast<bool>(in >> token >> n_attr) && token == "attribute_nodes",
         "expected attribute_nodes");
  for (std::size_t a = 0; a < n_attr; ++a) {
    int type = 0;
    double time = 0.0;
    expect(static_cast<bool>(in >> type >> time), "truncated attribute node");
    expect(type >= 0 && type < kAttributeTypeCount, "bad attribute type");
    std::string name;
    std::getline(in, name);
    if (!name.empty() && name.front() == ' ') name.erase(0, 1);
    network.add_attribute_node(static_cast<AttributeType>(type), name, time);
  }

  std::uint64_t n_links = 0;
  expect(static_cast<bool>(in >> token >> n_links) && token == "social_links",
         "expected social_links");
  for (std::uint64_t i = 0; i < n_links; ++i) {
    NodeId u = 0, v = 0;
    double time = 0.0;
    expect(static_cast<bool>(in >> u >> v >> time), "truncated social link");
    network.add_social_link(u, v, time);
  }

  expect(static_cast<bool>(in >> token >> n_links) &&
             token == "attribute_links",
         "expected attribute_links");
  for (std::uint64_t i = 0; i < n_links; ++i) {
    NodeId u = 0;
    AttrId a = 0;
    double time = 0.0;
    expect(static_cast<bool>(in >> u >> a >> time), "truncated attribute link");
    network.add_attribute_link(u, a, time);
  }
  return network;
}

SocialAttributeNetwork load_san(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_san: cannot open " + path);
  return load_san(in);
}

}  // namespace san

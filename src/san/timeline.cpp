#include "san/timeline.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace san {
namespace {

/// Stable permutation of [0, n) ordered by times[i] (ties keep index order).
std::vector<std::uint64_t> stable_order_by_time(std::span<const double> times) {
  std::vector<std::uint64_t> order(times.size());
  std::iota(order.begin(), order.end(), std::uint64_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     return times[a] < times[b];
                   });
  return order;
}

}  // namespace

struct SanTimeline::Scratch {
  std::vector<NodeId> f_src, f_dst;  // filtered slice, time order
  std::vector<NodeId> g_src, g_dst;  // src-major intermediate
  std::vector<std::uint64_t> cursor;
  // Ping-pong buffers swapped with the snapshot's CsrGraph by
  // adopt_sorted_adjacency, so a sweep reuses both sets' capacity.
  std::vector<std::uint64_t> out_offsets, in_offsets;
  std::vector<NodeId> out_targets, in_targets;
  std::vector<NodeId> users;  // filtered attribute links, time order
  std::vector<AttrId> attrs;
};

SanTimeline::~SanTimeline() = default;

SanTimeline::Materializer::Materializer(const SanTimeline& timeline)
    : timeline_(&timeline), scratch_(std::make_unique<Scratch>()) {}

SanTimeline::Materializer::~Materializer() = default;

void SanTimeline::Materializer::materialize(double time, SanSnapshot& snap) {
  timeline_->materialize(time, snap, *scratch_);
}

SanTimeline::SanTimeline(const SocialAttributeNetwork& network) {
  const auto node_times = network.social_node_times();
  social_node_times_.assign(node_times.begin(), node_times.end());

  const auto social_log = network.social_log();
  {
    std::vector<double> times(social_log.size());
    for (std::size_t i = 0; i < social_log.size(); ++i) {
      times[i] = social_log[i].time;
    }
    const auto order = stable_order_by_time(times);
    edge_src_.resize(social_log.size());
    edge_dst_.resize(social_log.size());
    edge_time_.resize(social_log.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto& e = social_log[order[i]];
      edge_src_[i] = e.src;
      edge_dst_[i] = e.dst;
      edge_time_[i] = e.time;
    }
  }

  const auto attribute_log = network.attribute_log();
  {
    std::vector<double> times(attribute_log.size());
    for (std::size_t i = 0; i < attribute_log.size(); ++i) {
      times[i] = attribute_log[i].time;
    }
    const auto order = stable_order_by_time(times);
    link_user_.resize(attribute_log.size());
    link_attr_.resize(attribute_log.size());
    link_time_.resize(attribute_log.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto& link = attribute_log[order[i]];
      link_user_[i] = link.user;
      link_attr_[i] = link.attr;
      link_time_[i] = link.time;
    }
  }

  const std::size_t n_attr = network.attribute_node_count();
  attr_types_.reserve(n_attr);
  attr_times_.reserve(n_attr);
  for (AttrId a = 0; a < n_attr; ++a) {
    attr_types_.push_back(network.attribute_type(a));
    attr_times_.push_back(network.attribute_node_time(a));
  }

  max_time_ = 0.0;
  if (!social_node_times_.empty()) max_time_ = social_node_times_.back();
  if (!edge_time_.empty()) max_time_ = std::max(max_time_, edge_time_.back());
  if (!link_time_.empty()) max_time_ = std::max(max_time_, link_time_.back());
  for (const double t : attr_times_) max_time_ = std::max(max_time_, t);
}

void SanTimeline::materialize(double time, SanSnapshot& snap,
                              Scratch& s) const {
  snap.time = time;
  snap.dropped_link_count = 0;
  snap.created_attribute_count = 0;

  const auto n_social = static_cast<std::size_t>(
      std::upper_bound(social_node_times_.begin(), social_node_times_.end(),
                       time) -
      social_node_times_.begin());

  // Social edges: four fused counting passes over the <= t slice build the
  // final out/in CSR arrays directly — O(prefix + nodes), no comparison
  // sort, no dedup branches (the network rejects duplicate and self links
  // at insert time). The arrays are handed to the snapshot's CsrGraph by
  // buffer swap.
  const auto edge_prefix = static_cast<std::size_t>(
      std::upper_bound(edge_time_.begin(), edge_time_.end(), time) -
      edge_time_.begin());
  // P0: filter the slice, counting out-degrees on the fly.
  s.f_src.clear();
  s.f_dst.clear();
  s.out_offsets.assign(n_social + 1, 0);
  for (std::size_t i = 0; i < edge_prefix; ++i) {
    if (edge_src_[i] >= n_social || edge_dst_[i] >= n_social) {
      ++snap.dropped_link_count;  // link predates an endpoint's join
      continue;
    }
    s.f_src.push_back(edge_src_[i]);
    s.f_dst.push_back(edge_dst_[i]);
    ++s.out_offsets[edge_src_[i] + 1];
  }
  const std::size_t m = s.f_src.size();
  for (std::size_t k = 1; k <= n_social; ++k) {
    s.out_offsets[k] += s.out_offsets[k - 1];
  }
  // P1: stable scatter by src, counting in-degrees on the fly.
  s.cursor.assign(s.out_offsets.begin(), s.out_offsets.end() - 1);
  s.in_offsets.assign(n_social + 1, 0);
  s.g_src.resize(m);
  s.g_dst.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t pos = s.cursor[s.f_src[i]]++;
    s.g_src[pos] = s.f_src[i];
    s.g_dst[pos] = s.f_dst[i];
    ++s.in_offsets[s.f_dst[i] + 1];
  }
  for (std::size_t k = 1; k <= n_social; ++k) {
    s.in_offsets[k] += s.in_offsets[k - 1];
  }
  // P2: stable scatter of the src-major order by dst — sources arrive
  // ascending per target, which IS the final in-adjacency.
  s.cursor.assign(s.in_offsets.begin(), s.in_offsets.end() - 1);
  s.in_targets.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    s.in_targets[s.cursor[s.g_dst[i]]++] = s.g_src[i];
  }
  // P3: walk the in-lists target-major (targets ascending) and scatter by
  // source — targets arrive ascending per source, the final out-adjacency.
  s.cursor.assign(s.out_offsets.begin(), s.out_offsets.end() - 1);
  s.out_targets.resize(m);
  for (std::size_t d = 0; d < n_social; ++d) {
    for (std::uint64_t p = s.in_offsets[d]; p < s.in_offsets[d + 1]; ++p) {
      s.out_targets[s.cursor[s.in_targets[p]]++] = static_cast<NodeId>(d);
    }
  }
  snap.social.adopt_sorted_adjacency(n_social, s.out_offsets, s.out_targets,
                                     s.in_offsets, s.in_targets);

  // Attribute nodes created by t; ids stay dense and aligned.
  const std::size_t n_attr = attr_times_.size();
  snap.attribute_types.assign(n_attr, AttributeType::kOther);
  snap.attribute_created.assign(n_attr, 0);
  for (AttrId a = 0; a < n_attr; ++a) {
    if (attr_times_[a] <= time) {
      snap.attribute_created[a] = 1;
      snap.attribute_types[a] = attr_types_[a];
      ++snap.created_attribute_count;
    }
  }

  // Attribute links: the prefix is already in stable time order, so a
  // filtered copy preserves exactly the order the naive path produces.
  const auto link_prefix = static_cast<std::size_t>(
      std::upper_bound(link_time_.begin(), link_time_.end(), time) -
      link_time_.begin());
  s.users.clear();
  s.attrs.clear();
  for (std::size_t i = 0; i < link_prefix; ++i) {
    if (link_user_[i] >= n_social || !snap.attribute_created[link_attr_[i]]) {
      ++snap.dropped_link_count;  // link predates its user or attribute
      continue;
    }
    s.users.push_back(link_user_[i]);
    s.attrs.push_back(link_attr_[i]);
  }
  snap.attribute.rebuild_from_links(n_social, n_attr, s.users, s.attrs);
  snap.attribute_link_count = snap.attribute.link_count();
}

SanSnapshot SanTimeline::snapshot_at(double time) const {
  Scratch s;
  SanSnapshot snap;
  materialize(time, snap, s);
  return snap;
}

SanSnapshot SanTimeline::snapshot_full() const {
  return snapshot_at(std::numeric_limits<double>::infinity());
}

void SanTimeline::sweep(
    std::span<const double> times,
    const std::function<void(double, const SanSnapshot&)>& visit) const {
  Scratch s;
  SanSnapshot snap;
  for (const double time : times) {
    materialize(time, snap, s);
    visit(time, snap);
  }
}

}  // namespace san

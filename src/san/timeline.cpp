#include "san/timeline.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "core/counting_scatter.hpp"
#include "core/parallel.hpp"
#include "graph/slack.hpp"

namespace san {
namespace {

/// Stable permutation of [0, n) ordered by times[i] (ties keep index
/// order), filled into `order` so absorb() can reuse one buffer per batch.
void stable_order_by_time_into(std::span<const double> times,
                               std::vector<std::uint64_t>& order) {
  order.resize(times.size());
  std::iota(order.begin(), order.end(), std::uint64_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     return times[a] < times[b];
                   });
}

std::vector<std::uint64_t> stable_order_by_time(std::span<const double> times) {
  std::vector<std::uint64_t> order;
  stable_order_by_time_into(times, order);
  return order;
}

std::size_t prefix_at(std::span<const double> times, double time) {
  return static_cast<std::size_t>(
      std::upper_bound(times.begin(), times.end(), time) - times.begin());
}

/// absorb() merge plan: `key` holds `old_size` time-sorted rows followed by
/// a time-sorted appended chunk. Emits into `perm` the stable merge of the
/// two runs (existing rows first on ties) as original indices for the
/// positions that move, and returns the first moving position — rows
/// earlier than the chunk's first time stay put, so an in-order absorb
/// costs O(new events), not O(log).
std::size_t merge_suffix_permutation(std::span<const double> key,
                                     std::size_t old_size,
                                     std::vector<std::uint64_t>& perm) {
  const std::size_t n = key.size();
  perm.clear();
  if (old_size >= n) return n;
  const std::size_t pos = static_cast<std::size_t>(
      std::upper_bound(key.begin(), key.begin() + old_size, key[old_size]) -
      key.begin());
  perm.reserve(n - pos);
  std::size_t i = pos, j = old_size;
  while (i < old_size || j < n) {
    if (j >= n || (i < old_size && key[i] <= key[j])) {
      perm.push_back(i++);
    } else {
      perm.push_back(j++);
    }
  }
  return pos;
}

template <typename T>
void apply_suffix_permutation(std::vector<T>& column, std::size_t pos,
                              std::span<const std::uint64_t> perm,
                              std::vector<T>& scratch) {
  scratch.assign(column.begin() + static_cast<std::ptrdiff_t>(pos),
                 column.end());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    column[pos + k] = scratch[perm[k] - pos];
  }
}

}  // namespace

struct SanTimeline::Scratch {
  // Social CSR build: shared counting-scatter engines plus the arrays
  // handed to the snapshot's CsrGraph by buffer swap (adopt_adjacency), so
  // a sweep ping-pongs two buffer sets with zero steady-state allocation.
  core::StableCountingScatter by_src, by_dst, by_rank;
  std::vector<std::uint64_t> counts;
  std::vector<NodeId> g_dst;  // src-major dst sequence, dense ranks
  std::vector<std::uint64_t> out_off, in_off;  // storage starts (cap prefix)
  std::vector<std::uint32_t> out_len, in_len;
  std::vector<NodeId> out_targets, in_targets;
  std::vector<std::uint64_t> dense_out, dense_in;  // dense rank prefixes
  // Attribute links: filtered prefix, time order.
  std::vector<NodeId> users;
  std::vector<AttrId> attrs;

  // Delta-sweep state: which snapshot this scratch last produced, the log
  // prefixes it covers, and every logged link it had to drop (those
  // activate later, when their missing endpoint joins or gets created).
  bool delta_valid = false;
  const SanSnapshot* delta_snap = nullptr;
  double delta_time = 0.0;
  std::size_t n_social = 0;
  std::size_t edge_prefix = 0;
  std::size_t link_prefix = 0;
  std::size_t created_prefix = 0;
  // Attribute id-space size when the snapshot was produced: absorb() can
  // grow the space between advances, which is legal (the snapshot's dense
  // arrays are extended), unlike a size mismatch against this record
  // (a foreign snapshot), which forces a full build.
  std::size_t attr_total = 0;
  std::vector<std::pair<NodeId, NodeId>> deferred_edges;
  std::vector<std::pair<NodeId, AttrId>> deferred_attr;
  // advance() working sets.
  std::vector<std::pair<NodeId, NodeId>> delta_edges;
  std::vector<NodeId> delta_src, delta_dst;
  std::vector<NodeId> delta_users;
  std::vector<AttrId> delta_attrs;
};

SanTimeline::~SanTimeline() = default;

SanTimeline::Materializer::Materializer(const SanTimeline& timeline)
    : timeline_(&timeline), scratch_(std::make_unique<Scratch>()) {}

SanTimeline::Materializer::~Materializer() = default;

void SanTimeline::Materializer::materialize(double time, SanSnapshot& snap) {
  timeline_->materialize(time, snap, *scratch_, /*slack=*/false);
}

void SanTimeline::Materializer::advance(double time, SanSnapshot& snap) {
  timeline_->advance(time, snap, *scratch_);
}

void SanTimeline::Materializer::invalidate() { scratch_->delta_valid = false; }

SanTimeline::SanTimeline(const SocialAttributeNetwork& network) {
  const auto node_times = network.social_node_times();
  social_node_times_.assign(node_times.begin(), node_times.end());

  const auto social_log = network.social_log();
  {
    std::vector<double> times(social_log.size());
    for (std::size_t i = 0; i < social_log.size(); ++i) {
      times[i] = social_log[i].time;
    }
    const auto order = stable_order_by_time(times);
    edge_src_.resize(social_log.size());
    edge_dst_.resize(social_log.size());
    edge_time_.resize(social_log.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto& e = social_log[order[i]];
      edge_src_[i] = e.src;
      edge_dst_[i] = e.dst;
      edge_time_[i] = e.time;
    }
  }

  const auto attribute_log = network.attribute_log();
  {
    std::vector<double> times(attribute_log.size());
    for (std::size_t i = 0; i < attribute_log.size(); ++i) {
      times[i] = attribute_log[i].time;
    }
    const auto order = stable_order_by_time(times);
    link_user_.resize(attribute_log.size());
    link_attr_.resize(attribute_log.size());
    link_time_.resize(attribute_log.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto& link = attribute_log[order[i]];
      link_user_[i] = link.user;
      link_attr_[i] = link.attr;
      link_time_[i] = link.time;
    }
  }

  const std::size_t n_attr = network.attribute_node_count();
  attr_types_.reserve(n_attr);
  attr_times_.reserve(n_attr);
  for (AttrId a = 0; a < n_attr; ++a) {
    attr_types_.push_back(network.attribute_type(a));
    attr_times_.push_back(network.attribute_node_time(a));
  }
  {
    const auto order = stable_order_by_time(attr_times_);
    attr_order_.resize(n_attr);
    attr_sorted_times_.resize(n_attr);
    for (std::size_t i = 0; i < n_attr; ++i) {
      attr_order_[i] = static_cast<AttrId>(order[i]);
      attr_sorted_times_[i] = attr_times_[order[i]];
    }
  }

  max_time_ = 0.0;
  if (!social_node_times_.empty()) max_time_ = social_node_times_.back();
  if (!edge_time_.empty()) max_time_ = std::max(max_time_, edge_time_.back());
  if (!link_time_.empty()) max_time_ = std::max(max_time_, link_time_.back());
  for (const double t : attr_times_) max_time_ = std::max(max_time_, t);
}

void SanTimeline::absorb(const SocialAttributeNetwork& network) {
  const auto node_times = network.social_node_times();
  const auto social_log = network.social_log();
  const auto attribute_log = network.attribute_log();
  const std::size_t n_attr = network.attribute_node_count();
  if (node_times.size() < social_node_times_.size() ||
      social_log.size() < edge_time_.size() ||
      attribute_log.size() < link_time_.size() ||
      n_attr < attr_times_.size()) {
    throw std::invalid_argument(
        "SanTimeline::absorb: network holds fewer events than the index");
  }

  // Social nodes: join times are non-decreasing (the network enforces it)
  // and ids are chronological, so node rows append without a merge.
  social_node_times_.insert(
      social_node_times_.end(),
      node_times.begin() +
          static_cast<std::ptrdiff_t>(social_node_times_.size()),
      node_times.end());

  AbsorbScratch& s = absorb_;

  if (social_log.size() > edge_time_.size()) {
    const std::size_t old_m = edge_time_.size();
    s.chunk_times.resize(social_log.size() - old_m);
    for (std::size_t i = 0; i < s.chunk_times.size(); ++i) {
      s.chunk_times[i] = social_log[old_m + i].time;
    }
    stable_order_by_time_into(s.chunk_times, s.order);
    for (const std::uint64_t k : s.order) {
      const auto& e = social_log[old_m + k];
      edge_src_.push_back(e.src);
      edge_dst_.push_back(e.dst);
      edge_time_.push_back(e.time);
    }
    const std::size_t pos =
        merge_suffix_permutation(edge_time_, old_m, s.perm);
    apply_suffix_permutation(edge_src_, pos, s.perm, s.id_scratch);
    apply_suffix_permutation(edge_dst_, pos, s.perm, s.id_scratch);
    apply_suffix_permutation(edge_time_, pos, s.perm, s.time_scratch);
  }

  if (attribute_log.size() > link_time_.size()) {
    const std::size_t old_m = link_time_.size();
    s.chunk_times.resize(attribute_log.size() - old_m);
    for (std::size_t i = 0; i < s.chunk_times.size(); ++i) {
      s.chunk_times[i] = attribute_log[old_m + i].time;
    }
    stable_order_by_time_into(s.chunk_times, s.order);
    for (const std::uint64_t k : s.order) {
      const auto& link = attribute_log[old_m + k];
      link_user_.push_back(link.user);
      link_attr_.push_back(link.attr);
      link_time_.push_back(link.time);
    }
    const std::size_t pos =
        merge_suffix_permutation(link_time_, old_m, s.perm);
    apply_suffix_permutation(link_user_, pos, s.perm, s.id_scratch);
    apply_suffix_permutation(link_attr_, pos, s.perm, s.attr_scratch);
    apply_suffix_permutation(link_time_, pos, s.perm, s.time_scratch);
  }

  if (n_attr > attr_times_.size()) {
    const std::size_t old_n = attr_times_.size();
    for (std::size_t a = old_n; a < n_attr; ++a) {
      attr_types_.push_back(network.attribute_type(static_cast<AttrId>(a)));
      attr_times_.push_back(
          network.attribute_node_time(static_cast<AttrId>(a)));
    }
    s.chunk_times.assign(
        attr_times_.begin() + static_cast<std::ptrdiff_t>(old_n),
        attr_times_.end());
    stable_order_by_time_into(s.chunk_times, s.order);
    for (const std::uint64_t k : s.order) {
      attr_order_.push_back(static_cast<AttrId>(old_n + k));
      attr_sorted_times_.push_back(s.chunk_times[k]);
    }
    const std::size_t pos =
        merge_suffix_permutation(attr_sorted_times_, old_n, s.perm);
    apply_suffix_permutation(attr_order_, pos, s.perm, s.attr_scratch);
    apply_suffix_permutation(attr_sorted_times_, pos, s.perm,
                             s.time_scratch);
  }

  if (!social_node_times_.empty()) {
    max_time_ = std::max(max_time_, social_node_times_.back());
  }
  if (!edge_time_.empty()) max_time_ = std::max(max_time_, edge_time_.back());
  if (!link_time_.empty()) max_time_ = std::max(max_time_, link_time_.back());
  if (!attr_sorted_times_.empty()) {
    max_time_ = std::max(max_time_, attr_sorted_times_.back());
  }
}

// Social edges: radix-order the <= t slice into the final out/in CSR
// arrays with chunk-parallel stable counting sorts
// (core/counting_scatter.hpp) — O(prefix + nodes), no comparison sort, no
// dedup branches (the network rejects duplicate and self links at insert
// time). A slack build reserves per-node headroom so advance() can append
// later days in place.
//
// The pipeline is FUSED to four passes over the data: the validity filter
// rides inside the src count (invalid links simply don't emit — both
// phases of a counting sort tolerate filtered sequences as long as they
// agree), and each scatter feeds the NEXT sort's chunk histograms through
// scatter_fused's hook at the moment it knows an item's output position,
// so the standalone count passes P2 and P3 used to pay disappear. The
// last sort therefore works in the in-adjacency's STORAGE slot space
// (positions are all a fused count sees); ascending storage order equals
// ascending (dst, src) order, so stable ranks — and every output byte —
// are identical to the unfused pipeline.
void SanTimeline::build_social(std::size_t n_social, std::size_t edge_prefix,
                               SanSnapshot& snap, Scratch& s,
                               bool slack) const {
  s.deferred_edges.clear();
  const NodeId* log_src = edge_src_.data();
  const NodeId* log_dst = edge_dst_.data();
  const auto valid = [&](std::size_t i) {
    return log_src[i] < n_social && log_dst[i] < n_social;
  };

  const auto layout = [&](std::vector<std::uint32_t>& len,
                          std::vector<std::uint64_t>& off,
                          std::vector<std::uint64_t>& dense) {
    len.assign(n_social, 0);
    off.assign(n_social + 1, 0);
    dense.assign(n_social + 1, 0);
    for (std::size_t u = 0; u < n_social; ++u) {
      len[u] = static_cast<std::uint32_t>(s.counts[u]);
      const std::size_t cap =
          slack ? graph::slack_capacity(s.counts[u]) : s.counts[u];
      off[u + 1] = off[u] + cap;
      dense[u + 1] = dense[u] + s.counts[u];
    }
  };

  // P1: count by src over the RAW slice, filtering as it counts (a link
  // whose endpoint hasn't joined yet doesn't emit). The common case drops
  // nothing; when something was dropped, one serial sweep collects the
  // deferred links (they activate when their endpoint arrives).
  s.by_src.count(
      edge_prefix, n_social,
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) {
          if (valid(i)) emit(log_src[i]);
        }
      },
      s.counts);
  layout(s.out_len, s.out_off, s.dense_out);
  const std::size_t m = s.dense_out[n_social];
  if (m < edge_prefix) {
    for (std::size_t i = 0; i < edge_prefix; ++i) {
      if (!valid(i)) s.deferred_edges.emplace_back(log_src[i], log_dst[i]);
    }
  }

  // P1 scatter: the slice lands src-major as a dense dst sequence (the
  // source of rank i is recovered from the dense prefix while walking),
  // and the hook counts each landed dst into P2's chunk histograms.
  s.g_dst.resize(m);
  s.by_dst.begin_fused_count(m, n_social);
  s.by_src.scatter_fused(
      std::span<const std::uint64_t>(s.dense_out.data(), n_social),
      [&](std::size_t begin, std::size_t end, auto emit) {
        for (std::size_t i = begin; i < end; ++i) {
          if (valid(i)) emit(log_src[i], log_dst[i]);
        }
      },
      s.g_dst.data(),
      [&](std::uint64_t pos, NodeId dst) { s.by_dst.fused_add(pos, dst); });
  s.by_dst.finish_fused_count(s.counts);
  layout(s.in_len, s.in_off, s.dense_in);

  // P2 scatter: src-major order by dst — sources arrive ascending per
  // target, which IS the final in-adjacency (written at the slack
  // layout's storage starts). The hook counts each landed source into
  // P3's histograms, keyed by the STORAGE slot it landed in.
  const auto src_major = [&](std::size_t begin, std::size_t end, auto&& fn) {
    // start == dense: the src-major intermediate is packed, so pos == rank.
    core::walk_keyed_regions(s.dense_out, s.dense_out, begin, end, fn);
  };
  s.in_targets.resize(s.in_off.back());
  s.by_rank.begin_fused_count(s.in_off.back(), n_social);
  s.by_dst.scatter_fused(
      std::span<const std::uint64_t>(s.in_off.data(), n_social),
      [&](std::size_t begin, std::size_t end, auto emit) {
        src_major(begin, end,
                  [&](std::size_t i, NodeId u) { emit(s.g_dst[i], u); });
      },
      s.in_targets.data(),
      [&](std::uint64_t pos, NodeId u) { s.by_rank.fused_add(pos, u); });

  // P3 scatter: walk the in-adjacency's live storage slots (dead slack
  // skipped region-by-region; the per-src totals were already known at
  // P1, so no finish_fused_count) and scatter by source — targets arrive
  // ascending per source, the final out-adjacency.
  s.out_targets.resize(s.out_off.back());
  s.by_rank.scatter(
      std::span<const std::uint64_t>(s.out_off.data(), n_social),
      [&](std::size_t begin, std::size_t end, auto emit) {
        core::walk_slack_slots(
            std::span<const std::uint64_t>(s.in_off.data(), n_social),
            s.in_len, begin, end, [&](std::uint64_t pos, std::size_t d) {
              emit(s.in_targets[pos], static_cast<NodeId>(d));
            });
      },
      s.out_targets.data());

  snap.social.adopt_adjacency(n_social, s.out_off, s.out_len, s.out_targets,
                              s.in_off, s.in_len, s.in_targets);
}

// Attribute links: the prefix is already in stable time order, so a
// filtered copy preserves exactly the order the naive path produces.
// Dropped links are remembered — they activate once their user joins or
// their attribute is created.
void SanTimeline::build_attribute_links(std::size_t n_social,
                                        std::size_t link_prefix,
                                        SanSnapshot& snap, Scratch& s,
                                        bool slack) const {
  s.users.clear();
  s.attrs.clear();
  s.deferred_attr.clear();
  for (std::size_t i = 0; i < link_prefix; ++i) {
    if (link_user_[i] >= n_social || !snap.attribute_created[link_attr_[i]]) {
      s.deferred_attr.emplace_back(link_user_[i], link_attr_[i]);
      continue;
    }
    s.users.push_back(link_user_[i]);
    s.attrs.push_back(link_attr_[i]);
  }
  snap.attribute.rebuild_from_links(n_social, attr_times_.size(), s.users,
                                    s.attrs, slack);
}

void SanTimeline::materialize(double time, SanSnapshot& snap, Scratch& s,
                              bool slack) const {
  snap.time = time;

  const std::size_t n_social = prefix_at(social_node_times_, time);
  const std::size_t edge_prefix = prefix_at(edge_time_, time);
  build_social(n_social, edge_prefix, snap, s, slack);

  // Attribute nodes created by t; ids stay dense and aligned.
  const std::size_t n_attr = attr_times_.size();
  const std::size_t created_prefix = prefix_at(attr_sorted_times_, time);
  snap.attribute_types.assign(n_attr, AttributeType::kOther);
  snap.attribute_created.assign(n_attr, 0);
  for (std::size_t k = 0; k < created_prefix; ++k) {
    const AttrId a = attr_order_[k];
    snap.attribute_created[a] = 1;
    snap.attribute_types[a] = attr_types_[a];
  }
  snap.created_attribute_count = created_prefix;

  const std::size_t link_prefix = prefix_at(link_time_, time);
  build_attribute_links(n_social, link_prefix, snap, s, slack);
  snap.attribute_link_count = snap.attribute.link_count();
  snap.dropped_link_count = s.deferred_edges.size() + s.deferred_attr.size();

  // A slack build is advance-ready: remember what `snap` now holds.
  s.delta_valid = slack;
  s.delta_snap = slack ? &snap : nullptr;
  s.delta_time = time;
  s.n_social = n_social;
  s.edge_prefix = edge_prefix;
  s.link_prefix = link_prefix;
  s.created_prefix = created_prefix;
  s.attr_total = n_attr;
}

void SanTimeline::advance(double time, SanSnapshot& snap, Scratch& s) const {
  // The address check alone is spoofable (a new snapshot can reuse a
  // destroyed one's storage), so also require the snapshot's observable
  // state to match what this scratch last produced — any mismatch falls
  // back to a full build instead of corrupting a foreign object.
  if (!s.delta_valid || s.delta_snap != &snap || time < s.delta_time ||
      snap.time != s.delta_time ||
      snap.social.node_count() != s.n_social ||
      snap.attribute_created.size() != s.attr_total ||
      snap.created_attribute_count != s.created_prefix) {
    materialize(time, snap, s, /*slack=*/true);
    return;
  }
  // The timeline may have absorbed new attribute nodes since this snapshot
  // was produced (live ingestion): extend the dense id-space arrays — ids
  // only ever append, so existing entries keep their positions.
  const std::size_t n_attr = attr_times_.size();
  if (snap.attribute_created.size() < n_attr) {
    snap.attribute_created.resize(n_attr, 0);
    snap.attribute_types.resize(n_attr, AttributeType::kOther);
  }
  s.attr_total = n_attr;
  const std::size_t n_new = prefix_at(social_node_times_, time);
  const std::size_t edge_prefix_new = prefix_at(edge_time_, time);
  const std::size_t link_prefix_new = prefix_at(link_time_, time);
  const std::size_t created_new = prefix_at(attr_sorted_times_, time);

  // ---- Social graph: activated deferred links + the (t, t'] slice are
  // one sorted batch appended into the per-node slack. ----
  s.delta_edges.clear();
  if (n_new > s.n_social && !s.deferred_edges.empty()) {
    std::size_t w = 0;
    for (const auto& e : s.deferred_edges) {
      if (e.first < n_new && e.second < n_new) {
        s.delta_edges.push_back(e);  // endpoint joined: the link activates
      } else {
        s.deferred_edges[w++] = e;
      }
    }
    s.deferred_edges.resize(w);
  }
  for (std::size_t i = s.edge_prefix; i < edge_prefix_new; ++i) {
    if (edge_src_[i] >= n_new || edge_dst_[i] >= n_new) {
      s.deferred_edges.emplace_back(edge_src_[i], edge_dst_[i]);
    } else {
      s.delta_edges.emplace_back(edge_src_[i], edge_dst_[i]);
    }
  }
  if (!s.delta_edges.empty() || n_new > s.n_social) {
    std::sort(s.delta_edges.begin(), s.delta_edges.end());
    s.delta_src.resize(s.delta_edges.size());
    s.delta_dst.resize(s.delta_edges.size());
    for (std::size_t i = 0; i < s.delta_edges.size(); ++i) {
      s.delta_src[i] = s.delta_edges[i].first;
      s.delta_dst[i] = s.delta_edges[i].second;
    }
    if (!snap.social.append_sorted_links(n_new, s.delta_src, s.delta_dst)) {
      // Slack exhausted somewhere: full rebuild re-reserves against the
      // grown degrees (amortized-doubling, so this stays rare).
      build_social(n_new, edge_prefix_new, snap, s, /*slack=*/true);
    }
  }

  // ---- Attribute nodes created in (t, t']. ----
  for (std::size_t k = s.created_prefix; k < created_new; ++k) {
    const AttrId a = attr_order_[k];
    snap.attribute_created[a] = 1;
    snap.attribute_types[a] = attr_types_[a];
  }
  snap.created_attribute_count = created_new;

  // ---- Attribute links. An activated deferred link belongs in the MIDDLE
  // of its members_of list (global time order), which append cannot
  // express — rebuild the layer instead. ----
  bool activated = false;
  for (const auto& [u, a] : s.deferred_attr) {
    if (u < n_new && snap.attribute_created[a]) {
      activated = true;
      break;
    }
  }
  if (activated) {
    build_attribute_links(n_new, link_prefix_new, snap, s, /*slack=*/true);
  } else {
    s.delta_users.clear();
    s.delta_attrs.clear();
    for (std::size_t i = s.link_prefix; i < link_prefix_new; ++i) {
      if (link_user_[i] >= n_new ||
          !snap.attribute_created[link_attr_[i]]) {
        s.deferred_attr.emplace_back(link_user_[i], link_attr_[i]);
      } else {
        s.delta_users.push_back(link_user_[i]);
        s.delta_attrs.push_back(link_attr_[i]);
      }
    }
    if (!s.delta_users.empty() || n_new > s.n_social ||
        n_attr > snap.attribute.right_count()) {
      if (!snap.attribute.append_links(n_new, n_attr, s.delta_users,
                                       s.delta_attrs)) {
        build_attribute_links(n_new, link_prefix_new, snap, s,
                              /*slack=*/true);
      }
    }
  }

  snap.attribute_link_count = snap.attribute.link_count();
  snap.dropped_link_count = s.deferred_edges.size() + s.deferred_attr.size();
  snap.time = time;
  s.delta_time = time;
  s.n_social = n_new;
  s.edge_prefix = edge_prefix_new;
  s.link_prefix = link_prefix_new;
  s.created_prefix = created_new;
}

SanSnapshot SanTimeline::snapshot_at(double time) const {
  Scratch s;
  SanSnapshot snap;
  materialize(time, snap, s, /*slack=*/false);
  return snap;
}

SanSnapshot SanTimeline::snapshot_full() const {
  return snapshot_at(std::numeric_limits<double>::infinity());
}

void SanTimeline::sweep(
    std::span<const double> times,
    const std::function<void(double, const SanSnapshot&)>& visit) const {
  Materializer m(*this);
  SanSnapshot snap;
  for (const double time : times) {
    m.advance(time, snap);
    visit(time, snap);
  }
}

void SanTimeline::sweep_full_rebuild(
    std::span<const double> times,
    const std::function<void(double, const SanSnapshot&)>& visit) const {
  Scratch s;
  SanSnapshot snap;
  for (const double time : times) {
    materialize(time, snap, s, /*slack=*/false);
    visit(time, snap);
  }
}

}  // namespace san

// Guided parameter search (§6): estimate GeneratorParams so that the model
// reproduces a target SAN snapshot. The closed forms of §5.4 give the
// lifetime and attribute parameters directly from the fitted degree
// distributions; an optional greedy refinement probes a small grid of
// (beta, fc) values with pilot generations.
#pragma once

#include <cstdint>

#include "model/generator.hpp"
#include "san/snapshot.hpp"
#include "stats/fit.hpp"

namespace san::model {

struct CalibrationOptions {
  double ms = 1.0;
  /// Pilot-generation bias-correction steps for (mu_l, sigma_l): the
  /// Theorem 1 inversion is exact for the bare mechanism, but measured
  /// targets include effects (reciprocation, phase mixing) that shift the
  /// realized outdegree; each step generates a pilot SAN and nudges the
  /// lifetime parameters by the observed gap.
  int correction_steps = 1;
  bool refine = false;            // greedy (beta, fc) probe with pilot runs
  std::size_t probe_nodes = 20'000;
  std::uint64_t seed = 7;
};

struct CalibrationResult {
  GeneratorParams params;
  stats::LognormalFit outdegree_fit;       // target outdegree lognormal
  stats::LognormalFit attribute_degree_fit;
  stats::PowerLawFit attribute_social_fit;
  double declare_fraction = 0.0;           // users with >= 1 attribute
};

/// Calibrate the generator against a target snapshot.
CalibrationResult calibrate_generator(const SanSnapshot& target,
                                      const CalibrationOptions& options = {});

}  // namespace san::model

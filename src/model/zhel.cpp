#include "model/zhel.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace san::model {

void validate(const ZhelParams& p) {
  const auto fail = [](const char* message) {
    throw std::invalid_argument(std::string("ZhelParams: ") + message);
  };
  if (p.social_node_count == 0) fail("social_node_count must be > 0");
  if (p.mean_out_links <= 0.0) fail("mean_out_links must be > 0");
  if (p.p_triad < 0.0 || p.p_triad > 1.0) fail("p_triad must be in [0, 1]");
  if (p.mean_groups < 0.0) fail("mean_groups must be >= 0");
  if (p.p_friend_group < 0.0 || p.p_friend_group > 1.0) {
    fail("p_friend_group must be in [0, 1]");
  }
  if (p.p_new_group < 0.0 || p.p_new_group >= 1.0) {
    fail("p_new_group must be in [0, 1)");
  }
  if (p.init_nodes < 2) fail("init_nodes must be >= 2");
}

SocialAttributeNetwork generate_zhel(const ZhelParams& params) {
  validate(params);
  stats::Rng rng(params.seed);
  SocialAttributeNetwork net;

  // Preferential-attachment token pools.
  std::vector<NodeId> degree_tokens;  // one per edge endpoint (in + out)
  std::vector<AttrId> group_tokens;   // one per membership

  const auto add_social_link = [&](NodeId u, NodeId v, double time) {
    if (u == v || !net.add_social_link(u, v, time)) return false;
    // Target-side tokens: preferential attachment by indegree, the regime
    // with the cleanest power-law tail.
    degree_tokens.push_back(v);
    return true;
  };

  const auto join_group = [&](NodeId u, AttrId x, double time) {
    if (!net.add_attribute_link(u, x, time)) return false;
    group_tokens.push_back(x);
    return true;
  };

  // Geometric number of actions with the given mean (support k >= 0).
  const auto sample_count = [&](double mean_count) {
    if (mean_count <= 0.0) return std::uint64_t{0};
    const double q = mean_count / (1.0 + mean_count);  // success prob of "more"
    std::uint64_t k = 0;
    while (rng.uniform() < q && k < 10'000) ++k;
    return k;
  };

  const auto sample_preferential_node = [&]() {
    // (degree + 1)-weighted: implicit node token + degree tokens.
    const std::size_t n = net.social_node_count();
    const auto idx = rng.uniform_index(n + degree_tokens.size());
    return idx < n ? static_cast<NodeId>(idx) : degree_tokens[idx - n];
  };

  const auto sample_neighbor = [&](NodeId u, NodeId& out) {
    const auto& g = net.social();
    const auto outs = g.out_neighbors(u);
    const auto ins = g.in_neighbors(u);
    const std::size_t total = outs.size() + ins.size();
    if (total == 0) return false;
    const auto idx = rng.uniform_index(total);
    out = idx < outs.size() ? outs[idx] : ins[idx - outs.size()];
    return true;
  };

  // Initialization: a small clique.
  for (std::size_t i = 0; i < params.init_nodes; ++i) net.add_social_node(0.0);
  for (std::size_t i = 0; i < params.init_nodes; ++i) {
    for (std::size_t j = 0; j < params.init_nodes; ++j) {
      if (i != j) add_social_link(static_cast<NodeId>(i),
                                  static_cast<NodeId>(j), 0.0);
    }
  }
  net.add_attribute_node(AttributeType::kOther, "group-0", 0.0);
  for (std::size_t i = 0; i < params.init_nodes; ++i) {
    join_group(static_cast<NodeId>(i), 0, 0.0);
  }

  while (net.social_node_count() < params.social_node_count) {
    const auto now = static_cast<double>(net.social_node_count());
    const NodeId u = net.add_social_node(now);

    // Social links: triangle closure with probability p_triad, otherwise
    // preferential attachment; directed outgoing per footnote 5.
    const std::uint64_t n_links =
        std::max<std::uint64_t>(1, sample_count(params.mean_out_links));
    for (std::uint64_t i = 0; i < n_links; ++i) {
      NodeId v = u;
      bool closed = false;
      if (rng.bernoulli(params.p_triad)) {
        NodeId w = u;
        if (sample_neighbor(u, w) && sample_neighbor(w, v) && v != u) {
          closed = add_social_link(u, v, now);
        }
      }
      if (!closed) {
        for (int attempt = 0; attempt < 16 && !closed; ++attempt) {
          v = sample_preferential_node();
          closed = add_social_link(u, v, now);
        }
      }
    }

    // Group memberships: copy a friend's group or preferential by size;
    // occasionally create a brand-new group.
    const std::uint64_t n_groups = sample_count(params.mean_groups);
    for (std::uint64_t i = 0; i < n_groups; ++i) {
      AttrId x = 0;
      bool chosen = false;
      if (rng.bernoulli(params.p_new_group) || group_tokens.empty()) {
        x = net.add_attribute_node(
            AttributeType::kOther,
            "group-" + std::to_string(net.attribute_node_count()), now);
        chosen = true;
      } else if (rng.bernoulli(params.p_friend_group)) {
        NodeId w = u;
        if (sample_neighbor(u, w)) {
          const auto groups = net.attributes_of(w);
          if (!groups.empty()) {
            x = groups[rng.uniform_index(groups.size())];
            chosen = true;
          }
        }
      }
      if (!chosen) {
        x = group_tokens[rng.uniform_index(group_tokens.size())];
      }
      join_group(u, x, now);
    }
  }
  return net;
}

}  // namespace san::model

#include "model/attachment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace san::model {

double attachment_weight(AttachmentKind kind, const AttachmentParams& params,
                         double indegree, double common) {
  const double base = std::pow(indegree + 1.0, params.alpha);
  if (kind == AttachmentKind::kLapa) {
    return base * (1.0 + params.beta * common);
  }
  // PAPA. std::pow(0, 0) == 1, which gives the paper's intended reduction to
  // PA at beta = 0 (a constant factor of 2 on every candidate).
  return base * (1.0 + std::pow(common, params.beta));
}

double relative_improvement_percent(double l_ref, double l) {
  if (l_ref == 0.0) return 0.0;
  return (l_ref - l) / l_ref * 100.0;
}

AttachmentLikelihood::AttachmentLikelihood(
    const SocialAttributeNetwork& network, std::size_t event_stride)
    : stride_(event_stride == 0 ? 1 : event_stride),
      attribute_count_(network.attribute_node_count()) {
  events_.reserve(network.social_node_count() + network.attribute_log().size() +
                  network.social_log().size());
  std::uint64_t seq = 0;
  for (std::size_t u = 0; u < network.social_node_count(); ++u) {
    events_.push_back({Event::Type::kNodeJoin,
                       network.social_node_time(static_cast<NodeId>(u)), seq++,
                       static_cast<NodeId>(u), 0});
  }
  for (const auto& link : network.attribute_log()) {
    events_.push_back(
        {Event::Type::kAttributeLink, link.time, seq++, link.user, link.attr});
  }
  for (const auto& e : network.social_log()) {
    events_.push_back({Event::Type::kSocialLink, e.time, seq++, e.src, e.dst});
  }
  // Chronological replay; ties resolve as join < attribute link < social
  // link (matching how a node enters the network), then source order.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.type != b.type) return a.type < b.type;
                     return a.seq < b.seq;
                   });
}

AttachmentLikelihoodResult AttachmentLikelihood::evaluate(
    AttachmentKind kind, const AttachmentParams& params) const {
  const double alpha = params.alpha;
  const double beta = params.beta;

  // Replay state.
  std::vector<std::uint32_t> indegree;
  std::vector<std::uint32_t> outdegree;
  std::vector<std::vector<std::uint32_t>> attrs_of;  // sorted
  std::vector<std::vector<NodeId>> members(attribute_count_);
  std::vector<double> s_attr(attribute_count_, 0.0);  // S_x = sum (d+1)^alpha
  double s_total = 0.0;
  std::size_t n_joined = 0;

  const auto pow_alpha = [alpha](std::uint32_t d) {
    return std::pow(static_cast<double>(d) + 1.0, alpha);
  };

  AttachmentLikelihoodResult result;
  std::uint64_t first_link_counter = 0;
  std::unordered_map<NodeId, std::uint32_t> multiplicity;  // PAPA candidates

  for (const auto& event : events_) {
    switch (event.type) {
      case Event::Type::kNodeJoin: {
        indegree.push_back(0);
        outdegree.push_back(0);
        attrs_of.emplace_back();
        ++n_joined;
        s_total += 1.0;  // (0 + 1)^alpha
        break;
      }
      case Event::Type::kAttributeLink: {
        const NodeId u = event.u;
        const std::uint32_t x = event.v_or_attr;
        auto& attrs = attrs_of[u];
        attrs.insert(std::lower_bound(attrs.begin(), attrs.end(), x), x);
        members[x].push_back(u);
        s_attr[x] += pow_alpha(indegree[u]);
        break;
      }
      case Event::Type::kSocialLink: {
        const NodeId u = event.u;
        const NodeId v = event.v_or_attr;
        const bool is_first_link = outdegree[u] == 0;

        if (is_first_link && n_joined > 1 &&
            (first_link_counter++ % stride_ == 0)) {
          // Score P(v | u issues its first outgoing link).
          const auto& au = attrs_of[u];
          const auto& av = attrs_of[v];
          std::size_t common = 0;
          {
            auto iu = au.begin();
            auto iv = av.begin();
            while (iu != au.end() && iv != av.end()) {
              if (*iu < *iv) {
                ++iu;
              } else if (*iv < *iu) {
                ++iv;
              } else {
                ++common, ++iu, ++iv;
              }
            }
          }

          double z = 0.0;
          const auto self_attrs = static_cast<double>(au.size());
          if (kind == AttachmentKind::kLapa) {
            z = s_total;
            for (const auto x : au) z += beta * s_attr[x];
            z -= pow_alpha(indegree[u]) * (1.0 + beta * self_attrs);
          } else if (beta == 0.0) {
            // PAPA at beta = 0: every candidate gets the constant factor 2.
            z = 2.0 * s_total - 2.0 * pow_alpha(indegree[u]);
          } else {
            z = s_total;
            multiplicity.clear();
            for (const auto x : au) {
              for (const NodeId w : members[x]) ++multiplicity[w];
            }
            for (const auto& [w, m] : multiplicity) {
              z += pow_alpha(indegree[w]) *
                   std::pow(static_cast<double>(m), beta);
            }
            z -= pow_alpha(indegree[u]) *
                 (1.0 + (au.empty() ? 0.0 : std::pow(self_attrs, beta)));
          }

          const double w_uv = attachment_weight(kind, params, indegree[v],
                                                static_cast<double>(common));
          if (z > 0.0 && w_uv > 0.0) {
            result.loglik += std::log(w_uv) - std::log(z);
            ++result.events;
          }
        }

        // State update.
        ++outdegree[u];
        const double before = pow_alpha(indegree[v]);
        ++indegree[v];
        const double delta = pow_alpha(indegree[v]) - before;
        s_total += delta;
        for (const auto x : attrs_of[v]) s_attr[x] += delta;
        break;
      }
    }
  }
  return result;
}

}  // namespace san::model

// Incremental O(1)-amortized sampling for LAPA / PA with alpha = 1, shared
// by the Algorithm 1 generator and the synthetic Google+ crawl.
//
// Preferential attachment by (indegree + 1) uses token arrays: every node
// has one implicit base token plus one token per in-edge. The attribute
// part of LAPA keeps the same (indegree + 1)-weighted tokens per attribute
// member list, which makes the exact LAPA draw
//   f(u, v) ∝ (d_i(v) + 1) * (1 + beta * a(u, v))
// a two-level categorical sample (this is also the practical heuristic the
// paper sketches in §7, made exact by the token multiplicities).
#pragma once

#include <cstdint>
#include <vector>

#include "san/san.hpp"
#include "stats/rng.hpp"

namespace san::model {

class LapaSampler {
 public:
  /// The sampler observes (never mutates) `net`; callers must report every
  /// mutation through the on_* hooks, in the order it happened.
  LapaSampler(const SocialAttributeNetwork& net, stats::Rng& rng)
      : net_(net), rng_(rng) {}

  /// Register a social node. `attachable` = false keeps it out of the base
  /// preferential-attachment pool (used for "lurker" accounts that never
  /// participate; they may still be reached through shared attributes).
  void on_social_node_added(NodeId u, bool attachable = true) {
    if (attachable) node_tokens_.push_back(u);
  }

  void on_attribute_node_added() { attr_member_tokens_.emplace_back(); }

  /// Call after net.add_attribute_link(u, x) succeeded.
  void on_attribute_link_added(NodeId u, AttrId x) {
    attr_tokens_.push_back(x);
    const auto copies = net_.social().in_degree(u) + 1;
    for (std::size_t i = 0; i < copies; ++i) {
      attr_member_tokens_[x].push_back(u);
    }
  }

  /// Call after net.add_social_link(u, v) succeeded.
  void on_social_link_added(NodeId /*u*/, NodeId v) {
    in_edge_tokens_.push_back(v);
    for (const AttrId x : net_.attributes_of(v)) {
      attr_member_tokens_[x].push_back(v);
    }
  }

  /// Existing attribute chosen proportionally to its social degree; false
  /// when no attribute link exists yet.
  bool sample_attribute_preferential(AttrId& out) {
    if (attr_tokens_.empty()) return false;
    out = attr_tokens_[rng_.uniform_index(attr_tokens_.size())];
    return true;
  }

  /// One LAPA draw (PA when beta = 0) of a target for source u. May return
  /// u itself or an existing neighbor — callers retry.
  NodeId sample_target(NodeId u, double beta) {
    return sample_target(u, beta, rng_);
  }

  /// Same draw from an explicit stream. Read-only on the sampler, so
  /// concurrent calls are safe while the network (and hence the token
  /// arrays) is frozen — the generator's parallel candidate phase relies
  /// on this.
  NodeId sample_target(NodeId u, double beta, stats::Rng& rng) const {
    const double z_base = static_cast<double>(node_tokens_.size()) +
                          static_cast<double>(in_edge_tokens_.size());
    double z_attr = 0.0;
    const auto attrs = net_.attributes_of(u);
    if (beta > 0.0) {
      for (const AttrId x : attrs) {
        z_attr += beta * static_cast<double>(attr_member_tokens_[x].size());
      }
    }
    const double r = rng.uniform() * (z_base + z_attr);
    if (r < z_base || z_attr == 0.0) {
      const auto n = node_tokens_.size();
      const auto idx = rng.uniform_index(n + in_edge_tokens_.size());
      return idx < n ? node_tokens_[idx] : in_edge_tokens_[idx - n];
    }
    double acc = z_base;
    for (const AttrId x : attrs) {
      acc += beta * static_cast<double>(attr_member_tokens_[x].size());
      if (r < acc || x == attrs.back()) {
        const auto& tokens = attr_member_tokens_[x];
        if (!tokens.empty()) return tokens[rng.uniform_index(tokens.size())];
      }
    }
    return static_cast<NodeId>(rng.uniform_index(net_.social_node_count()));
  }

 private:
  const SocialAttributeNetwork& net_;
  stats::Rng& rng_;
  std::vector<NodeId> node_tokens_;     // base PA pool (attachable nodes)
  std::vector<NodeId> in_edge_tokens_;
  std::vector<AttrId> attr_tokens_;
  std::vector<std::vector<NodeId>> attr_member_tokens_;
};

}  // namespace san::model

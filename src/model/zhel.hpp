// The comparison baseline of §6: the social/affiliation co-evolution model
// of Zheleva, Sharara and Getoor (KDD'09) [61], extended to emit *directed*
// social links exactly as the paper's footnote 5 prescribes ("when the
// original model issues an undirected link, we change it to be a directed
// outgoing link").
//
// The model co-evolves a social network and group (attribute) memberships:
// each arriving node issues social links that are, with probability
// p_triad, triangle closures and otherwise preferential attachments, and
// joins groups that are, with probability p_friend_group, copied from a
// social neighbor and otherwise chosen preferentially by group size (new
// groups appear with probability p_new_group). Social-structure-driven
// group membership is the defining feature: attributes follow the social
// links, the reverse of our model. It yields power-law social degrees and
// non-lognormal attribute degrees (Fig 16e-16h).
#pragma once

#include <cstdint>

#include "san/san.hpp"

namespace san::model {

struct ZhelParams {
  std::size_t social_node_count = 100'000;
  double mean_out_links = 8.0;    // mean outgoing links issued per node
  double p_triad = 0.6;           // triangle closure vs preferential
  double mean_groups = 1.2;       // mean groups joined per node (geometric)
  double p_friend_group = 0.5;    // copy a friend's group vs preferential
  double p_new_group = 0.05;      // brand-new group probability
  std::size_t init_nodes = 5;
  std::uint64_t seed = 43;
};

void validate(const ZhelParams& params);

/// Generate a SAN with the extended Zhel model.
SocialAttributeNetwork generate_zhel(const ZhelParams& params);

}  // namespace san::model

#include "model/theory.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"
#include "stats/optimize.hpp"

namespace san::model {

LognormalPrediction predicted_outdegree_lognormal(double mu_l, double sigma_l,
                                                  double ms) {
  if (sigma_l <= 0.0 || ms <= 0.0) {
    throw std::invalid_argument(
        "predicted_outdegree_lognormal: sigma_l and ms must be > 0");
  }
  const double gamma = -mu_l / sigma_l;
  LognormalPrediction pred;
  pred.mu = (mu_l + sigma_l * stats::TruncatedNormal::g(gamma)) / ms;
  const double var = sigma_l * sigma_l *
                     (1.0 - stats::TruncatedNormal::delta(gamma)) / (ms * ms);
  pred.sigma = std::sqrt(var);
  return pred;
}

double predicted_attribute_powerlaw_exponent(double p) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(
        "predicted_attribute_powerlaw_exponent: p must be in [0, 1)");
  }
  return (2.0 - p) / (1.0 - p);
}

double new_attribute_probability_for_exponent(double alpha) {
  if (alpha <= 2.0) {
    throw std::invalid_argument(
        "new_attribute_probability_for_exponent: alpha must be > 2");
  }
  return (alpha - 2.0) / (alpha - 1.0);
}

LifetimeParams lifetime_for_outdegree(double mu_target, double sigma_target,
                                      double ms) {
  if (sigma_target <= 0.0 || ms <= 0.0) {
    throw std::invalid_argument("lifetime_for_outdegree: bad targets");
  }
  const auto objective = [&](const std::vector<double>& x) {
    const double mu_l = x[0];
    const double sigma_l = std::exp(x[1]);
    const auto pred = predicted_outdegree_lognormal(mu_l, sigma_l, ms);
    const double d_mu = pred.mu - mu_target;
    const double d_sigma = pred.sigma - sigma_target;
    return d_mu * d_mu + d_sigma * d_sigma;
  };
  const auto res = stats::nelder_mead(
      objective, {mu_target * ms, std::log(sigma_target * ms)}, {0.5, 0.5},
      1e-14, 2000);
  return {res.x[0], std::exp(res.x[1])};
}

}  // namespace san::model

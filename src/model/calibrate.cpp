#include "model/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/metrics.hpp"
#include "model/theory.hpp"
#include "san/san_metrics.hpp"
#include "stats/ks.hpp"

namespace san::model {

CalibrationResult calibrate_generator(const SanSnapshot& target,
                                      const CalibrationOptions& options) {
  CalibrationResult result;
  result.params.ms = options.ms;
  result.params.seed = options.seed;
  result.params.social_node_count = target.social_node_count();

  // Social outdegree -> lifetime parameters via Theorem 1.
  const auto out_hist = graph::out_degree_histogram(target.social);
  result.outdegree_fit = stats::fit_discrete_lognormal(out_hist, 1);
  const auto lifetime = lifetime_for_outdegree(result.outdegree_fit.mu,
                                               result.outdegree_fit.sigma,
                                               options.ms);
  result.params.mu_l = lifetime.mu_l;
  result.params.sigma_l = lifetime.sigma_l;

  // Attribute degree of social nodes -> (mu_a, sigma_a); declare probability
  // from the zero fraction.
  const auto attr_hist = attribute_degree_histogram(target);
  std::uint64_t declared = 0;
  for (const auto& [value, count] : attr_hist.bins) {
    if (value >= 1) declared += count;
  }
  result.declare_fraction =
      attr_hist.total == 0
          ? 0.0
          : static_cast<double>(declared) /
                static_cast<double>(attr_hist.total);
  result.params.attribute_declare_prob = std::max(result.declare_fraction,
                                                  1e-3);
  if (declared >= 2) {
    result.attribute_degree_fit = stats::fit_discrete_lognormal(attr_hist, 1);
    result.params.mu_a = result.attribute_degree_fit.mu;
    result.params.sigma_a = std::max(result.attribute_degree_fit.sigma, 0.05);
  }

  // New-attribute probability p: in the Yule process of §5.3 every
  // attribute link creates a brand-new attribute node with probability p,
  // so #attribute-nodes / #attribute-links is an unbiased estimator — far
  // more robust than inverting the (finite-size-biased) tail exponent. The
  // exponent fit is still reported for reference (Theorem 2).
  const auto attr_social_hist = attribute_social_degree_histogram(target);
  if (attr_social_hist.total >= 2) {
    result.attribute_social_fit = stats::fit_power_law_scan(attr_social_hist);
  }
  if (target.attribute_link_count > 0) {
    result.params.p_new_attribute =
        std::clamp(static_cast<double>(target.populated_attribute_count()) /
                       static_cast<double>(target.attribute_link_count),
                   0.005, 0.6);
  }

  // Pilot-generation bias correction for the lifetime parameters.
  for (int step = 0; step < options.correction_steps; ++step) {
    GeneratorParams pilot_params = result.params;
    pilot_params.social_node_count = options.probe_nodes;
    const auto pilot = snapshot_full(generate_san(pilot_params));
    const auto pilot_fit = stats::fit_discrete_lognormal(
        graph::out_degree_histogram(pilot.social), 1);
    const double target_mu_life =
        result.params.mu_l +
        (result.outdegree_fit.mu - pilot_fit.mu) * options.ms;
    const double target_sigma_life = std::max(
        0.05, result.params.sigma_l +
                  (result.outdegree_fit.sigma - pilot_fit.sigma) * options.ms);
    result.params.mu_l = target_mu_life;
    result.params.sigma_l = target_sigma_life;
  }

  if (!options.refine) return result;

  // Greedy probe over (beta, fc): generate pilot SANs and keep the pair
  // minimizing KS(indegree) + |attribute clustering gap|.
  const auto in_hist_target = graph::in_degree_histogram(target.social);
  graph::ClusteringOptions cc_opts;
  cc_opts.epsilon = 0.02;
  const double target_cc = average_attribute_clustering(target, cc_opts);

  const double betas[] = {50.0, 200.0, 500.0};
  const double fcs[] = {0.1, 1.0, 5.0};
  double best_score = std::numeric_limits<double>::infinity();
  GeneratorParams best = result.params;
  for (const double beta : betas) {
    for (const double fc : fcs) {
      GeneratorParams probe = result.params;
      probe.beta = beta;
      probe.fc = fc;
      probe.social_node_count = options.probe_nodes;
      const auto pilot = generate_san(probe);
      const auto snap = snapshot_full(pilot);
      const auto in_hist = graph::in_degree_histogram(snap.social);
      const double ks = stats::ks_two_sample(in_hist, in_hist_target);
      const double cc = average_attribute_clustering(snap, cc_opts);
      const double score = ks + std::abs(cc - target_cc);
      if (score < best_score) {
        best_score = score;
        best = probe;
        best.social_node_count = result.params.social_node_count;
      }
    }
  }
  result.params = best;
  return result;
}

}  // namespace san::model

#include "model/closure.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

namespace san::model {
namespace {

/// Insert value into a sorted vector if absent.
void sorted_insert(std::vector<NodeId>& v, NodeId value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it == v.end() || *it != value) v.insert(it, value);
}

bool sorted_contains(const std::vector<NodeId>& v, NodeId value) {
  return std::binary_search(v.begin(), v.end(), value);
}

bool sorted_intersects(const std::vector<NodeId>& a,
                       const std::vector<NodeId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

struct Event {
  enum class Type : std::uint8_t { kNodeJoin, kAttributeLink, kSocialLink };
  Type type;
  double time;
  std::uint64_t seq;
  NodeId u = 0;
  std::uint32_t v_or_attr = 0;
};

}  // namespace

ClosureStats evaluate_closures(const SocialAttributeNetwork& network,
                               const ClosureOptions& options) {
  const std::size_t stride =
      options.event_stride == 0 ? 1 : options.event_stride;
  const double fc = options.fc;

  std::vector<Event> events;
  events.reserve(network.social_node_count() + network.attribute_log().size() +
                 network.social_log().size());
  std::uint64_t seq = 0;
  for (std::size_t u = 0; u < network.social_node_count(); ++u) {
    events.push_back({Event::Type::kNodeJoin,
                      network.social_node_time(static_cast<NodeId>(u)), seq++,
                      static_cast<NodeId>(u), 0});
  }
  for (const auto& link : network.attribute_log()) {
    events.push_back(
        {Event::Type::kAttributeLink, link.time, seq++, link.user, link.attr});
  }
  for (const auto& e : network.social_log()) {
    events.push_back({Event::Type::kSocialLink, e.time, seq++, e.src, e.dst});
  }
  std::stable_sort(events.begin(), events.end(), [](const Event& a,
                                                    const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.type != b.type) return a.type < b.type;
    return a.seq < b.seq;
  });

  // Replay state.
  std::vector<std::vector<NodeId>> nbrs;                 // Γs, sorted
  std::vector<std::vector<std::uint32_t>> attrs_of;      // sorted
  std::vector<std::vector<NodeId>> members(network.attribute_node_count());
  std::vector<std::uint32_t> outdegree;

  ClosureStats stats;
  std::uint64_t closure_counter = 0;
  std::unordered_set<NodeId> two_hop;

  for (const auto& event : events) {
    switch (event.type) {
      case Event::Type::kNodeJoin:
        nbrs.emplace_back();
        attrs_of.emplace_back();
        outdegree.push_back(0);
        break;
      case Event::Type::kAttributeLink: {
        auto& attrs = attrs_of[event.u];
        const auto it =
            std::lower_bound(attrs.begin(), attrs.end(), event.v_or_attr);
        if (it == attrs.end() || *it != event.v_or_attr) {
          attrs.insert(it, event.v_or_attr);
          members[event.v_or_attr].push_back(event.u);
        }
        break;
      }
      case Event::Type::kSocialLink: {
        const NodeId u = event.u;
        const NodeId v = event.v_or_attr;

        if (outdegree[u] > 0 && (closure_counter++ % stride == 0)) {
          ++stats.events;
          const bool triadic = sorted_intersects(nbrs[u], nbrs[v]);
          bool focal = false;
          {
            auto iu = attrs_of[u].begin();
            auto iv = attrs_of[v].begin();
            while (iu != attrs_of[u].end() && iv != attrs_of[v].end()) {
              if (*iu < *iv) {
                ++iu;
              } else if (*iv < *iu) {
                ++iv;
              } else {
                focal = true;
                break;
              }
            }
          }
          if (triadic) ++stats.triadic;
          if (focal) ++stats.focal;
          if (triadic && focal) ++stats.both;

          // Score only closure-like events (triadic or focal), as the paper
          // compares the mechanisms "using friend requests that are triadic
          // closures, focal closures, or both".
          if ((triadic || focal) &&
              nbrs[u].size() <= options.max_first_hop_degree &&
              !nbrs[u].empty()) {
            // RR probability and the 2-hop candidate set in one sweep.
            double p_rr = 0.0;
            double p_social_hops = 0.0;  // Σ_w [v in N(w)] / |N(w)|
            two_hop.clear();
            for (const NodeId w : nbrs[u]) {
              if (nbrs[w].empty()) continue;
              for (const NodeId c : nbrs[w]) {
                if (c != u) two_hop.insert(c);
              }
              if (sorted_contains(nbrs[w], v)) {
                p_social_hops += 1.0 / static_cast<double>(nbrs[w].size());
              }
            }
            const auto deg_u = static_cast<double>(nbrs[u].size());
            p_rr = p_social_hops / deg_u;

            const double p_baseline =
                two_hop.contains(v)
                    ? 1.0 / static_cast<double>(two_hop.size())
                    : 0.0;

            // RR-SAN: social hops weight 1, attribute hops weight fc.
            const double w_total =
                deg_u + fc * static_cast<double>(attrs_of[u].size());
            double p_rrsan = p_social_hops / w_total;
            for (const auto x : attrs_of[u]) {
              if (members[x].empty()) continue;
              if (sorted_contains(attrs_of[v],
                                  static_cast<NodeId>(x))) {  // v in members(x)
                p_rrsan +=
                    fc / (w_total * static_cast<double>(members[x].size()));
              }
            }

            // Smoothed scoring over every event: mechanisms pay for events
            // they cannot explain.
            const double lambda = options.smoothing;
            const double floor = lambda / static_cast<double>(nbrs.size());
            ++stats.comparable;
            stats.loglik_baseline +=
                std::log((1.0 - lambda) * p_baseline + floor);
            stats.loglik_rr += std::log((1.0 - lambda) * p_rr + floor);
            stats.loglik_rrsan += std::log((1.0 - lambda) * p_rrsan + floor);
          }
        }

        // State update.
        ++outdegree[u];
        sorted_insert(nbrs[u], v);
        sorted_insert(nbrs[v], u);
        break;
      }
    }
  }
  return stats;
}

}  // namespace san::model

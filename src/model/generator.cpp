#include "model/generator.hpp"

#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "model/lapa_sampler.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace san::model {
namespace {

constexpr NodeId kNoCandidate = std::numeric_limits<NodeId>::max();

struct WakeEvent {
  double time = 0.0;
  NodeId node = 0;
  double lifetime_left = 0.0;  // remaining budget of sleep time

  bool operator>(const WakeEvent& other) const { return time > other.time; }
};

/// Uniform draw from Γs(u) (the union view over in/out lists; duplicates
/// from reciprocal edges slightly over-weight mutual friends, which is the
/// behavior we want for closure anyway).
bool sample_social_neighbor(const SocialAttributeNetwork& net, stats::Rng& rng,
                            NodeId u, NodeId& out) {
  const auto& g = net.social();
  const auto outs = g.out_neighbors(u);
  const auto ins = g.in_neighbors(u);
  const std::size_t total = outs.size() + ins.size();
  if (total == 0) return false;
  const auto idx = rng.uniform_index(total);
  out = idx < outs.size() ? outs[idx] : ins[idx - outs.size()];
  return true;
}

}  // namespace

void validate(const GeneratorParams& p) {
  const auto fail = [](const char* message) {
    throw std::invalid_argument(std::string("GeneratorParams: ") + message);
  };
  if (p.social_node_count == 0) fail("social_node_count must be > 0");
  if (p.attribute_declare_prob < 0.0 || p.attribute_declare_prob > 1.0) {
    fail("attribute_declare_prob must be in [0, 1]");
  }
  if (p.sigma_a <= 0.0) fail("sigma_a must be > 0");
  if (p.p_new_attribute < 0.0 || p.p_new_attribute >= 1.0) {
    fail("p_new_attribute must be in [0, 1)");
  }
  if (p.beta < 0.0) fail("beta must be >= 0");
  if (p.sigma_l <= 0.0) fail("sigma_l must be > 0");
  if (p.ms <= 0.0) fail("ms must be > 0");
  if (p.fc < 0.0) fail("fc must be >= 0");
  if (p.dynamic_attribute_prob < 0.0 || p.dynamic_attribute_prob > 1.0) {
    fail("dynamic_attribute_prob must be in [0, 1]");
  }
  if (p.max_outdegree < 2) fail("max_outdegree must be >= 2");
  if (p.init_social_nodes < 2) fail("init_social_nodes must be >= 2");
}

SocialAttributeNetwork generate_san(const GeneratorParams& params) {
  validate(params);
  stats::Rng rng(params.seed);
  SocialAttributeNetwork net;
  LapaSampler sampler(net, rng);

  const stats::DiscreteLognormal attr_degree_dist(params.mu_a, params.sigma_a,
                                                  1);
  const stats::TruncatedNormal lifetime_dist(params.mu_l, params.sigma_l);
  const double lifetime_mean = lifetime_dist.mean();

  constexpr AttributeType kTypes[] = {AttributeType::kSchool,
                                      AttributeType::kMajor,
                                      AttributeType::kEmployer,
                                      AttributeType::kCity};
  constexpr double kTypeWeights[] = {0.20, 0.15, 0.30, 0.35};

  const auto sample_attribute_type = [&]() {
    const double r = rng.uniform();
    double acc = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      acc += kTypeWeights[i];
      if (r < acc) return kTypes[i];
    }
    return kTypes[3];
  };

  const auto new_attribute = [&](double time) {
    const AttrId id = net.add_attribute_node(sample_attribute_type(), {}, time);
    sampler.on_attribute_node_added();
    return id;
  };

  const auto add_attribute_link = [&](NodeId u, AttrId x, double time) {
    if (net.add_attribute_link(u, x, time)) sampler.on_attribute_link_added(u,
                                                                            x);
  };

  const auto add_social_link = [&](NodeId u, NodeId v, double time) {
    if (u == v) return false;
    if (!net.add_social_link(u, v, time)) return false;
    sampler.on_social_link_added(u, v);
    return true;
  };

  // ---- Initialization: a small complete SAN (§5.3). ----
  for (std::size_t i = 0; i < params.init_social_nodes; ++i) {
    sampler.on_social_node_added(net.add_social_node(0.0));
  }
  for (std::size_t i = 0; i < params.init_attribute_nodes; ++i) {
    new_attribute(0.0);
  }
  for (std::size_t i = 0; i < params.init_social_nodes; ++i) {
    for (std::size_t j = 0; j < params.init_social_nodes; ++j) {
      if (i != j) {
        add_social_link(static_cast<NodeId>(i), static_cast<NodeId>(j), 0.0);
      }
    }
    for (std::size_t x = 0; x < params.init_attribute_nodes; ++x) {
      add_attribute_link(static_cast<NodeId>(i), static_cast<AttrId>(x), 0.0);
    }
  }

  // ---- Main loop: one node arrival per time step, plus wake events. ----
  std::priority_queue<WakeEvent, std::vector<WakeEvent>, std::greater<>> wakes;

  // Sleep after reaching outdegree d has mean ms * ln(1 + 1/d) = ms/d *
  // (1 + O(1/d)). The log-increment form makes the cumulative sleep
  // telescope to exactly ms * ln(D), so the finite-size outdegree matches
  // Theorem 1's mean-field prediction without the Euler-Mascheroni offset a
  // plain harmonic sum would introduce.
  const auto sample_sleep = [&](std::size_t outdeg, stats::Rng& r) {
    const double d = static_cast<double>(std::max<std::size_t>(outdeg, 1));
    const double mean = params.ms * std::log1p(1.0 / d);
    return params.sleep == SleepRule::kDeterministic
               ? mean
               : r.exponential(1.0 / mean);
  };

  const auto attachment_beta =
      params.attachment == AttachmentRule::kLapa ? params.beta : 0.0;

  const auto issue_attachment_link = [&](NodeId u, double time, stats::Rng& r) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const NodeId v = sampler.sample_target(u, attachment_beta, r);
      if (v != u && add_social_link(u, v, time)) return true;
    }
    return false;
  };

  // One RR / RR-SAN closure walk step: the candidate target for source u, or
  // kNoCandidate after the attempt budget. Pure read of the network and
  // sampler state, so wake epochs run it concurrently against the frozen
  // network, each event on its own stream.
  const auto closure_candidate = [&](NodeId u, stats::Rng& r) -> NodeId {
    const double fc = params.closure == ClosureRule::kRrSan ? params.fc : 0.0;
    const auto& g = net.social();
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto attrs = net.attributes_of(u);
      const double w_social =
          static_cast<double>(g.out_degree(u) + g.in_degree(u));
      const double w_attr = fc * static_cast<double>(attrs.size());
      if (w_social + w_attr <= 0.0) break;
      NodeId v = u;
      if (r.uniform() * (w_social + w_attr) < w_social) {
        NodeId w = u;
        if (!sample_social_neighbor(net, r, u, w)) continue;
        if (!sample_social_neighbor(net, r, w, v)) continue;
      } else {
        const AttrId x = attrs[r.uniform_index(attrs.size())];
        const auto members = net.members_of(x);
        if (members.empty()) continue;
        v = members[r.uniform_index(members.size())];
      }
      if (v != u && !g.has_edge(u, v)) return v;
    }
    // Attachment fallback (mirroring [29]), also a dry draw.
    for (int attempt = 0; attempt < 32; ++attempt) {
      const NodeId v = sampler.sample_target(u, attachment_beta, r);
      if (v != u && !g.has_edge(u, v)) return v;
    }
    return kNoCandidate;
  };

  // Committing closure walk, used serially when an epoch candidate was
  // invalidated by an earlier commit of the same epoch (same budget as one
  // dry walk; a no-candidate dry walk already exhausted it and gives up).
  const auto issue_closure_link = [&](NodeId u, double time, stats::Rng& r) {
    const NodeId v = closure_candidate(u, r);
    return v != kNoCandidate && add_social_link(u, v, time);
  };

  const std::size_t target_nodes = params.social_node_count;
  // Epoch scratch, reused across steps.
  std::vector<WakeEvent> epoch;
  std::vector<stats::Rng> event_rngs;
  std::vector<NodeId> candidates;
  for (std::size_t step = 0; net.social_node_count() < target_nodes; ++step) {
    const double now = static_cast<double>(step + 1);

    // Social node arrival.
    const NodeId u = net.add_social_node(now);
    sampler.on_social_node_added(u);

    // Attribute degree sampling + attribute linking.
    if (rng.bernoulli(params.attribute_declare_prob)) {
      const auto na = attr_degree_dist.sample(rng);
      for (std::uint64_t i = 0; i < na; ++i) {
        AttrId x = 0;
        if (rng.bernoulli(params.p_new_attribute) ||
            !sampler.sample_attribute_preferential(x)) {
          x = new_attribute(now);
        }
        add_attribute_link(u, x, now);
      }
    }

    // First outgoing link (LAPA), lifetime and first sleep.
    issue_attachment_link(u, now, rng);
    const double lifetime = params.lifetime == LifetimeRule::kTruncatedNormal
                                ? lifetime_dist.sample(rng)
                                : rng.exponential(1.0 / lifetime_mean);
    const double sleep = sample_sleep(net.social().out_degree(u), rng);
    if (sleep <= lifetime) {
      wakes.push({now + sleep, u, lifetime - sleep});
    }

    // Woken social nodes issue closure links (and, with the §7 extension
    // enabled, occasionally adopt an attribute from a social neighbor).
    // Due events are drained in epochs: every event's candidate edge is
    // generated in parallel against the frozen network, then commits are
    // applied serially in global time order. Each event draws from its own
    // stream split off the main one in pop order, so the outcome is
    // reproducible and thread-count-invariant.

    // Post-link bookkeeping shared by epoch commits and straggler re-wakes:
    // attribute adoption, then re-sleep scheduling.
    const auto finish_event = [&](const WakeEvent& event, stats::Rng& erng) {
      if (params.dynamic_attribute_prob > 0.0 &&
          erng.bernoulli(params.dynamic_attribute_prob)) {
        NodeId w = event.node;
        if (sample_social_neighbor(net, erng, event.node, w)) {
          const auto neighbor_attrs = net.attributes_of(w);
          if (!neighbor_attrs.empty()) {
            const AttrId x =
                neighbor_attrs[erng.uniform_index(neighbor_attrs.size())];
            add_attribute_link(event.node, x, event.time);
          }
        }
      }
      const double next_sleep =
          sample_sleep(net.social().out_degree(event.node), erng);
      if (next_sleep <= event.lifetime_left &&
          net.social().out_degree(event.node) < params.max_outdegree) {
        wakes.push({event.time + next_sleep, event.node,
                    event.lifetime_left - next_sleep});
      }
    };

    while (!wakes.empty() && wakes.top().time <= now + 1.0) {
      epoch.clear();
      event_rngs.clear();
      while (!wakes.empty() && wakes.top().time <= now + 1.0) {
        epoch.push_back(wakes.top());
        wakes.pop();
        event_rngs.push_back(rng.split());
      }
      candidates.assign(epoch.size(), kNoCandidate);
      core::parallel_for(
          epoch.size(),
          [&](std::size_t i) {
            candidates[i] = closure_candidate(epoch[i].node, event_rngs[i]);
          },
          /*grain=*/4);
      for (std::size_t i = 0; i < epoch.size(); ++i) {
        // Re-wakes scheduled by earlier commits of this epoch may land
        // before the next epoch event; process them first (serially, with
        // a fresh stream) so commits stay in global time order.
        while (!wakes.empty() && wakes.top().time < epoch[i].time) {
          const WakeEvent straggler = wakes.top();
          wakes.pop();
          stats::Rng srng = rng.split();
          issue_closure_link(straggler.node, straggler.time, srng);
          finish_event(straggler, srng);
        }
        const WakeEvent& event = epoch[i];
        stats::Rng& erng = event_rngs[i];
        // Commit the precomputed candidate; re-walk serially only when an
        // earlier commit of this epoch invalidated it. A kNoCandidate walk
        // already exhausted the full attempt budget and issues nothing.
        if (candidates[i] != kNoCandidate &&
            !add_social_link(event.node, candidates[i], event.time)) {
          issue_closure_link(event.node, event.time, erng);
        }
        finish_event(event, erng);
      }
    }
  }
  return net;
}

}  // namespace san::model

// Closed forms from the paper's theoretical analysis (§5.4).
//
// Theorem 1: with truncated-normal lifetimes (mu_l, sigma_l) and mean sleep
// time m_s / outdegree, the social outdegree is lognormal with
//   mu    = (mu_l + sigma_l * g(gamma_l)) / m_s,
//   sigma^2 = sigma_l^2 * (1 - delta(gamma_l)) / m_s^2,
// where gamma_l = -mu_l / sigma_l, g = phi / (1 - Phi), and
// delta(g) = g * (g - gamma).
//
// Theorem 2: with new-attribute probability p, the social degree of
// attribute nodes is power-law with exponent (2 - p) / (1 - p).
#pragma once

namespace san::model {

struct LognormalPrediction {
  double mu = 0.0;
  double sigma = 0.0;
};

/// Theorem 1 prediction for the outdegree lognormal parameters.
/// Requires sigma_l > 0 and ms > 0.
LognormalPrediction predicted_outdegree_lognormal(double mu_l, double sigma_l,
                                                  double ms);

/// Theorem 2 prediction for the attribute-node social-degree power-law
/// exponent. Requires 0 <= p < 1.
double predicted_attribute_powerlaw_exponent(double p);

/// Inverse of Theorem 2: the new-attribute probability that yields a given
/// exponent alpha > 2.
double new_attribute_probability_for_exponent(double alpha);

/// Invert Theorem 1: find (mu_l, sigma_l) such that the predicted outdegree
/// lognormal equals (mu_target, sigma_target) for the given ms (used by the
/// guided parameter search of §6).
struct LifetimeParams {
  double mu_l = 0.0;
  double sigma_l = 1.0;
};
LifetimeParams lifetime_for_outdegree(double mu_target, double sigma_target,
                                      double ms);

}  // namespace san::model

// Building block 2 (§5.2): attribute-augmented triangle closing.
//
// Three candidate mechanisms for how a woken node u picks the target of a
// new link:
//   Baseline : uniform over u's 2-hop neighborhood,
//   RR       : random neighbor w of u, then random neighbor v of w [29],
//   RR-SAN   : first hop drawn from Γs(u) ∪ Γa(u) — social neighbors with
//              weight 1, attribute neighbors with weight fc — then a random
//              social neighbor of that hop (member list for attributes).
//
// ClosureEvaluator replays a SAN chronologically, classifies every non-first
// link event as triadic (common friend) and/or focal (common attribute) —
// the paper reports 84 % / 18 % / 15 % — and scores the three mechanisms by
// log-likelihood on the events all of them can explain.
#pragma once

#include <cstdint>

#include "san/san.hpp"

namespace san::model {

struct ClosureStats {
  std::uint64_t events = 0;      // non-first link events scored
  std::uint64_t triadic = 0;     // endpoints share >= 1 social neighbor
  std::uint64_t focal = 0;       // endpoints share >= 1 attribute
  std::uint64_t both = 0;

  /// Events scored for likelihood (triadic-or-focal events whose source
  /// degree is below the hub cap). Each model's probability is smoothed
  /// with a uniform-over-nodes floor, p' = (1-lambda) p + lambda / n, so
  /// events a mechanism cannot explain at all (e.g. focal-only events under
  /// RR) are charged rather than dropped — that coverage gap is precisely
  /// the paper's RR-SAN advantage.
  std::uint64_t comparable = 0;
  double loglik_baseline = 0.0;
  double loglik_rr = 0.0;
  double loglik_rrsan = 0.0;

  double triadic_fraction() const { return ratio(triadic); }
  double focal_fraction() const { return ratio(focal); }
  double both_fraction() const { return ratio(both); }

 private:
  double ratio(std::uint64_t x) const {
    return events == 0 ? 0.0
                       : static_cast<double>(x) / static_cast<double>(events);
  }
};

struct ClosureOptions {
  double fc = 0.5;           // attribute first-hop weight in RR-SAN
  double smoothing = 0.005;  // uniform mixture weight lambda
  std::size_t event_stride = 1;
  std::size_t max_first_hop_degree = 4096;  // cap per-event cost on hubs
};

/// Replay `network` and evaluate the three closure mechanisms.
ClosureStats evaluate_closures(const SocialAttributeNetwork& network,
                               const ClosureOptions& options = {});

}  // namespace san::model

// The paper's generative model for SANs (Algorithm 1, §5.3).
//
// Nodes arrive one per discrete time step (N(t) = 1). On arrival a node
// samples its attribute degree from a lognormal, links each attribute (new
// attribute node with probability p, otherwise an existing attribute chosen
// proportionally to its social degree), issues its first outgoing link via
// LAPA, and samples a truncated-normal lifetime. While alive it sleeps for a
// mean of m_s / outdegree between wakes, and on each wake issues one
// outgoing link via RR-SAN triangle closing.
//
// Ablation switches reproduce the paper's Fig 18 (PA instead of LAPA; RR
// instead of RR-SAN) plus an exponential-lifetime variant matching prior
// models [29, 61].
#pragma once

#include <cstdint>

#include "san/san.hpp"

namespace san::model {

enum class AttachmentRule { kLapa, kPa };
enum class ClosureRule { kRrSan, kRr };
enum class LifetimeRule { kTruncatedNormal, kExponential };
enum class SleepRule { kDeterministic, kExponential };

struct GeneratorParams {
  std::size_t social_node_count = 100'000;

  // Attribute structure.
  double attribute_declare_prob = 1.0;  // fraction of nodes declaring any
  double mu_a = 0.7;                    // lognormal attribute degree (Fig 10a)
  double sigma_a = 0.9;
  double p_new_attribute = 0.05;        // Theorem 2's p

  // LAPA (alpha is fixed at its best-fit value 1, §5.1).
  double beta = 200.0;

  // Lifetime (truncated normal) and sleep (mean m_s / outdegree).
  double mu_l = 1.8;
  double sigma_l = 1.0;
  double ms = 1.0;

  // RR-SAN attribute first-hop weight (fc of §6.2).
  double fc = 0.1;

  // §7 extension (off by default, matching the paper's static-attribute
  // model): on each wake, with this probability the node also ADOPTS an
  // attribute copied from a random social neighbor — the dynamic-attribute
  // direction of influence that Zheleva et al. model, layered on top of our
  // static mechanisms.
  double dynamic_attribute_prob = 0.0;

  // Safety cap on per-node outdegree: exponential lifetimes (the ablation
  // of prior models) have an unbounded right tail, and outdegree grows as
  // e^{lifetime/ms}; the cap bounds the simulation without affecting the
  // truncated-normal configuration (whose maximum is far below it).
  std::size_t max_outdegree = 20'000;

  AttachmentRule attachment = AttachmentRule::kLapa;
  ClosureRule closure = ClosureRule::kRrSan;
  LifetimeRule lifetime = LifetimeRule::kTruncatedNormal;
  SleepRule sleep = SleepRule::kDeterministic;

  // Initialization (§5.3): a small complete SAN.
  std::size_t init_social_nodes = 5;
  std::size_t init_attribute_nodes = 5;

  std::uint64_t seed = 42;
};

/// Validate parameters; throws std::invalid_argument with a description of
/// the first violated constraint.
void validate(const GeneratorParams& params);

/// Run Algorithm 1 and return the generated SAN (timestamps are the
/// simulated arrival/wake times).
SocialAttributeNetwork generate_san(const GeneratorParams& params);

}  // namespace san::model

// Building block 1 (§5.1): attribute-augmented preferential attachment.
//
//   PAPA:  f(u, v) ∝ (d_i(v) + 1)^alpha * (1 + a(u, v)^beta)
//   LAPA:  f(u, v) ∝ (d_i(v) + 1)^alpha * (1 + beta * a(u, v))
//
// where d_i(v) is v's indegree and a(u, v) the number of shared attributes.
// (The +1 smoothing makes zero-indegree nodes reachable; the paper leaves
// this implementation detail open, and with it alpha = beta = 0 still
// reduces both kernels to the uniform model and alpha = 1, beta = 0 to PA.)
//
// AttachmentLikelihood replays a timestamped SAN chronologically and scores
// every "first outgoing link" event under a kernel, producing the
// log-likelihood grid of Fig 15.
#pragma once

#include <cstdint>
#include <vector>

#include "san/san.hpp"

namespace san::model {

enum class AttachmentKind { kPapa, kLapa };

struct AttachmentParams {
  double alpha = 1.0;
  double beta = 0.0;
};

/// Unnormalized kernel weight. `indegree` is d_i(v), `common` is a(u, v).
double attachment_weight(AttachmentKind kind, const AttachmentParams& params,
                         double indegree, double common);

struct AttachmentLikelihoodResult {
  double loglik = 0.0;
  std::uint64_t events = 0;
};

/// Percent relative improvement over a reference log-likelihood as Fig 15
/// defines it: (l_ref - l) / l_ref * 100. Positive when l > l_ref (both
/// log-likelihoods are negative).
double relative_improvement_percent(double l_ref, double l);

class AttachmentLikelihood {
 public:
  /// `event_stride` evaluates every k-th first-link event (state is always
  /// updated with every event); > 1 speeds up large replays.
  explicit AttachmentLikelihood(const SocialAttributeNetwork& network,
                                std::size_t event_stride = 1);

  /// Log-likelihood of the observed first-outgoing-link events under the
  /// kernel. Replays the full history once per call.
  AttachmentLikelihoodResult evaluate(AttachmentKind kind,
                                      const AttachmentParams& params) const;

 private:
  struct Event {
    enum class Type : std::uint8_t { kNodeJoin, kAttributeLink, kSocialLink };
    Type type;
    double time;
    std::uint64_t seq;  // stable order for equal timestamps
    NodeId u = 0;
    std::uint32_t v_or_attr = 0;
  };

  std::vector<Event> events_;
  std::size_t stride_;
  std::size_t attribute_count_ = 0;
};

}  // namespace san::model

#include "crawl/gplus_synth.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "model/lapa_sampler.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace san::crawl {
namespace {

/// Named catalogs per attribute type; the first entries are created first,
/// accumulate members longest, and therefore end up as the most popular
/// values — which is what makes the Fig 14 analysis meaningful.
const std::vector<std::string> kEmployerNames = {
    "Google", "Microsoft", "IBM", "Infosys", "Intel",
    "Oracle", "Facebook", "Apple", "Cisco", "Amazon"};
const std::vector<std::string> kMajorNames = {
    "Computer Science", "Economics", "Finance", "Political Science",
    "Electrical Engineering", "Mathematics", "Physics", "Biology"};
const std::vector<std::string> kSchoolNames = {
    "UC Berkeley", "Stanford", "MIT", "Tsinghua",
    "CMU", "Harvard", "IIT Bombay", "Oxford"};
const std::vector<std::string> kCityNames = {
    "San Francisco", "New York", "London", "Bangalore",
    "Mountain View", "Seattle", "Beijing", "Toronto"};

/// Focal-closure weight per attribute type: sharing an employer forms
/// communities far more readily than sharing a city (Fig 13b).
constexpr double kTypeFocalWeight[kAttributeTypeCount] = {
    /*School*/ 0.6, /*Major*/ 0.4, /*Employer*/ 1.0, /*City*/ 0.15,
    /*Other*/ 0.3};

struct TimedEvent {
  enum class Kind : std::uint8_t { kWake, kReciprocate };
  double time = 0.0;
  Kind kind = Kind::kWake;
  NodeId a = 0;  // wake: node; reciprocate: source of the reverse link
  NodeId b = 0;  // reciprocate: target of the reverse link
  double lifetime_left = 0.0;

  bool operator>(const TimedEvent& other) const { return time > other.time; }
};

int phase_of(const SyntheticGplusParams& p, double day) {
  if (day <= p.phase1_end) return 1;
  if (day <= p.phase2_end) return 2;
  return 3;
}

}  // namespace

void validate(const SyntheticGplusParams& p) {
  const auto fail = [](const char* message) {
    throw std::invalid_argument(std::string("SyntheticGplusParams: ") +
                                message);
  };
  if (p.total_social_nodes < 100) fail("total_social_nodes must be >= 100");
  if (p.days < 3) fail("days must be >= 3");
  if (p.phase1_end <= 0 || p.phase1_end >= p.phase2_end ||
      p.phase2_end >= p.days) {
    fail("phase boundaries must satisfy 0 < phase1_end < phase2_end < days");
  }
  if (p.phase1_fraction <= 0.0 || p.phase2_fraction <= 0.0 ||
      p.phase1_fraction + p.phase2_fraction >= 1.0) {
    fail("phase fractions must be positive and sum below 1");
  }
  if (p.attribute_declare_prob < 0.0 || p.attribute_declare_prob > 1.0) {
    fail("attribute_declare_prob must be in [0, 1]");
  }
  if (p.sigma_a <= 0.0 || p.sigma_l <= 0.0 || p.ms <= 0.0) {
    fail("sigma_a, sigma_l, ms must be > 0");
  }
  if (p.p_new_attribute < 0.0 || p.p_new_attribute >= 1.0) {
    fail("p_new_attribute must be in [0, 1)");
  }
  if (p.reciprocation_delay_mean <= 0.0) fail("reciprocation_delay_mean must "
                                              "be > 0");
  if (p.lurker_prob < 0.0 || p.lurker_prob >= 1.0) {
    fail("lurker_prob must be in [0, 1)");
  }
}

std::size_t arrivals_on_day(const SyntheticGplusParams& p, int day) {
  if (day < 1 || day > p.days) return 0;
  const auto n = static_cast<double>(p.total_social_nodes);
  if (day <= p.phase1_end) {
    // Ramp-up: rate proportional to the day index (viral invite growth).
    const double denom = 0.5 * p.phase1_end * (p.phase1_end + 1);
    return static_cast<std::size_t>(
        std::llround(n * p.phase1_fraction * day / denom));
  }
  if (day <= p.phase2_end) {
    // Stabilized invite-only phase: constant rate.
    const auto span = static_cast<double>(p.phase2_end - p.phase1_end);
    return static_cast<std::size_t>(
        std::llround(n * p.phase2_fraction / span));
  }
  // Public release: a second, steeper ramp.
  const int offset = day - p.phase2_end;
  const int span = p.days - p.phase2_end;
  const double denom = 0.5 * span * (span + 1);
  const double fraction = 1.0 - p.phase1_fraction - p.phase2_fraction;
  return static_cast<std::size_t>(std::llround(n * fraction * offset / denom));
}

double reciprocation_base(const SyntheticGplusParams& p, double day) {
  const int phase = phase_of(p, day);
  if (phase == 1) {
    // Small oscillation: the paper observes fluctuating reciprocity while
    // early adopters settle on norms.
    return p.reciprocate_phase1 + 0.025 * std::sin(day / 2.0);
  }
  if (phase == 2) {
    // The intent drops sharply once the novelty phase ends, then keeps
    // declining through the invite-only period.
    const double start = 0.72 * p.reciprocate_phase1;
    const double f = (day - p.phase1_end) /
                     static_cast<double>(p.phase2_end - p.phase1_end);
    return start + f * (p.reciprocate_phase2 - start);
  }
  const double f = std::min(
      1.0, (day - p.phase2_end) / static_cast<double>(p.days - p.phase2_end));
  return p.reciprocate_phase2 +
         f * (p.reciprocate_phase3 - p.reciprocate_phase2);
}

SocialAttributeNetwork generate_synthetic_gplus(
    const SyntheticGplusParams& params) {
  validate(params);
  stats::Rng rng(params.seed);
  SocialAttributeNetwork net;
  model::LapaSampler sampler(net, rng);

  const stats::DiscreteLognormal attr_degree_dist(params.mu_a, params.sigma_a,
                                                  1);
  const stats::TruncatedNormal lifetime_dist(params.mu_l, params.sigma_l);

  // --- Attribute creation with named catalogs. ---
  std::size_t created_per_type[kAttributeTypeCount] = {};
  const auto catalog_for =
      [](AttributeType type) -> const std::vector<std::string>* {
    switch (type) {
      case AttributeType::kSchool:
        return &kSchoolNames;
      case AttributeType::kMajor:
        return &kMajorNames;
      case AttributeType::kEmployer:
        return &kEmployerNames;
      case AttributeType::kCity:
        return &kCityNames;
      case AttributeType::kOther:
        return nullptr;
    }
    return nullptr;
  };

  const auto new_attribute = [&](AttributeType type, double time) {
    auto& counter = created_per_type[static_cast<std::size_t>(type)];
    const auto* catalog = catalog_for(type);
    std::string name = catalog != nullptr && counter < catalog->size()
                           ? (*catalog)[counter]
                           : to_string(type) + "-" + std::to_string(counter);
    ++counter;
    const AttrId id = net.add_attribute_node(type, std::move(name), time);
    sampler.on_attribute_node_added();
    return id;
  };

  const auto sample_new_attribute_type = [&]() {
    const double r = rng.uniform();
    if (r < 0.35) return AttributeType::kCity;
    if (r < 0.65) return AttributeType::kEmployer;
    if (r < 0.85) return AttributeType::kSchool;
    return AttributeType::kMajor;
  };

  const auto add_attribute_link = [&](NodeId u, AttrId x, double time) {
    if (net.add_attribute_link(u, x, time)) sampler.on_attribute_link_added(u,
                                                                            x);
  };

  // Social links are timestamped no earlier than both endpoints' join times
  // so snapshots are always consistent.
  const auto add_social_link = [&](NodeId u, NodeId v, double time) {
    if (u == v) return false;
    const double t = std::max({time, net.social_node_time(u),
                               net.social_node_time(v)});
    if (!net.add_social_link(u, v, t)) return false;
    sampler.on_social_link_added(u, v);
    return true;
  };

  std::priority_queue<TimedEvent, std::vector<TimedEvent>, std::greater<>>
      events;

  // --- Reciprocation: delayed, attribute- and embeddedness-aware. ---
  std::unordered_set<NodeId> mark;
  std::unordered_set<NodeId> mark_v;
  const auto common_social_neighbors = [&](NodeId u, NodeId v) {
    const auto& g = net.social();
    mark.clear();
    for (const NodeId w : g.out_neighbors(u)) mark.insert(w);
    for (const NodeId w : g.in_neighbors(u)) mark.insert(w);
    mark_v.clear();
    for (const NodeId w : g.out_neighbors(v)) mark_v.insert(w);
    for (const NodeId w : g.in_neighbors(v)) mark_v.insert(w);
    std::size_t count = 0;
    for (const NodeId w : mark_v) {
      if (mark.contains(w)) ++count;
    }
    return count;
  };

  // Schedule the reverse-link *consideration*; the accept decision happens
  // when the event fires, against the state at that moment.
  const auto schedule_reciprocation = [&](NodeId u, NodeId v, double time) {
    if (net.social().has_edge(v, u)) return;
    double delay;
    if (rng.bernoulli(params.slow_consideration_fraction)) {
      delay = rng.uniform() * params.slow_delay_max;
    } else {
      delay = rng.exponential(1.0 / params.reciprocation_delay_mean);
    }
    events.push({time + delay, TimedEvent::Kind::kReciprocate, v, u, 0.0});
  };

  // Accept probability for the reverse link v -> u at consideration time.
  const auto consider_reciprocation = [&](NodeId v, NodeId u, double time) {
    if (net.social().has_edge(v, u)) return;
    const std::size_t a = net.common_attributes(u, v);
    const std::size_t c = common_social_neighbors(u, v);
    double q = reciprocation_base(
        params, std::min(time, static_cast<double>(params.days)));
    if (a == 1) {
      q *= 1.0 + params.reciprocate_attr_boost_1;
    } else if (a >= 2) {
      q *= 1.0 + params.reciprocate_attr_boost_2;
    }
    // Shared friends help, with diminishing returns and a mild decline for
    // very large overlaps ("weak ties", §4.2).
    const auto cd = static_cast<double>(c);
    q *= 1.0 + 0.35 * cd / (cd + 8.0) - 0.3 * std::max(0.0, cd - 15.0) / 40.0;
    q = std::clamp(q, 0.0, 0.95);
    if (rng.bernoulli(q)) add_social_link(v, u, time);
  };

  const auto issue_first_link = [&](NodeId u, double time) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const NodeId v = sampler.sample_target(u, params.beta);
      if (v != u && add_social_link(u, v, time)) {
        schedule_reciprocation(u, v, time);
        return true;
      }
    }
    return false;
  };

  const auto sample_social_neighbor = [&](NodeId u, NodeId& out) {
    const auto& g = net.social();
    const auto outs = g.out_neighbors(u);
    const auto ins = g.in_neighbors(u);
    const std::size_t total = outs.size() + ins.size();
    if (total == 0) return false;
    const auto idx = rng.uniform_index(total);
    out = idx < outs.size() ? outs[idx] : ins[idx - outs.size()];
    return true;
  };

  // Closure step: social hop weight 1; attribute hop weight fc scaled by the
  // attribute type's focal weight.
  const auto issue_closure_link = [&](NodeId u, double time) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto attrs = net.attributes_of(u);
      const auto& g = net.social();
      const double w_social =
          static_cast<double>(g.out_degree(u) + g.in_degree(u));
      double w_attr = 0.0;
      for (const AttrId x : attrs) {
        w_attr +=
            params.fc *
            kTypeFocalWeight[static_cast<std::size_t>(net.attribute_type(x))];
      }
      if (w_social + w_attr <= 0.0) break;
      NodeId v = u;
      if (rng.uniform() * (w_social + w_attr) < w_social) {
        NodeId w = u;
        if (!sample_social_neighbor(u, w)) continue;
        if (!sample_social_neighbor(w, v)) continue;
      } else {
        // Pick the attribute hop proportionally to its focal weight.
        double r = rng.uniform() * w_attr;
        AttrId x = attrs.empty() ? 0 : attrs.front();
        for (const AttrId candidate : attrs) {
          r -= params.fc * kTypeFocalWeight[static_cast<std::size_t>(
                   net.attribute_type(candidate))];
          x = candidate;
          if (r <= 0.0) break;
        }
        const auto members = net.members_of(x);
        if (members.empty()) continue;
        v = members[rng.uniform_index(members.size())];
      }
      if (v != u && add_social_link(u, v, time)) {
        schedule_reciprocation(u, v, time);
        return true;
      }
    }
    return issue_first_link(u, time);
  };

  // Log-increment sleep (see generator.cpp): cumulative sleep telescopes to
  // ms * ln(outdegree), matching Theorem 1 exactly.
  const auto sample_sleep = [&](std::size_t outdeg) {
    const double d = static_cast<double>(std::max<std::size_t>(outdeg, 1));
    return params.ms * std::log1p(1.0 / d);
  };

  // --- Seed network at day 0: a handful of founders and one famous
  // attribute of each type. ---
  constexpr std::size_t kSeedNodes = 8;
  for (std::size_t i = 0; i < kSeedNodes; ++i) {
    sampler.on_social_node_added(net.add_social_node(0.0));
  }
  new_attribute(AttributeType::kEmployer, 0.0);  // "Google"
  new_attribute(AttributeType::kMajor, 0.0);     // "Computer Science"
  new_attribute(AttributeType::kSchool, 0.0);    // "UC Berkeley"
  new_attribute(AttributeType::kCity, 0.0);      // "San Francisco"
  for (std::size_t i = 0; i < kSeedNodes; ++i) {
    for (std::size_t j = 0; j < kSeedNodes; ++j) {
      if (i != j) add_social_link(static_cast<NodeId>(i),
                                  static_cast<NodeId>(j), 0.0);
    }
    add_attribute_link(static_cast<NodeId>(i), static_cast<AttrId>(i % 2), 0.0);
    add_attribute_link(static_cast<NodeId>(i), static_cast<AttrId>(2 + i % 2),
                       0.0);
  }

  // --- Day loop. ---
  for (int day = 1; day <= params.days; ++day) {
    const std::size_t arrivals = arrivals_on_day(params, day);
    const int phase = phase_of(params, static_cast<double>(day));
    // Early adopters (phase I) declare attributes more often and skew
    // towards tech employers/majors — the artifact behind Fig 14.
    const double declare_prob = params.attribute_declare_prob *
                                (phase == 1 ? 1.5 : phase == 2 ? 0.95 : 0.85);

    for (std::size_t i = 0; i < arrivals; ++i) {
      const double now = (day - 1) + static_cast<double>(i + 1) /
                                         static_cast<double>(arrivals + 1);

      // Process pending events that happen before this arrival.
      while (!events.empty() && events.top().time <= now) {
        const TimedEvent event = events.top();
        events.pop();
        if (event.kind == TimedEvent::Kind::kReciprocate) {
          consider_reciprocation(event.a, event.b, event.time);
        } else {
          issue_closure_link(event.a, event.time);
          const double next_sleep =
              sample_sleep(net.social().out_degree(event.a));
          if (next_sleep <= event.lifetime_left) {
            events.push({event.time + next_sleep, TimedEvent::Kind::kWake,
                         event.a, 0, event.lifetime_left - next_sleep});
          }
        }
      }

      const NodeId u = net.add_social_node(now);
      const bool lurker = rng.bernoulli(params.lurker_prob);
      sampler.on_social_node_added(u, /*attachable=*/!lurker);
      if (rng.bernoulli(std::min(declare_prob, 1.0))) {
        const auto na = attr_degree_dist.sample(rng);
        for (std::uint64_t k = 0; k < na; ++k) {
          AttrId x = 0;
          if (rng.bernoulli(params.p_new_attribute) ||
              !sampler.sample_attribute_preferential(x)) {
            x = new_attribute(sample_new_attribute_type(), now);
          }
          add_attribute_link(u, x, now);
        }
      }

      if (!lurker) {
        issue_first_link(u, now);
        // Early-adopter activity boost, decaying linearly through phase II.
        // Membership in the founding tech attributes (ids 0-3: Google,
        // Computer Science, UC Berkeley, San Francisco) marks the IT crowd
        // the paper identifies as unusually active early adopters (Fig 14).
        double boost = 1.0;
        for (const AttrId x : net.attributes_of(u)) {
          if (x < 4) {
            boost *= 1.2;
            break;
          }
        }
        if (day <= params.phase1_end) {
          boost = params.phase1_lifetime_boost;
        } else if (day <= params.phase2_end) {
          const double f =
              static_cast<double>(day - params.phase1_end) /
              static_cast<double>(params.phase2_end - params.phase1_end);
          boost = params.phase1_lifetime_boost +
                  f * (1.0 - params.phase1_lifetime_boost);
        }
        const double lifetime = boost * lifetime_dist.sample(rng);
        const double sleep = sample_sleep(net.social().out_degree(u));
        if (sleep <= lifetime) {
          events.push({now + sleep, TimedEvent::Kind::kWake, u, 0,
                       lifetime - sleep});
        }
      }
    }

    // Drain events scheduled for the rest of the day.
    while (!events.empty() && events.top().time <= static_cast<double>(day)) {
      const TimedEvent event = events.top();
      events.pop();
      if (event.kind == TimedEvent::Kind::kReciprocate) {
        consider_reciprocation(event.a, event.b, event.time);
      } else {
        issue_closure_link(event.a, event.time);
        const double next_sleep =
            sample_sleep(net.social().out_degree(event.a));
        if (next_sleep <= event.lifetime_left) {
          events.push({event.time + next_sleep, TimedEvent::Kind::kWake,
                       event.a,
                       0, event.lifetime_left - next_sleep});
        }
      }
    }
  }
  return net;
}

}  // namespace san::crawl

// BFS crawler simulation (§2.2 of the paper).
//
// The paper's crawler could fetch both the outgoing ("in your circles") and
// incoming ("have you in circles") lists of every public profile, which is
// why it captured a large weakly connected component (>= 70 % of known
// users). We reproduce that pipeline against synthetic ground truth: a
// fraction of users keep their circles private, BFS expands through public
// profiles only, and an edge is observed if at least one endpoint is public.
#pragma once

#include <cstdint>
#include <vector>

#include "san/san.hpp"
#include "san/snapshot.hpp"

namespace san::crawl {

struct CrawlerOptions {
  double private_profile_prob = 0.12;  // users hiding their circle lists
  std::size_t seed_nodes = 8;          // BFS entry points (earliest joiners)
  std::uint64_t seed = 99;
};

struct CrawlResult {
  /// The crawled sub-network with dense ids (chronological by join time).
  SocialAttributeNetwork network;
  /// Mapping from crawled id to ground-truth id.
  std::vector<NodeId> original_id;
  /// Crawled nodes / ground-truth nodes at the crawl time.
  double node_coverage = 0.0;
  /// Crawled social links / ground-truth links.
  double link_coverage = 0.0;
};

/// Crawl the ground truth as it existed at `time`.
CrawlResult crawl_at(const SocialAttributeNetwork& truth, double time,
                     const CrawlerOptions& options = {});

}  // namespace san::crawl

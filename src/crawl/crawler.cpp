#include "crawl/crawler.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace san::crawl {

CrawlResult crawl_at(const SocialAttributeNetwork& truth, double time,
                     const CrawlerOptions& options) {
  if (options.private_profile_prob < 0.0 ||
      options.private_profile_prob > 1.0) {
    throw std::invalid_argument("crawl_at: private_profile_prob in [0, 1]");
  }
  const SanSnapshot snap = snapshot_at(truth, time);
  const std::size_t n = snap.social_node_count();
  CrawlResult result;
  if (n == 0) return result;

  // Deterministic privacy flags.
  stats::Rng rng(options.seed);
  std::vector<char> is_private(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    is_private[u] = rng.bernoulli(options.private_profile_prob) ? 1 : 0;
  }

  // BFS from the earliest-joining public users over public profiles' in and
  // out lists.
  std::vector<char> discovered(n, 0);
  std::deque<NodeId> frontier;
  std::size_t seeded = 0;
  for (NodeId u = 0; u < n && seeded < options.seed_nodes; ++u) {
    if (!is_private[u]) {
      discovered[u] = 1;
      frontier.push_back(u);
      ++seeded;
    }
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (is_private[u]) continue;  // discovered but not expandable
    const auto expand = [&](NodeId v) {
      if (!discovered[v]) {
        discovered[v] = 1;
        frontier.push_back(v);
      }
    };
    for (const NodeId v : snap.social.out(u)) expand(v);
    for (const NodeId v : snap.social.in(u)) expand(v);
  }

  // Build the crawled network; discovered nodes sorted by ground-truth join
  // time (== id order, since ids are chronological).
  std::vector<NodeId> crawled;
  for (NodeId u = 0; u < n; ++u) {
    if (discovered[u]) crawled.push_back(u);
  }
  std::vector<NodeId> to_crawled(n, 0);
  for (std::size_t i = 0; i < crawled.size(); ++i) {
    to_crawled[crawled[i]] = static_cast<NodeId>(i);
  }

  for (const NodeId u : crawled) {
    result.network.add_social_node(truth.social_node_time(u));
  }
  for (std::size_t a = 0; a < truth.attribute_node_count(); ++a) {
    const auto id = static_cast<AttrId>(a);
    result.network.add_attribute_node(truth.attribute_type(id),
                                      truth.attribute_name(id),
                                      truth.attribute_node_time(id));
  }

  // An edge is observed if at least one endpoint exposes its lists.
  std::uint64_t observed_links = 0;
  for (const auto& e : truth.social_log()) {
    if (e.time > time) continue;
    if (!discovered[e.src] || !discovered[e.dst]) continue;
    if (is_private[e.src] && is_private[e.dst]) continue;
    result.network.add_social_link(to_crawled[e.src], to_crawled[e.dst],
                                   e.time);
    ++observed_links;
  }
  // Mirror the snapshot rules: a link only exists if its user has joined and
  // its attribute has been created by `time` (snap.attribute_created tracks
  // the latter for the same cutoff).
  for (const auto& link : truth.attribute_log()) {
    if (link.time > time) continue;
    if (link.user >= n || !discovered[link.user]) continue;
    if (!snap.attribute_created[link.attr]) continue;
    result.network.add_attribute_link(to_crawled[link.user], link.attr,
                                      link.time);
  }

  result.original_id = std::move(crawled);
  result.node_coverage =
      static_cast<double>(result.original_id.size()) / static_cast<double>(n);
  result.link_coverage =
      snap.social_link_count() == 0
          ? 0.0
          : static_cast<double>(observed_links) /
                static_cast<double>(snap.social_link_count());
  return result;
}

}  // namespace san::crawl

// Synthetic Google+ ground truth.
//
// The paper's measurements run on a proprietary crawl of Google+ (79 daily
// snapshots, July 6 - October 11 2011). We substitute a measurement-
// calibrated synthetic network that evolves over the same 98-day window
// with the paper's three phases:
//   Phase I   (day 1-20) : viral invite-only growth, arrival rate ramps up,
//   Phase II  (day 21-75): stabilized invite-only growth,
//   Phase III (day 76-98): public release, arrival rate jumps.
//
// Mechanisms mirror what the paper identifies in the data:
//   - LAPA first links (attributes attract links, §5.1),
//   - mixed triadic/focal closure for subsequent links (§5.2),
//   - a hybrid friendship/publisher-subscriber edge semantic: links are
//     reciprocated with a delay, with a base rate that declines over time
//     (Fig 4a) and a boost when the endpoints share attributes (Fig 13a),
//   - truncated-normal lifetimes and outdegree-scaled sleep times,
//   - four attribute types with skewed popularity catalogs whose most
//     popular values carry real-world names (Google, Computer Science, ...)
//     so the Fig 14 analyses are meaningful,
//   - only a fraction of users (~22 %) declare attributes (§2.2).
#pragma once

#include <cstdint>

#include "san/san.hpp"

namespace san::crawl {

struct SyntheticGplusParams {
  std::size_t total_social_nodes = 120'000;

  // Phase boundaries (days) and arrival fractions per phase.
  int days = 98;
  int phase1_end = 20;
  int phase2_end = 75;
  double phase1_fraction = 0.42;
  double phase2_fraction = 0.25;  // remainder arrives in phase III

  // Delayed reciprocation: base immediate-intent probability declines
  // linearly within each phase from the start value to the end value
  // (drives Fig 4a), and shared attributes multiply it (drives Fig 13a).
  double reciprocate_phase1 = 0.36;
  double reciprocate_phase2 = 0.10;
  double reciprocate_phase3 = 0.05;
  double reciprocate_attr_boost_1 = 0.9;   // multiplier add-on, 1 shared attr
  double reciprocate_attr_boost_2 = 1.3;   // for >= 2 shared attrs
  // Reverse links are *considered* after a heavy-tailed delay (mostly
  // within days, a 30 % tail up to slow_delay_max days); the accept
  // decision uses the state at consideration time, which is what makes the
  // halfway->final maturation study of Fig 13a meaningful.
  double reciprocation_delay_mean = 1.5;   // fast component (days)
  double slow_consideration_fraction = 0.3;
  double slow_delay_max = 70.0;            // days

  // Early adopters are more active: phase-I arrivals get their lifetime
  // scaled by this factor (decaying to 1 through phase II). This is the
  // mechanism behind Fig 14's "Google employees have higher degrees".
  double phase1_lifetime_boost = 1.25;

  // Lurkers: accounts that exist (counted in Fig 2) but never issue links
  // and are not preferential-attachment targets; they model the ~25-30 % of
  // known users the paper's crawl could not reach (§2.2). They may still
  // declare attributes and be reached through shared-attribute attachment.
  double lurker_prob = 0.18;

  // Attribute structure (§2.2: ~22 % of users declare attributes).
  double attribute_declare_prob = 0.22;
  double mu_a = 0.6;
  double sigma_a = 0.8;
  double p_new_attribute = 0.12;

  // Link mechanisms.
  double beta = 200.0;  // LAPA attribute weight
  double fc = 5.0;      // attribute first-hop weight in closure

  // Activity: truncated-normal lifetime (days) and sleep scale.
  double mu_l = 4.4;
  double sigma_l = 2.1;
  double ms = 2.4;

  std::uint64_t seed = 20110628;  // Google+ launch date
};

void validate(const SyntheticGplusParams& params);

/// Number of arrivals scheduled on day d (1-based), given the phase split.
std::size_t arrivals_on_day(const SyntheticGplusParams& params, int day);

/// Base reciprocation probability on day d (before attribute boosts).
double reciprocation_base(const SyntheticGplusParams& params, double day);

/// Generate the synthetic Google+ SAN (timestamps are fractional days).
SocialAttributeNetwork generate_synthetic_gplus(
    const SyntheticGplusParams& params);

}  // namespace san::crawl

// Algorithm 1 generator tests: structural invariants plus the statistical
// predictions of Theorems 1 and 2.
#include "model/generator.hpp"

#include <gtest/gtest.h>

#include "graph/metrics.hpp"
#include "model/theory.hpp"
#include "san/san_metrics.hpp"
#include "san/snapshot.hpp"
#include "stats/fit.hpp"

namespace {

using san::model::AttachmentRule;
using san::model::ClosureRule;
using san::model::generate_san;
using san::model::GeneratorParams;
using san::model::LifetimeRule;

TEST(Generator, ProducesRequestedNodeCount) {
  GeneratorParams params;
  params.social_node_count = 2'000;
  params.seed = 1;
  const auto net = generate_san(params);
  EXPECT_GE(net.social_node_count(), params.social_node_count);
  EXPECT_LE(net.social_node_count(), params.social_node_count + 2);
}

TEST(Generator, DeterministicForSeed) {
  GeneratorParams params;
  params.social_node_count = 1'000;
  params.seed = 5;
  const auto a = generate_san(params);
  const auto b = generate_san(params);
  EXPECT_EQ(a.social_link_count(), b.social_link_count());
  EXPECT_EQ(a.attribute_link_count(), b.attribute_link_count());
  EXPECT_EQ(a.attribute_node_count(), b.attribute_node_count());
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorParams params;
  params.social_node_count = 1'000;
  params.seed = 5;
  const auto a = generate_san(params);
  params.seed = 6;
  const auto b = generate_san(params);
  EXPECT_NE(a.social_link_count(), b.social_link_count());
}

TEST(Generator, EveryNodeHasOutgoingLink) {
  GeneratorParams params;
  params.social_node_count = 2'000;
  params.seed = 7;
  const auto net = generate_san(params);
  std::size_t without = 0;
  for (std::size_t u = 0; u < net.social_node_count(); ++u) {
    if (net.social().out_degree(static_cast<san::NodeId>(u)) == 0) ++without;
  }
  // First links can fail only if 32 retries all collide; essentially never.
  EXPECT_LE(without, net.social_node_count() / 200);
}

TEST(Generator, DeclareProbabilityControlsAttributeCoverage) {
  GeneratorParams params;
  params.social_node_count = 3'000;
  params.attribute_declare_prob = 0.22;
  params.seed = 9;
  const auto net = generate_san(params);
  std::size_t declared = 0;
  for (std::size_t u = 0; u < net.social_node_count(); ++u) {
    if (!net.attributes_of(static_cast<san::NodeId>(u)).empty()) ++declared;
  }
  EXPECT_NEAR(static_cast<double>(declared) /
                  static_cast<double>(net.social_node_count()),
              0.22, 0.03);
}

TEST(Generator, Theorem1OutdegreeLognormalParameters) {
  GeneratorParams params;
  params.social_node_count = 30'000;
  params.mu_l = 1.8;
  params.sigma_l = 1.0;
  params.ms = 1.0;
  params.seed = 11;
  const auto net = generate_san(params);
  const auto snap = san::snapshot_full(net);
  const auto hist = san::graph::out_degree_histogram(snap.social);
  const auto fit = san::stats::fit_discrete_lognormal(hist, 1);
  const auto pred =
      san::model::predicted_outdegree_lognormal(params.mu_l, params.sigma_l,
                                                params.ms);
  EXPECT_NEAR(fit.mu, pred.mu, 0.2);
  EXPECT_NEAR(fit.sigma, pred.sigma, 0.2);
}

TEST(Generator, Theorem1ScalesWithMs) {
  // Doubling ms halves the lognormal mean of ln(outdegree).
  GeneratorParams params;
  params.social_node_count = 20'000;
  params.mu_l = 2.4;
  params.sigma_l = 0.8;
  params.seed = 13;

  params.ms = 1.0;
  const auto snap1 = san::snapshot_full(generate_san(params));
  const auto fit1 = san::stats::fit_discrete_lognormal(
      san::graph::out_degree_histogram(snap1.social), 1);

  params.ms = 2.0;
  const auto snap2 = san::snapshot_full(generate_san(params));
  const auto fit2 = san::stats::fit_discrete_lognormal(
      san::graph::out_degree_histogram(snap2.social), 1);

  EXPECT_GT(fit1.mu, fit2.mu);
  EXPECT_NEAR(fit1.mu / std::max(fit2.mu, 1e-9), 2.0, 0.6);
}

TEST(Generator, Theorem2AttributePowerLawExponent) {
  GeneratorParams params;
  params.social_node_count = 30'000;
  params.p_new_attribute = 0.3;  // predicted exponent (2-p)/(1-p) = 2.43
  params.attribute_declare_prob = 1.0;
  params.seed = 17;
  const auto net = generate_san(params);
  const auto snap = san::snapshot_full(net);
  const auto hist = san::attribute_social_degree_histogram(snap);
  // Theorem 2 is asymptotic in the degree, so fit on the KS-selected tail.
  const auto fit = san::stats::fit_power_law_scan(hist);
  const double predicted =
      san::model::predicted_attribute_powerlaw_exponent(params.p_new_attribute);
  EXPECT_NEAR(fit.alpha, predicted, 0.35);
}

TEST(Generator, AttributeDegreeLognormalByConstruction) {
  GeneratorParams params;
  params.social_node_count = 20'000;
  params.mu_a = 0.9;
  params.sigma_a = 0.8;
  params.attribute_declare_prob = 1.0;
  params.seed = 19;
  const auto net = generate_san(params);
  const auto snap = san::snapshot_full(net);
  const auto hist = san::attribute_degree_histogram(snap);
  const auto sel = san::stats::select_degree_model(hist, 1);
  EXPECT_EQ(sel.best, san::stats::DegreeModel::kLognormal);
  EXPECT_NEAR(sel.lognormal.mu, params.mu_a, 0.15);
  EXPECT_NEAR(sel.lognormal.sigma, params.sigma_a, 0.15);
}

TEST(Generator, LapaRaisesAttributeReciprocityOfLinks) {
  // With a strong beta, first links preferentially hit attribute sharers:
  // measure the fraction of links whose endpoints share an attribute.
  GeneratorParams strong, weak;
  strong.social_node_count = weak.social_node_count = 5'000;
  strong.seed = weak.seed = 23;
  strong.beta = 500.0;
  weak.beta = 0.0;
  const auto net_strong = generate_san(strong);
  const auto net_weak = generate_san(weak);
  // Only first links are LAPA-driven; later links come from closure, which
  // is identical in both configurations.
  const auto shared_fraction = [](const san::SocialAttributeNetwork& net) {
    std::vector<char> seen(net.social_node_count(), 0);
    std::uint64_t shared = 0, total = 0;
    for (const auto& e : net.social_log()) {
      if (seen[e.src]) continue;
      seen[e.src] = 1;
      ++total;
      if (net.common_attributes(e.src, e.dst) > 0) ++shared;
    }
    return static_cast<double>(shared) / static_cast<double>(total);
  };
  EXPECT_GT(shared_fraction(net_strong), shared_fraction(net_weak) + 0.1);
}

TEST(Generator, ExponentialLifetimeAblationChangesTail) {
  // With exponential lifetimes the outdegree distribution becomes heavier
  // tailed than lognormal (closer to power-law, as in prior models).
  GeneratorParams tn, exp_params;
  tn.social_node_count = exp_params.social_node_count = 20'000;
  tn.seed = exp_params.seed = 29;
  exp_params.lifetime = LifetimeRule::kExponential;
  const auto snap_tn = san::snapshot_full(generate_san(tn));
  const auto snap_exp = san::snapshot_full(generate_san(exp_params));
  const auto max_out = [](const san::SanSnapshot& snap) {
    std::size_t best = 0;
    for (san::NodeId u = 0; u < snap.social.node_count(); ++u) {
      best = std::max(best, snap.social.out_degree(u));
    }
    return best;
  };
  EXPECT_GT(max_out(snap_exp), max_out(snap_tn));
}

TEST(Generator, ValidatesParameters) {
  GeneratorParams params;
  params.social_node_count = 0;
  EXPECT_THROW(generate_san(params), std::invalid_argument);
  params = {};
  params.sigma_a = 0.0;
  EXPECT_THROW(generate_san(params), std::invalid_argument);
  params = {};
  params.p_new_attribute = 1.0;
  EXPECT_THROW(generate_san(params), std::invalid_argument);
  params = {};
  params.ms = 0.0;
  EXPECT_THROW(generate_san(params), std::invalid_argument);
  params = {};
  params.init_social_nodes = 1;
  EXPECT_THROW(generate_san(params), std::invalid_argument);
  params = {};
  params.fc = -0.5;
  EXPECT_THROW(generate_san(params), std::invalid_argument);
}

TEST(Generator, DynamicAttributesIncreaseAttributeLinks) {
  // §7 extension: socially-adopted attributes add attribute links on top of
  // the join-time declarations.
  GeneratorParams off, on;
  off.social_node_count = on.social_node_count = 5'000;
  off.seed = on.seed = 47;
  on.dynamic_attribute_prob = 0.5;
  const auto net_off = generate_san(off);
  const auto net_on = generate_san(on);
  EXPECT_GT(net_on.attribute_link_count(),
            net_off.attribute_link_count() +
                net_off.attribute_link_count() / 10);
}

TEST(Generator, DynamicAttributesCopyFromNeighbors) {
  GeneratorParams params;
  params.social_node_count = 5'000;
  params.dynamic_attribute_prob = 0.5;
  params.seed = 49;
  const auto net = generate_san(params);
  // Adopted attributes are copied from social neighbors, so an adopter
  // shares that attribute with at least one neighbor; spot-check that the
  // fraction of users sharing an attribute with some neighbor is high among
  // multi-attribute users.
  std::size_t sharing = 0, checked = 0;
  for (std::size_t u = 0; u < net.social_node_count() && checked < 500; ++u) {
    const auto id = static_cast<san::NodeId>(u);
    if (net.attributes_of(id).size() < 2) continue;
    ++checked;
    bool shares = false;
    for (const auto v : net.social().out_neighbors(id)) {
      if (net.common_attributes(id, v) > 0) {
        shares = true;
        break;
      }
    }
    if (shares) ++sharing;
  }
  ASSERT_GT(checked, 100u);
  EXPECT_GT(static_cast<double>(sharing) / static_cast<double>(checked), 0.5);
}

TEST(Generator, MaxOutdegreeCapEnforced) {
  GeneratorParams params;
  params.social_node_count = 3'000;
  params.lifetime = LifetimeRule::kExponential;  // unbounded lifetimes
  params.max_outdegree = 64;
  params.seed = 53;
  const auto net = generate_san(params);
  std::size_t max_out = 0;
  for (std::size_t u = 0; u < net.social_node_count(); ++u) {
    max_out = std::max(max_out,
                       net.social().out_degree(static_cast<san::NodeId>(u)));
  }
  // One link may still land after the cap check, hence the +1 slack.
  EXPECT_LE(max_out, params.max_outdegree + 1);
}

TEST(Generator, TimestampsConsistentForSnapshots) {
  GeneratorParams params;
  params.social_node_count = 2'000;
  params.seed = 31;
  const auto net = generate_san(params);
  // Half-time snapshot must be buildable and strictly smaller.
  const auto half = san::snapshot_at(
      net, static_cast<double>(params.social_node_count) / 2);
  const auto full = san::snapshot_full(net);
  EXPECT_LT(half.social_node_count(), full.social_node_count());
  EXPECT_LT(half.social_link_count(), full.social_link_count());
  EXPECT_GT(half.social_node_count(), 0u);
}

}  // namespace

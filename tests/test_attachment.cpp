// Building block 1 tests: kernel weights and the Fig 15 likelihood engine.
#include "model/attachment.hpp"

#include <gtest/gtest.h>

#include "model/generator.hpp"
#include "san/san.hpp"

namespace {

using san::AttributeType;
using san::SocialAttributeNetwork;
using san::model::AttachmentKind;
using san::model::AttachmentLikelihood;
using san::model::AttachmentParams;
using san::model::attachment_weight;
using san::model::relative_improvement_percent;

TEST(AttachmentWeight, ReducesToUniformAtZeroZero) {
  const AttachmentParams params{0.0, 0.0};
  for (const auto kind : {AttachmentKind::kPapa, AttachmentKind::kLapa}) {
    const double w1 = attachment_weight(kind, params, 0.0, 0.0);
    const double w2 = attachment_weight(kind, params, 50.0, 3.0);
    EXPECT_DOUBLE_EQ(w1, w2);
  }
}

TEST(AttachmentWeight, ReducesToPaAtAlphaOneBetaZero) {
  const AttachmentParams params{1.0, 0.0};
  // LAPA: weight = d + 1 exactly. PAPA: 2 * (d + 1) — same after
  // normalization.
  EXPECT_DOUBLE_EQ(
      attachment_weight(AttachmentKind::kLapa, params, 4.0, 7.0), 5.0);
  const double p0 = attachment_weight(AttachmentKind::kPapa, params, 4.0, 0.0);
  const double p3 = attachment_weight(AttachmentKind::kPapa, params, 4.0, 3.0);
  EXPECT_DOUBLE_EQ(p0, p3);  // beta = 0: attributes don't matter
}

TEST(AttachmentWeight, LapaLinearInCommonAttributes) {
  const AttachmentParams params{1.0, 10.0};
  const double w0 = attachment_weight(AttachmentKind::kLapa, params, 1.0, 0.0);
  const double w1 = attachment_weight(AttachmentKind::kLapa, params, 1.0, 1.0);
  const double w2 = attachment_weight(AttachmentKind::kLapa, params, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(w1 - w0, w2 - w1);  // linear increments
  EXPECT_DOUBLE_EQ(w1 / w0, 11.0);
}

TEST(AttachmentWeight, PapaPowerInCommonAttributes) {
  const AttachmentParams params{1.0, 2.0};
  const double w2 = attachment_weight(AttachmentKind::kPapa, params, 0.0, 2.0);
  const double w4 = attachment_weight(AttachmentKind::kPapa, params, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(w2, 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(w4, 1.0 + 16.0);
}

TEST(RelativeImprovement, MatchesFig15Definition) {
  // (l_ref - l) / l_ref: with negative log-likelihoods, an improvement
  // (l > l_ref) yields a positive percentage.
  EXPECT_NEAR(relative_improvement_percent(-100.0, -90.0), 10.0, 1e-12);
  EXPECT_NEAR(relative_improvement_percent(-100.0, -110.0), -10.0, 1e-12);
  EXPECT_DOUBLE_EQ(relative_improvement_percent(0.0, -5.0), 0.0);
}

/// Hand-built SAN where the first link of node 2 goes to the attribute
/// sharer, not to the higher-degree node.
SocialAttributeNetwork attribute_driven_san() {
  SocialAttributeNetwork net;
  net.add_social_node(0.0);  // 0: high indegree
  net.add_social_node(0.0);  // 1: shares attribute with 2
  const auto a = net.add_attribute_node(AttributeType::kEmployer, "G", 0.0);
  net.add_attribute_link(1, a, 0.0);
  net.add_social_link(0, 1, 0.1);
  net.add_social_link(1, 0, 0.1);
  for (int i = 0; i < 6; ++i) {
    const auto u = net.add_social_node(1.0 + i);
    net.add_attribute_link(u, a, 1.0 + i);
    net.add_social_link(u, 1, 1.0 + i);  // always the attribute sharer
  }
  return net;
}

TEST(AttachmentLikelihood, AttributeAwareKernelWinsOnAttributeData) {
  const auto net = attribute_driven_san();
  const AttachmentLikelihood evaluator(net);
  const auto pa = evaluator.evaluate(AttachmentKind::kLapa, {1.0, 0.0});
  const auto lapa = evaluator.evaluate(AttachmentKind::kLapa, {1.0, 50.0});
  EXPECT_GT(lapa.loglik, pa.loglik);
  EXPECT_EQ(pa.events, lapa.events);
  EXPECT_GT(pa.events, 0u);
}

TEST(AttachmentLikelihood, PapaAlsoBeatsPaOnAttributeData) {
  const auto net = attribute_driven_san();
  const AttachmentLikelihood evaluator(net);
  const auto pa = evaluator.evaluate(AttachmentKind::kPapa, {1.0, 0.0});
  const auto papa = evaluator.evaluate(AttachmentKind::kPapa, {1.0, 3.0});
  EXPECT_GT(papa.loglik, pa.loglik);
}

TEST(AttachmentLikelihood, GeneratedWithLapaPeaksNearTrueBeta) {
  // Generate a small SAN with LAPA(alpha=1, beta=50); the evaluated
  // likelihood should prefer beta = 50 over beta = 0 and beta = 5000.
  san::model::GeneratorParams params;
  params.social_node_count = 3'000;
  params.beta = 50.0;
  params.seed = 11;
  const auto net = san::model::generate_san(params);
  const AttachmentLikelihood evaluator(net);
  const double l0 = evaluator.evaluate(AttachmentKind::kLapa, {1.0,
                                                               0.0}).loglik;
  const double l50 = evaluator.evaluate(AttachmentKind::kLapa, {1.0,
                                                                50.0}).loglik;
  const double l5000 =
      evaluator.evaluate(AttachmentKind::kLapa, {1.0, 5000.0}).loglik;
  EXPECT_GT(l50, l0);
  EXPECT_GT(l50, l5000);
}

TEST(AttachmentLikelihood, AlphaOneBeatsExtremes) {
  san::model::GeneratorParams params;
  params.social_node_count = 3'000;
  params.beta = 0.0;  // pure PA data
  params.attachment = san::model::AttachmentRule::kPa;
  params.seed = 13;
  const auto net = san::model::generate_san(params);
  const AttachmentLikelihood evaluator(net);
  const double l_a0 = evaluator.evaluate(AttachmentKind::kLapa, {0.0,
                                                                 0.0}).loglik;
  const double l_a1 = evaluator.evaluate(AttachmentKind::kLapa, {1.0,
                                                                 0.0}).loglik;
  const double l_a2 = evaluator.evaluate(AttachmentKind::kLapa, {2.0,
                                                                 0.0}).loglik;
  EXPECT_GT(l_a1, l_a0);
  EXPECT_GT(l_a1, l_a2);
}

TEST(AttachmentLikelihood, StrideReducesEventsProportionally) {
  const auto net = attribute_driven_san();
  const AttachmentLikelihood full(net, 1);
  const AttachmentLikelihood strided(net, 2);
  const auto all = full.evaluate(AttachmentKind::kLapa, {1.0, 0.0});
  const auto half = strided.evaluate(AttachmentKind::kLapa, {1.0, 0.0});
  EXPECT_NEAR(static_cast<double>(half.events),
              static_cast<double>(all.events) / 2.0, 1.0);
}

}  // namespace

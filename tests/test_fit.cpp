// Parameter-recovery and model-selection tests for the fitting layer: the
// paper's conclusions (lognormal social degrees, power-law attribute-node
// degrees) rest on exactly this machinery.
#include "stats/fit.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace {

using san::stats::DegreeModel;
using san::stats::DiscreteLognormal;
using san::stats::DiscretePowerLaw;
using san::stats::fit_discrete_lognormal;
using san::stats::fit_power_law;
using san::stats::fit_power_law_cutoff;
using san::stats::fit_power_law_scan;
using san::stats::make_histogram;
using san::stats::PowerLawCutoff;
using san::stats::Rng;
using san::stats::select_degree_model;

san::stats::Histogram sample_histogram(const auto& dist, int n,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) values.push_back(dist.sample(rng));
  return make_histogram(values);
}

class PowerLawRecovery : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawRecovery, AlphaRecovered) {
  const double alpha = GetParam();
  const DiscretePowerLaw dist(alpha, 1);
  const auto hist = sample_histogram(dist, 60'000, 101);
  const auto fit = fit_power_law(hist, 1);
  EXPECT_NEAR(fit.alpha, alpha, 0.05) << "alpha=" << alpha;
  EXPECT_LT(fit.ks, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Alphas, PowerLawRecovery,
                         ::testing::Values(1.8, 2.05, 2.5, 3.0, 3.5));

class LognormalRecovery
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LognormalRecovery, MuSigmaRecovered) {
  const auto [mu, sigma] = GetParam();
  const DiscreteLognormal dist(mu, sigma, 1);
  const auto hist = sample_histogram(dist, 60'000, 202);
  const auto fit = fit_discrete_lognormal(hist, 1);
  EXPECT_NEAR(fit.mu, mu, 0.08) << "mu=" << mu << " sigma=" << sigma;
  EXPECT_NEAR(fit.sigma, sigma, 0.08);
  EXPECT_LT(fit.ks, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Params, LognormalRecovery,
                         ::testing::Values(std::make_tuple(1.2, 1.0),
                                           std::make_tuple(2.0, 1.4),
                                           std::make_tuple(1.6, 0.8),
                                           std::make_tuple(0.7, 0.9)));

TEST(CutoffRecovery, ParametersRecovered) {
  const PowerLawCutoff dist(1.5, 0.02, 1);
  const auto hist = sample_histogram(dist, 60'000, 303);
  const auto fit = fit_power_law_cutoff(hist, 1);
  EXPECT_NEAR(fit.alpha, 1.5, 0.15);
  EXPECT_NEAR(fit.lambda, 0.02, 0.01);
  EXPECT_LT(fit.ks, 0.02);
}

TEST(PowerLawScan, FindsInjectedXmin) {
  // Power law valid only above k = 8: below it, uniform noise.
  Rng rng(404);
  const DiscretePowerLaw tail(2.2, 8);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 30'000; ++i) values.push_back(tail.sample(rng));
  for (int i = 0; i < 30'000; ++i) values.push_back(1 + rng.uniform_index(7));
  const auto fit = fit_power_law_scan(make_histogram(values));
  // The KS-minimizing cutoff must land at or above the true regime change
  // (the head is visibly non-power-law) but not absurdly deep in the tail.
  EXPECT_GE(fit.kmin, 6u);
  EXPECT_LE(fit.kmin, 40u);
  EXPECT_NEAR(fit.alpha, 2.2, 0.3);
}

TEST(ModelSelection, PicksPowerLawForPowerLawData) {
  const DiscretePowerLaw dist(2.3, 1);
  const auto hist = sample_histogram(dist, 50'000, 505);
  const auto sel = select_degree_model(hist, 1);
  EXPECT_EQ(sel.best, DegreeModel::kPowerLaw);
}

TEST(ModelSelection, PicksLognormalForLognormalData) {
  // The paper's headline: Google+ social degrees are lognormal, and the
  // selection machinery must distinguish that from a power law.
  const DiscreteLognormal dist(1.8, 1.0, 1);
  const auto hist = sample_histogram(dist, 50'000, 606);
  const auto sel = select_degree_model(hist, 1);
  EXPECT_EQ(sel.best, DegreeModel::kLognormal);
  EXPECT_LT(sel.aic_lognormal, sel.aic_power_law);
}

TEST(ModelSelection, PicksCutoffForCutoffData) {
  const PowerLawCutoff dist(1.2, 0.05, 1);
  const auto hist = sample_histogram(dist, 50'000, 707);
  const auto sel = select_degree_model(hist, 1);
  EXPECT_EQ(sel.best, DegreeModel::kPowerLawCutoff);
}

TEST(Fit, RejectsDegenerateInput) {
  const auto empty = make_histogram({});
  EXPECT_THROW(fit_power_law(empty, 1), std::invalid_argument);
  EXPECT_THROW(fit_discrete_lognormal(empty, 1), std::invalid_argument);
  EXPECT_THROW(fit_power_law_cutoff(empty, 1), std::invalid_argument);
  const auto tiny = make_histogram(std::vector<std::uint64_t>{5});
  EXPECT_THROW(fit_power_law(tiny, 1), std::invalid_argument);
  EXPECT_THROW(fit_power_law(tiny, 0), std::invalid_argument);
}

TEST(Fit, ToStringNames) {
  EXPECT_EQ(san::stats::to_string(DegreeModel::kPowerLaw), "power-law");
  EXPECT_EQ(san::stats::to_string(DegreeModel::kLognormal), "lognormal");
  EXPECT_EQ(san::stats::to_string(DegreeModel::kPowerLawCutoff),
            "power-law-with-cutoff");
}

TEST(Fit, LoglikImprovesWithCorrectModel) {
  const DiscreteLognormal dist(1.5, 1.1, 1);
  const auto hist = sample_histogram(dist, 40'000, 808);
  const auto ln = fit_discrete_lognormal(hist, 1);
  const auto pl = fit_power_law(hist, 1);
  EXPECT_GT(ln.loglik, pl.loglik);
}

}  // namespace

#include "crawl/crawler.hpp"

#include <gtest/gtest.h>

#include "crawl/gplus_synth.hpp"
#include "graph/wcc.hpp"
#include "san/snapshot.hpp"

namespace {

using san::crawl::crawl_at;
using san::crawl::CrawlerOptions;
using san::crawl::generate_synthetic_gplus;
using san::crawl::SyntheticGplusParams;

san::SocialAttributeNetwork ground_truth() {
  SyntheticGplusParams params;
  params.total_social_nodes = 5'000;
  params.seed = 55;
  return generate_synthetic_gplus(params);
}

TEST(Crawler, HighCoverageWithBidirectionalLists) {
  // The paper's §2.2 argument: access to both in and out lists yields
  // >= 70% coverage despite private profiles.
  const auto truth = ground_truth();
  CrawlerOptions options;
  options.private_profile_prob = 0.12;
  const auto result = crawl_at(truth, 98.0, options);
  EXPECT_GE(result.node_coverage, 0.7);
  EXPECT_GT(result.link_coverage, 0.7);
}

TEST(Crawler, ZeroPrivacyCoversEverythingButLurkers) {
  SyntheticGplusParams params;
  params.total_social_nodes = 5'000;
  params.seed = 55;
  params.lurker_prob = 0.0;
  const auto truth = generate_synthetic_gplus(params);
  CrawlerOptions options;
  options.private_profile_prob = 0.0;
  const auto result = crawl_at(truth, 98.0, options);
  // Without lurkers the synthetic network grows from a connected core, so
  // a privacy-free crawl covers essentially everything.
  EXPECT_GE(result.node_coverage, 0.99);
  EXPECT_GE(result.link_coverage, 0.99);
}

TEST(Crawler, LurkersReduceCoverage) {
  SyntheticGplusParams params;
  params.total_social_nodes = 5'000;
  params.seed = 55;
  params.lurker_prob = 0.3;
  const auto truth = generate_synthetic_gplus(params);
  CrawlerOptions options;
  options.private_profile_prob = 0.0;
  const auto result = crawl_at(truth, 98.0, options);
  // Most lurkers are unreachable (some acquire links via shared-attribute
  // attachment), so coverage sits well below 1 but above 1 - lurker_prob.
  EXPECT_LT(result.node_coverage, 0.9);
  EXPECT_GE(result.node_coverage, 0.65);
}

TEST(Crawler, MorePrivacyLowersCoverage) {
  const auto truth = ground_truth();
  CrawlerOptions open, closed;
  open.private_profile_prob = 0.05;
  closed.private_profile_prob = 0.6;
  const auto open_result = crawl_at(truth, 98.0, open);
  const auto closed_result = crawl_at(truth, 98.0, closed);
  EXPECT_GT(open_result.link_coverage, closed_result.link_coverage);
}

TEST(Crawler, MidCrawlSmallerThanFinal) {
  const auto truth = ground_truth();
  const auto mid = crawl_at(truth, 40.0);
  const auto fin = crawl_at(truth, 98.0);
  EXPECT_LT(mid.network.social_node_count(), fin.network.social_node_count());
  EXPECT_LT(mid.network.social_link_count(), fin.network.social_link_count());
}

TEST(Crawler, CrawledIdsChronological) {
  const auto truth = ground_truth();
  const auto result = crawl_at(truth, 60.0);
  double prev = -1.0;
  for (std::size_t u = 0; u < result.network.social_node_count(); ++u) {
    const double t =
        result.network.social_node_time(static_cast<san::NodeId>(u));
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Crawler, OriginalIdMappingValid) {
  const auto truth = ground_truth();
  const auto result = crawl_at(truth, 98.0);
  ASSERT_EQ(result.original_id.size(), result.network.social_node_count());
  for (std::size_t u = 0; u < result.original_id.size(); ++u) {
    EXPECT_LT(result.original_id[u], truth.social_node_count());
    EXPECT_DOUBLE_EQ(
        result.network.social_node_time(static_cast<san::NodeId>(u)),
        truth.social_node_time(result.original_id[u]));
  }
}

TEST(Crawler, AttributesOnlyForDiscoveredUsers) {
  const auto truth = ground_truth();
  const auto result = crawl_at(truth, 98.0);
  EXPECT_LE(result.network.attribute_link_count(),
            truth.attribute_link_count());
  EXPECT_GT(result.network.attribute_link_count(), 0u);
}

TEST(Crawler, RejectsBadPrivacyProbability) {
  const auto truth = ground_truth();
  CrawlerOptions options;
  options.private_profile_prob = 1.5;
  EXPECT_THROW(crawl_at(truth, 98.0, options), std::invalid_argument);
}

TEST(Crawler, EmptyTruthSafe) {
  const san::SocialAttributeNetwork empty;
  const auto result = crawl_at(empty, 1.0);
  EXPECT_EQ(result.network.social_node_count(), 0u);
  EXPECT_DOUBLE_EQ(result.node_coverage, 0.0);
}

}  // namespace

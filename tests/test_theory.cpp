#include "model/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hpp"

namespace {

using san::model::lifetime_for_outdegree;
using san::model::new_attribute_probability_for_exponent;
using san::model::predicted_attribute_powerlaw_exponent;
using san::model::predicted_outdegree_lognormal;
using san::stats::TruncatedNormal;

TEST(Theorem1, FormulaMatchesDefinition) {
  const double mu_l = 1.8, sigma_l = 1.0, ms = 1.0;
  const double gamma = -mu_l / sigma_l;
  const auto pred = predicted_outdegree_lognormal(mu_l, sigma_l, ms);
  EXPECT_NEAR(pred.mu, (mu_l + sigma_l * TruncatedNormal::g(gamma)) / ms,
              1e-12);
  EXPECT_NEAR(pred.sigma * pred.sigma,
              sigma_l * sigma_l * (1.0 - TruncatedNormal::delta(gamma)) /
                  (ms * ms),
              1e-12);
}

TEST(Theorem1, MuEqualsTruncatedMeanOverMs) {
  // The predicted lognormal mu is exactly E[lifetime] / ms.
  const TruncatedNormal lt(2.5, 1.5);
  const auto pred = predicted_outdegree_lognormal(2.5, 1.5, 2.0);
  EXPECT_NEAR(pred.mu, lt.mean() / 2.0, 1e-12);
  EXPECT_NEAR(pred.sigma, std::sqrt(lt.variance()) / 2.0, 1e-12);
}

TEST(Theorem1, RejectsBadArguments) {
  EXPECT_THROW(predicted_outdegree_lognormal(1.0, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(predicted_outdegree_lognormal(1.0, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Theorem2, ExponentFormula) {
  EXPECT_DOUBLE_EQ(predicted_attribute_powerlaw_exponent(0.0), 2.0);
  EXPECT_DOUBLE_EQ(predicted_attribute_powerlaw_exponent(0.5), 3.0);
  EXPECT_NEAR(predicted_attribute_powerlaw_exponent(0.05), 2.0526, 1e-3);
}

TEST(Theorem2, InverseRoundTrip) {
  for (const double p : {0.05, 0.2, 0.4, 0.6}) {
    const double alpha = predicted_attribute_powerlaw_exponent(p);
    EXPECT_NEAR(new_attribute_probability_for_exponent(alpha), p, 1e-12);
  }
}

TEST(Theorem2, RejectsBadArguments) {
  EXPECT_THROW(predicted_attribute_powerlaw_exponent(-0.1),
               std::invalid_argument);
  EXPECT_THROW(predicted_attribute_powerlaw_exponent(1.0),
               std::invalid_argument);
  EXPECT_THROW(new_attribute_probability_for_exponent(2.0),
               std::invalid_argument);
}

TEST(LifetimeInversion, RoundTripsThroughTheorem1) {
  for (const double ms : {0.5, 1.0, 2.0}) {
    for (const double mu_t : {1.2, 1.8, 2.4}) {
      for (const double sigma_t : {0.6, 1.0}) {
        const auto lt = lifetime_for_outdegree(mu_t, sigma_t, ms);
        const auto pred = predicted_outdegree_lognormal(lt.mu_l, lt.sigma_l,
                                                        ms);
        EXPECT_NEAR(pred.mu, mu_t, 1e-4) << "ms=" << ms;
        EXPECT_NEAR(pred.sigma, sigma_t, 1e-4);
      }
    }
  }
}

TEST(LifetimeInversion, RejectsBadTargets) {
  EXPECT_THROW(lifetime_for_outdegree(1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(lifetime_for_outdegree(1.0, 1.0, -1.0), std::invalid_argument);
}

}  // namespace

// The SIMD kernel layer's contract (core/simd): every dispatch level is
// byte-identical — scalar, SSE4.2, and AVX2 must agree on every input the
// CSR invariant allows — and the level knob composes with the thread
// knob: the serve batch==single and timeline delta==naive determinism
// gates hold at every SAN_SIMD x SAN_THREADS=1/2/4/8 combination. The
// scalar kernel itself is checked against std::set_intersection, so the
// cross-level equivalence chain is anchored to ground truth.
#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/simd/simd.hpp"
#include "core/thread_pool.hpp"
#include "san/snapshot.hpp"
#include "san/timeline.hpp"
#include "san_testlib.hpp"
#include "serve/query_engine.hpp"

namespace {

using namespace san;
namespace simd = core::simd;

/// Every level this host can dispatch to, scalar first.
std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  for (const simd::Level level : {simd::Level::kSse, simd::Level::kAvx2}) {
    if (simd::set_level(level)) levels.push_back(level);
  }
  simd::set_level(simd::detected_level());
  return levels;
}

/// `size` strictly ascending u32 drawn from [lo, lo + span) via random
/// gaps.
std::vector<std::uint32_t> sorted_set(std::mt19937_64& rng, std::size_t size,
                                      std::uint32_t lo, std::uint32_t span) {
  std::vector<std::uint32_t> out;
  out.reserve(size);
  if (size == 0) return out;
  const double mean_gap =
      std::max(1.0, static_cast<double>(span) / (size + 1));
  std::uniform_int_distribution<std::uint32_t> gap(
      1, static_cast<std::uint32_t>(2.0 * mean_gap));
  std::uint32_t value = lo;
  for (std::size_t i = 0; i < size; ++i) {
    value += gap(rng);
    out.push_back(value);
  }
  return out;
}

/// Assert every available level reproduces scalar's count and into bytes
/// on (a, b) — and scalar reproduces std::set_intersection.
void expect_all_levels_agree(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b) {
  std::vector<std::uint32_t> truth(std::min(a.size(), b.size()));
  const auto truth_end = std::set_intersection(
      a.begin(), a.end(), b.begin(), b.end(), truth.begin());
  truth.resize(static_cast<std::size_t>(truth_end - truth.begin()));

  const std::size_t cap = std::min(a.size(), b.size()) + simd::kIntoPad;
  std::vector<std::uint32_t> got(cap);
  for (const simd::Level level : available_levels()) {
    ASSERT_TRUE(simd::set_level(level));
    ASSERT_EQ(simd::intersect_count(a, b), truth.size())
        << "level " << simd::level_name(level);
    got.assign(cap, 0xDEADu);
    ASSERT_EQ(simd::intersect_into(a, b, got.data()), truth.size())
        << "level " << simd::level_name(level);
    ASSERT_TRUE(std::equal(truth.begin(), truth.end(), got.begin()))
        << "level " << simd::level_name(level);
  }
  simd::set_level(simd::detected_level());
}

TEST(SimdDispatch, ParseLevelIsStrict) {
  simd::Level level = simd::Level::kAvx2;
  EXPECT_TRUE(simd::parse_level("scalar", level));
  EXPECT_EQ(level, simd::Level::kScalar);
  EXPECT_TRUE(simd::parse_level("sse", level));
  EXPECT_EQ(level, simd::Level::kSse);
  EXPECT_TRUE(simd::parse_level("avx2", level));
  EXPECT_EQ(level, simd::Level::kAvx2);
  for (const char* bad : {"", "SSE", "Scalar", "s", "avx", "avx22",
                          "scalar ", " sse", "sse4.2"}) {
    EXPECT_FALSE(simd::parse_level(bad, level)) << "'" << bad << "'";
  }
  EXPECT_FALSE(simd::parse_level(nullptr, level));
}

TEST(SimdDispatch, SetLevelHonorsDetectionCeiling) {
  const simd::Level detected = simd::detected_level();
  for (const simd::Level level :
       {simd::Level::kScalar, simd::Level::kSse, simd::Level::kAvx2}) {
    if (level <= detected) {
      EXPECT_TRUE(simd::set_level(level));
      EXPECT_EQ(simd::active_level(), level);
    } else {
      const simd::Level before = simd::active_level();
      EXPECT_FALSE(simd::set_level(level));
      EXPECT_EQ(simd::active_level(), before);
    }
  }
  EXPECT_TRUE(simd::set_level(detected));
}

TEST(SimdIntersect, EdgeShapes) {
  std::mt19937_64 rng(7);
  const auto some = sorted_set(rng, 300, 0, 3000);
  const std::vector<std::uint32_t> empty;
  const std::vector<std::uint32_t> one{42};
  expect_all_levels_agree(empty, empty);
  expect_all_levels_agree(empty, some);
  expect_all_levels_agree(some, empty);
  expect_all_levels_agree(one, one);
  expect_all_levels_agree(one, some);
  expect_all_levels_agree(some, some);  // equal spans
  const auto far = sorted_set(rng, 300, 1'000'000, 3000);
  expect_all_levels_agree(some, far);  // fully disjoint ranges
}

TEST(SimdIntersect, VectorWidthStraddlingAndUnalignedOffsets) {
  std::mt19937_64 rng(11);
  for (std::size_t na = 0; na < 20; ++na) {
    for (std::size_t nb = 0; nb < 20; ++nb) {
      const auto a = sorted_set(rng, na, 0, 40);
      const auto b = sorted_set(rng, nb, 0, 40);
      for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                       std::size_t{3}}) {
        if (offset > a.size() || offset > b.size()) continue;
        expect_all_levels_agree(
            {a.data() + offset, a.size() - offset},
            {b.data() + offset, b.size() - offset});
      }
    }
  }
}

TEST(SimdIntersect, RandomizedBalancedAndSkewed) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<std::size_t> size_dist(0, 2000);
  for (int i = 0; i < 150; ++i) {
    const std::size_t na = size_dist(rng);
    const std::size_t nb = size_dist(rng);
    expect_all_levels_agree(sorted_set(rng, na, 0, 4000),
                            sorted_set(rng, nb, 0, 4000));
  }
  // Skew past the gallop ratio: 1:1000 takes the galloping path at every
  // level, 1:32 sits on the boundary.
  for (int i = 0; i < 20; ++i) {
    expect_all_levels_agree(sorted_set(rng, 2, 0, 2'000'000),
                            sorted_set(rng, 2000, 0, 2'000'000));
    expect_all_levels_agree(sorted_set(rng, 64, 0, 200'000),
                            sorted_set(rng, 64 * 32, 0, 200'000));
  }
}

// The serving gate: batched results byte-identical to the single-query
// reference at every SAN_SIMD x SAN_THREADS combination. The reference is
// rendered once at scalar / 1 thread, anchoring every combination to the
// same bytes.
TEST(SimdSweep, ServeBatchMatchesSingleAcrossLevelsAndThreads) {
  const auto net = testlib::synthetic_gplus(3000, 0x51D);
  const SanTimeline timeline(net);
  const std::vector<double> days{30.0, 60.0, 98.0};
  const auto queries =
      testlib::mixed_queries(600, net.social_node_count(), days, 0x51D2);

  core::set_thread_count(1);
  ASSERT_TRUE(simd::set_level(simd::Level::kScalar));
  serve::SnapshotCache reference_cache(timeline, days.size());
  serve::QueryEngine reference_engine(reference_cache);
  std::vector<std::string> reference;
  reference.reserve(queries.size());
  for (const auto& q : queries) {
    reference.push_back(reference_engine.run_single(q).to_line(q));
  }

  for (const simd::Level level : available_levels()) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      ASSERT_TRUE(simd::set_level(level));
      core::set_thread_count(threads);
      serve::SnapshotCache cache(timeline, days.size());
      serve::QueryEngine engine(cache);
      const auto results = engine.run_batch(queries);
      ASSERT_EQ(results.size(), queries.size());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(results[i].to_line(queries[i]), reference[i])
            << simd::level_name(level) << " x " << threads
            << " threads, query " << i;
      }
    }
  }
  simd::set_level(simd::detected_level());
  core::set_thread_count(1);
}

// The timeline gate: delta-sweep and full-rebuild snapshots fingerprint-
// identical to the naive per-day rescan at every SAN_SIMD x SAN_THREADS
// combination.
TEST(SimdSweep, TimelineDeltaMatchesNaiveAcrossLevelsAndThreads) {
  const auto net = testlib::synthetic_gplus(2000, 0xABC);
  std::vector<double> days;
  for (int d = 10; d <= 98; d += 11) days.push_back(d);

  core::set_thread_count(1);
  ASSERT_TRUE(simd::set_level(simd::Level::kScalar));
  std::vector<std::uint64_t> naive;
  naive.reserve(days.size());
  for (const double day : days) {
    naive.push_back(testlib::snapshot_fingerprint(snapshot_at(net, day)));
  }

  const SanTimeline timeline(net);
  for (const simd::Level level : available_levels()) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      ASSERT_TRUE(simd::set_level(level));
      core::set_thread_count(threads);
      std::size_t i = 0;
      timeline.sweep(days, [&](double day, const SanSnapshot& snap) {
        ASSERT_EQ(testlib::snapshot_fingerprint(snap), naive[i])
            << "delta sweep, " << simd::level_name(level) << " x "
            << threads << " threads, day " << day;
        ++i;
      });
      i = 0;
      timeline.sweep_full_rebuild(days, [&](double day,
                                            const SanSnapshot& snap) {
        ASSERT_EQ(testlib::snapshot_fingerprint(snap), naive[i])
            << "full rebuild, " << simd::level_name(level) << " x "
            << threads << " threads, day " << day;
        ++i;
      });
    }
  }
  simd::set_level(simd::detected_level());
  core::set_thread_count(1);
}

}  // namespace

#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using san::stats::ccdf_points;
using san::stats::Histogram;
using san::stats::log_binned_pdf;
using san::stats::make_histogram;
using san::stats::mean;
using san::stats::mean_of_histogram;
using san::stats::pearson_correlation;
using san::stats::percentile;
using san::stats::variance;

TEST(Histogram, CountsAndOrder) {
  const std::vector<std::uint64_t> values = {3, 1, 3, 7, 1, 1};
  const auto hist = make_histogram(values);
  ASSERT_EQ(hist.bins.size(), 3u);
  EXPECT_EQ(hist.bins[0], (std::pair<std::uint64_t, std::uint64_t>{1, 3}));
  EXPECT_EQ(hist.bins[1], (std::pair<std::uint64_t, std::uint64_t>{3, 2}));
  EXPECT_EQ(hist.bins[2], (std::pair<std::uint64_t, std::uint64_t>{7, 1}));
  EXPECT_EQ(hist.total, 6u);
}

TEST(Histogram, TailRestriction) {
  const std::vector<std::uint64_t> values = {0, 1, 2, 3, 4, 5};
  const auto hist = make_histogram(values);
  const auto tail = hist.tail(3);
  EXPECT_EQ(tail.total, 3u);
  EXPECT_EQ(tail.bins.front().first, 3u);
  EXPECT_EQ(hist.count_at_least(2), 4u);
}

TEST(Histogram, EmptyInput) {
  const auto hist = make_histogram({});
  EXPECT_EQ(hist.total, 0u);
  EXPECT_TRUE(hist.bins.empty());
}

TEST(Summary, MeanAndVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
}

TEST(Summary, MeanOfHistogram) {
  const std::vector<std::uint64_t> values = {2, 2, 8};
  EXPECT_DOUBLE_EQ(mean_of_histogram(make_histogram(values)), 4.0);
}

TEST(Summary, MeanRejectsEmpty) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(variance(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(mean_of_histogram(Histogram{}), std::invalid_argument);
}

TEST(Percentile, InterpolatedValues) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(LogBinnedPdf, IntegratesToOne) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    for (std::uint64_t c = 0; c < 1000 / k; ++c) values.push_back(k);
  }
  const auto points = log_binned_pdf(make_histogram(values), 8.0);
  ASSERT_FALSE(points.empty());
  // Total mass: sum density * bin width ~ 1. Widths are implicit; instead
  // check densities are positive and decreasing overall for this 1/k data.
  EXPECT_GT(points.front().density, points.back().density);
  for (const auto& p : points) {
    EXPECT_GT(p.center, 0.0);
    EXPECT_GT(p.density, 0.0);
  }
}

TEST(LogBinnedPdf, DropsZeros) {
  const std::vector<std::uint64_t> values = {0, 0, 0, 1, 2};
  const auto points = log_binned_pdf(make_histogram(values), 8.0);
  double mass = 0.0;
  for (const auto& p : points) mass += p.density;  // width-1 bins at head
  EXPECT_GT(mass, 0.0);
}

TEST(Ccdf, MonotoneNonIncreasingStartsAtOne) {
  const std::vector<std::uint64_t> values = {1, 1, 2, 5, 9};
  const auto points = ccdf_points(make_histogram(values));
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points.front().second, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 0.2);  // only the value 9
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, neg), -1.0, 1e-12);
}

TEST(Pearson, ZeroForConstant) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Pearson, RejectsMismatch) {
  EXPECT_THROW(pearson_correlation(std::vector<double>{1.0},
                                   std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace

// Tests for the core parallel substrate (core/thread_pool.hpp,
// core/parallel.hpp): coverage, exceptions, nesting, and the determinism
// contract — kernels built on the substrate must produce byte-identical
// results at every thread count.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "graph/clustering.hpp"
#include "graph/csr.hpp"
#include "graph/metrics.hpp"
#include "graph/wcc.hpp"
#include "stats/rng.hpp"

namespace {

using san::graph::CsrGraph;
using san::graph::NodeId;

class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { san::core::set_thread_count(4); }
};

TEST_F(ParallelTest, ThreadCountRoundTrip) {
  san::core::set_thread_count(3);
  EXPECT_EQ(san::core::thread_count(), 3u);
  san::core::set_thread_count(1);
  EXPECT_EQ(san::core::thread_count(), 1u);
  // Values below 1 clamp to a single lane.
  san::core::set_thread_count(0);
  EXPECT_EQ(san::core::thread_count(), 1u);
}

TEST_F(ParallelTest, ParallelForCoversEveryIndexExactlyOnce) {
  san::core::set_thread_count(4);
  constexpr std::size_t kN = 100'000;
  std::vector<std::atomic<int>> hits(kN);
  san::core::parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, ParallelForEmptyAndTinyRanges) {
  san::core::set_thread_count(4);
  std::atomic<int> count{0};
  san::core::parallel_for(0, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  san::core::parallel_for(1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST_F(ParallelTest, ParallelReduceMatchesSerialSum) {
  san::core::set_thread_count(4);
  constexpr std::size_t kN = 123'457;
  const auto sum = san::core::parallel_reduce(
      kN, std::uint64_t{0},
      [](std::size_t begin, std::size_t end, std::size_t) {
        std::uint64_t s = 0;
        for (std::size_t i = begin; i < end; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST_F(ParallelTest, ReduceIsBitIdenticalAcrossThreadCounts) {
  // Floating-point reduction: ordered chunk combine must make the result
  // independent of the thread count.
  const auto run = [] {
    return san::core::parallel_reduce(
        1'000'003, 0.0,
        [](std::size_t begin, std::size_t end, std::size_t) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            s += 1.0 / static_cast<double>(i + 1);
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  san::core::set_thread_count(1);
  const double serial = run();
  for (const std::size_t t : {2u, 3u, 8u}) {
    san::core::set_thread_count(t);
    const double parallel = run();
    EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
        << "thread count " << t;
  }
}

TEST_F(ParallelTest, NestedParallelRegionsRunInline) {
  san::core::set_thread_count(4);
  std::atomic<std::uint64_t> total{0};
  san::core::parallel_for(64, [&](std::size_t) {
    san::core::parallel_for(100, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 6400u);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  san::core::set_thread_count(4);
  EXPECT_THROW(
      san::core::parallel_for(10'000,
                              [&](std::size_t i) {
                                if (i == 7777) throw std::runtime_error("boom");
                              }),
      std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  san::core::parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST_F(ParallelTest, ChunkRngIsDeterministicAndKeyed) {
  auto a = san::core::chunk_rng(42, 7);
  auto b = san::core::chunk_rng(42, 7);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  auto c = san::core::chunk_rng(42, 8);
  auto d = san::core::chunk_rng(43, 7);
  // Different chunk or seed keys give different streams.
  EXPECT_NE(san::core::chunk_rng(42, 7).next_u64(), c.next_u64());
  EXPECT_NE(san::core::chunk_rng(42, 7).next_u64(), d.next_u64());
}

CsrGraph scale_free_ish(std::size_t n, std::size_t m, std::uint64_t seed) {
  san::stats::Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_index(n));
    const auto v = static_cast<NodeId>(rng.uniform_index(1 + u));
    if (u != v) edges.emplace_back(u, v);
  }
  return CsrGraph::from_edges(n, edges);
}

TEST_F(ParallelTest, GraphKernelsAreByteIdenticalAcrossThreadCounts) {
  const CsrGraph g = scale_free_ish(20'000, 120'000, 0xfeed);

  san::core::set_thread_count(1);
  const double cc1 = san::graph::approx_average_clustering(g);
  const double as1 = san::graph::assortativity(g);
  const auto wcc1 = san::graph::weakly_connected_components(g);

  for (const std::size_t t : {2u, 4u, 8u}) {
    san::core::set_thread_count(t);
    const double cct = san::graph::approx_average_clustering(g);
    const double ast = san::graph::assortativity(g);
    const auto wcct = san::graph::weakly_connected_components(g);
    EXPECT_EQ(std::memcmp(&cc1, &cct, sizeof(double)), 0) << "threads " << t;
    EXPECT_EQ(std::memcmp(&as1, &ast, sizeof(double)), 0) << "threads " << t;
    EXPECT_EQ(wcc1.component, wcct.component) << "threads " << t;
    EXPECT_EQ(wcc1.sizes, wcct.sizes) << "threads " << t;
  }
}

}  // namespace

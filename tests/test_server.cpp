// serve::Server socket contract: response streams are byte-identical to
// offline file replay at every batching setting, protocol edge cases
// (oversized lines, NUL bytes, partial lines split across sends,
// malformed tokens) produce the same line-numbered diagnostics file
// replay prints, slow consumers are disconnected instead of wedging the
// loop, ingest routes through the bound live timeline, and a drain never
// drops an accepted query.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "san/live_replay.hpp"
#include "san/live_timeline.hpp"
#include "san/timeline.hpp"
#include "san_testlib.hpp"
#include "serve/genload.hpp"
#include "serve/query.hpp"
#include "serve/query_engine.hpp"
#include "serve/snapshot_cache.hpp"

namespace {

using san::IngestBatch;
using san::LiveReplay;
using san::LiveTimeline;
using san::LiveTimelineOptions;
using san::SanTimeline;
using san::SocialAttributeNetwork;
using san::serve::GenloadOptions;
using san::serve::Query;
using san::serve::QueryEngine;
using san::serve::Server;
using san::serve::ServerOptions;
using san::serve::SnapshotCache;
using san::serve::WorkloadStep;
using san::serve::generate_workload;
using san::serve::parse_live_workload;

// The server relies on the CLI ignoring SIGPIPE; tests must too, or a
// disconnect racing a send kills the test binary.
struct IgnoreSigpipe {
  IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} ignore_sigpipe;

int connect_loopback(std::uint16_t port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0) {
    // Must be set before connect to shrink the advertised window — the
    // slow-consumer test caps how many bytes the kernel will accept.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0)
      << std::strerror(errno);
  return fd;
}

void send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t w = ::send(fd, text.data() + off, text.size() - off, 0);
    if (w < 0 && errno == EINTR) continue;
    ASSERT_GT(w, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(w);
  }
}

/// Reads until EOF (or a reset, which the slow-consumer test expects).
std::string recv_until_eof(int fd) {
  std::string out;
  char buf[16384];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return out;
    out.append(buf, static_cast<std::size_t>(r));
  }
}

/// One client exchange against a running server: send the workload text,
/// half-close, read the full response stream.
std::string exchange(std::uint16_t port, const std::string& text) {
  const int fd = connect_loopback(port);
  send_all(fd, text);
  ::shutdown(fd, SHUT_WR);
  const std::string response = recv_until_eof(fd);
  ::close(fd);
  return response;
}

/// What file replay prints for a pure-query workload: one rendered line
/// per query, admission order.
std::string offline_serve(QueryEngine& engine,
                          const std::vector<Query>& queries) {
  std::string out;
  const auto results =
      engine.run_batch(std::span<const Query>(queries.data(),
                                              queries.size()));
  for (std::size_t i = 0; i < results.size(); ++i) {
    out += results[i].to_line(queries[i]);
    out += '\n';
  }
  return out;
}

std::string scenario_text(std::size_t queries, std::uint64_t seed,
                          double ingest_fraction = 0.0) {
  GenloadOptions options;
  options.queries = queries;
  options.nodes = 1'500;
  options.seed = seed;
  options.ingest_fraction = ingest_fraction;
  options.now_fraction = 0.1;
  return generate_workload(options);
}

SocialAttributeNetwork test_net() {
  return san::testlib::synthetic_gplus(1'500, /*seed=*/7);
}

TEST(Server, ByteIdentityAcrossBatchingSettings) {
  const auto net = test_net();
  const SanTimeline timeline(net);
  SnapshotCache cache(timeline, 8);
  QueryEngine engine(cache);

  const std::string text = scenario_text(400, 21);
  std::vector<Query> queries;
  for (const auto& step : parse_live_workload(text)) {
    queries.push_back(step.query);
  }
  const std::string expected = offline_serve(engine, queries);

  for (const std::uint64_t max_delay_us : {0ull, 5'000ull}) {
    for (const std::size_t batch_size : {std::size_t{4}, std::size_t{1024}}) {
      ServerOptions options;
      options.batch_size = batch_size;
      options.max_delay_us = max_delay_us;
      Server server(engine, options);
      ASSERT_GT(server.port(), 0);
      std::thread loop([&] { server.run(); });
      const std::string response = exchange(server.port(), text);
      server.request_drain();
      loop.join();
      EXPECT_EQ(response, expected)
          << "batch_size=" << batch_size
          << " max_delay_us=" << max_delay_us;
      EXPECT_EQ(server.stats().queries, queries.size());
      EXPECT_EQ(server.stats().dropped_responses, 0u);
    }
  }
}

TEST(Server, MalformedLinesEchoFileReplayDiagnostics) {
  const auto net = test_net();
  const SanTimeline timeline(net);
  SnapshotCache cache(timeline, 4);
  QueryEngine engine(cache);
  ServerOptions options;
  options.max_delay_us = 0;
  Server server(engine, options);
  std::thread loop([&] { server.run(); });

  // Line numbers count every line, including blanks and comments, so the
  // diagnostics match replaying this exact stream as a file.
  std::string bad("linkrec 2x 5 3\n");       // line 1: malformed time
  bad += "# comment\n";                      // line 2: skipped
  bad += "\n";                               // line 3: skipped
  bad += "bogus 1 2\n";                      // line 4: unknown kind
  bad += std::string("ego\0x 1 5\n", 10);    // line 5: NUL in the kind
  bad += "ego 1 7 9\n";                      // line 6: trailing token
  bad += "ego 1 3\n";                        // line 7: valid
  const std::string response = exchange(server.port(), bad);
  server.request_drain();
  loop.join();

  // The NUL truncates the echoed diagnostic at the what() boundary —
  // exactly where file replay's fprintf("%s", e.what()) truncates it.
  const std::vector<std::string> expected_err = {
      "workload line 1: malformed time '2x'",
      "workload line 4: unknown query kind 'bogus'",
      "workload line 5: unknown query kind 'ego",
      "workload line 6: trailing token '9'",
  };
  // The exact messages are the file-replay ones: parsing the same line at
  // the same position throws the identical text.
  const std::string stream_prefix(
      "linkrec 2x 5 3\n# comment\n\nbogus 1 2\n");
  for (const auto& expect : expected_err) {
    EXPECT_NE(response.find("ERR " + expect + "\n"), std::string::npos)
        << "missing: " << expect << "\nresponse:\n"
        << response;
  }
  try {
    parse_live_workload(stream_prefix);
    FAIL() << "file replay accepted a malformed line";
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()), expected_err[0]);
  }
  // The valid trailing query still got served.
  EXPECT_NE(response.find("ego t=1 u=3 "), std::string::npos) << response;
  EXPECT_EQ(server.stats().parse_errors, 4u);
  EXPECT_EQ(server.stats().queries, 1u);
}

TEST(Server, PartialLinesSplitAcrossSendsReassemble) {
  const auto net = test_net();
  const SanTimeline timeline(net);
  SnapshotCache cache(timeline, 4);
  QueryEngine engine(cache);
  ServerOptions options;
  options.max_delay_us = 0;
  Server server(engine, options);
  std::thread loop([&] { server.run(); });

  const std::vector<Query> query = {
      parse_live_workload("ego 2 9\n")[0].query};
  const std::string expected = offline_serve(engine, query);

  const int fd = connect_loopback(server.port());
  // One query line dribbled in four sends, with pauses long enough for
  // the event loop to observe each fragment as its own readable event.
  for (const char* piece : {"eg", "o 2", " ", "9\n"}) {
    send_all(fd, piece);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::shutdown(fd, SHUT_WR);
  const std::string response = recv_until_eof(fd);
  ::close(fd);
  server.request_drain();
  loop.join();
  EXPECT_EQ(response, expected);
}

TEST(Server, OversizedLineGetsErrorAndDisconnect) {
  const auto net = test_net();
  const SanTimeline timeline(net);
  SnapshotCache cache(timeline, 4);
  QueryEngine engine(cache);
  ServerOptions options;
  options.max_delay_us = 0;
  options.max_line_bytes = 256;
  Server server(engine, options);
  std::thread loop([&] { server.run(); });

  const int fd = connect_loopback(server.port());
  send_all(fd, std::string(1'000, 'x'));  // no newline, over the cap
  const std::string response = recv_until_eof(fd);  // server closes
  ::close(fd);
  server.request_drain();
  loop.join();
  EXPECT_EQ(response,
            "ERR workload line 1: line exceeds 256 bytes\n");
  EXPECT_EQ(server.stats().oversize_disconnects, 1u);
}

TEST(Server, SlowConsumerIsDisconnectedNotBuffered) {
  const auto net = test_net();
  const SanTimeline timeline(net);
  SnapshotCache cache(timeline, 4);
  QueryEngine engine(cache);
  ServerOptions options;
  options.max_delay_us = 0;
  // Small flushes: each one lands under the outbound cap, so the socket
  // fills first (EAGAIN -> backpressure) and THEN the cap trips.
  options.batch_size = 16;
  options.max_outbound_bytes = 2'048;
  options.sndbuf_bytes = 4'096;
  Server server(engine, options);
  std::thread loop([&] { server.run(); });

  // ~2000 ego responses (~150 KiB) against a 4 KiB rcvbuf client that
  // never reads: the socket fills, then the outbound cap trips.
  std::string flood;
  for (int i = 0; i < 2'000; ++i) {
    flood += "ego 2 " + std::to_string(i % 1'000) + "\n";
  }
  const int fd = connect_loopback(server.port(), /*rcvbuf=*/4'096);
  send_all(fd, flood);
  // Do NOT read: wait for the server to give up on us.
  for (int spin = 0; spin < 2'000 && server.stats().slow_disconnects == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);
  server.request_drain();
  loop.join();
  EXPECT_EQ(server.stats().slow_disconnects, 1u);
  EXPECT_GE(server.stats().backpressure, 1u);
  EXPECT_GE(server.stats().dropped_responses, 1u);
}

TEST(Server, DrainServesEveryAcceptedQuery) {
  const auto net = test_net();
  const SanTimeline timeline(net);
  SnapshotCache cache(timeline, 8);
  QueryEngine engine(cache);
  ServerOptions options;
  // A far-future flush deadline: the queries sit in the pending batch
  // (or the kernel socket buffer) when the drain begins — the drain
  // itself must serve them.
  options.max_delay_us = 60ull * 1'000'000;
  options.batch_size = 1 << 20;
  Server server(engine, options);
  std::thread loop([&] { server.run(); });

  const std::string text = scenario_text(200, 33);
  std::vector<Query> queries;
  for (const auto& step : parse_live_workload(text)) {
    queries.push_back(step.query);
  }
  const std::string expected = offline_serve(engine, queries);

  const int fd = connect_loopback(server.port());
  send_all(fd, text);  // fully accepted by the kernel before the drain
  server.request_drain();
  const std::string response = recv_until_eof(fd);
  ::close(fd);
  loop.join();
  EXPECT_EQ(response, expected);
  EXPECT_EQ(server.stats().queries, queries.size());
  EXPECT_EQ(server.stats().dropped_responses, 0u);
}

TEST(Server, IngestRoutesThroughLiveBindingByteIdentically) {
  const auto net = test_net();
  const std::string text = scenario_text(300, 55, /*ingest_fraction=*/0.15);
  const auto steps = parse_live_workload(text);

  // Offline reference: the exact cmd_live loop — flush queued queries
  // before each ingest, then advance the live timeline.
  std::string expected;
  {
    LiveReplay replay(net, 0.0);
    const SanTimeline frozen(replay.seed);
    SnapshotCache cache(frozen, 8);
    LiveTimelineOptions live_options;
    live_options.initial_tip = 0.0;
    LiveTimeline live(replay.seed, live_options);
    cache.bind_live(live, 0.0);
    QueryEngine engine(cache);
    std::vector<Query> queued;
    const auto flush = [&] {
      expected += offline_serve(engine, queued);
      queued.clear();
    };
    for (const auto& step : steps) {
      if (!step.ingest) {
        queued.push_back(step.query);
        continue;
      }
      flush();
      IngestBatch batch = replay.batch_until(step.tip);
      live.ingest(batch);
    }
    flush();
  }

  LiveReplay replay(net, 0.0);
  const SanTimeline frozen(replay.seed);
  SnapshotCache cache(frozen, 8);
  LiveTimelineOptions live_options;
  live_options.initial_tip = 0.0;
  LiveTimeline live(replay.seed, live_options);
  cache.bind_live(live, 0.0);
  QueryEngine engine(cache);
  ServerOptions options;
  options.max_delay_us = 2'500;
  options.batch_size = 64;
  Server server(engine, options);
  server.set_ingest_handler([&](double tip, std::string& error) {
    try {
      IngestBatch batch = replay.batch_until(tip);
      live.ingest(batch);
      return true;
    } catch (const std::exception& e) {
      error = e.what();
      return false;
    }
  });
  std::thread loop([&] { server.run(); });
  const std::string response = exchange(server.port(), text);
  server.request_drain();
  loop.join();
  EXPECT_EQ(response, expected);
  std::size_t ingest_lines = 0;
  for (const auto& step : steps) ingest_lines += step.ingest ? 1 : 0;
  EXPECT_EQ(server.stats().ingests, ingest_lines);
}

TEST(Server, FailedIngestRejectsTheLineNotTheConnection) {
  const auto net = test_net();
  LiveReplay replay(net, 0.0);
  const SanTimeline frozen(replay.seed);
  SnapshotCache cache(frozen, 8);
  LiveTimelineOptions live_options;
  live_options.initial_tip = 0.0;
  LiveTimeline live(replay.seed, live_options);
  cache.bind_live(live, 0.0);
  QueryEngine engine(cache);
  ServerOptions options;
  options.max_delay_us = 0;
  Server server(engine, options);
  server.set_ingest_handler([&](double tip, std::string& error) {
    try {
      IngestBatch batch = replay.batch_until(tip);
      live.ingest(batch);
      return true;
    } catch (const std::exception& e) {
      error = e.what();
      return false;
    }
  });
  std::thread loop([&] { server.run(); });

  // Tip 5, then a non-advancing tip 5 (rejected, connection survives),
  // then a query that must still be served.
  const std::string response =
      exchange(server.port(), "ingest 5\ningest 5\nego now 1\n");
  server.request_drain();
  loop.join();
  EXPECT_NE(response.find("ERR workload line 2: "), std::string::npos)
      << response;
  EXPECT_NE(response.find("strictly"), std::string::npos) << response;
  EXPECT_NE(response.find("ego t=now u=1 "), std::string::npos) << response;
  EXPECT_EQ(server.stats().ingests, 1u);
  EXPECT_EQ(server.stats().parse_errors, 1u);
}

TEST(Server, TelemetryRegistersServerSchema) {
  const auto net = test_net();
  const SanTimeline timeline(net);
  SnapshotCache cache(timeline, 4);
  QueryEngine engine(cache);
  Server server(engine, ServerOptions{});
  san::obs::Registry registry;
  server.register_metrics(registry, "server");
  std::thread loop([&] { server.run(); });
  exchange(server.port(), "ego 1 2\nbroken\n");
  server.request_drain();
  loop.join();

  const auto snapshot = registry.snapshot();
  const auto value = [&](const std::string& name) -> double {
    for (const auto& [key, v] : snapshot) {
      if (key == name) return v;
    }
    return -1.0;
  };
  EXPECT_EQ(value("server.accepted"), 1.0);
  EXPECT_EQ(value("server.closed"), 1.0);
  EXPECT_EQ(value("server.queries"), 1.0);
  EXPECT_EQ(value("server.parse_errors"), 1.0);
  EXPECT_EQ(value("server.open_connections"), 0.0);
  EXPECT_GE(value("server.batches"), 1.0);
}

}  // namespace

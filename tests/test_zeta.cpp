#include "stats/zeta.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using san::stats::hurwitz_zeta;
using san::stats::riemann_zeta;

TEST(Zeta, RiemannKnownValues) {
  EXPECT_NEAR(riemann_zeta(2.0), M_PI * M_PI / 6.0, 1e-10);
  EXPECT_NEAR(riemann_zeta(4.0), std::pow(M_PI, 4) / 90.0, 1e-10);
}

TEST(Zeta, HurwitzMatchesDirectSummation) {
  for (const double s : {1.5, 2.0, 2.5, 3.5}) {
    for (const double q : {1.0, 2.0, 5.0, 10.0}) {
      long double direct = 0.0L;
      constexpr int kTerms = 2'000'000;
      for (int n = 0; n < kTerms; ++n) {
        direct += std::pow(static_cast<long double>(n) + q, -s);
      }
      // Analytic tail of the truncated direct sum.
      direct += std::pow(static_cast<long double>(kTerms) + q,
                         1.0L - s) / (s - 1.0L);
      EXPECT_NEAR(hurwitz_zeta(s, q), static_cast<double>(direct), 1e-6)
          << "s=" << s << " q=" << q;
    }
  }
}

TEST(Zeta, ShiftIdentity) {
  // zeta(s, q) = q^{-s} + zeta(s, q + 1).
  for (const double s : {1.8, 2.2, 3.0}) {
    for (const double q : {1.0, 3.0, 7.5}) {
      EXPECT_NEAR(hurwitz_zeta(s, q),
                  std::pow(q, -s) + hurwitz_zeta(s, q + 1.0), 1e-10);
    }
  }
}

TEST(Zeta, MonotoneDecreasingInQ) {
  EXPECT_GT(hurwitz_zeta(2.5, 1.0), hurwitz_zeta(2.5, 2.0));
  EXPECT_GT(hurwitz_zeta(2.5, 2.0), hurwitz_zeta(2.5, 10.0));
}

TEST(Zeta, RejectsInvalidArguments) {
  EXPECT_THROW(hurwitz_zeta(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(hurwitz_zeta(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(hurwitz_zeta(2.0, 0.0), std::invalid_argument);
  EXPECT_THROW(hurwitz_zeta(2.0, -1.0), std::invalid_argument);
}

TEST(Zeta, LargeExponentMatchesLeadingTerms) {
  // For large s the first few terms dominate: compare against a 50-term sum.
  double lead = 0.0;
  for (int n = 0; n < 50; ++n) lead += std::pow(2.0 + n, -7.5);
  EXPECT_NEAR(hurwitz_zeta(7.5, 2.0), lead, 1e-10);
}

}  // namespace

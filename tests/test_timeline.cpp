// SanTimeline equivalence and BipartiteCsr invariants.
//
// The timeline contract is exact: snapshot_at(t) through the index must be
// indistinguishable — adjacency arrays, member ordering, metrics, dropped
// counts — from the naive full-log-scan san::snapshot_at at every t. The
// randomized suites check that on generated SANs at many random times.
#include "san/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "core/thread_pool.hpp"
#include "crawl/gplus_synth.hpp"
#include "graph/bipartite_csr.hpp"
#include "model/generator.hpp"
#include "san/san_metrics.hpp"
#include "san/serialization.hpp"
#include "stats/rng.hpp"

namespace {

using san::AttrId;
using san::AttributeType;
using san::NodeId;
using san::SanSnapshot;
using san::SanTimeline;
using san::SocialAttributeNetwork;
using san::snapshot_at;
using san::graph::BipartiteCsr;

void expect_snapshots_identical(const SanSnapshot& a, const SanSnapshot& b,
                                double time) {
  SCOPED_TRACE(testing::Message() << "time=" << time);
  ASSERT_EQ(a.social_node_count(), b.social_node_count());
  ASSERT_EQ(a.social_link_count(), b.social_link_count());
  ASSERT_EQ(a.attribute_link_count, b.attribute_link_count);
  ASSERT_EQ(a.attribute_node_count(), b.attribute_node_count());
  ASSERT_EQ(a.attribute_id_count(), b.attribute_id_count());
  ASSERT_EQ(a.dropped_link_count, b.dropped_link_count);
  EXPECT_EQ(a.populated_attribute_count(), b.populated_attribute_count());
  EXPECT_EQ(a.attribute_types, b.attribute_types);
  EXPECT_EQ(a.attribute_created, b.attribute_created);

  for (NodeId u = 0; u < a.social_node_count(); ++u) {
    const auto ao = a.social.out(u);
    const auto bo = b.social.out(u);
    ASSERT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()))
        << "out list differs at node " << u;
    const auto ai = a.social.in(u);
    const auto bi = b.social.in(u);
    ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end()))
        << "in list differs at node " << u;
    const auto an = a.social.neighbors(u);
    const auto bn = b.social.neighbors(u);
    ASSERT_TRUE(std::equal(an.begin(), an.end(), bn.begin(), bn.end()))
        << "neighbor list differs at node " << u;
    const auto aa = a.attributes_of(u);
    const auto ba = b.attributes_of(u);
    ASSERT_TRUE(std::equal(aa.begin(), aa.end(), ba.begin(), ba.end()))
        << "attribute list differs at node " << u;
  }
  for (AttrId x = 0; x < a.attribute_id_count(); ++x) {
    const auto am = a.members_of(x);
    const auto bm = b.members_of(x);
    ASSERT_TRUE(std::equal(am.begin(), am.end(), bm.begin(), bm.end()))
        << "member list differs (incl. order) at attribute " << x;
  }

  // Metric identity, including the float-accumulation-order-sensitive ones.
  EXPECT_EQ(san::attribute_density(a), san::attribute_density(b));
  EXPECT_EQ(san::attribute_assortativity(a), san::attribute_assortativity(b));
}

void check_equivalence_at_random_times(const SocialAttributeNetwork& net,
                                       std::size_t samples,
                                       std::uint64_t seed) {
  const SanTimeline timeline(net);
  san::stats::Rng rng(seed);
  const double horizon = timeline.max_time() * 1.1 + 1.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = rng.uniform() * horizon;
    expect_snapshots_identical(timeline.snapshot_at(t), snapshot_at(net, t), t);
  }
  expect_snapshots_identical(timeline.snapshot_full(), san::snapshot_full(net),
                             timeline.max_time());
}

TEST(Timeline, MatchesNaiveSnapshotsOnModelSan) {
  san::model::GeneratorParams params;
  params.social_node_count = 600;
  params.seed = 11;
  check_equivalence_at_random_times(san::model::generate_san(params), 25, 99);
}

TEST(Timeline, MatchesNaiveSnapshotsOnSyntheticGplus) {
  san::crawl::SyntheticGplusParams params;
  params.total_social_nodes = 1'500;
  params.seed = 5;
  check_equivalence_at_random_times(
      san::crawl::generate_synthetic_gplus(params), 25, 1234);
}

TEST(Timeline, MatchesNaiveOnSerializationRoundTrip) {
  san::crawl::SyntheticGplusParams params;
  params.total_social_nodes = 800;
  params.seed = 21;
  const auto net = san::crawl::generate_synthetic_gplus(params);

  // Fractional timestamps must survive the text round trip exactly, or the
  // reloaded timeline's snapshot boundaries shift.
  std::stringstream buffer;
  san::save_san(net, buffer);
  const auto reloaded = san::load_san(buffer);
  const SanTimeline timeline(reloaded);
  san::stats::Rng rng(7);
  for (std::size_t i = 0; i < 10; ++i) {
    const double t = rng.uniform() * (timeline.max_time() + 1.0);
    expect_snapshots_identical(timeline.snapshot_at(t), snapshot_at(net, t), t);
  }
}

TEST(Timeline, SweepMatchesIndividualSnapshots) {
  san::model::GeneratorParams params;
  params.social_node_count = 400;
  params.seed = 3;
  const auto net = san::model::generate_san(params);
  const SanTimeline timeline(net);

  std::vector<double> times;
  const double stride = timeline.max_time() / 7.0 + 0.1;
  for (double t = 0.0; t <= timeline.max_time() + 1.0; t += stride) {
    times.push_back(t);
  }
  std::size_t visited = 0;
  timeline.sweep(times, [&](double t, const SanSnapshot& snap) {
    expect_snapshots_identical(snap, snapshot_at(net, t), t);
    ++visited;
  });
  EXPECT_EQ(visited, times.size());
}

TEST(Timeline, CountsAndMaxTime) {
  san::model::GeneratorParams params;
  params.social_node_count = 200;
  params.seed = 17;
  const auto net = san::model::generate_san(params);
  const SanTimeline timeline(net);
  EXPECT_EQ(timeline.social_node_total(), net.social_node_count());
  EXPECT_EQ(timeline.attribute_node_total(), net.attribute_node_count());
  EXPECT_EQ(timeline.social_link_total(), net.social_link_count());
  EXPECT_EQ(timeline.attribute_link_total(), net.attribute_link_count());
  const auto full = timeline.snapshot_at(timeline.max_time());
  EXPECT_EQ(full.social_node_count(), net.social_node_count());
  EXPECT_EQ(full.social_link_count(), net.social_link_count());
}

TEST(Timeline, EmptyNetwork) {
  const SocialAttributeNetwork net;
  const SanTimeline timeline(net);
  EXPECT_EQ(timeline.max_time(), 0.0);
  const auto snap = timeline.snapshot_at(5.0);
  EXPECT_EQ(snap.social_node_count(), 0u);
  EXPECT_EQ(snap.attribute_link_count, 0u);
}

TEST(Timeline, OutOfOrderLogTimesStillMatchNaive) {
  // add_* allows locally out-of-order link timestamps (e.g. a clamped link
  // time exceeding a later event's); the stable time sort must agree with
  // the naive filter at every cut.
  SocialAttributeNetwork net;
  net.add_social_node(1.0);
  net.add_social_node(1.0);
  net.add_social_node(2.0);
  const auto a = net.add_attribute_node(AttributeType::kCity, "SF", 1.0);
  const auto b = net.add_attribute_node(AttributeType::kEmployer, "G", 1.0);
  net.add_social_link(0, 2, 3.0);  // later time logged first
  net.add_social_link(0, 1, 1.5);
  net.add_social_link(1, 0, 2.5);
  net.add_attribute_link(1, b, 2.0);
  net.add_attribute_link(0, a, 1.0);
  net.add_attribute_link(2, a, 4.0);
  const SanTimeline timeline(net);
  for (const double t : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 9.0}) {
    expect_snapshots_identical(timeline.snapshot_at(t), snapshot_at(net, t), t);
  }
}

// ---- BipartiteCsr invariants. ----

TEST(BipartiteCsr, SortedLeftSpansAndDegreeSums) {
  san::stats::Rng rng(42);
  const std::size_t n_left = 60, n_right = 25;
  std::vector<NodeId> users;
  std::vector<AttrId> attrs;
  std::vector<std::uint8_t> seen(n_left * n_right, 0);
  for (std::size_t i = 0; i < 400; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_index(n_left));
    const auto x = static_cast<AttrId>(rng.uniform_index(n_right));
    if (seen[u * n_right + x]) continue;  // keep links unique
    seen[u * n_right + x] = 1;
    users.push_back(u);
    attrs.push_back(x);
  }
  const auto csr = BipartiteCsr::from_links(n_left, n_right, users, attrs);
  EXPECT_EQ(csr.link_count(), users.size());

  std::uint64_t left_sum = 0, right_sum = 0;
  for (NodeId u = 0; u < n_left; ++u) {
    const auto span = csr.attrs_of(u);
    left_sum += span.size();
    for (std::size_t i = 1; i < span.size(); ++i) {
      EXPECT_LT(span[i - 1], span[i]) << "attrs_of not strictly ascending";
    }
  }
  for (AttrId x = 0; x < n_right; ++x) right_sum += csr.members_of(x).size();
  EXPECT_EQ(left_sum, csr.link_count());
  EXPECT_EQ(right_sum, csr.link_count());
}

TEST(BipartiteCsr, MembersPreserveInputOrder) {
  const std::vector<NodeId> users{3, 1, 2, 0};
  const std::vector<AttrId> attrs{0, 0, 0, 0};
  const auto csr = BipartiteCsr::from_links(4, 1, users, attrs);
  const auto members = csr.members_of(0);
  ASSERT_EQ(members.size(), 4u);
  EXPECT_EQ(members[0], 3u);
  EXPECT_EQ(members[1], 1u);
  EXPECT_EQ(members[2], 2u);
  EXPECT_EQ(members[3], 0u);
}

TEST(BipartiteCsr, RebuildReusesAndResets) {
  BipartiteCsr csr;
  const std::vector<NodeId> u1{0, 1, 2};
  const std::vector<AttrId> a1{1, 0, 1};
  csr.rebuild_from_links(3, 2, u1, a1);
  EXPECT_EQ(csr.link_count(), 3u);
  const std::vector<NodeId> u2{1};
  const std::vector<AttrId> a2{0};
  csr.rebuild_from_links(2, 1, u2, a2);
  EXPECT_EQ(csr.left_count(), 2u);
  EXPECT_EQ(csr.right_count(), 1u);
  EXPECT_EQ(csr.link_count(), 1u);
  ASSERT_EQ(csr.members_of(0).size(), 1u);
  EXPECT_EQ(csr.members_of(0)[0], 1u);
  EXPECT_TRUE(csr.attrs_of(0).empty());
}

TEST(BipartiteCsr, CommonAttrs) {
  const std::vector<NodeId> users{0, 0, 1, 1, 1};
  const std::vector<AttrId> attrs{0, 2, 0, 1, 2};
  const auto csr = BipartiteCsr::from_links(2, 3, users, attrs);
  EXPECT_EQ(csr.common_attrs(0, 1), 2u);
  EXPECT_EQ(csr.common_attrs(0, 0), 2u);
}

TEST(BipartiteCsr, RejectsOutOfRange) {
  const std::vector<NodeId> users{5};
  const std::vector<AttrId> attrs{0};
  EXPECT_THROW(BipartiteCsr::from_links(2, 1, users, attrs), std::out_of_range);
}

TEST(BipartiteCsr, ParallelScatterMatchesSerialReferenceAtAnyThreadCount) {
  // Large enough that the 64Ki-link scatter grain yields several chunks, so
  // the two-level per-chunk cursors actually run multi-chunk.
  san::stats::Rng rng(271828);
  const std::size_t n_left = 4'000, n_right = 700, m = 300'000;
  std::vector<NodeId> users(m);
  std::vector<AttrId> attrs(m);
  for (std::size_t i = 0; i < m; ++i) {
    // Skewed keys (hot users/attributes) to stress unequal chunk rows.
    users[i] = static_cast<NodeId>(
        std::min<std::uint64_t>(rng.uniform_index(n_left),
                                rng.uniform_index(n_left)));
    attrs[i] = static_cast<AttrId>(
        std::min<std::uint64_t>(rng.uniform_index(n_right),
                                rng.uniform_index(n_right)));
  }

  // Serial reference: members in input order, attrs ascending. Uniqueness
  // is the caller's contract; the counting sorts are duplicate-agnostic, so
  // the random pairs here (which may repeat) still have one exact answer.
  std::vector<std::vector<NodeId>> members(n_right);
  std::vector<std::vector<AttrId>> attr_lists(n_left);
  for (std::size_t i = 0; i < m; ++i) members[attrs[i]].push_back(users[i]);
  for (AttrId a = 0; a < n_right; ++a) {
    for (const NodeId u : members[a]) attr_lists[u].push_back(a);
  }

  const std::size_t restore = san::core::thread_count();
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    san::core::set_thread_count(threads);
    const auto csr = BipartiteCsr::from_links(n_left, n_right, users, attrs);
    ASSERT_EQ(csr.link_count(), m);
    for (AttrId a = 0; a < n_right; ++a) {
      const auto span = csr.members_of(a);
      ASSERT_TRUE(std::equal(span.begin(), span.end(), members[a].begin(),
                             members[a].end()))
          << "members_of(" << a << ") deviates";
    }
    for (NodeId u = 0; u < n_left; ++u) {
      const auto span = csr.attrs_of(u);
      ASSERT_TRUE(std::equal(span.begin(), span.end(), attr_lists[u].begin(),
                             attr_lists[u].end()))
          << "attrs_of(" << u << ") deviates";
    }
  }
  san::core::set_thread_count(restore);
}

// ---- CsrGraph::from_sorted_edges fast path. ----

TEST(CsrFromSorted, MatchesCanonicalBuild) {
  san::stats::Rng rng(9);
  const std::size_t n = 80;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::size_t i = 0; i < 500; ++i) {
    edges.emplace_back(static_cast<NodeId>(rng.uniform_index(n)),
                       static_cast<NodeId>(rng.uniform_index(n)));
  }
  const auto reference = san::graph::CsrGraph::from_edges(n, edges);
  std::sort(edges.begin(), edges.end());  // duplicates + self loops remain
  const auto fast = san::graph::CsrGraph::from_sorted_edges(n, edges);
  ASSERT_EQ(fast.node_count(), reference.node_count());
  ASSERT_EQ(fast.edge_count(), reference.edge_count());
  for (NodeId u = 0; u < n; ++u) {
    const auto fo = fast.out(u), ro = reference.out(u);
    ASSERT_TRUE(std::equal(fo.begin(), fo.end(), ro.begin(), ro.end()));
    const auto fi = fast.in(u), ri = reference.in(u);
    ASSERT_TRUE(std::equal(fi.begin(), fi.end(), ri.begin(), ri.end()));
    const auto fn = fast.neighbors(u), rn = reference.neighbors(u);
    ASSERT_TRUE(std::equal(fn.begin(), fn.end(), rn.begin(), rn.end()));
  }
}

TEST(CsrFromSorted, RejectsUnsortedInput) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{1, 0}, {0, 1}};
  EXPECT_THROW(san::graph::CsrGraph::from_sorted_edges(2, edges),
               std::invalid_argument);
}

}  // namespace
